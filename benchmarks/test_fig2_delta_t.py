"""Figure 2 — impact of the ΔT parameter on SLRH-1.

Paper shape: T100 is relatively insensitive to ΔT over mid-range values but
degrades for very large ΔT (idle gaps); heuristic execution time rises
steeply as ΔT → 1 (many no-op invocations).
"""

from conftest import once

from repro.experiments.figures import figure2_delta_t_sweep


def test_figure2_delta_t_sweep(benchmark, emit, scale):
    result = once(benchmark, lambda: figure2_delta_t_sweep(scale))
    for points in result.series:
        by_value = {p.value: p for p in points}
        smallest, largest = min(by_value), max(by_value)
        # Runtime blows up at small dT...
        assert by_value[smallest].heuristic_seconds > by_value[largest].heuristic_seconds
        # ...while T100 stays in the same ballpark over the mid-range.
        mid = [p.t100 for p in points if 5 <= p.value <= 100]
        if len(mid) >= 2:
            assert max(mid) - min(mid) <= max(3, scale.n_tasks // 4)
    emit("figure2", result.render())
