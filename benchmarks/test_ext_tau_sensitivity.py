"""Extension bench — τ tightness sweep.

The paper fixes τ = 34 075 s; this sweep varies the time budget around the
calibrated value and maps the feasibility/quality frontier: below some
slack the SLRH cannot complete; above it, extra time converts secondaries
into primaries until T100 saturates.
"""

from conftest import once

from repro.core.objective import Weights
from repro.core.slrh import SLRH1
from repro.experiments.reporting import format_table
from repro.tuning.sweeps import sweep_tau_slack

WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)
SLACKS = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0)


def _run(scale):
    scenario = scale.suite().scenario(0, 0, "A")
    return scenario, sweep_tau_slack(SLRH1, scenario, WEIGHTS, slacks=SLACKS)


def test_tau_sensitivity(benchmark, emit, scale):
    scenario, points = once(benchmark, lambda: _run(scale))
    by_slack = {p.value: p for p in points}
    # More time never maps fewer subtasks at the extremes of the sweep.
    assert by_slack[400].mapped >= by_slack[25].mapped
    # A generous budget completes.
    assert by_slack[400].mapped == scale.n_tasks
    emit(
        "ext_tau_sensitivity",
        format_table(
            ["slack %", "T100", "mapped", "AET", "ok"],
            [[p.value, p.t100, p.mapped, round(p.aet, 1), p.success] for p in points],
            title=(
                f"Extension: tau tightness sweep, SLRH-1 "
                f"(base tau={scenario.tau:.0f}s, {scale.name} scale)"
            ),
        ),
    )
