"""Extension bench — the [AlS00] heterogeneity quadrants.

The ETC literature the paper builds on evaluates every heuristic over the
2×2 heterogeneity grid: {high, low} task variance × {high, low} machine
variance.  The paper fixes one (moderate) point; this bench sweeps the
quadrants with everything else held at the paper's protocol, showing how
robust the SLRH's weight point is to workload statistics.
"""

from conftest import once

import numpy as np

from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig
from repro.experiments.reporting import format_table
from repro.sim.validate import validate_schedule
from repro.workload.etc import EtcSpec, generate_etc
from repro.workload.scenario import Scenario

WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)

#: The four quadrants: (label, task CV, machine CV).  [AlS00] uses ≈0.35
#: as "high" and ≈0.1 as "low" for the gamma method.
QUADRANTS = (
    ("hi-task / hi-machine", 0.35, 0.35),
    ("hi-task / lo-machine", 0.35, 0.10),
    ("lo-task / hi-machine", 0.10, 0.35),
    ("lo-task / lo-machine", 0.10, 0.10),
)


def _run(scale):
    base = scale.suite().scenario(0, 0, "A")
    rows = []
    for label, task_cv, machine_cv in QUADRANTS:
        spec = EtcSpec(task_cv=task_cv, machine_cv=machine_cv)
        etc = generate_etc(base.n_tasks, base.grid, spec, seed=99)
        scenario = Scenario(
            grid=base.grid,
            etc=np.ascontiguousarray(etc),
            dag=base.dag,
            data_sizes=base.data_sizes,
            tau=base.tau,
            name=f"het-{label}",
        )
        result = SLRH1(SlrhConfig(weights=WEIGHTS)).map(scenario)
        validate_schedule(result.schedule)
        rows.append(
            [label, result.t100, result.schedule.n_mapped,
             round(result.aet, 1), result.success]
        )
    return rows


def test_heterogeneity_quadrants(benchmark, emit, scale):
    rows = once(benchmark, lambda: _run(scale))
    assert len(rows) == 4
    # Every quadrant must at least be schedulable (mapped > half).
    for label, t100, mapped, aet, ok in rows:
        assert mapped >= scale.n_tasks // 2, f"{label} collapsed"
    emit(
        "ext_heterogeneity",
        format_table(
            ["quadrant", "T100", "mapped", "AET", "ok"],
            rows,
            title=(
                f"Extension: [AlS00] heterogeneity quadrants, SLRH-1 at the "
                f"paper's weight point ({scale.name} scale)"
            ),
        ),
    )
