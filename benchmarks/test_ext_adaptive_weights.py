"""Extension bench — adaptive Lagrangian multipliers vs offline grid search.

The paper's future work: adjust (α, β, γ) on the fly instead of searching
offline.  This bench compares the subgradient controller
(:func:`repro.core.lagrangian.adaptive_slrh`) against the §VII coarse grid
on the same scenario: T100 achieved and heuristic runs spent.
"""

from conftest import once

from repro.core.lagrangian import AdaptiveWeightController, adaptive_slrh
from repro.core.slrh import SLRH1, SlrhConfig
from repro.experiments.reporting import format_table
from repro.tuning.weight_search import search_weights


def _run(scale):
    suite = scale.suite()
    rows = []
    for case in "ABC":
        scenario = suite.scenario(0, 0, case)
        adaptive_best, history = adaptive_slrh(
            scenario, SLRH1, AdaptiveWeightController(max_iters=10)
        )
        grid = search_weights(
            scenario,
            lambda w: SLRH1(SlrhConfig(weights=w)),
            coarse_step=scale.coarse_step,
            fine=False,
        )
        rows.append(
            [case,
             adaptive_best.t100, len(history), adaptive_best.success,
             (grid.best_t100 if grid.succeeded else 0), grid.evaluations,
             grid.succeeded]
        )
    return rows


def test_adaptive_vs_grid(benchmark, emit, scale):
    rows = once(benchmark, lambda: _run(scale))
    for case, a_t100, a_runs, a_ok, g_t100, g_runs, g_ok in rows:
        if g_ok:
            # The controller should spend no more runs than the coarse grid.
            assert a_runs <= g_runs
            # And land within a reasonable factor of the grid's best T100.
            if a_ok:
                assert a_t100 >= 0.5 * g_t100
    emit(
        "ext_adaptive_weights",
        format_table(
            ["case", "adaptive T100", "adaptive runs", "adaptive ok",
             "grid T100", "grid runs", "grid ok"],
            rows,
            title=(
                "Extension: adaptive multiplier controller vs offline "
                f"(alpha, beta) grid search, SLRH-1 ({scale.name} scale)"
            ),
        ),
    )
