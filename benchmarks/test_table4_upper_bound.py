"""Table 4 — upper bound on T100 per ETC matrix per case.

Paper shape: Cases A and B reach the full |T| = 1024 for (almost) every ETC
matrix; Case C is cycles-limited well below |T| (654-900).  The bench
asserts the same ordering: bound(C) ≤ bound(B), bound(C) ≤ bound(A).
"""

from conftest import once

from repro.experiments.reporting import format_table
from repro.experiments.tables import table4_upper_bound


def test_table4_upper_bound(benchmark, emit, scale):
    rows = once(benchmark, lambda: table4_upper_bound(scale))
    for r in rows:
        assert r["case_C"] <= r["case_A"]
        assert r["case_C"] <= r["case_B"]
        assert r["case_B"] <= r["case_A"]
    emit(
        "table4",
        format_table(
            ["ETC", "Case A", "Case B", "Case C", "C limited by"],
            [
                [r["etc"], r["case_A"], r["case_B"], r["case_C"], r["case_C_limit"]]
                for r in rows
            ],
            title=(
                f"Table 4. Upper bound on T100 ({scale.name} scale, |T|={scale.n_tasks})\n"
                "paper shape: A=B=|T| (full), C reduced and cycles-limited"
            ),
        ),
    )
