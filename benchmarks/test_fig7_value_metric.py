"""Figure 7 — T100 per unit of heuristic execution time.

Paper shape: the speed-adjusted metric strongly favours SLRH-1 over SLRH-3;
SLRH-1 and Max-Max are comparable in Cases A and B, with the dynamic SLRH-1
pulling ahead when a machine is lost thanks to its faster execution.
"""

from conftest import once

from repro.experiments.figures import figure7_value_metric


def test_figure7_value_metric(benchmark, emit, scale):
    result = once(benchmark, lambda: figure7_value_metric(scale))
    for case in "ABC":
        v1 = result.value("SLRH-1", case)
        v3 = result.value("SLRH-3", case)
        assert v1 > 0.0 and v3 > 0.0
    # The paper's headline comparison: SLRH-1 beats SLRH-3 on value per
    # second in the all-machines case.
    assert result.value("SLRH-1", "A") > result.value("SLRH-3", "A")
    emit("figure7", result.render())
