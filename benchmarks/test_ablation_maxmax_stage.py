"""Ablation — Max-Max machine-stage selection rule.

DESIGN.md/EXPERIMENTS.md document a judgment call: the §V text read
literally ("for each machine, the pair with the maximum objective
increase") routes primaries onto the energy-cheap slow machines whenever
β > 0, blowing through τ; a completion-time machine stage (the heuristic's
[IbK77] Min-Min ancestry) keeps Max-Max competitive, matching the paper's
reported results.  This bench shows both on the same scenarios.
"""

from conftest import once

from repro.baselines.maxmax import MaxMaxConfig, MaxMaxScheduler
from repro.core.objective import Weights
from repro.experiments.reporting import format_table

WEIGHTS = Weights.from_alpha_beta(0.4, 0.3)


def _run(scale):
    suite = scale.suite()
    rows = []
    for case in "ABC":
        scenario = suite.scenario(0, 0, case)
        mct = MaxMaxScheduler(
            MaxMaxConfig(weights=WEIGHTS, machine_stage="completion")
        ).map(scenario)
        literal = MaxMaxScheduler(
            MaxMaxConfig(weights=WEIGHTS, machine_stage="objective")
        ).map(scenario)
        rows.append(
            [case,
             mct.t100, round(mct.aet, 1), mct.success,
             literal.t100, round(literal.aet, 1), literal.success]
        )
    return rows


def test_maxmax_machine_stage_ablation(benchmark, emit, scale):
    rows = once(benchmark, lambda: _run(scale))
    # The literal reading must never produce a *shorter* makespan than the
    # completion stage at β > 0 — it has no force pulling toward fast
    # machines.
    for case, _, aet_mct, _, _, aet_lit, _ in rows:
        assert aet_lit >= aet_mct - 1e-6
    emit(
        "ablation_maxmax_stage",
        format_table(
            ["case", "MCT T100", "MCT AET", "MCT ok",
             "literal T100", "literal AET", "literal ok"],
            rows,
            title=(
                "Ablation: Max-Max machine stage — completion-time (default) "
                f"vs literal objective stage ({scale.name} scale)"
            ),
        ),
    )
