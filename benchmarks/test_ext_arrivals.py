"""Extension bench — non-deterministic arrivals and decision latency.

Two dynamism axes the paper explicitly names but defers:

* **arrival intensity** (§IV: "in a truly dynamic environment, each
  subtask would arrive at some non-deterministic time") — sweep the mean
  inter-arrival gap from instantaneous (the paper's simplification) to
  slow trickle and watch completion/AET respond;
* **decision latency** (§IV: real-time heuristic execution time forces
  larger effective ΔT) — sweep the mapper's own reaction delay.
"""

from conftest import once

from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig
from repro.experiments.reporting import format_table
from repro.sim.validate import validate_schedule
from repro.workload.arrivals import generate_release_times

WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)

#: Mean inter-arrival gaps as a fraction of the mean slow-class task time.
ARRIVAL_GAPS = (0.0, 0.02, 0.05, 0.1, 0.25)

#: Decision latencies in cycles.  Note the structural cliff at the horizon
#: H = 100: a decision that takes effect beyond the receding horizon can
#: never satisfy the §IV start-within-H rule, so a controller slower than
#: its own horizon maps *nothing* — the quantitative version of the
#: paper's warning that field heuristic runtime constrains ΔT (and H).
LATENCIES = (0, 10, 50, 90, 200)  # cycles


def _run(scale):
    scenario = scale.suite().scenario(0, 0, "A")
    arrival_rows = []
    for gap_frac in ARRIVAL_GAPS:
        gap = gap_frac * 131.0
        sc = (
            scenario
            if gap == 0.0
            else scenario.with_release_times(
                generate_release_times(scenario.dag, gap, seed=5)
            )
        )
        result = SLRH1(SlrhConfig(weights=WEIGHTS)).map(sc)
        validate_schedule(result.schedule)
        arrival_rows.append(
            [f"{gap:.1f}s", result.t100, result.schedule.n_mapped,
             round(result.aet, 1), result.success]
        )
    latency_rows = []
    for latency in LATENCIES:
        result = SLRH1(
            SlrhConfig(weights=WEIGHTS, decision_latency_cycles=latency)
        ).map(scenario)
        validate_schedule(result.schedule)
        latency_rows.append(
            [latency, result.t100, result.schedule.n_mapped,
             round(result.aet, 1), result.success]
        )
    return arrival_rows, latency_rows


def test_arrivals_and_latency(benchmark, emit, scale):
    arrival_rows, latency_rows = once(benchmark, lambda: _run(scale))
    # Instantaneous arrivals reproduce the paper's setting; the slowest
    # trickle can only finish later (or fail).
    assert float(arrival_rows[-1][3]) >= float(arrival_rows[0][3]) - 1e-6
    # The horizon cliff: latency < H keeps the mapper alive, latency > H
    # (here 200 > H = 100) makes every candidate horizon-ineligible.
    by_latency = {r[0]: r for r in latency_rows}
    assert by_latency[90][2] > 0
    assert by_latency[200][2] == 0
    emit(
        "ext_arrivals",
        format_table(
            ["mean gap", "T100", "mapped", "AET", "ok"],
            arrival_rows,
            title=(
                f"Extension: Poisson subtask arrivals, SLRH-1 "
                f"({scale.name} scale; gap 0 = the paper's simplification)"
            ),
        )
        + "\n\n"
        + format_table(
            ["latency (cycles)", "T100", "mapped", "AET", "ok"],
            latency_rows,
            title="Extension: mapper decision latency, SLRH-1",
        ),
    )
