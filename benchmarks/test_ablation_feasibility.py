"""Ablation — the worst-case communication-energy reserve (§IV).

The SLRH feasibility rule reserves worst-case outgoing-comm energy for
every mapped subtask.  The paper notes communication energy "proved to be a
negligible factor"; this bench measures exactly how much the conservative
reserve costs (or protects) by running SLRH-1 with and without it.
"""

from conftest import once

from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig
from repro.experiments.reporting import format_table

WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)


def _run(scale):
    suite = scale.suite()
    rows = []
    for case in "ABC":
        scenario = suite.scenario(0, 0, case)
        with_reserve = SLRH1(SlrhConfig(weights=WEIGHTS, comm_reserve=True)).map(scenario)
        without = SLRH1(SlrhConfig(weights=WEIGHTS, comm_reserve=False)).map(scenario)
        rows.append(
            [case,
             with_reserve.t100, with_reserve.schedule.n_mapped,
             without.t100, without.schedule.n_mapped]
        )
    return rows


def test_comm_reserve_ablation(benchmark, emit, scale):
    rows = once(benchmark, lambda: _run(scale))
    for case, t_with, m_with, t_without, m_without in rows:
        # Comm energy is negligible by design, so the conservative reserve
        # must not cost more than a few mappings.
        assert abs(m_with - m_without) <= max(3, scale.n_tasks // 8)
    emit(
        "ablation_feasibility",
        format_table(
            ["case", "T100 (reserve)", "mapped (reserve)",
             "T100 (no reserve)", "mapped (no reserve)"],
            rows,
            title=(
                "Ablation: worst-case comm-energy reserve in the SLRH "
                f"feasibility rule ({scale.name} scale)\n"
                "paper: 'the use of the worst-case communications energy was "
                "not found to significantly affect the mapping process'"
            ),
        ),
    )
