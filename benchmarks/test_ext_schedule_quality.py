"""Extension bench — schedule-quality diagnostics per heuristic.

Beyond T100, how *tight* are the schedules each heuristic produces?
Reported per heuristic on the Case A scenario:

* **efficiency** — critical-path lower bound / achieved makespan
  (1.0 = provably time-optimal);
* **critical chain** — number of zero-slack assignments (long chains mean
  the schedule is serialization-dominated);
* **imbalance** — max/mean machine load.
"""

from conftest import once

from repro.analysis import compute_stats, critical_chain, efficiency
from repro.baselines.greedy import GreedyScheduler
from repro.baselines.lrnn import LrnnConfig, LrnnScheduler
from repro.baselines.maxmax import MaxMaxConfig, MaxMaxScheduler
from repro.baselines.minmin import MinMinScheduler
from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig
from repro.experiments.reporting import format_table
WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)


def _mappers():
    return [
        ("SLRH-1", SLRH1(SlrhConfig(weights=WEIGHTS))),
        ("Max-Max", MaxMaxScheduler(MaxMaxConfig(weights=WEIGHTS))),
        ("LRNN", LrnnScheduler(LrnnConfig(weights=WEIGHTS))),
        ("Min-Min", MinMinScheduler()),
        ("Greedy", GreedyScheduler()),
    ]


def _run(scale):
    scenario = scale.suite().scenario(0, 0, "A")
    rows = []
    for name, mapper in _mappers():
        result = mapper.map(scenario)
        if not result.complete:
            rows.append([name, "-", "-", "-", result.schedule.n_mapped])
            continue
        stats = compute_stats(result.schedule)
        rows.append(
            [name,
             round(efficiency(result.schedule), 3),
             len(critical_chain(result.schedule)),
             round(stats.imbalance, 2),
             result.schedule.n_mapped]
        )
    return rows


def test_schedule_quality(benchmark, emit, scale):
    rows = once(benchmark, lambda: _run(scale))
    for name, eff, chain, imbalance, mapped in rows:
        if eff != "-":
            assert 0.0 < eff <= 1.0 + 1e-9
            assert chain >= 1
    emit(
        "ext_schedule_quality",
        format_table(
            ["mapper", "efficiency", "critical chain", "imbalance", "mapped"],
            rows,
            title=(
                f"Extension: schedule-quality diagnostics, Case A "
                f"({scale.name} scale)"
            ),
        ),
    )
