"""Figure 4 — heuristic performance: number of primary versions mapped.

Paper shape: SLRH-1 ≈ Max-Max in Case A, both clearly above SLRH-3;
performance drops for everyone as machines are lost (Cases B, C).
"""

from conftest import once

from repro.experiments.figures import figure4_t100_comparison


def test_figure4_t100(benchmark, emit, scale):
    result = once(benchmark, lambda: figure4_t100_comparison(scale))
    slrh1_a = result.value("SLRH-1", "A")
    slrh3_a = result.value("SLRH-3", "A")
    # SLRH-1 is not worse than SLRH-3 with all machines present (paper:
    # SLRH-1 and Max-Max "significantly outperformed the SLRH-3 variant").
    assert slrh1_a >= slrh3_a - 1e-9
    # Machine loss hurts SLRH-1 (Cases B/C at or below Case A).
    assert result.value("SLRH-1", "C") <= slrh1_a + 1e-9
    emit("figure4", result.render())
