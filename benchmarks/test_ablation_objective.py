"""Ablation — AET-term semantics of the objective function.

DESIGN.md §5 pins the γ·AET/τ term to a *tent* shape (reward peaks at τ,
decays beyond).  This bench quantifies the alternatives on the same
scenarios:

* ``clamp`` — reward saturates at τ: nothing ever discourages overshoot;
* ``raw``  — the uninterpreted formula: overshoot is actively *rewarded*;
* ``negative`` — the sign the paper tried first and rejected: "very short
  AET solutions, but with correspondingly lower T100 values" (§IV).

Expected: under clamp/raw the static Max-Max drifts far past τ whenever
γ > 0 and loses its accepted region, while tent keeps it viable; negative
produces the paper's short-AET/low-T100 trade.
"""

from conftest import once

from repro.baselines.maxmax import MaxMaxConfig, MaxMaxScheduler
from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig
from repro.experiments.reporting import format_table

WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)


def _run_modes(scale):
    suite = scale.suite()
    scenario = suite.scenario(0, 0, "A")
    rows = []
    for mode in ("tent", "clamp", "raw", "negative"):
        slrh = SLRH1(SlrhConfig(weights=WEIGHTS, aet_mode=mode)).map(scenario)
        maxmax = MaxMaxScheduler(
            MaxMaxConfig(weights=WEIGHTS, aet_mode=mode)
        ).map(scenario)
        rows.append(
            [mode,
             slrh.t100, round(slrh.aet, 1), slrh.success,
             maxmax.t100, round(maxmax.aet, 1), maxmax.success]
        )
    return scenario, rows


def test_aet_mode_ablation(benchmark, emit, scale):
    scenario, rows = once(benchmark, lambda: _run_modes(scale))
    by_mode = {r[0]: r for r in rows}
    # Raw mode must never leave Max-Max with a *shorter* makespan than tent:
    # rewarding AET without bound can only stretch schedules.
    assert by_mode["raw"][5] >= by_mode["tent"][5] - 1e-6
    # The rejected negative sign compresses the SLRH makespan (§IV).
    assert by_mode["negative"][2] <= by_mode["tent"][2] + 1e-6
    emit(
        "ablation_objective",
        format_table(
            ["aet_mode", "SLRH1 T100", "SLRH1 AET", "SLRH1 ok",
             "MaxMax T100", "MaxMax AET", "MaxMax ok"],
            rows,
            title=(
                f"Ablation: AET-term semantics (tau={scenario.tau:.0f}, "
                f"{scale.name} scale)"
            ),
        ),
    )
