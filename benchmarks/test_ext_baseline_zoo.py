"""Extension bench — the full baseline zoo on the paper's three cases.

Beyond the paper's Max-Max, the HC literature's standard single-criterion
mappers (Min-Min, OLB, MET, greedy MCT) run on the same scenarios, showing
where the Lagrangian objective earns its complexity.
"""

from conftest import once

from repro.baselines.greedy import GreedyScheduler
from repro.baselines.lrnn import LrnnConfig, LrnnScheduler
from repro.baselines.maxmax import MaxMaxConfig, MaxMaxScheduler
from repro.baselines.minmin import MinMinScheduler
from repro.baselines.simple import MetScheduler, OlbScheduler
from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig
from repro.experiments.reporting import format_table
from repro.sim.validate import validate_schedule

WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)


def _mappers():
    return [
        ("SLRH-1", SLRH1(SlrhConfig(weights=WEIGHTS))),
        ("Max-Max", MaxMaxScheduler(MaxMaxConfig(weights=WEIGHTS))),
        ("LRNN", LrnnScheduler(LrnnConfig(weights=WEIGHTS))),
        ("Min-Min", MinMinScheduler()),
        ("Greedy", GreedyScheduler()),
        ("OLB", OlbScheduler()),
        ("MET", MetScheduler()),
    ]


def _run(scale):
    suite = scale.suite()
    rows = []
    for case in "ABC":
        scenario = suite.scenario(0, 0, case)
        for name, mapper in _mappers():
            result = mapper.map(scenario)
            validate_schedule(result.schedule)
            rows.append(
                [case, name, result.schedule.n_mapped, result.t100,
                 round(result.aet, 1), result.success,
                 round(result.heuristic_seconds, 4)]
            )
    return rows


def test_baseline_zoo(benchmark, emit, scale):
    rows = once(benchmark, lambda: _run(scale))
    # MET overloads the fastest machine: its makespan must be the worst (or
    # tied) among completing mappers in Case A.
    case_a = [r for r in rows if r[0] == "A" and r[2] == scale.n_tasks]
    if len(case_a) >= 2:
        met = next((r for r in case_a if r[1] == "MET"), None)
        if met is not None:
            assert met[4] >= min(r[4] for r in case_a) - 1e-6
    emit(
        "ext_baseline_zoo",
        format_table(
            ["case", "mapper", "mapped", "T100", "AET", "ok", "heuristic s"],
            rows,
            title=f"Extension: baseline zoo across cases ({scale.name} scale)",
        ),
    )
