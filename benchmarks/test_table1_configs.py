"""Tables 1 & 2 — grid configurations and machine parameters.

Pure constants in the paper; the bench verifies and prints them so the
regenerated report is complete.
"""

from conftest import once

from repro.experiments.reporting import format_table
from repro.experiments.tables import table1_configurations, table2_machine_parameters


def test_table1_configurations(benchmark, emit):
    rows = once(benchmark, table1_configurations)
    assert {r["case"]: (r["n_fast"], r["n_slow"]) for r in rows} == {
        "A": (2, 2),
        "B": (2, 1),
        "C": (1, 2),
    }
    emit(
        "table1",
        format_table(
            ["case", "# fast", "# slow"],
            [[r["case"], r["n_fast"], r["n_slow"]] for r in rows],
            title="Table 1. Simulation configurations (paper: identical)",
        ),
    )


def test_table2_machine_parameters(benchmark, emit):
    rows = once(benchmark, table2_machine_parameters)
    by_class = {r["class"]: r for r in rows}
    assert by_class["fast"]["B_energy_units"] == 580.0
    assert by_class["slow"]["E_units_per_s"] == 0.001
    emit(
        "table2",
        format_table(
            ["class", "B(j)", "C(j) u/s", "E(j) u/s", "BW Mbit/s"],
            [
                [r["class"], r["B_energy_units"], r["C_units_per_s"],
                 r["E_units_per_s"], r["BW_mbit_per_s"]]
                for r in rows
            ],
            title="Table 2. Machine parameters (paper: identical; reduced scales "
            "multiply B(j) by |T|/1024)",
        ),
    )
