"""Figure 6 — average heuristic execution time.

Paper shape: Max-Max's runtime is essentially constant across cases (it is
static); SLRH-3 is the slowest and most sensitive to machine loss; SLRH-1
is markedly cheaper than SLRH-3.  Absolute values are hardware- and
scale-dependent (the paper reports hundreds of seconds on Python 2.3.3 /
dual Xeon at |T| = 1024) — relative ordering is the reproduced quantity.
"""

from conftest import once

from repro.experiments.figures import figure6_execution_time


def test_figure6_execution_time(benchmark, emit, scale):
    result = once(benchmark, lambda: figure6_execution_time(scale))
    for case in "ABC":
        assert result.value("SLRH-1", case) > 0.0
        assert result.value("Max-Max", case) > 0.0
    # Max-Max's spread across cases stays within an order of magnitude
    # (the paper: "relatively constant").
    mm = [result.value("Max-Max", c) for c in "ABC"]
    assert max(mm) / min(mm) < 10.0
    emit("figure6", result.render())
