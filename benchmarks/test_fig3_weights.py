"""Figure 3 — sensitivity of the heuristics to the objective weights.

Paper shape: the optimal (α, β) for SLRH-1 and SLRH-3 cluster tightly and
track each other; Max-Max's optima scatter widely (requiring exhaustive
search); SLRH-2 rarely produces a successful mapping and was dropped from
the paper's plots.

This is the expensive §VII study; figures 4-7 reuse its cached result.
"""

from conftest import once

from repro.experiments.figures import figure3_weight_sensitivity


def test_figure3_weight_sensitivity(benchmark, emit, scale):
    result = once(benchmark, lambda: figure3_weight_sensitivity(scale))
    comparison = result.comparison
    # Every plotted heuristic found at least one accepted point per case.
    for heuristic in ("SLRH-1", "SLRH-3"):
        for case in "ABC":
            assert comparison.cell(heuristic, case).success_rate > 0.0, (
                f"{heuristic} found no accepted (alpha, beta) in case {case}"
            )
    emit("figure3", result.render())
    rate = result.slrh2_success_rate()
    if rate is not None:
        emit(
            "figure3_slrh2",
            f"SLRH-2 mapping success rate across cases: {rate:.2f} "
            "(paper: 'rarely produce a successful mapping' at |T|=1024; "
            "small pools at reduced scale blunt the stale-pool pathology)",
        )
