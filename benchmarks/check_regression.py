#!/usr/bin/env python
"""CI perf-regression gate: fail when the hot path got meaningfully slower.

Absolute wall-clock thresholds are useless in CI — runner speed varies by
2-3x between machines and even between runs on the same shared runner.
This gate therefore checks two machine-independent signal classes against a
checked-in baseline (``benchmarks/BENCH_regression.json``):

1. **Structural counters** (plan pairs computed, cache hits/misses, pools
   built, commits, ticks) are fully deterministic for a fixed scenario +
   heuristic, so they must match the baseline *exactly*.  A drifted
   counter means the algorithm changed shape — intended changes must
   regenerate the baseline with ``--update``.

2. **Self-normalised speed ratios.**  Each measurement runs the same
   mapping with the plan cache on and off (best of ``--repeats``); the
   on/off speedup divides machine speed out.  Two further ratios cover
   the kernel modes: rebuild/incremental (delta maintenance vs full
   rebuilds) and incremental/columnar (flat-array scoring vs the object
   pool), both measured on byte-identical mappings.  The gate fails when
   a measured speedup falls below ``baseline * (1 - tolerance)`` — with
   the default ``--tolerance 0.25`` that is the ">25% hot-path slowdown"
   contract.  Derived cache-hit rates are also checked (absolute drift
   <= 0.05), catching cache-effectiveness regressions that do not change
   the structural counters.

3. **The obs disabled-path budget** (also self-normalised): the same
   mapping runs interleaved with observability off and with a live
   in-memory :class:`repro.obs.spans.Tracer`.  Mapping bytes and
   structural counters must be identical (observability never steers the
   heuristic), and the disabled run must not be slower than
   ``enabled * (1 + OBS_BUDGET)`` — the disabled path is supposed to cost
   a flag check, so it can only lose to the enabled path when a guard is
   inverted (work done *only* when obs is off), which is exactly the
   regression the <2% budget from the obs PR forbids.  The
   ``obs-guarded-*`` lint rules enforce the guards statically; this
   checks them dynamically.

Usage::

    python benchmarks/check_regression.py              # gate against baseline
    python benchmarks/check_regression.py --update     # regenerate baseline
    python benchmarks/check_regression.py --out F.json # also write snapshot

Exit status 0 = within tolerance, 1 = regression (or missing baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script invocation: python benchmarks/check_...
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.exists() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.objective import Weights  # noqa: E402
from repro.core.slrh import SLRH1, SLRH3, SlrhConfig  # noqa: E402
from repro.heuristics import generate_named_scenario  # noqa: E402
from repro.io.serialization import canonical_json_bytes, mapping_to_dict  # noqa: E402
from repro.obs.spans import Tracer  # noqa: E402

SCHEMA = "repro.bench.regression/1"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_regression.json"

#: The workload: one generated scenario, two SLRH variants that stress the
#: planning hot path differently (SLRH-3 re-pools after every assignment).
N_TASKS = 64
SEED = 7
ALPHA, BETA = 0.5, 0.2
VARIANTS = {"slrh1": SLRH1, "slrh3": SLRH3}

#: Deterministic structural counters that must match the baseline exactly.
#: ``pool.reuse_hits`` / ``pool.invalidations`` are the incremental
#: kernel's delta rate — a drift means entry certificates changed shape.
EXACT_COUNTERS = (
    "plan.pairs",
    "plan.cache.pair_hit",
    "plan.cache.pair_miss",
    "plan.cache.comm_hit",
    "plan.cache.comm_miss",
    "pool.builds",
    "pool.members",
    "pool.reuse_hits",
    "pool.invalidations",
    "commit.count",
    "tick.count",
    "pool.empty_ticks",
)

#: Derived rates checked with an absolute tolerance.
RATE_TOLERANCE = 0.05

#: The obs PR's disabled-path budget: obs-off may cost at most this
#: fraction more than obs-on.  (Off is normally *faster*; losing to the
#: enabled path means a guard is inverted or the disabled path regressed.)
OBS_BUDGET = 0.02


def obs_budget_check(repeats: int = 3) -> tuple[dict, list[str]]:
    """Interleaved obs-off / obs-on A/B on SLRH-1; returns (doc, failures).

    Checks, in order of importance: the mapping bytes are identical with
    and without tracing, the structural counters are identical, and the
    disabled path meets :data:`OBS_BUDGET`.
    """
    scenario = generate_named_scenario(N_TASKS, SEED)
    weights = Weights.from_alpha_beta(ALPHA, BETA)
    failures: list[str] = []

    def one_run(traced: bool) -> tuple[float, bytes, dict, int]:
        scheduler = SLRH1(SlrhConfig(weights=weights, kernel="incremental"))
        tracer = Tracer() if traced else None
        started = time.perf_counter()
        result = scheduler.map(scenario, tracer=tracer)
        elapsed = time.perf_counter() - started
        counters = {
            k: (result.trace.perf or {}).get(k, 0.0) for k in EXACT_COUNTERS
        }
        spans = len(tracer.events) if tracer is not None else 0
        return elapsed, canonical_json_bytes(mapping_to_dict(result.schedule)), counters, spans

    off_best = on_best = float("inf")
    off_bytes = on_bytes = b""
    off_counters: dict = {}
    on_counters: dict = {}
    span_count = 0
    # Interleave A/B so frequency scaling and cache warmth hit both arms.
    for _ in range(repeats):
        off_s, off_bytes, off_counters, _ = one_run(traced=False)
        on_s, on_bytes, on_counters, span_count = one_run(traced=True)
        off_best = min(off_best, off_s)
        on_best = min(on_best, on_s)

    if off_bytes != on_bytes:
        failures.append(
            "obs: mapping bytes differ with tracing on vs off — "
            "observability is steering the heuristic"
        )
    if off_counters != on_counters:
        drift = {
            k: (off_counters.get(k), on_counters.get(k))
            for k in EXACT_COUNTERS
            if off_counters.get(k) != on_counters.get(k)
        }
        failures.append(
            f"obs: structural counters differ with tracing on vs off: {drift}"
        )
    if span_count == 0:
        failures.append(
            "obs: the enabled tracer recorded zero spans — the A/B is "
            "vacuous (did the span call sites move?)"
        )
    ceiling = on_best * (1.0 + OBS_BUDGET)
    if off_best > ceiling:
        failures.append(
            f"obs: disabled-path run ({off_best*1e3:.1f}ms) is more than "
            f"{OBS_BUDGET:.0%} slower than the traced run ({on_best*1e3:.1f}ms) "
            "— an obs guard is inverted or the disabled path regressed"
        )
    doc = {
        "off_seconds": round(off_best, 6),
        "on_seconds": round(on_best, 6),
        "off_over_on": round(off_best / on_best, 4) if on_best > 0 else 0.0,
        "spans": span_count,
        "budget": OBS_BUDGET,
        "mapping_identical": off_bytes == on_bytes,
        "counters_identical": off_counters == on_counters,
    }
    return doc, failures


def _one_map(
    scheduler_cls, scenario, weights, plan_cache: bool, kernel: str,
) -> tuple[float, dict, bytes]:
    """Wall seconds (plus perf snapshot and canonical mapping bytes) for
    one full map of *scenario*."""
    scheduler = scheduler_cls(
        SlrhConfig(weights=weights, plan_cache=plan_cache, kernel=kernel)
    )
    started = time.perf_counter()
    result = scheduler.map(scenario)
    elapsed = time.perf_counter() - started
    if not result.success:
        raise RuntimeError(
            f"{scheduler_cls.__name__} failed to map the gate scenario — "
            "the workload itself regressed"
        )
    payload = canonical_json_bytes(mapping_to_dict(result.schedule))
    return elapsed, result.trace.perf or {}, payload


def measure(repeats: int = 3) -> dict:
    """Run the gate workload and return the snapshot document."""
    scenario = generate_named_scenario(N_TASKS, SEED)
    weights = Weights.from_alpha_beta(ALPHA, BETA)
    variants: dict[str, dict] = {}
    for name, cls in VARIANTS.items():
        # The kernel mode is pinned (not left to $REPRO_KERNEL) so the
        # structural counters are a property of the code, not the runner.
        # The EXACT_COUNTERS contract applies to the incremental kernel:
        # the columnar kernel's fused replan supersedes the pair layer,
        # so its plan.* counters are covered by its own byte-identity
        # check plus the columnar_speedup ratio below.  The four arms
        # are interleaved within each repeat so frequency scaling and
        # cache warmth bias every arm equally — the gate compares
        # ratios, and block-sequential timing makes them flap.
        arms = {
            "cached": (True, "incremental"),
            "uncached": (False, "incremental"),
            "rebuild": (True, "rebuild"),
            "columnar": (True, "columnar"),
        }
        best = {arm: float("inf") for arm in arms}
        cached_perf: dict = {}
        cached_bytes = columnar_bytes = b""
        for _ in range(repeats):
            for arm, (plan_cache, kernel) in arms.items():
                elapsed, perf, payload = _one_map(
                    cls, scenario, weights, plan_cache, kernel
                )
                best[arm] = min(best[arm], elapsed)
                if arm == "cached":
                    cached_perf, cached_bytes = perf, payload
                elif arm == "columnar":
                    columnar_bytes = payload
        cached_s, uncached_s = best["cached"], best["uncached"]
        rebuild_s, columnar_s = best["rebuild"], best["columnar"]
        if columnar_bytes != cached_bytes:
            raise RuntimeError(
                f"{name}: columnar and incremental mappings differ on the "
                "gate scenario — the flat-array kernel is broken"
            )
        pair_lookups = cached_perf.get("plan.cache.pair_hit", 0.0) + cached_perf.get(
            "plan.cache.pair_miss", 0.0
        )
        variants[name] = {
            "cached_seconds": round(cached_s, 6),
            "uncached_seconds": round(uncached_s, 6),
            "rebuild_seconds": round(rebuild_s, 6),
            "columnar_seconds": round(columnar_s, 6),
            "cache_speedup": round(uncached_s / cached_s, 4) if cached_s > 0 else 0.0,
            "kernel_speedup": round(rebuild_s / cached_s, 4) if cached_s > 0 else 0.0,
            "columnar_speedup": round(cached_s / columnar_s, 4)
            if columnar_s > 0
            else 0.0,
            "counters": {
                k: cached_perf.get(k, 0.0) for k in EXACT_COUNTERS
            },
            "rates": {
                "pair_hit_rate": round(
                    cached_perf.get("plan.cache.pair_hit", 0.0) / pair_lookups, 6
                )
                if pair_lookups
                else 0.0,
            },
        }
    return {
        "schema": SCHEMA,
        "scenario": {"n_tasks": N_TASKS, "seed": SEED, "alpha": ALPHA, "beta": BETA},
        "repeats": repeats,
        "variants": variants,
    }


def compare(snapshot: dict, baseline: dict, tolerance: float) -> list[str]:
    """Every way *snapshot* regresses from *baseline* (empty = gate passes)."""
    failures: list[str] = []
    for name, base in baseline["variants"].items():
        fresh = snapshot["variants"].get(name)
        if fresh is None:
            failures.append(f"{name}: variant missing from snapshot")
            continue
        for counter, expected in base["counters"].items():
            got = fresh["counters"].get(counter)
            if got != expected:
                failures.append(
                    f"{name}: structural counter {counter} drifted: "
                    f"baseline {expected:g}, now {got:g} "
                    "(algorithm changed shape; regenerate with --update if intended)"
                )
        for rate, expected in base["rates"].items():
            got = fresh["rates"].get(rate, 0.0)
            if abs(got - expected) > RATE_TOLERANCE:
                failures.append(
                    f"{name}: {rate} drifted by {abs(got - expected):.3f} "
                    f"(baseline {expected:.3f}, now {got:.3f}, "
                    f"tolerance {RATE_TOLERANCE})"
                )
        floor = base["cache_speedup"] * (1.0 - tolerance)
        if fresh["cache_speedup"] < floor:
            failures.append(
                f"{name}: plan-cache speedup regressed: baseline "
                f"{base['cache_speedup']:.2f}x, now {fresh['cache_speedup']:.2f}x "
                f"(floor {floor:.2f}x = baseline - {tolerance:.0%}) — "
                "the hot path got slower relative to the uncached path"
            )
        base_kernel = base.get("kernel_speedup")
        if base_kernel is not None:
            floor = base_kernel * (1.0 - tolerance)
            if fresh.get("kernel_speedup", 0.0) < floor:
                failures.append(
                    f"{name}: incremental-kernel speedup regressed: baseline "
                    f"{base_kernel:.2f}x, now {fresh.get('kernel_speedup', 0.0):.2f}x "
                    f"(floor {floor:.2f}x = baseline - {tolerance:.0%}) — "
                    "delta maintenance got slower relative to rebuilding"
                )
        base_columnar = base.get("columnar_speedup")
        if base_columnar is not None:
            floor = base_columnar * (1.0 - tolerance)
            if fresh.get("columnar_speedup", 0.0) < floor:
                failures.append(
                    f"{name}: columnar speedup regressed: baseline "
                    f"{base_columnar:.2f}x, now "
                    f"{fresh.get('columnar_speedup', 0.0):.2f}x "
                    f"(floor {floor:.2f}x = baseline - {tolerance:.0%}) — "
                    "flat-array scoring got slower relative to the object pool"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/check_regression.py",
        description="Gate hot-path performance against the checked-in baseline.",
    )
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH),
        help=f"baseline JSON (default: {BASELINE_PATH.name})",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="measure and overwrite the baseline instead of gating",
    )
    parser.add_argument(
        "--out", default=None,
        help="also write the fresh snapshot JSON here",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per configuration (best-of; default 3)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional speedup loss before failing (default 0.25)",
    )
    args = parser.parse_args(argv)

    snapshot = measure(repeats=max(1, args.repeats))
    obs_doc, obs_failures = obs_budget_check(repeats=max(1, args.repeats))
    snapshot["obs_budget"] = obs_doc
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"snapshot written to {out}")

    baseline_path = Path(args.baseline)
    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {baseline_path}")
        return 0
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run with --update first",
              file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("schema") != SCHEMA:
        print(f"baseline schema {baseline.get('schema')!r} != {SCHEMA!r}; "
              "regenerate with --update", file=sys.stderr)
        return 1

    failures = compare(snapshot, baseline, args.tolerance) + obs_failures
    for name, fresh in sorted(snapshot["variants"].items()):
        base = baseline["variants"].get(name, {})
        print(
            f"{name}: cached {fresh['cached_seconds']*1e3:7.1f}ms  "
            f"uncached {fresh['uncached_seconds']*1e3:7.1f}ms  "
            f"columnar {fresh['columnar_seconds']*1e3:7.1f}ms  "
            f"speedup {fresh['cache_speedup']:.2f}x "
            f"(baseline {base.get('cache_speedup', float('nan')):.2f}x)  "
            f"columnar {fresh['columnar_speedup']:.2f}x "
            f"(baseline {base.get('columnar_speedup', float('nan')):.2f}x)"
        )
    print(
        f"obs A/B: off {obs_doc['off_seconds']*1e3:7.1f}ms  "
        f"on {obs_doc['on_seconds']*1e3:7.1f}ms  "
        f"off/on {obs_doc['off_over_on']:.3f} "
        f"(budget <= {1.0 + OBS_BUDGET:.2f}, {obs_doc['spans']} spans)"
    )
    if failures:
        print(f"\nPERF REGRESSION ({len(failures)} failure(s)):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
