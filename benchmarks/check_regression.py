#!/usr/bin/env python
"""CI perf-regression gate: fail when the hot path got meaningfully slower.

Absolute wall-clock thresholds are useless in CI — runner speed varies by
2-3x between machines and even between runs on the same shared runner.
This gate therefore checks two machine-independent signal classes against a
checked-in baseline (``benchmarks/BENCH_regression.json``):

1. **Structural counters** (plan pairs computed, cache hits/misses, pools
   built, commits, ticks) are fully deterministic for a fixed scenario +
   heuristic, so they must match the baseline *exactly*.  A drifted
   counter means the algorithm changed shape — intended changes must
   regenerate the baseline with ``--update``.

2. **Self-normalised speed ratios.**  Each measurement runs the same
   mapping with the plan cache on and off (best of ``--repeats``); the
   on/off speedup divides machine speed out.  The gate fails when a
   measured speedup falls below ``baseline * (1 - tolerance)`` — with the
   default ``--tolerance 0.25`` that is the ">25% hot-path slowdown"
   contract.  Derived cache-hit rates are also checked (absolute drift
   <= 0.05), catching cache-effectiveness regressions that do not change
   the structural counters.

Usage::

    python benchmarks/check_regression.py              # gate against baseline
    python benchmarks/check_regression.py --update     # regenerate baseline
    python benchmarks/check_regression.py --out F.json # also write snapshot

Exit status 0 = within tolerance, 1 = regression (or missing baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script invocation: python benchmarks/check_...
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.exists() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.objective import Weights  # noqa: E402
from repro.core.slrh import SLRH1, SLRH3, SlrhConfig  # noqa: E402
from repro.heuristics import generate_named_scenario  # noqa: E402

SCHEMA = "repro.bench.regression/1"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_regression.json"

#: The workload: one generated scenario, two SLRH variants that stress the
#: planning hot path differently (SLRH-3 re-pools after every assignment).
N_TASKS = 64
SEED = 7
ALPHA, BETA = 0.5, 0.2
VARIANTS = {"slrh1": SLRH1, "slrh3": SLRH3}

#: Deterministic structural counters that must match the baseline exactly.
#: ``pool.reuse_hits`` / ``pool.invalidations`` are the incremental
#: kernel's delta rate — a drift means entry certificates changed shape.
EXACT_COUNTERS = (
    "plan.pairs",
    "plan.cache.pair_hit",
    "plan.cache.pair_miss",
    "plan.cache.comm_hit",
    "plan.cache.comm_miss",
    "pool.builds",
    "pool.members",
    "pool.reuse_hits",
    "pool.invalidations",
    "commit.count",
    "tick.count",
    "pool.empty_ticks",
)

#: Derived rates checked with an absolute tolerance.
RATE_TOLERANCE = 0.05


def _best_seconds(
    scheduler_cls, scenario, weights, plan_cache: bool, repeats: int,
    kernel: str | None = None,
) -> tuple[float, dict]:
    """Best-of-*repeats* wall seconds (and last perf snapshot) for one
    variant with the plan cache on or off."""
    best = float("inf")
    perf: dict = {}
    for _ in range(repeats):
        scheduler = scheduler_cls(
            SlrhConfig(weights=weights, plan_cache=plan_cache, kernel=kernel)
        )
        started = time.perf_counter()
        result = scheduler.map(scenario)
        best = min(best, time.perf_counter() - started)
        perf = result.trace.perf or {}
        if not result.success:
            raise RuntimeError(
                f"{scheduler_cls.__name__} failed to map the gate scenario — "
                "the workload itself regressed"
            )
    return best, perf


def measure(repeats: int = 3) -> dict:
    """Run the gate workload and return the snapshot document."""
    scenario = generate_named_scenario(N_TASKS, SEED)
    weights = Weights.from_alpha_beta(ALPHA, BETA)
    variants: dict[str, dict] = {}
    for name, cls in VARIANTS.items():
        # The kernel mode is pinned (not left to $REPRO_KERNEL) so the
        # structural counters are a property of the code, not the runner.
        cached_s, cached_perf = _best_seconds(
            cls, scenario, weights, True, repeats, kernel="incremental"
        )
        uncached_s, _ = _best_seconds(
            cls, scenario, weights, False, repeats, kernel="incremental"
        )
        rebuild_s, _ = _best_seconds(
            cls, scenario, weights, True, repeats, kernel="rebuild"
        )
        pair_lookups = cached_perf.get("plan.cache.pair_hit", 0.0) + cached_perf.get(
            "plan.cache.pair_miss", 0.0
        )
        variants[name] = {
            "cached_seconds": round(cached_s, 6),
            "uncached_seconds": round(uncached_s, 6),
            "rebuild_seconds": round(rebuild_s, 6),
            "cache_speedup": round(uncached_s / cached_s, 4) if cached_s > 0 else 0.0,
            "kernel_speedup": round(rebuild_s / cached_s, 4) if cached_s > 0 else 0.0,
            "counters": {
                k: cached_perf.get(k, 0.0) for k in EXACT_COUNTERS
            },
            "rates": {
                "pair_hit_rate": round(
                    cached_perf.get("plan.cache.pair_hit", 0.0) / pair_lookups, 6
                )
                if pair_lookups
                else 0.0,
            },
        }
    return {
        "schema": SCHEMA,
        "scenario": {"n_tasks": N_TASKS, "seed": SEED, "alpha": ALPHA, "beta": BETA},
        "repeats": repeats,
        "variants": variants,
    }


def compare(snapshot: dict, baseline: dict, tolerance: float) -> list[str]:
    """Every way *snapshot* regresses from *baseline* (empty = gate passes)."""
    failures: list[str] = []
    for name, base in baseline["variants"].items():
        fresh = snapshot["variants"].get(name)
        if fresh is None:
            failures.append(f"{name}: variant missing from snapshot")
            continue
        for counter, expected in base["counters"].items():
            got = fresh["counters"].get(counter)
            if got != expected:
                failures.append(
                    f"{name}: structural counter {counter} drifted: "
                    f"baseline {expected:g}, now {got:g} "
                    "(algorithm changed shape; regenerate with --update if intended)"
                )
        for rate, expected in base["rates"].items():
            got = fresh["rates"].get(rate, 0.0)
            if abs(got - expected) > RATE_TOLERANCE:
                failures.append(
                    f"{name}: {rate} drifted by {abs(got - expected):.3f} "
                    f"(baseline {expected:.3f}, now {got:.3f}, "
                    f"tolerance {RATE_TOLERANCE})"
                )
        floor = base["cache_speedup"] * (1.0 - tolerance)
        if fresh["cache_speedup"] < floor:
            failures.append(
                f"{name}: plan-cache speedup regressed: baseline "
                f"{base['cache_speedup']:.2f}x, now {fresh['cache_speedup']:.2f}x "
                f"(floor {floor:.2f}x = baseline - {tolerance:.0%}) — "
                "the hot path got slower relative to the uncached path"
            )
        base_kernel = base.get("kernel_speedup")
        if base_kernel is not None:
            floor = base_kernel * (1.0 - tolerance)
            if fresh.get("kernel_speedup", 0.0) < floor:
                failures.append(
                    f"{name}: incremental-kernel speedup regressed: baseline "
                    f"{base_kernel:.2f}x, now {fresh.get('kernel_speedup', 0.0):.2f}x "
                    f"(floor {floor:.2f}x = baseline - {tolerance:.0%}) — "
                    "delta maintenance got slower relative to rebuilding"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/check_regression.py",
        description="Gate hot-path performance against the checked-in baseline.",
    )
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH),
        help=f"baseline JSON (default: {BASELINE_PATH.name})",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="measure and overwrite the baseline instead of gating",
    )
    parser.add_argument(
        "--out", default=None,
        help="also write the fresh snapshot JSON here",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per configuration (best-of; default 3)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional speedup loss before failing (default 0.25)",
    )
    args = parser.parse_args(argv)

    snapshot = measure(repeats=max(1, args.repeats))
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"snapshot written to {out}")

    baseline_path = Path(args.baseline)
    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {baseline_path}")
        return 0
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run with --update first",
              file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("schema") != SCHEMA:
        print(f"baseline schema {baseline.get('schema')!r} != {SCHEMA!r}; "
              "regenerate with --update", file=sys.stderr)
        return 1

    failures = compare(snapshot, baseline, args.tolerance)
    for name, fresh in sorted(snapshot["variants"].items()):
        base = baseline["variants"].get(name, {})
        print(
            f"{name}: cached {fresh['cached_seconds']*1e3:7.1f}ms  "
            f"uncached {fresh['uncached_seconds']*1e3:7.1f}ms  "
            f"speedup {fresh['cache_speedup']:.2f}x "
            f"(baseline {base.get('cache_speedup', float('nan')):.2f}x)"
        )
    if failures:
        print(f"\nPERF REGRESSION ({len(failures)} failure(s)):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
