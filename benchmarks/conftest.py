"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports (run with ``-s`` to see them inline;
they are also written to ``benchmarks/out/``).  The study size follows
``REPRO_SCALE`` (smoke / small / medium / paper); the default is the
seconds-scale ``smoke`` preset so `pytest benchmarks/ --benchmark-only`
finishes quickly.  EXPERIMENTS.md records small/medium-scale outputs
against the paper's numbers.

Figures 3-7 share one §VII weight-optimisation study
(:func:`repro.experiments.comparison.run_comparison`, memoised per scale):
whichever figure benchmark runs first pays the full cost; the rest read the
cache and time near zero.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.scale import SMOKE_SCALE, scale_from_env

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def scale():
    return scale_from_env(default=SMOKE_SCALE)


@pytest.fixture(scope="session")
def emit():
    """Print a rendered artefact and persist it under benchmarks/out/."""

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


def once(benchmark, fn):
    """Run *fn* exactly once under the benchmark timer.

    Experiment drivers are full studies (many heuristic runs), not
    microbenchmarks — repeating them for statistics would multiply minutes
    of work for no insight, so every driver bench uses a single round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
