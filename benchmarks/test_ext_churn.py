"""Extension bench — grid churn (loss + rejoin) vs permanent loss.

Quantifies what a machine's *return* is worth: the same loss event with and
without a later rejoin, against the uninterrupted baseline.
"""

from conftest import once

from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig
from repro.experiments.reporting import format_table
from repro.sim.churn import ChurnEvent, run_with_churn
from repro.sim.validate import validate_schedule

WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)


def _run(scale):
    suite = scale.suite()
    scenario = suite.scenario(0, 0, "A")
    scheduler = SLRH1(SlrhConfig(weights=WEIGHTS))
    quarter = int(scenario.tau / 4 / 0.1)

    baseline = run_with_churn(scenario, scheduler, [])
    lost = run_with_churn(
        scenario, scheduler, [ChurnEvent(quarter, 1, "loss")]
    )
    returned = run_with_churn(
        scenario, scheduler,
        [ChurnEvent(quarter, 1, "loss"), ChurnEvent(2 * quarter, 1, "join")],
    )
    rows = []
    for label, out in (
        ("no churn", baseline),
        ("loss only", lost),
        ("loss + rejoin", returned),
    ):
        validate_schedule(out.final.schedule)
        rows.append(
            [label, out.final.schedule.n_mapped, out.final.t100,
             round(out.final.aet, 1), out.final.complete,
             out.total_rolled_back]
        )
    return rows


def test_churn_timeline(benchmark, emit, scale):
    rows = once(benchmark, lambda: _run(scale))
    by_label = {r[0]: r for r in rows}
    # A rejoin can only help (or match) the permanent loss.
    assert by_label["loss + rejoin"][1] >= by_label["loss only"][1]
    emit(
        "ext_churn",
        format_table(
            ["timeline", "mapped", "T100", "AET", "complete", "rolled back"],
            rows,
            title=(
                "Extension: grid churn — fast-1 lost at tau/4, optionally "
                f"rejoining at tau/2 ({scale.name} scale)"
            ),
        ),
    )
