"""Extension bench — dynamic machine loss and on-the-fly re-mapping.

The ad hoc scenario motivating the paper (§I): a machine vanishes mid-run;
the SLRH rolls back unrecoverable work and re-maps on the surviving grid.
Reported: survivors vs invalidated work, T100 retained, and the static
comparison point (running SLRH-1 on the reduced grid from scratch, i.e.
perfect foreknowledge of the loss).
"""

from conftest import once

from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig
from repro.experiments.reporting import format_table
from repro.sim.engine import run_with_machine_loss
from repro.sim.validate import validate_schedule

WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)


def _run(scale):
    suite = scale.suite()
    scenario = suite.scenario(0, 0, "A")
    scheduler = SLRH1(SlrhConfig(weights=WEIGHTS))
    rows = []
    outcomes = []
    loss_cycle = int(scenario.tau / 4 / 0.1)  # a quarter into the run
    for lost in (1, scenario.n_machines - 1):  # one fast, one slow machine
        out = run_with_machine_loss(scenario, scheduler, lost, loss_cycle)
        validate_schedule(out.final.schedule)
        fresh = scheduler.map(out.reduced_scenario)
        rows.append(
            [scenario.grid[lost].name,
             len(out.survivors), len(out.invalidated),
             out.initial.t100, out.final.t100, out.final.complete,
             fresh.t100]
        )
        outcomes.append(out)
    return rows, outcomes


def test_machine_loss_remapping(benchmark, emit, scale):
    rows, outcomes = once(benchmark, lambda: _run(scale))
    for out in outcomes:
        # Rollback accounting must partition the original assignments.
        total = len(out.survivors) + len(out.invalidated)
        assert total == len(out.initial.schedule.assignments)
    emit(
        "ext_machine_loss",
        format_table(
            ["lost machine", "survivors", "invalidated",
             "T100 before", "T100 after", "complete after",
             "T100 fresh-on-reduced"],
            rows,
            title=(
                "Extension: mid-run machine loss with SLRH re-mapping "
                f"({scale.name} scale, loss at tau/4)"
            ),
        ),
    )
