"""The paper's H (time-horizon) claim, §VII.

"Similar analyses were performed for the SLRH time horizon, H. ... the
impact of H on both T100 and execution time was found to be negligible."
This bench reproduces the T100 half of that finding exactly: a 40× sweep
of H around the paper's default (100 cycles) leaves T100 within a small
band.  Runtime agreement is partial at reduced scale: once H grows past a
task's execution time, a machine can accept its *next* subtask before
going idle, cutting the tick count (and hence runtime) by several × —
visible here because reduced-τ runs have few ticks to begin with, whereas
at the paper's τ = 34 075 s the effect washes out.
"""

from conftest import once

from repro.core.objective import Weights
from repro.core.slrh import SLRH1
from repro.experiments.reporting import format_table
from repro.tuning.sweeps import sweep_horizon

WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)
H_VALUES = (25, 50, 100, 250, 1000)


def _run(scale):
    scenario = scale.suite().scenario(0, 0, "A")
    return sweep_horizon(SLRH1, scenario, WEIGHTS, values=H_VALUES)


def test_horizon_negligible(benchmark, emit, scale):
    points = once(benchmark, lambda: _run(scale))
    t100s = [p.t100 for p in points]
    times = [p.heuristic_seconds for p in points]
    # The paper's claim, asserted on T100: at most a small band across a
    # 40x H range.  Runtime stays within an order of magnitude (see module
    # docstring for the reduced-scale caveat).
    assert max(t100s) - min(t100s) <= max(3, scale.n_tasks // 6)
    assert max(times) / min(times) < 10.0
    emit(
        "ext_horizon",
        format_table(
            ["H (cycles)", "T100", "mapped", "heuristic s", "ok"],
            [[p.value, p.t100, p.mapped, round(p.heuristic_seconds, 4), p.success]
             for p in points],
            title=(
                f"Horizon sweep, SLRH-1 ({scale.name} scale) — paper: impact "
                "of H on T100 and execution time 'found to be negligible'"
            ),
        ),
    )
