#!/usr/bin/env python
"""Generate ``BENCH_kernel.json``: columnar vs incremental vs rebuild.

Measures, for each SLRH variant on the 240-task comparison workload (the
same workload ``BENCH_plan_cache.json`` was measured on), the best-of-N
wall time of a full ``map()`` under the three kernel modes:

* ``columnar`` — flat-array candidate scoring over the delta-maintained
  pool (the default path, ``REPRO_KERNEL=columnar``);
* ``incremental`` — delta-maintained object pools without the flat
  columns (``REPRO_KERNEL=incremental``);
* ``rebuild`` — from-scratch pool construction per (tick, machine), the
  differential oracle behind ``REPRO_KERNEL=rebuild``.

Mode runs are interleaved within each repeat so frequency scaling and
cache warmth hit every mode equally.  Before timing anything it asserts
byte-identity of all three modes' mappings on the measured scenario — a
benchmark of a wrong answer is worse than no benchmark.  Two acceptance
criteria are recorded in the document and enforced with exit status 1
when missed at the 240-task scale: aggregate mean rebuild/incremental
speedup >= 1.5x, and per-variant incremental/columnar speedup >= 1.5x.

Usage::

    python benchmarks/bench_kernel.py                 # write BENCH_kernel.json
    python benchmarks/bench_kernel.py --out F.json    # write elsewhere
    python benchmarks/bench_kernel.py --n-tasks 64 --repeats 2   # quick look
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script invocation: python benchmarks/bench_...
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.exists() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.kernel import KERNEL_MODES  # noqa: E402
from repro.core.objective import Weights  # noqa: E402
from repro.core.slrh import SLRH_VARIANTS, SlrhConfig  # noqa: E402
from repro.io.serialization import canonical_mapping_bytes  # noqa: E402
from repro.workload.scenario import paper_scaled_suite  # noqa: E402

SCHEMA = "repro.bench/1"
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
CRITERION_SPEEDUP = 1.5
#: Per-variant incremental/columnar floor at the 240-task scale.
CRITERION_COLUMNAR = 1.5

ALPHA, BETA = 0.5, 0.2


def _one_map_seconds(variant, scenario, weights, mode: str):
    """Wall seconds for one full map, plus the run's canonical mapping
    bytes and perf snapshot."""
    scheduler = SLRH_VARIANTS[variant](
        SlrhConfig(weights=weights, kernel=mode)
    )
    start = time.perf_counter()
    result = scheduler.map(scenario)
    elapsed = time.perf_counter() - start
    return elapsed, canonical_mapping_bytes(result.schedule), result.trace.perf


def measure(n_tasks: int, repeats: int, seed: int) -> dict:
    suite = paper_scaled_suite(n_tasks, n_etc=1, n_dag=1, seed=seed)
    scenario = suite.scenario(0, 0, "A")
    weights = Weights.from_alpha_beta(ALPHA, BETA)

    per_heuristic: dict[str, dict] = {}
    speedups: list[float] = []
    columnar_speedups: dict[str, float] = {}
    for variant, cls in SLRH_VARIANTS.items():
        timings = {mode: float("inf") for mode in KERNEL_MODES}
        payloads: dict[str, bytes] = {}
        perfs: dict[str, dict] = {}
        # Interleave the modes within each repeat: frequency scaling and
        # cache warmth then bias every mode equally, keeping the ratios
        # (the quantity the criteria gate on) stable on noisy runners.
        for _ in range(repeats):
            for mode in KERNEL_MODES:
                elapsed, payloads[mode], perfs[mode] = _one_map_seconds(
                    variant, scenario, weights, mode
                )
                timings[mode] = min(timings[mode], elapsed)
        for mode in KERNEL_MODES:
            if payloads[mode] != payloads["rebuild"]:
                raise SystemExit(
                    f"{cls.name}: {mode} and rebuild mappings differ — "
                    "refusing to benchmark a broken kernel"
                )
        speedup = round(timings["rebuild"] / timings["incremental"], 3)
        speedups.append(speedup)
        columnar_speedup = round(
            timings["incremental"] / timings["columnar"], 3
        )
        columnar_speedups[cls.name] = columnar_speedup
        inc_perf = perfs["incremental"]
        reuse = inc_perf.get("pool.reuse_hits", 0.0)
        invalidated = inc_perf.get("pool.invalidations", 0.0)
        per_heuristic[cls.name] = {
            "columnar_best_seconds": round(timings["columnar"], 4),
            "incremental_best_seconds": round(timings["incremental"], 4),
            "rebuild_best_seconds": round(timings["rebuild"], 4),
            "speedup": speedup,
            "columnar_speedup": columnar_speedup,
            "pool_reuse_hits": reuse,
            "pool_invalidations": invalidated,
            "pool_reuse_rate": round(reuse / (reuse + invalidated), 4)
            if reuse + invalidated
            else 0.0,
        }
        print(
            f"{cls.name}: rebuild {timings['rebuild']:.3f}s -> "
            f"incremental {timings['incremental']:.3f}s ({speedup:.2f}x) -> "
            f"columnar {timings['columnar']:.3f}s ({columnar_speedup:.2f}x, "
            f"reuse rate {per_heuristic[cls.name]['pool_reuse_rate']:.0%})"
        )

    aggregate = round(sum(speedups) / len(speedups), 3)
    return {
        "schema": SCHEMA,
        "benchmark": "kernel",
        "date": datetime.date.today().isoformat(),
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "workload": {
            "suite": f"paper_scaled_suite(n_tasks={n_tasks}, n_etc=1, "
            f"n_dag=1, seed={seed})",
            "scenario": "(etc=0, dag=0, case='A')",
            "weights": f"Weights.from_alpha_beta({ALPHA}, {BETA})",
            "timing": f"best of {repeats} full map() calls per kernel mode",
        },
        "kernel_speedup": {
            "per_heuristic": per_heuristic,
            "aggregate_mean": aggregate,
            "criterion": f">= {CRITERION_SPEEDUP}x aggregate at the "
            f"{n_tasks}-task scale, byte-identical mappings",
            "columnar_criterion": f"incremental/columnar >= "
            f"{CRITERION_COLUMNAR}x per SLRH variant at the "
            f"{n_tasks}-task scale, byte-identical mappings",
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--n-tasks", type=int, default=240)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    doc = measure(args.n_tasks, args.repeats, args.seed)
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    aggregate = doc["kernel_speedup"]["aggregate_mean"]
    print(f"aggregate mean speedup {aggregate:.2f}x -> {args.out}")
    failed = False
    if args.n_tasks >= 240 and aggregate < CRITERION_SPEEDUP:
        print(
            f"FAIL: aggregate {aggregate:.2f}x below the "
            f"{CRITERION_SPEEDUP}x criterion",
            file=sys.stderr,
        )
        failed = True
    if args.n_tasks >= 240:
        for name, entry in doc["kernel_speedup"]["per_heuristic"].items():
            if entry["columnar_speedup"] < CRITERION_COLUMNAR:
                print(
                    f"FAIL: {name} columnar speedup "
                    f"{entry['columnar_speedup']:.2f}x below the "
                    f"{CRITERION_COLUMNAR}x criterion",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
