"""Table 3 — average minimum relative speed MR(j) per case.

Paper values (|T| = 1024, their ETC matrices): fast-1 ≈ 0.26-0.28,
slow ≈ 1.55-1.74.  Our CVB generator reproduces the shape — fast machine
well below 1, slow machines well above 1 — with somewhat higher slow-MR
(one-parameter gamma speedups cannot match both tails simultaneously; see
EXPERIMENTS.md).
"""

from conftest import once

from repro.experiments.reporting import format_table
from repro.experiments.tables import table3_min_relative_speed


def test_table3_min_relative_speed(benchmark, emit, scale):
    stats = once(benchmark, lambda: table3_min_relative_speed(scale))
    for s in stats:
        if "fast" in s.machine:
            assert s.mean < 1.0, "fast machines must beat the reference on some task"
        else:
            assert s.mean > 1.0, "slow machines must be slower than the reference"
    emit(
        "table3",
        format_table(
            ["case", "machine", "mean MR", "std"],
            [[s.case, s.machine, s.mean, s.std] for s in stats],
            title=(
                f"Table 3. Average minimum relative speed ({scale.name} scale, "
                f"{scale.n_etc} ETC matrices)\n"
                "paper: fast-1 0.26-0.28, slow 1.55-1.74"
            ),
        ),
    )
