"""Extension bench — ETC consistency classes ([AlS00] taxonomy).

The paper's CVB matrices are inconsistent-with-class-structure; the wider
taxonomy asks how heuristics fare when machine orderings are globally
consistent vs fully scrambled.  Consistent matrices concentrate the
minimum-ETC column on one machine, which punishes myopic mappers (MET);
the SLRH's load-aware pool ordering should degrade more gracefully.
"""

from conftest import once

import numpy as np

from repro.baselines.simple import MetScheduler
from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig
from repro.experiments.reporting import format_table
from repro.sim.validate import validate_schedule
from repro.workload.etc import Consistency, shape_consistency
from repro.workload.scenario import Scenario

WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)


def _run(scale):
    base = scale.suite().scenario(0, 0, "A")
    rows = []
    for consistency in Consistency:
        etc = shape_consistency(base.etc, consistency, seed=0)
        scenario = Scenario(
            grid=base.grid,
            etc=np.ascontiguousarray(etc),
            dag=base.dag,
            data_sizes=base.data_sizes,
            tau=base.tau,
            name=f"{base.name}-{consistency.value}",
        )
        slrh = SLRH1(SlrhConfig(weights=WEIGHTS)).map(scenario)
        met = MetScheduler().map(scenario)
        validate_schedule(slrh.schedule)
        validate_schedule(met.schedule)
        rows.append(
            [consistency.value,
             slrh.t100, slrh.schedule.n_mapped, round(slrh.aet, 1),
             met.t100, met.schedule.n_mapped, round(met.aet, 1)]
        )
    return rows


def test_consistency_classes(benchmark, emit, scale):
    rows = once(benchmark, lambda: _run(scale))
    assert len(rows) == 3
    emit(
        "ext_consistency",
        format_table(
            ["consistency", "SLRH1 T100", "SLRH1 mapped", "SLRH1 AET",
             "MET T100", "MET mapped", "MET AET"],
            rows,
            title=f"Extension: ETC consistency classes ({scale.name} scale)",
        ),
    )
