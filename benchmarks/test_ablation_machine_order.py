"""Ablation — machine scan order in the SLRH tick loop.

§IV: "The machines were checked in simple numerical order."  This gives
machine 0 (a fast machine) perpetual first pick of the candidate pool.
The ablation compares that choice against battery-first and round-robin
scan orders on all three cases.
"""

from conftest import once

from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig
from repro.experiments.reporting import format_table
from repro.sim.validate import validate_schedule

WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)
ORDERS = ("index", "battery", "round_robin")


def _run(scale):
    suite = scale.suite()
    rows = []
    for case in "ABC":
        scenario = suite.scenario(0, 0, case)
        for order in ORDERS:
            result = SLRH1(
                SlrhConfig(weights=WEIGHTS, machine_order=order)
            ).map(scenario)
            validate_schedule(result.schedule)
            rows.append(
                [case, order, result.t100, result.schedule.n_mapped,
                 round(result.aet, 1), result.success]
            )
    return rows


def test_machine_order_ablation(benchmark, emit, scale):
    rows = once(benchmark, lambda: _run(scale))
    assert len(rows) == 9
    emit(
        "ablation_machine_order",
        format_table(
            ["case", "scan order", "T100", "mapped", "AET", "ok"],
            rows,
            title=(
                f"Ablation: SLRH machine scan order ({scale.name} scale; "
                "the paper uses 'simple numerical order')"
            ),
        ),
    )
