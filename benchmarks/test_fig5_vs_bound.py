"""Figure 5 — heuristic performance vs the calculated upper bound.

Paper shape: SLRH-1 above 60 % of the bound in Case A and slightly ahead of
Max-Max there; SLRH-3 clearly poorer in Case A; ratios drop with machine
loss roughly independently of the lost machine's type.
"""

from conftest import once

from repro.experiments.figures import figure5_vs_upper_bound


def test_figure5_vs_bound(benchmark, emit, scale):
    result = once(benchmark, lambda: figure5_vs_upper_bound(scale))
    ratio = result.value("SLRH-1", "A")
    assert 0.0 <= ratio <= 1.0 + 1e-9
    # The paper's headline: SLRH-1 achieves better than 60 % of the bound in
    # Case A.  (Reduced scales typically land higher.)
    assert ratio > 0.6
    assert result.value("SLRH-1", "A") >= result.value("SLRH-3", "A") - 1e-9
    emit("figure5", result.render())
