"""Microbenchmarks — single-mapping throughput of each heuristic.

Unlike the figure benches (full studies run once), these measure one
``map()`` call with proper repetition so pytest-benchmark statistics are
meaningful.  They are the reduced-scale analogue of Figure 6's absolute
numbers.
"""

import pytest

from repro.baselines.greedy import GreedyScheduler
from repro.baselines.maxmax import MaxMaxConfig, MaxMaxScheduler
from repro.baselines.minmin import MinMinScheduler
from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SLRH2, SLRH3, SlrhConfig

WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)


@pytest.fixture(scope="module")
def scenario(scale):
    return scale.suite().scenario(0, 0, "A")


CACHE_IDS = {True: "cache-on", False: "cache-off"}


@pytest.mark.parametrize("plan_cache", [True, False], ids=CACHE_IDS.get)
@pytest.mark.parametrize("cls", [SLRH1, SLRH2, SLRH3], ids=lambda c: c.name)
def test_slrh_variant_throughput(benchmark, scenario, cls, plan_cache):
    scheduler = cls(SlrhConfig(weights=WEIGHTS, plan_cache=plan_cache))
    result = benchmark(scheduler.map, scenario)
    assert result.schedule.n_mapped > 0
    assert result.schedule.plan_cache_enabled is plan_cache


@pytest.mark.parametrize("plan_cache", [True, False], ids=CACHE_IDS.get)
def test_maxmax_throughput(benchmark, scenario, plan_cache):
    scheduler = MaxMaxScheduler(MaxMaxConfig(weights=WEIGHTS, plan_cache=plan_cache))
    result = benchmark(scheduler.map, scenario)
    assert result.schedule.n_mapped > 0
    assert result.schedule.plan_cache_enabled is plan_cache


def test_minmin_throughput(benchmark, scenario):
    result = benchmark(MinMinScheduler().map, scenario)
    assert result.schedule.n_mapped > 0


def test_greedy_throughput(benchmark, scenario):
    result = benchmark(GreedyScheduler().map, scenario)
    assert result.complete


def test_upper_bound_throughput(benchmark, scenario):
    from repro.bounds.upper_bound import upper_bound

    result = benchmark(upper_bound, scenario)
    assert result.t100_bound > 0
