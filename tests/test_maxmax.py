"""Max-Max static baseline."""

import pytest

from repro.baselines.maxmax import MaxMaxConfig, MaxMaxScheduler
from repro.core.objective import Weights
from repro.sim.validate import validate_schedule


@pytest.fixture(scope="module")
def config(mid_weights):
    return MaxMaxConfig(weights=mid_weights)


class TestBasics:
    def test_valid_schedule(self, small_scenario, config):
        result = MaxMaxScheduler(config).map(small_scenario)
        validate_schedule(result.schedule)
        assert result.heuristic == "Max-Max"

    def test_loose_scenario_all_primary(self, loose_scenario):
        config = MaxMaxConfig(weights=Weights.from_alpha_beta(0.9, 0.05))
        result = MaxMaxScheduler(config).map(loose_scenario)
        assert result.complete
        assert result.t100 == loose_scenario.n_tasks

    def test_deterministic(self, tiny_scenario, config):
        a = MaxMaxScheduler(config).map(tiny_scenario)
        b = MaxMaxScheduler(config).map(tiny_scenario)
        assert a.schedule.summary() == b.schedule.summary()

    def test_static_may_schedule_from_time_zero(self, small_scenario, config):
        result = MaxMaxScheduler(config).map(small_scenario)
        starts = [a.start for a in result.schedule.assignments.values()]
        assert min(starts) == pytest.approx(0.0, abs=1.0)


class TestMachineStage:
    def test_completion_stage_default(self):
        assert MaxMaxConfig(weights=Weights(1, 0, 0)).machine_stage == "completion"

    def test_objective_stage_runs(self, tiny_scenario, mid_weights):
        config = MaxMaxConfig(weights=mid_weights, machine_stage="objective")
        result = MaxMaxScheduler(config).map(tiny_scenario)
        validate_schedule(result.schedule)

    def test_unknown_stage_rejected(self, tiny_scenario, mid_weights):
        config = MaxMaxConfig(weights=mid_weights, machine_stage="bogus")
        with pytest.raises(ValueError):
            MaxMaxScheduler(config).map(tiny_scenario)

    def test_objective_stage_prefers_energy_cheap_machines(self, small_scenario):
        """The literal §V reading routes primaries toward the energy-cheap
        slow machines once β > 0 — the pathology EXPERIMENTS.md documents."""
        w = Weights.from_alpha_beta(0.3, 0.5)
        lit = MaxMaxScheduler(MaxMaxConfig(weights=w, machine_stage="objective")).map(
            small_scenario
        )
        mct = MaxMaxScheduler(MaxMaxConfig(weights=w, machine_stage="completion")).map(
            small_scenario
        )
        slow = set(small_scenario.grid.slow_indices)

        def slow_load(res):
            return sum(
                a.duration for a in res.schedule.assignments.values() if a.machine in slow
            )

        assert slow_load(lit) >= slow_load(mct)


class TestVersionMixing:
    def test_tight_energy_forces_secondaries(self, small_scenario):
        """Under the paper regime Max-Max cannot run everything primary."""
        config = MaxMaxConfig(weights=Weights.from_alpha_beta(0.6, 0.2))
        result = MaxMaxScheduler(config).map(small_scenario)
        if result.complete:
            assert result.t100 <= small_scenario.n_tasks

    def test_both_versions_considered(self, small_scenario):
        config = MaxMaxConfig(weights=Weights.from_alpha_beta(0.2, 0.6))
        result = MaxMaxScheduler(config).map(small_scenario)
        versions = {a.version for a in result.schedule.assignments.values()}
        assert len(versions) >= 1  # at minimum it ran; mixing depends on regime


def test_insertion_toggle(small_scenario, mid_weights):
    with_holes = MaxMaxScheduler(
        MaxMaxConfig(weights=mid_weights, insertion=True)
    ).map(small_scenario)
    without = MaxMaxScheduler(
        MaxMaxConfig(weights=mid_weights, insertion=False)
    ).map(small_scenario)
    validate_schedule(with_holes.schedule)
    validate_schedule(without.schedule)
    # Insertion changes the committed mappings (it cannot be a no-op knob);
    # note per-step greedy means the final makespan is not guaranteed to
    # improve, only the per-candidate start times.
    a = {(t, x.machine, x.start) for t, x in with_holes.schedule.assignments.items()}
    b = {(t, x.machine, x.start) for t, x in without.schedule.assignments.items()}
    assert a != b
