"""SLRH variants: loop mechanics, horizon discipline, variant differences."""

import pytest

from repro.core.slrh import SLRH1, SLRH2, SLRH3, SLRH_VARIANTS, SlrhConfig
from repro.core.objective import Weights
from repro.sim.validate import validate_schedule

ALL_VARIANTS = (SLRH1, SLRH2, SLRH3)


class TestBasicRuns:
    @pytest.mark.parametrize("cls", ALL_VARIANTS)
    def test_produces_valid_schedule(self, cls, small_scenario, mid_config):
        result = cls(mid_config).map(small_scenario)
        validate_schedule(result.schedule)
        assert result.heuristic == cls.name
        assert result.heuristic_seconds > 0.0

    @pytest.mark.parametrize("cls", ALL_VARIANTS)
    def test_loose_scenario_fully_mapped_primary(self, cls, loose_scenario):
        config = SlrhConfig(weights=Weights.from_alpha_beta(0.8, 0.1))
        result = cls(config).map(loose_scenario)
        assert result.complete
        assert result.t100 == loose_scenario.n_tasks
        validate_schedule(result.schedule, require_complete=True)

    @pytest.mark.parametrize("cls", ALL_VARIANTS)
    def test_deterministic(self, cls, tiny_scenario, mid_config):
        a = cls(mid_config).map(tiny_scenario)
        b = cls(mid_config).map(tiny_scenario)
        assert a.schedule.summary() == b.schedule.summary()

    def test_registry(self):
        assert SLRH_VARIANTS["SLRH-1"] is SLRH1
        assert SLRH_VARIANTS["SLRH-2"] is SLRH2
        assert SLRH_VARIANTS["SLRH-3"] is SLRH3


class TestClockDiscipline:
    def test_nothing_scheduled_before_clock_zero(self, small_scenario, mid_config):
        result = SLRH1(mid_config).map(small_scenario)
        for a in result.schedule.assignments.values():
            assert a.start >= -1e-9
            for c in a.comms:
                assert c.start >= -1e-9

    def test_stops_at_tau(self, small_scenario, mid_weights):
        tight = small_scenario.with_tau(1.0)  # absurdly tight
        result = SLRH1(SlrhConfig(weights=mid_weights)).map(tight)
        assert not result.complete or result.schedule.makespan <= 1.0 + 1e-9
        # The clock never runs meaningfully past tau.
        assert result.trace.ticks <= 3

    def test_max_ticks_cap(self, small_scenario, mid_weights):
        config = SlrhConfig(weights=mid_weights, max_ticks=1)
        result = SLRH1(config).map(small_scenario)
        assert result.trace.ticks == 1

    def test_resume_from_cycle(self, small_scenario, mid_config):
        result = SLRH1(mid_config).map(small_scenario, start_cycle=500)
        for a in result.schedule.assignments.values():
            assert a.start >= 50.0 - 1e-9

    def test_wrong_schedule_scenario_rejected(self, small_scenario, tiny_scenario, mid_config):
        from repro.sim.schedule import Schedule

        with pytest.raises(ValueError):
            SLRH1(mid_config).map(small_scenario, schedule=Schedule(tiny_scenario))


class TestVariantMechanics:
    def test_slrh1_one_assignment_per_machine_per_tick(self, small_scenario, mid_config):
        result = SLRH1(mid_config).map(small_scenario)
        per_tick_machine: dict[tuple[float, int], int] = {}
        for rec in result.trace.records:
            key = (rec.clock, rec.machine)
            per_tick_machine[key] = per_tick_machine.get(key, 0) + 1
        assert all(v == 1 for v in per_tick_machine.values())

    def test_slrh3_can_assign_multiple_per_tick(self, small_scenario):
        # With a generous horizon SLRH-3 batches several assignments onto
        # one machine within a single tick.
        config = SlrhConfig(
            weights=Weights.from_alpha_beta(0.5, 0.2), horizon_cycles=100000
        )
        result = SLRH3(config).map(small_scenario)
        per_tick_machine: dict[tuple[float, int], int] = {}
        for rec in result.trace.records:
            key = (rec.clock, rec.machine)
            per_tick_machine[key] = per_tick_machine.get(key, 0) + 1
        assert max(per_tick_machine.values()) > 1

    def test_variants_differ_under_pressure(self, small_scenario, mid_config):
        r1 = SLRH1(mid_config).map(small_scenario)
        r3 = SLRH3(mid_config).map(small_scenario)
        # Different inner loops must leave different fingerprints.
        a1 = {(t, a.machine) for t, a in r1.schedule.assignments.items()}
        a3 = {(t, a.machine) for t, a in r3.schedule.assignments.items()}
        assert a1 != a3


class TestHorizon:
    def test_tiny_horizon_limits_lookahead(self, small_scenario, mid_weights):
        config = SlrhConfig(weights=mid_weights, horizon_cycles=1)
        result = SLRH1(config).map(small_scenario)
        # Every committed assignment had data_ready within one cycle of its
        # commit-time clock; we can't observe data_ready post hoc, but the
        # run must still be valid and makespan-bounded.
        validate_schedule(result.schedule)

    def test_result_metrics(self, small_scenario, mid_config):
        r = SLRH1(mid_config).map(small_scenario)
        s = r.summary()
        assert s["heuristic"] == "SLRH-1"
        assert s["t100"] == r.t100
        assert s["alpha"] == pytest.approx(r.weights.alpha)
        assert r.value_per_second() >= 0.0


class TestMachineOrder:
    @pytest.mark.parametrize("order", ["index", "battery", "round_robin"])
    def test_orders_produce_valid_schedules(self, order, small_scenario, mid_weights):
        config = SlrhConfig(weights=mid_weights, machine_order=order)
        result = SLRH1(config).map(small_scenario)
        validate_schedule(result.schedule)

    def test_unknown_order_rejected(self, small_scenario, mid_weights):
        config = SlrhConfig(weights=mid_weights, machine_order="random")
        with pytest.raises(ValueError):
            SLRH1(config).map(small_scenario)

    def test_orders_change_the_mapping(self, small_scenario, mid_weights):
        base = SLRH1(SlrhConfig(weights=mid_weights)).map(small_scenario)
        rr = SLRH1(
            SlrhConfig(weights=mid_weights, machine_order="round_robin")
        ).map(small_scenario)
        a = {(t, x.machine) for t, x in base.schedule.assignments.items()}
        b = {(t, x.machine) for t, x in rr.schedule.assignments.items()}
        assert a != b


class TestConfigValidation:
    def test_aet_mode_forwarded(self, small_scenario, mid_weights):
        config = SlrhConfig(weights=mid_weights, aet_mode="clamp")
        result = SLRH1(config).map(small_scenario)
        validate_schedule(result.schedule)

    def test_bad_aet_mode_raises(self, small_scenario, mid_weights):
        config = SlrhConfig(weights=mid_weights, aet_mode="nope")
        with pytest.raises(ValueError):
            SLRH1(config).map(small_scenario)
