"""Tests for the whole-program analyses: call graph, lock-order cycles,
guard verification, process-boundary safety, blocking discipline, SARIF
output and the diff-aware ``--changed`` mode.

Program rules need :func:`lint_paths` (which builds the project graph);
:func:`lint_file` deliberately skips them.  Call-graph unit tests build
:class:`~repro.lint.callgraph.Project` straight from in-memory
``FileContext`` objects — no fixture files required.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.lint import build_project, lint_file, lint_paths, render_sarif
from repro.lint.__main__ import main as lint_main
from repro.lint.callgraph import lock_label
from repro.lint.model import FileContext
from repro.lint.runner import changed_files

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
SERVICE = FIXTURES / "repro" / "service"
REPO = Path(__file__).resolve().parent.parent


def service_findings(rule: str, filename: str | None = None):
    report = lint_paths([SERVICE])
    found = [f for f in report.unsuppressed if f.rule == rule]
    if filename is not None:
        found = [f for f in found if f.path.endswith(filename)]
    return found


def ctx_of(module: str, source: str) -> FileContext:
    return FileContext(Path(f"/virtual/{module.replace('.', '/')}.py"),
                       source, module)


# -- call-graph resolution ----------------------------------------------------


def test_callgraph_resolves_self_and_typed_attr_calls():
    project = build_project([ctx_of("repro.service.mini", """
import threading

class Engine:
    def run(self):
        return 1

class Holder:
    def __init__(self, engine: Engine):
        self.engine = engine

    def go(self):
        self.engine.run()
        return self.local()

    def local(self):
        return 2
""")])
    holder_go = project.functions["repro.service.mini.Holder.go"]
    targets = {
        t.qname for site in project.callsites(holder_go) for t in site.targets
    }
    assert targets == {
        "repro.service.mini.Engine.run",
        "repro.service.mini.Holder.local",
    }
    assert all(not site.duck for site in project.callsites(holder_go))


def test_callgraph_resolves_imports_and_constructors():
    helpers = ctx_of("repro.service.helpers", """
def tool():
    return 1

class Widget:
    def __init__(self):
        self.n = 0
""")
    user = ctx_of("repro.service.user", """
from repro.service.helpers import tool, Widget

def use():
    tool()
    return Widget()
""")
    project = build_project([helpers, user])
    use = project.functions["repro.service.user.use"]
    targets = {
        t.qname for site in project.callsites(use) for t in site.targets
    }
    assert targets == {
        "repro.service.helpers.tool",
        "repro.service.helpers.Widget.__init__",
    }


def test_callgraph_duck_fallback_skips_container_names():
    project = build_project([ctx_of("repro.service.ducky", """
class Registry:
    def lookup(self, key):
        return key

class Caller:
    def __init__(self):
        self.stats = {}

    def use(self, thing):
        thing.lookup("x")   # duck-resolved: unique project method name
        self.stats.get("x")  # NOT resolved: dict-shaped name
""")])
    use = project.functions["repro.service.ducky.Caller.use"]
    sites = project.callsites(use)
    assert len(sites) == 1
    assert sites[0].duck
    assert sites[0].targets[0].qname == "repro.service.ducky.Registry.lookup"


def test_condition_aliases_to_wrapped_lock():
    project = build_project([ctx_of("repro.service.condal", """
import threading

class Pump:
    def __init__(self):
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)

    def kick(self):
        with self._wake:
            self._wake.notify()
""")])
    cls = project.classes["repro.service.condal.Pump"]
    assert cls.lock_alias["_wake"] == "_lock"
    kick = project.functions["repro.service.condal.Pump.kick"]
    acquired = {lock_label(lock) for lock, _ in
                project.direct_acquisitions(kick)}
    assert acquired == {"Pump._lock"}  # the condition IS the lock


def test_locked_suffix_and_requires_lock_contracts():
    project = build_project([ctx_of("repro.service.contract", """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()

    def _poke_locked(self):
        return 1

    # requires-lock: _lock
    def peek(self):
        return 2
""")])
    for name in ("_poke_locked", "peek"):
        func = project.functions[f"repro.service.contract.Box.{name}"]
        assert {lock_label(lock) for lock in project.entry_locks(func)} == {
            "Box._lock"
        }


def test_acquires_annotation_feeds_the_graph():
    project = build_project([ctx_of("repro.service.notes", """
import threading

class Outer:
    def __init__(self):
        self._lock = threading.Lock()

    # acquires: Inner._lock
    def _step_locked(self):
        return opaque_dispatch()

class Inner:
    def __init__(self):
        self._lock = threading.Lock()
""")])
    step = project.functions["repro.service.notes.Outer._step_locked"]
    acquired = {lock_label(lock) for lock, _ in
                project.direct_acquisitions(step)}
    assert acquired == {"Inner._lock"}


# -- lock-order ---------------------------------------------------------------


def test_lock_order_cycle_found_with_witness_path():
    found = service_findings("lock-order-cycle", "bad_lock_order.py")
    assert len(found) == 1
    msg = found[0].message
    assert "potential deadlock" in msg
    assert "Alpha._lock -> Beta._lock -> Alpha._lock" in msg
    # The witness path names concrete functions and lines for both edges.
    assert "Alpha.forward" in msg and "Beta.backward" in msg
    assert "Beta.grab" in msg and "Alpha.poke" in msg


def test_lock_order_hierarchy_and_nonblocking_probe_clean():
    assert service_findings("lock-order-cycle", "good_lock_order.py") == []


# -- guard-verification -------------------------------------------------------


def test_unguarded_helper_call_is_found_with_guarded_attr_named():
    found = service_findings("guard-verified-call", "bad_guard_call.py")
    assert {f.line for f in found} == {30, 33}
    by_line = {f.line: f.message for f in found}
    assert "Counter.racy calls Counter._bump_locked" in by_line[30]
    assert "the _locked suffix" in by_line[30]
    assert "self._total" in by_line[30]  # what the lock protects
    assert "# requires-lock" in by_line[33]


def test_guarded_calls_with_lock_held_are_clean():
    assert service_findings("guard-verified-call", "good_guard_call.py") == []


# -- process-boundary ---------------------------------------------------------


def test_unpicklable_pipe_payloads_found():
    found = service_findings("pipe-unpicklable", "bad_pipe.py")
    assert {f.line for f in found} == {31, 32, 37, 43}
    messages = "\n".join(f.message for f in found)
    assert "a lock" in messages and "a thread" in messages
    assert "fork-time Process args" in messages
    # The indirect case names the witness chain through Sender.ship.
    indirect = [f for f in found if f.line == 43][0]
    assert "Sender.ship" in indirect.message
    assert "Sender.ship:" in indirect.message  # qname:line witness


def test_thread_started_before_fork_found():
    found = service_findings("thread-before-fork", "bad_pipe.py")
    assert len(found) == 1
    assert "starts a thread" in found[0].message
    assert "forks at line" in found[0].message


def test_clean_boundary_usage_passes():
    for rule in ("pipe-unpicklable", "thread-before-fork"):
        assert service_findings(rule, "good_pipe.py") == []


# -- blocking-discipline ------------------------------------------------------


def test_timeoutless_waits_found():
    found = service_findings("blocking-call-timeout", "bad_blocking.py")
    assert {f.line for f in found} == {16, 17, 24}
    messages = "\n".join(f.message for f in found)
    assert ".get()" in messages
    assert "bounded" in messages
    assert ".recv()" in messages


def test_bounded_waits_and_poll_credit_pass():
    assert service_findings(
        "blocking-call-timeout", "good_blocking.py"
    ) == []


def test_justified_suppression_masks_blocking_finding():
    report = lint_paths([SERVICE])
    suppressed = [
        f for f in report.suppressed
        if f.rule == "blocking-call-timeout"
        and f.path.endswith("good_blocking.py")
    ]
    assert len(suppressed) == 1
    assert suppressed[0].justification


# -- runner integration -------------------------------------------------------


def test_lint_file_skips_program_rules():
    found = lint_file(SERVICE / "bad_lock_order.py")
    assert [f for f in found if f.rule == "lock-order-cycle"] == []


def test_program_findings_respect_scope():
    # Same cycle source pinned outside every program-rule scope: silent.
    source = (SERVICE / "bad_lock_order.py").read_text()
    report = lint_paths(
        [SERVICE / "bad_lock_order.py"],
        modules={SERVICE / "bad_lock_order.py": "somewhere.else"},
    )
    assert source  # (read to keep the fixture honest about existing)
    assert [
        f for f in report.findings if f.rule == "lock-order-cycle"
    ] == []


def test_changed_only_filters_findings_but_keeps_graph():
    # Only good_lock_order.py "changed": the bad file's cycle is filtered
    # out of the report even though the graph saw it.
    changed = {(SERVICE / "good_lock_order.py").resolve()}
    report = lint_paths([SERVICE], changed_only=changed)
    assert report.unsuppressed == []
    full = lint_paths([SERVICE])
    assert any(f.rule == "lock-order-cycle" for f in full.unsuppressed)


def test_changed_files_reads_git(tmp_path):
    git = lambda *a: subprocess.run(
        ["git", *a], cwd=tmp_path, check=True, capture_output=True
    )
    try:
        git("init", "-q")
    except (OSError, subprocess.CalledProcessError):
        pytest.skip("git unavailable")
    git("config", "user.email", "t@example.invalid")
    git("config", "user.name", "t")
    (tmp_path / "a.py").write_text("A = 1\n")
    git("add", "a.py")
    git("commit", "-qm", "seed")
    (tmp_path / "a.py").write_text("A = 2\n")
    (tmp_path / "b.py").write_text("B = 1\n")  # untracked counts too
    changed = changed_files("HEAD", repo_root=tmp_path)
    assert {p.name for p in changed} == {"a.py", "b.py"}


# -- SARIF --------------------------------------------------------------------


def test_sarif_output_is_valid_and_carries_suppressions():
    report = lint_paths([SERVICE])
    doc = json.loads(render_sarif(report, base_dir=REPO))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "lock-order-cycle" in rule_ids
    results = run["results"]
    assert results, "fixtures must produce SARIF results"
    levels = {r["level"] for r in results}
    assert "error" in levels
    suppressed = [r for r in results if r.get("suppressions")]
    assert suppressed and all(
        s["suppressions"][0]["kind"] == "inSource" for s in suppressed
    )
    for result in results:
        loc = result["locations"][0]["physicalLocation"]
        uri = loc["artifactLocation"]["uri"]
        assert not uri.startswith("/")  # relative to the repo root
        assert loc["region"]["startLine"] >= 1


def test_cli_sarif_format(capsys):
    rc = lint_main(["--format", "sarif", str(SERVICE / "good_pipe.py")])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"] == []


# -- the repo itself ----------------------------------------------------------


def test_repo_concurrency_rules_clean_and_exercised():
    """The four new families run repo-wide and pass; the known-justified
    shard_main recv suppression proves the pipeline is actually looking."""
    report = lint_paths(
        [REPO / "src"],
        rule_ids=[
            "lock-order-cycle",
            "guard-verified-call",
            "pipe-unpicklable",
            "thread-before-fork",
            "blocking-call-timeout",
        ],
    )
    assert report.unsuppressed == [], [
        f"{f.path}:{f.line} [{f.rule}] {f.message}" for f in report.unsuppressed
    ]
    assert any(
        f.rule == "blocking-call-timeout" and f.path.endswith("worker.py")
        for f in report.suppressed
    ), "shard_main's justified recv suppression must be exercised"


def test_repo_lock_graph_matches_documented_hierarchy():
    """The audited PR 8 order: router -> dispatcher, manager/session ->
    backend locks, and never the reverse."""
    from repro.lint.model import module_path_for
    from repro.lint.rules.lock_order import _function_edges
    from repro.lint.runner import iter_python_files

    ctxs = [
        FileContext(p, p.read_text(encoding="utf-8"), module_path_for(p))
        for p in iter_python_files([REPO / "src"])
    ]
    project = build_project(ctxs)
    edges: dict = {}
    for func in project.functions_in_scope(
        ("repro.service", "repro.session", "repro.util")
    ):
        _function_edges(project, func, edges)
    labels = {(lock_label(a), lock_label(b)) for a, b in edges}
    assert ("ShardRouter._lock", "ShardDispatcher._lock") in labels
    assert ("ShardDispatcher._lock", "ShardRouter._lock") not in labels
    for upper in ("SessionManager._lock", "LiveSession.lock"):
        for lower in ("ShardProcess._lock", "SessionHost._lock"):
            assert (lower, upper) not in labels
