"""Scenario bundling, case subsetting, and the proportional-shrink protocol."""

import numpy as np
import pytest

from repro.grid.machine import MachineClass
from repro.workload.scenario import (
    CASE_COLUMNS,
    PAPER_N_TASKS,
    PAPER_TAU,
    Scenario,
    ScenarioSpec,
    generate_scenario,
    paper_scaled_grid,
    paper_scaled_spec,
    paper_scaled_suite,
)


class TestScenarioSpec:
    def test_defaults_are_paper_scale(self):
        spec = ScenarioSpec()
        assert spec.n_tasks == 1024
        assert spec.tau == PAPER_TAU

    def test_dag_spec_follows_n_tasks(self):
        spec = ScenarioSpec(n_tasks=50)
        assert spec.dag.n_tasks == 50

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ScenarioSpec(n_tasks=0)
        with pytest.raises(ValueError):
            ScenarioSpec(tau=0.0)


class TestScenario:
    def test_shape_checked(self, tiny_scenario):
        with pytest.raises(ValueError):
            Scenario(
                grid=tiny_scenario.grid,
                etc=tiny_scenario.etc[:, :2],
                dag=tiny_scenario.dag,
                data_sizes=tiny_scenario.data_sizes,
                tau=tiny_scenario.tau,
            )

    def test_missing_data_size_rejected(self, tiny_scenario):
        edges = tiny_scenario.dag.edges()
        if not edges:
            pytest.skip("no edges")
        broken = dict(tiny_scenario.data_sizes)
        del broken[edges[0]]
        with pytest.raises(ValueError):
            Scenario(
                grid=tiny_scenario.grid,
                etc=tiny_scenario.etc,
                dag=tiny_scenario.dag,
                data_sizes=broken,
                tau=tiny_scenario.tau,
            )

    def test_with_tau(self, tiny_scenario):
        s = tiny_scenario.with_tau(123.0)
        assert s.tau == 123.0
        assert s.etc is tiny_scenario.etc

    def test_without_machine(self, tiny_scenario):
        s = tiny_scenario.without_machine(1)
        assert s.n_machines == tiny_scenario.n_machines - 1
        np.testing.assert_array_equal(s.etc[:, 0], tiny_scenario.etc[:, 0])
        np.testing.assert_array_equal(s.etc[:, 1], tiny_scenario.etc[:, 2])

    def test_reproducible(self):
        spec = ScenarioSpec(n_tasks=20)
        a = generate_scenario(spec, seed=5)
        b = generate_scenario(spec, seed=5)
        assert np.array_equal(a.etc, b.etc)
        assert a.dag.edges() == b.dag.edges()
        assert a.data_sizes == b.data_sizes


class TestSuite:
    def test_dimensions(self, tiny_suite):
        assert tiny_suite.n_etc == 2
        assert tiny_suite.n_dag == 2

    def test_case_columns(self):
        assert CASE_COLUMNS["A"] == (0, 1, 2, 3)
        assert CASE_COLUMNS["B"] == (0, 1, 2)
        assert CASE_COLUMNS["C"] == (0, 2, 3)

    def test_case_b_drops_slow(self, tiny_suite):
        grid = tiny_suite.case_grid("B")
        classes = [m.machine_class for m in grid]
        assert classes.count(MachineClass.FAST) == 2
        assert classes.count(MachineClass.SLOW) == 1

    def test_case_c_drops_fast_keeps_reference(self, tiny_suite):
        grid = tiny_suite.case_grid("C")
        assert grid[0].machine_class is MachineClass.FAST
        assert len(grid) == 3

    def test_same_workload_across_cases(self, tiny_suite):
        a = tiny_suite.scenario(0, 0, "A")
        c = tiny_suite.scenario(0, 0, "C")
        # Case C keeps master columns (0, 2, 3).
        np.testing.assert_array_equal(c.etc[:, 0], a.etc[:, 0])
        np.testing.assert_array_equal(c.etc[:, 1], a.etc[:, 2])
        assert a.dag is c.dag
        assert a.data_sizes is c.data_sizes

    def test_unknown_case_rejected(self, tiny_suite):
        with pytest.raises(KeyError):
            tiny_suite.case_grid("D")
        with pytest.raises(KeyError):
            tiny_suite.scenario(0, 0, "Z")

    def test_scenarios_iterator_count(self, tiny_suite):
        assert len(list(tiny_suite.scenarios("A"))) == 4

    def test_etc_matrices_differ(self, tiny_suite):
        assert not np.array_equal(tiny_suite.etcs[0], tiny_suite.etcs[1])

    def test_dags_differ(self, tiny_suite):
        assert tiny_suite.dags[0].edges() != tiny_suite.dags[1].edges()


class TestProportionalShrink:
    def test_tau_scales(self):
        spec = paper_scaled_spec(128)
        assert spec.tau == pytest.approx(PAPER_TAU * 128 / PAPER_N_TASKS)

    def test_battery_scales(self):
        grid = paper_scaled_grid(256)
        assert grid[0].battery == pytest.approx(580.0 * 256 / 1024)

    def test_override_forwarded(self):
        spec = paper_scaled_spec(64, tau=999.0)
        assert spec.tau == 999.0

    def test_suite_consistency(self):
        suite = paper_scaled_suite(32, n_etc=1, n_dag=1, seed=0)
        sc = suite.scenario(0, 0, "A")
        assert sc.n_tasks == 32
        assert sc.tau == pytest.approx(PAPER_TAU * 32 / 1024)
        assert sc.grid[0].battery == pytest.approx(580.0 * 32 / 1024)

    def test_regime_fast_energy_bound(self):
        """The paper's regime: a fast machine's battery covers well under τ
        seconds of computation, a slow machine's well over τ."""
        grid = paper_scaled_grid(64)
        tau = paper_scaled_spec(64).tau
        fast_seconds = grid[0].battery / grid[0].compute_rate
        slow_seconds = grid[2].battery / grid[2].compute_rate
        assert fast_seconds < tau
        assert slow_seconds > tau
