"""DAG generation and TaskGraph invariants."""

import networkx as nx
import pytest

from repro.workload.dag import DagSpec, TaskGraph, generate_dag


class TestTaskGraph:
    def test_diamond(self):
        g = TaskGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert g.roots == (0,)
        assert g.leaves == (3,)
        assert g.parents[3] == (1, 2)
        assert g.children[0] == (1, 2)
        assert g.depth == 3

    def test_duplicate_edges_collapsed(self):
        g = TaskGraph(2, [(0, 1), (0, 1)])
        assert g.n_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph(2, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph(2, [(0, 2)])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph(3, [(0, 1), (1, 2), (2, 0)])

    def test_topological_order_valid(self):
        g = TaskGraph(5, [(0, 1), (1, 2), (0, 3), (3, 4), (2, 4)])
        pos = {t: i for i, t in enumerate(g.topological_order)}
        for u, v in g.edges():
            assert pos[u] < pos[v]

    def test_singleton(self):
        g = TaskGraph(1, [])
        assert g.roots == (0,)
        assert g.leaves == (0,)
        assert g.depth == 1

    def test_levels_consistent_with_depth(self):
        g = TaskGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.levels == (1, 2, 3, 4)
        assert g.depth == 4

    def test_to_networkx_matches(self):
        g = TaskGraph(4, [(0, 1), (0, 2), (1, 3)])
        nxg = g.to_networkx()
        assert nx.is_directed_acyclic_graph(nxg)
        assert set(nxg.edges()) == set(g.edges())

    def test_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            TaskGraph(0, [])


class TestDagSpecValidation:
    def test_defaults(self):
        DagSpec()

    @pytest.mark.parametrize(
        "kw",
        [
            {"n_tasks": 0},
            {"mean_width": 0},
            {"max_in_degree": 0},
            {"max_out_degree": 0},
            {"back_level_prob": 1.5},
            {"back_level_prob": -0.1},
        ],
    )
    def test_rejects_bad_params(self, kw):
        with pytest.raises(ValueError):
            DagSpec(**kw)


class TestGeneration:
    def test_task_count(self):
        g = generate_dag(DagSpec(n_tasks=100), seed=0)
        assert g.n_tasks == 100

    def test_acyclic_via_networkx(self):
        g = generate_dag(DagSpec(n_tasks=200), seed=1)
        assert nx.is_directed_acyclic_graph(g.to_networkx())

    def test_reproducible(self):
        a = generate_dag(DagSpec(n_tasks=64), seed=5)
        b = generate_dag(DagSpec(n_tasks=64), seed=5)
        assert a.edges() == b.edges()

    def test_seeds_differ(self):
        a = generate_dag(DagSpec(n_tasks=64), seed=5)
        b = generate_dag(DagSpec(n_tasks=64), seed=6)
        assert a.edges() != b.edges()

    def test_in_degree_bounded(self):
        spec = DagSpec(n_tasks=200, max_in_degree=3)
        g = generate_dag(spec, seed=2)
        assert all(len(p) <= 3 for p in g.parents)

    def test_every_non_root_has_parent(self):
        g = generate_dag(DagSpec(n_tasks=150), seed=3)
        first_level_width = len([t for t in range(g.n_tasks) if not g.parents[t]])
        # All roots sit in the first generated level.
        assert first_level_width <= 2 * DagSpec().mean_width

    def test_connected_forward(self):
        # Every task is reachable from some root.
        g = generate_dag(DagSpec(n_tasks=80), seed=4)
        nxg = g.to_networkx()
        reachable = set(g.roots)
        for r in g.roots:
            reachable |= nx.descendants(nxg, r)
        assert reachable == set(range(g.n_tasks))

    def test_single_task(self):
        g = generate_dag(DagSpec(n_tasks=1), seed=0)
        assert g.n_tasks == 1
        assert g.n_edges == 0

    def test_ids_topologically_ordered_by_construction(self):
        g = generate_dag(DagSpec(n_tasks=120), seed=7)
        for u, v in g.edges():
            assert u < v
