"""Two-stage (α, β) grid search (§VII)."""

import pytest

from repro.core.slrh import SLRH1, SlrhConfig
from repro.tuning.weight_search import (
    WeightSearchResult,
    _refinement_grid,
    search_weights,
    simplex_grid,
)


class TestSimplexGrid:
    def test_step_01_size(self):
        # 11 + 10 + ... + 1 = 66 points
        assert len(simplex_grid(0.1)) == 66

    def test_step_05_points(self):
        pts = simplex_grid(0.5)
        assert set(pts) == {
            (0.0, 0.0), (0.0, 0.5), (0.0, 1.0),
            (0.5, 0.0), (0.5, 0.5), (1.0, 0.0),
        }

    def test_all_on_simplex(self):
        for a, b in simplex_grid(0.2):
            assert 0 <= a <= 1 and 0 <= b <= 1 and a + b <= 1 + 1e-9

    def test_bad_step_rejected(self):
        with pytest.raises(ValueError):
            simplex_grid(0.0)
        with pytest.raises(ValueError):
            simplex_grid(1.5)


class TestRefinementGrid:
    def test_centre_included(self):
        pts = _refinement_grid((0.4, 0.2), span=0.1, step=0.02)
        assert (0.4, 0.2) in pts

    def test_clipped_to_simplex(self):
        pts = _refinement_grid((1.0, 0.0), span=0.1, step=0.05)
        for a, b in pts:
            assert a + b <= 1 + 1e-9
            assert a >= 0 and b >= 0

    def test_no_duplicates(self):
        pts = _refinement_grid((0.5, 0.3), span=0.1, step=0.02)
        assert len(pts) == len(set(pts))


class TestSearch:
    @pytest.fixture(scope="class")
    def search_result(self, small_scenario):
        factory = lambda w: SLRH1(SlrhConfig(weights=w))  # noqa: E731
        return search_weights(
            small_scenario, factory, coarse_step=0.25, fine_step=0.125, fine=True
        )

    def test_finds_accepted_point(self, search_result):
        assert search_result.succeeded
        assert search_result.best_result.success

    def test_best_t100_is_max_accepted(self, search_result):
        assert search_result.best_t100 == max(t for (_, _, t) in search_result.accepted)

    def test_fine_stage_adds_evaluations(self, search_result):
        assert search_result.evaluations > search_result.coarse_evaluations

    def test_accepted_near_best(self, search_result):
        near = search_result.accepted_near_best(tolerance=0)
        assert all(
            t == search_result.best_t100
            for (a, b, t) in search_result.accepted
            if (a, b) in near
        )
        assert len(near) >= 1

    def test_coarse_only(self, small_scenario):
        factory = lambda w: SLRH1(SlrhConfig(weights=w))  # noqa: E731
        res = search_weights(small_scenario, factory, coarse_step=0.5, fine=False)
        assert res.evaluations == res.coarse_evaluations == 6

    def test_impossible_scenario_fails_gracefully(self, small_scenario):
        factory = lambda w: SLRH1(SlrhConfig(weights=w))  # noqa: E731
        res = search_weights(
            small_scenario.with_tau(0.5), factory, coarse_step=0.5, fine=True
        )
        assert not res.succeeded
        assert res.best_weights is None
        assert res.accepted == []
        with pytest.raises(ValueError):
            _ = res.best_t100

    def test_empty_result_near_best(self):
        res = WeightSearchResult(best_weights=None, best_result=None)
        assert res.accepted_near_best() == []
