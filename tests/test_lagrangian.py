"""Adaptive Lagrangian multiplier controller (extension)."""

import pytest

from repro.core.lagrangian import AdaptiveWeightController, _shift, adaptive_slrh
from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig


class TestShift:
    def test_moves_weight(self):
        w = _shift(Weights(0.4, 0.3, 0.3), "gamma", "alpha", 0.1)
        assert w.alpha == pytest.approx(0.5)
        assert w.gamma == pytest.approx(0.2)
        assert w.beta == pytest.approx(0.3)

    def test_clipped_at_source_zero(self):
        w = _shift(Weights(0.5, 0.5, 0.0), "gamma", "alpha", 0.2)
        assert w.alpha == pytest.approx(0.5)
        assert w.gamma == 0.0

    def test_stays_on_simplex(self):
        w = _shift(Weights(0.2, 0.4, 0.4), "beta", "gamma", 0.15)
        assert w.alpha + w.beta + w.gamma == pytest.approx(1.0)


class TestControllerProposals:
    def setup_method(self):
        self.ctrl = AdaptiveWeightController()
        self.w = Weights(1 / 3, 1 / 3, 1 / 3)

    def _result(self, small_scenario, complete, within_tau):
        # Build a real MappingResult then fake the flags via its schedule.
        result = SLRH1(SlrhConfig(weights=self.w)).map(
            small_scenario.with_tau(1e9 if within_tau else 1e-3)
        )
        return result

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveWeightController(step=0.0)
        with pytest.raises(ValueError):
            AdaptiveWeightController(max_iters=0)

    def test_step_shrinks_with_iteration(self, small_scenario):
        result = SLRH1(SlrhConfig(weights=self.w)).map(small_scenario)
        w1 = self.ctrl.propose(self.w, result, iteration=1)
        w5 = self.ctrl.propose(self.w, result, iteration=5)
        d1 = abs(w1.alpha - self.w.alpha) + abs(w1.beta - self.w.beta)
        d5 = abs(w5.alpha - self.w.alpha) + abs(w5.beta - self.w.beta)
        assert d5 <= d1 + 1e-12


class TestAdaptiveRun:
    def test_finds_success_on_feasible_scenario(self, small_scenario):
        best, history = adaptive_slrh(
            small_scenario, SLRH1, AdaptiveWeightController(max_iters=6)
        )
        assert len(history) == 6
        assert best.schedule.n_mapped == max(h.schedule.n_mapped for h in history)

    def test_best_is_max_t100_among_successes(self, small_scenario):
        best, history = adaptive_slrh(
            small_scenario, SLRH1, AdaptiveWeightController(max_iters=8)
        )
        successes = [h for h in history if h.success]
        if successes:
            assert best.success
            assert best.t100 == max(h.t100 for h in successes)

    def test_base_config_respected(self, small_scenario):
        base = SlrhConfig(
            weights=Weights(1 / 3, 1 / 3, 1 / 3), delta_t_cycles=20, horizon_cycles=50
        )
        best, history = adaptive_slrh(
            small_scenario, SLRH1,
            AdaptiveWeightController(max_iters=2), base_config=base,
        )
        assert len(history) == 2

    def test_single_iteration(self, tiny_scenario):
        best, history = adaptive_slrh(
            tiny_scenario, SLRH1, AdaptiveWeightController(max_iters=1)
        )
        assert len(history) == 1
        assert best is history[0]
