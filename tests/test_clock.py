"""Simulation clock arithmetic."""

import pytest

from repro.sim.clock import SimulationClock


def test_defaults_match_paper():
    clock = SimulationClock()
    assert clock.delta_t_cycles == 10
    assert clock.horizon_cycles == 100
    assert clock.cycle_seconds == pytest.approx(0.1)


def test_now_and_tick():
    clock = SimulationClock(delta_t_cycles=10)
    assert clock.now == 0.0
    assert clock.tick() == pytest.approx(1.0)
    assert clock.now == pytest.approx(1.0)
    clock.tick()
    assert clock.cycle == 20


def test_horizon_end():
    clock = SimulationClock(delta_t_cycles=10, horizon_cycles=100)
    assert clock.horizon_end == pytest.approx(10.0)
    clock.tick()
    assert clock.horizon_end == pytest.approx(11.0)


def test_within_horizon():
    clock = SimulationClock()
    assert clock.within_horizon(0.0)
    assert clock.within_horizon(10.0)
    assert not clock.within_horizon(10.5)


def test_exceeded():
    clock = SimulationClock(cycle=100)
    assert clock.exceeded(9.0)
    assert not clock.exceeded(10.0)


def test_start_cycle():
    clock = SimulationClock(cycle=50)
    assert clock.now == pytest.approx(5.0)


def test_delta_t_seconds():
    assert SimulationClock(delta_t_cycles=25).delta_t_seconds == pytest.approx(2.5)


@pytest.mark.parametrize(
    "kw", [{"delta_t_cycles": 0}, {"horizon_cycles": 0}, {"cycle_seconds": 0.0}, {"cycle": -1}]
)
def test_validation(kw):
    with pytest.raises(ValueError):
        SimulationClock(**kw)
