"""Schedule analytics: stats, energy profiles, Gantt rendering."""

import pytest

from repro.analysis import compute_stats, energy_profile, render_gantt
from repro.core.slrh import SLRH1
from repro.sim.schedule import Schedule


@pytest.fixture(scope="module")
def result(small_scenario, mid_config):
    return SLRH1(mid_config).map(small_scenario)


class TestStats:
    def test_counts_match_schedule(self, result):
        stats = compute_stats(result.schedule)
        assert stats.n_mapped == result.schedule.n_mapped
        assert stats.t100 == result.t100
        assert stats.makespan == pytest.approx(result.aet)
        assert sum(stats.tasks_per_machine) == stats.n_mapped

    def test_load_matches_timelines(self, result):
        stats = compute_stats(result.schedule)
        for j, load in enumerate(stats.load):
            assert load == pytest.approx(result.schedule.machine_load(j))

    def test_utilisation_bounded(self, result):
        stats = compute_stats(result.schedule)
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in stats.utilisation)

    def test_imbalance_at_least_one(self, result):
        assert compute_stats(result.schedule).imbalance >= 1.0 - 1e-9

    def test_energy_fraction_bounded(self, result):
        stats = compute_stats(result.schedule)
        assert all(0.0 <= f <= 1.0 + 1e-9 for f in stats.energy_fraction)

    def test_version_mix(self, result):
        stats = compute_stats(result.schedule)
        assert stats.version_mix == pytest.approx(stats.t100 / stats.n_mapped)

    def test_empty_schedule(self, small_scenario):
        stats = compute_stats(Schedule(small_scenario))
        assert stats.n_mapped == 0
        assert stats.version_mix == 0.0
        assert stats.imbalance == 1.0


class TestEnergyProfile:
    def test_final_value_matches_ledger(self, result):
        profile = energy_profile(result.schedule)
        sched = result.schedule
        for j in range(sched.scenario.n_machines):
            assert profile.consumed[j][-1] == pytest.approx(
                sched.energy.consumed(j), rel=1e-6, abs=1e-9
            )

    def test_monotone_nondecreasing(self, result):
        profile = energy_profile(result.schedule)
        for series in profile.consumed:
            for a, b in zip(series, series[1:]):
                assert b >= a - 1e-9

    def test_at_interpolates(self, result):
        profile = energy_profile(result.schedule)
        t_mid = profile.times[-1] / 2
        v = profile.at(0, t_mid)
        assert 0.0 <= v <= profile.consumed[0][-1] + 1e-9

    def test_at_boundaries(self, result):
        profile = energy_profile(result.schedule)
        assert profile.at(0, -5.0) == 0.0
        assert profile.at(0, profile.times[-1] + 100) == profile.consumed[0][-1]

    def test_resampled(self, result):
        profile = energy_profile(result.schedule, samples=7)
        assert len(profile.times) == 7


class TestGantt:
    def test_renders_all_machines(self, result):
        text = render_gantt(result.schedule)
        for machine in result.schedule.scenario.grid:
            assert machine.name in text

    def test_channels_rows(self, result):
        text = render_gantt(result.schedule, channels=True)
        assert "out" in text

    def test_width_respected(self, result):
        text = render_gantt(result.schedule, width=50)
        for line in text.splitlines()[1:]:
            assert len(line) <= 50 + 20  # name column + bars

    def test_bad_width_rejected(self, result):
        with pytest.raises(ValueError):
            render_gantt(result.schedule, width=5)

    def test_empty_schedule(self, small_scenario):
        text = render_gantt(Schedule(small_scenario))
        assert "fast-0" in text
