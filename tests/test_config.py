"""Grid configurations: Table 1 cases and grid algebra."""

import pytest

from repro.grid.config import CASE_A, CASE_B, CASE_C, PAPER_CASES, GridConfig, make_case
from repro.grid.machine import FAST_MACHINE, MachineClass


class TestPaperCases:
    def test_case_a_counts(self):
        assert len(CASE_A.fast_indices) == 2
        assert len(CASE_A.slow_indices) == 2

    def test_case_b_counts(self):
        assert len(CASE_B.fast_indices) == 2
        assert len(CASE_B.slow_indices) == 1

    def test_case_c_counts(self):
        assert len(CASE_C.fast_indices) == 1
        assert len(CASE_C.slow_indices) == 2

    def test_machine_zero_is_fast_everywhere(self):
        for case in PAPER_CASES.values():
            assert case[0].machine_class is MachineClass.FAST

    def test_registry_keys(self):
        assert sorted(PAPER_CASES) == ["A", "B", "C"]

    def test_case_a_tse(self):
        # 2×580 + 2×58
        assert CASE_A.total_system_energy == pytest.approx(1276.0)

    def test_min_bandwidth_is_slow(self):
        assert CASE_A.min_bandwidth == pytest.approx(4e6)


class TestMakeCase:
    def test_ordering_fast_first(self):
        g = make_case(1, 2)
        assert g[0].machine_class is MachineClass.FAST
        assert g[1].machine_class is MachineClass.SLOW

    def test_names_unique(self):
        g = make_case(2, 2)
        assert len({m.name for m in g}) == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_case(0, 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            make_case(-1, 2)


class TestGridAlgebra:
    def test_without_machine(self):
        g = CASE_A.without_machine(3)
        assert len(g) == 3
        assert [m.name for m in g] == [m.name for m in CASE_A][:3]

    def test_without_machine_out_of_range(self):
        with pytest.raises(IndexError):
            CASE_A.without_machine(4)

    def test_battery_scale(self):
        g = CASE_A.with_battery_scale(0.25)
        assert g.total_system_energy == pytest.approx(1276.0 * 0.25)
        assert len(g) == 4

    def test_iteration_and_indexing(self):
        assert list(CASE_A)[0] is CASE_A[0]
        assert CASE_A.n_machines == len(CASE_A) == 4

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            GridConfig(machines=())

    def test_fast_slow_indices_disjoint_cover(self):
        idx = set(CASE_A.fast_indices) | set(CASE_A.slow_indices)
        assert idx == set(range(4))
