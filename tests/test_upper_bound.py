"""Equivalent-computing-cycles upper bound (§VI)."""

import numpy as np
import pytest

from repro.bounds.upper_bound import upper_bound
from repro.core.slrh import SLRH1, SlrhConfig
from repro.baselines.greedy import GreedyScheduler
from repro.core.objective import Weights
from repro.workload.scenario import paper_scaled_suite


@pytest.fixture(scope="module")
def suite():
    return paper_scaled_suite(48, n_etc=2, n_dag=1, seed=0)


class TestBoundStructure:
    def test_bounded_by_n_tasks(self, suite):
        for case in "ABC":
            r = upper_bound(suite.scenario(0, 0, case))
            assert 0 <= r.t100_bound <= 48

    def test_min_ratios_reference_one(self, suite):
        r = upper_bound(suite.scenario(0, 0, "A"))
        assert r.min_ratios[0] == pytest.approx(1.0)

    def test_tecc_formula(self, suite):
        sc = suite.scenario(0, 0, "A")
        r = upper_bound(sc)
        assert r.tecc == pytest.approx(float(np.sum(sc.tau / r.min_ratios)))

    def test_limiting_resource_label(self, suite):
        for case in "ABC":
            r = upper_bound(suite.scenario(0, 0, case))
            assert r.limiting_resource in ("none", "cycles", "energy")
            if r.t100_bound == 48:
                assert r.limiting_resource == "none"

    def test_resources_never_negative(self, suite):
        for case in "ABC":
            r = upper_bound(suite.scenario(0, 0, case))
            assert r.cycles_remaining >= -1e-6
            assert r.energy_remaining >= -1e-6

    def test_case_c_not_above_case_a(self, suite):
        a = upper_bound(suite.scenario(0, 0, "A")).t100_bound
        c = upper_bound(suite.scenario(0, 0, "C")).t100_bound
        assert c <= a


class TestBoundDominance:
    """The bound must dominate what actual mappers achieve."""

    def test_dominates_slrh(self, suite):
        for case in "ABC":
            sc = suite.scenario(0, 0, case)
            bound = upper_bound(sc).t100_bound
            result = SLRH1(SlrhConfig(weights=Weights.from_alpha_beta(0.5, 0.2))).map(sc)
            if result.success:
                assert result.t100 <= bound

    def test_dominates_greedy(self, suite):
        sc = suite.scenario(1, 0, "A")
        bound = upper_bound(sc).t100_bound
        result = GreedyScheduler().map(sc)
        if result.complete and result.aet <= sc.tau:
            assert result.t100 <= bound


class TestStrictBound:
    """The LP-relaxation bound (extension; see upper_bound_strict)."""

    def test_dominates_paper_bound_sometimes_not_needed(self, suite):
        from repro.bounds.upper_bound import upper_bound_strict

        for case in "ABC":
            sc = suite.scenario(0, 0, case)
            strict = upper_bound_strict(sc)
            assert 0 <= strict <= sc.n_tasks

    def test_dominates_all_heuristics(self, suite):
        from repro.bounds.upper_bound import upper_bound_strict

        for case in "ABC":
            sc = suite.scenario(0, 0, case)
            strict = upper_bound_strict(sc)
            for ab in [(1.0, 0.0), (0.5, 0.2), (0.3, 0.4)]:
                r = SLRH1(SlrhConfig(weights=Weights.from_alpha_beta(*ab))).map(sc)
                assert r.t100 <= strict

    def test_paper_bound_violation_instance(self):
        """The §VI construction is *not* a true bound: on tight-τ instances
        it undercounts (min-energy machine ≠ min-cycles machine).  The
        strict LP bound must dominate on the same instance."""
        from repro.baselines.greedy import calibrate_tau
        from repro.bounds.upper_bound import upper_bound_strict
        from repro.workload.data import generate_data_sizes
        from repro.workload.etc import generate_etc
        from repro.workload.scenario import Scenario, paper_scaled_grid
        from repro.workload.topologies import fft

        dag = fft(16)
        grid = paper_scaled_grid(dag.n_tasks)
        scenario = Scenario(
            grid=grid,
            etc=generate_etc(dag.n_tasks, grid, seed=21),
            dag=dag,
            data_sizes=generate_data_sizes(dag, seed=22),
            tau=1.0,
            name="fft-bound",
        )
        scenario = scenario.with_tau(calibrate_tau(scenario, slack=1.6))
        strict = upper_bound_strict(scenario)
        result = SLRH1(SlrhConfig(weights=Weights.from_alpha_beta(0.5, 0.2))).map(
            scenario
        )
        # The strict bound always dominates the achieved T100...
        assert result.t100 <= strict
        # ...whereas the §VI construction is allowed to fall below it
        # (documented divergence; not asserted as it depends on draws).

    def test_zero_tau_like_budget(self, suite):
        from repro.bounds.upper_bound import upper_bound_strict

        sc = suite.scenario(0, 0, "A").with_tau(1e-6)
        assert upper_bound_strict(sc) == 0


class TestScaling:
    def test_longer_tau_never_lowers_bound(self, suite):
        sc = suite.scenario(0, 0, "C")
        lo = upper_bound(sc.with_tau(sc.tau * 0.25)).t100_bound
        hi = upper_bound(sc).t100_bound
        assert lo <= hi

    def test_tiny_tau_gives_small_bound(self, suite):
        sc = suite.scenario(0, 0, "A")
        r = upper_bound(sc.with_tau(20.0))
        assert r.t100_bound < 48
        assert r.limiting_resource == "cycles"

    def test_alternative_reference_still_sane(self, suite):
        sc = suite.scenario(0, 0, "A")
        # A different reference machine changes MR/TECC scaling; the bound
        # must remain structurally valid (the exact count may shift since
        # per-machine minima are taken over different ratio distributions).
        r = upper_bound(sc, reference=1)
        assert 0 <= r.t100_bound <= sc.n_tasks
        assert r.min_ratios[1] == pytest.approx(1.0)
