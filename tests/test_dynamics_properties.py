"""Property-based stress of the dynamic engines (loss and churn)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig
from repro.sim.churn import ChurnEvent, run_with_churn
from repro.sim.engine import run_with_machine_loss, surviving_tasks
from repro.sim.validate import validate_schedule
from repro.workload.scenario import (
    generate_scenario,
    paper_scaled_grid,
    paper_scaled_spec,
)

_WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)
_SCHEDULER = SLRH1(SlrhConfig(weights=_WEIGHTS))
_SCENARIOS = {}


def _scenario(seed: int):
    if seed not in _SCENARIOS:
        _SCENARIOS[seed] = generate_scenario(
            paper_scaled_spec(16), grid=paper_scaled_grid(16), seed=seed
        )
    return _SCENARIOS[seed]


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=3),
    machine=st.integers(min_value=0, max_value=3),
    fraction=st.floats(min_value=0.05, max_value=0.95),
)
def test_machine_loss_always_yields_valid_partition(seed, machine, fraction):
    scenario = _scenario(seed)
    loss_cycle = max(1, int(scenario.tau * fraction / 0.1))
    out = run_with_machine_loss(scenario, _SCHEDULER, machine, loss_cycle)
    # Partition of the original assignments.
    assert set(out.survivors) | set(out.invalidated) == set(
        out.initial.schedule.assignments
    )
    assert not set(out.survivors) & set(out.invalidated)
    # Nothing survives on the lost machine.
    for t in out.survivors:
        assert out.initial.schedule.assignments[t].machine != machine
    # The final schedule is model-valid on the reduced grid.
    validate_schedule(out.final.schedule)
    assert out.final.schedule.scenario.n_machines == scenario.n_machines - 1


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=3),
    machine=st.integers(min_value=0, max_value=3),
    loss_frac=st.floats(min_value=0.1, max_value=0.5),
    gap_frac=st.floats(min_value=0.05, max_value=0.4),
)
def test_churn_loss_rejoin_always_valid(seed, machine, loss_frac, gap_frac):
    scenario = _scenario(seed)
    loss = max(1, int(scenario.tau * loss_frac / 0.1))
    join = loss + max(1, int(scenario.tau * gap_frac / 0.1))
    out = run_with_churn(
        scenario,
        _SCHEDULER,
        [ChurnEvent(loss, machine, "loss"), ChurnEvent(join, machine, "join")],
    )
    validate_schedule(out.final.schedule)
    # Sunk energy never negative; rollback only ever shrinks when later.
    assert all(r.sunk_energy >= 0.0 for r in out.records)
    # Machine-`machine` work in the final schedule must not *start
    # executing* inside the offline window.
    loss_t, join_t = loss * 0.1, join * 0.1
    for a in out.final.schedule.assignments.values():
        if a.machine == machine:
            assert a.start < loss_t + 1e-9 or a.start >= join_t - 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=3), machine=st.integers(0, 3))
def test_surviving_tasks_closure(seed, machine):
    scenario = _scenario(seed)
    result = _SCHEDULER.map(scenario)
    kept, dropped = surviving_tasks(result.schedule, machine)
    dag = scenario.dag
    # Closure: kept tasks have only kept parents.
    for t in kept:
        for p in dag.parents[t]:
            if p in result.schedule.assignments:
                assert p in kept
