"""Mapping trace bookkeeping."""

from repro.core.slrh import SLRH1
from repro.sim.trace import MappingTrace


def test_counters():
    trace = MappingTrace()
    trace.note_tick()
    trace.note_tick()
    trace.note_machine_scan()
    trace.note_empty_pool()
    assert trace.ticks == 2
    assert trace.machine_scans == 1
    assert trace.empty_pool_ticks == 1


def test_commits_per_tick_zero_when_no_ticks():
    assert MappingTrace().commits_per_tick() == 0.0


def test_records_populated_by_run(small_scenario, mid_config):
    result = SLRH1(mid_config).map(small_scenario)
    trace = result.trace
    assert trace.n_commits == result.schedule.n_mapped
    assert trace.ticks >= 1
    assert 0 < trace.commits_per_tick() <= small_scenario.n_machines * 100


def test_record_fields_reflect_schedule(small_scenario, mid_config):
    result = SLRH1(mid_config).map(small_scenario)
    last = result.trace.records[-1]
    assert last.t100 == result.t100
    assert last.tec == result.tec
    assert last.aet == result.aet
    tasks = {r.task for r in result.trace.records}
    assert tasks == set(result.schedule.assignments)


def test_records_monotone_clock(small_scenario, mid_config):
    result = SLRH1(mid_config).map(small_scenario)
    clocks = [r.clock for r in result.trace.records]
    assert clocks == sorted(clocks)
