"""CLI report generator (`python -m repro.experiments`)."""

import subprocess
import sys

import pytest

from repro.experiments.__main__ import build_report, main
from repro.experiments.scale import SMOKE_SCALE


def test_build_report_tables_only():
    text = build_report(SMOKE_SCALE, ["tables"])
    assert "Table 1" in text
    assert "Table 4" in text
    assert "Figure 2" not in text


def test_build_report_fig2():
    text = build_report(SMOKE_SCALE, ["fig2"])
    assert "Figure 2" in text


def test_main_writes_out(tmp_path):
    out = tmp_path / "report.txt"
    rc = main(["--scale", "smoke", "--only", "tables", "--out", str(out)])
    assert rc == 0
    assert "Table 1" in out.read_text()


def test_main_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        main(["--scale", "galactic"])


def test_module_invocation_subprocess():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "--scale", "smoke",
         "--only", "tables"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0
    assert "Table 1" in proc.stdout
