"""CLI report generator (`python -m repro.experiments`)."""

import json
import os
import subprocess
import sys

import pytest

from repro.experiments.__main__ import build_report, main
from repro.experiments.scale import SMOKE_SCALE


def test_build_report_tables_only():
    text = build_report(SMOKE_SCALE, ["tables"])
    assert "Table 1" in text
    assert "Table 4" in text
    assert "Figure 2" not in text


def test_build_report_fig2():
    text = build_report(SMOKE_SCALE, ["fig2"])
    assert "Figure 2" in text


def test_main_writes_out(tmp_path):
    out = tmp_path / "report.txt"
    rc = main(["--scale", "smoke", "--only", "tables", "--out", str(out)])
    assert rc == 0
    assert "Table 1" in out.read_text()


def test_main_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        main(["--scale", "galactic"])


def test_module_invocation_subprocess():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "--scale", "smoke",
         "--only", "tables"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0
    assert "Table 1" in proc.stdout


def test_jobs_auto_flag_resolves_to_cpu_count(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    rc = main(["--scale", "smoke", "--only", "fig2", "--jobs", "auto",
               "--perf-out", "-", "--out", str(tmp_path / "r.txt")])
    assert rc == 0
    # The flag is resolved once and pinned for downstream workers.
    assert os.environ["REPRO_JOBS"] == str(os.cpu_count() or 1)


def test_jobs_flag_rejects_garbage():
    with pytest.raises(SystemExit):
        main(["--scale", "smoke", "--only", "fig2", "--jobs", "many"])


def test_out_creates_missing_parents(tmp_path):
    out = tmp_path / "deep" / "nested" / "report.txt"
    rc = main(["--scale", "smoke", "--only", "tables", "--out", str(out),
               "--perf-out", str(tmp_path / "also" / "missing" / "perf.json")])
    assert rc == 0
    assert "Table 1" in out.read_text()
    assert (tmp_path / "also" / "missing" / "perf.json").exists()


class TestMapSubcommand:
    def test_generate_to_stdout_is_canonical(self, capsysbinary):
        rc = main(["map", "--generate", "8", "--seed", "1"])
        assert rc == 0
        doc = json.loads(capsysbinary.readouterr().out)
        assert doc["kind"] == "mapping"
        assert doc["scenario"] == "gen8-seed1"

    def test_scenario_file_to_out_file(self, tmp_path, small_scenario):
        from repro.io.serialization import save_scenario

        src = tmp_path / "scenario.json"
        save_scenario(small_scenario, src)
        out = tmp_path / "new" / "dirs" / "mapping.json"
        rc = main(["map", "--scenario", str(src), "--heuristic", "minmin",
                   "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["kind"] == "mapping"
        assert doc["scenario"] == small_scenario.name

    def test_ndjson_output(self, capsysbinary):
        rc = main(["map", "--generate", "8", "--seed", "1", "--ndjson"])
        assert rc == 0
        lines = capsysbinary.readouterr().out.splitlines()
        assert json.loads(lines[0])["record"] == "header"
        assert json.loads(lines[-1])["record"] == "footer"

    def test_unknown_heuristic_exits(self):
        with pytest.raises(SystemExit):
            main(["map", "--generate", "8", "--heuristic", "olb"])

    def test_weights_on_baseline_exits(self):
        with pytest.raises(SystemExit):
            main(["map", "--generate", "8", "--heuristic", "greedy",
                  "--alpha", "0.5"])
