"""Schedule validation catches corrupted schedules."""

import dataclasses

import pytest

from repro.sim.schedule import Schedule
from repro.sim.validate import ValidationError, validate_schedule
from repro.workload.versions import PRIMARY


@pytest.fixture
def mapped(tiny_scenario):
    """A schedule with a committed root assignment."""
    schedule = Schedule(tiny_scenario)
    root = tiny_scenario.dag.roots[0]
    schedule.commit(schedule.plan(root, PRIMARY, 0))
    return schedule, root


def test_clean_schedule_passes(mapped):
    schedule, _ = mapped
    validate_schedule(schedule)


def test_empty_schedule_passes(tiny_scenario):
    validate_schedule(Schedule(tiny_scenario))


def test_require_complete(tiny_scenario):
    with pytest.raises(ValidationError):
        validate_schedule(Schedule(tiny_scenario), require_complete=True)


def test_detects_wrong_duration(mapped):
    schedule, root = mapped
    a = schedule.assignments[root]
    schedule.assignments[root] = dataclasses.replace(a, finish=a.finish + 99.0)
    with pytest.raises(ValidationError):
        validate_schedule(schedule)


def test_detects_wrong_energy(mapped):
    schedule, root = mapped
    a = schedule.assignments[root]
    schedule.assignments[root] = dataclasses.replace(a, energy=a.energy * 2)
    with pytest.raises(ValidationError):
        validate_schedule(schedule)


def test_detects_t100_drift(mapped):
    schedule, _ = mapped
    schedule._t100 = 5
    with pytest.raises(ValidationError):
        validate_schedule(schedule)


def test_detects_makespan_drift(mapped):
    schedule, _ = mapped
    schedule._makespan += 100.0
    with pytest.raises(ValidationError):
        validate_schedule(schedule)


def test_detects_exec_overlap(tiny_scenario):
    schedule = Schedule(tiny_scenario)
    dag = tiny_scenario.dag
    roots = dag.roots
    if len(roots) < 2:
        pytest.skip("need two roots")
    schedule.commit(schedule.plan(roots[0], PRIMARY, 0))
    schedule.commit(schedule.plan(roots[1], PRIMARY, 0))
    # Force the second assignment on top of the first.
    a = schedule.assignments[roots[1]]
    b = schedule.assignments[roots[0]]
    schedule.assignments[roots[1]] = dataclasses.replace(
        a, start=b.start, finish=b.start + a.duration
    )
    with pytest.raises(ValidationError):
        validate_schedule(schedule)


def test_detects_precedence_violation(tiny_scenario):
    schedule = Schedule(tiny_scenario)
    dag = tiny_scenario.dag
    root = dag.roots[0]
    child = next((c for c in dag.children[root] if len(dag.parents[c]) == 1), None)
    if child is None:
        pytest.skip("no single-parent child")
    schedule.commit(schedule.plan(root, PRIMARY, 0))
    schedule.commit(schedule.plan(child, PRIMARY, 0))
    a = schedule.assignments[child]
    schedule.assignments[child] = dataclasses.replace(
        a, start=0.0, finish=a.duration
    )
    with pytest.raises(ValidationError):
        validate_schedule(schedule)


def test_detects_missing_comm(tiny_scenario):
    schedule = Schedule(tiny_scenario)
    dag = tiny_scenario.dag
    root = dag.roots[0]
    child = next((c for c in dag.children[root] if len(dag.parents[c]) == 1), None)
    if child is None:
        pytest.skip("no single-parent child")
    schedule.commit(schedule.plan(root, PRIMARY, 0))
    schedule.commit(schedule.plan(child, PRIMARY, 1))
    a = schedule.assignments[child]
    schedule.assignments[child] = dataclasses.replace(a, comms=())
    with pytest.raises(ValidationError):
        validate_schedule(schedule)


def test_detects_ledger_drift(mapped):
    schedule, _ = mapped
    schedule.energy.debit(1, 3.0)  # consumption with no assignment behind it
    with pytest.raises(ValidationError):
        validate_schedule(schedule)
