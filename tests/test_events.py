"""DES event queue ordering."""

import pytest

from repro.sim.events import Event, EventKind, EventQueue


def test_time_ordering():
    q = EventQueue()
    q.push(5.0, EventKind.TASK_START)
    q.push(1.0, EventKind.TASK_START)
    q.push(3.0, EventKind.TASK_START)
    times = [e.time for e in q.drain()]
    assert times == [1.0, 3.0, 5.0]


def test_finish_before_start_at_same_instant():
    q = EventQueue()
    q.push(2.0, EventKind.TASK_START, "s")
    q.push(2.0, EventKind.COMM_FINISH, "cf")
    q.push(2.0, EventKind.TASK_FINISH, "tf")
    kinds = [e.kind for e in q.drain()]
    assert kinds == [EventKind.COMM_FINISH, EventKind.TASK_FINISH, EventKind.TASK_START]


def test_machine_loss_first():
    q = EventQueue()
    q.push(2.0, EventKind.COMM_FINISH)
    q.push(2.0, EventKind.MACHINE_LOSS)
    assert q.pop().kind is EventKind.MACHINE_LOSS


def test_insertion_order_breaks_remaining_ties():
    q = EventQueue()
    q.push(1.0, EventKind.TASK_START, "first")
    q.push(1.0, EventKind.TASK_START, "second")
    assert [e.payload for e in q.drain()] == ["first", "second"]


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        EventQueue().push(-1.0, EventKind.TASK_START)


def test_pop_empty_rejected():
    with pytest.raises(IndexError):
        EventQueue().pop()


def test_len_and_bool_and_peek():
    q = EventQueue()
    assert not q
    assert q.peek_time() is None
    q.push(4.0, EventKind.TASK_START)
    assert q and len(q) == 1
    assert q.peek_time() == 4.0


def test_event_comparison():
    a = Event(time=1.0, priority=0, seq=0, kind=EventKind.MACHINE_LOSS)
    b = Event(time=1.0, priority=1, seq=1, kind=EventKind.COMM_FINISH)
    assert a < b
