"""Structured task-graph families."""

import networkx as nx
import pytest

from repro.workload.topologies import (
    TOPOLOGIES,
    chain,
    diamond_mesh,
    fft,
    fork_join,
    gaussian_elimination,
    in_tree,
    map_reduce,
    out_tree,
)


class TestChain:
    def test_structure(self):
        g = chain(5)
        assert g.n_tasks == 5
        assert g.depth == 5
        assert g.roots == (0,)
        assert g.leaves == (4,)

    def test_single(self):
        assert chain(1).n_edges == 0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            chain(0)


class TestForkJoin:
    def test_structure(self):
        g = fork_join(branches=3, branch_length=2)
        assert g.n_tasks == 2 + 6
        assert g.roots == (0,)
        assert g.leaves == (g.n_tasks - 1,)
        assert len(g.children[0]) == 3
        assert len(g.parents[g.n_tasks - 1]) == 3

    def test_depth(self):
        g = fork_join(branches=4, branch_length=3)
        assert g.depth == 5  # fork + 3 + join

    def test_rejects_bad(self):
        with pytest.raises(ValueError):
            fork_join(0)


class TestTrees:
    def test_out_tree_counts(self):
        g = out_tree(depth=3, arity=2)
        assert g.n_tasks == 7
        assert g.roots == (0,)
        assert len(g.leaves) == 4

    def test_out_tree_arity_bound(self):
        g = out_tree(depth=4, arity=3)
        assert all(len(c) <= 3 for c in g.children)

    def test_in_tree_mirrors_out_tree(self):
        o = out_tree(depth=3, arity=2)
        i = in_tree(depth=3, arity=2)
        assert i.n_tasks == o.n_tasks
        assert len(i.roots) == len(o.leaves)
        assert i.leaves == (i.n_tasks - 1,)

    def test_in_tree_reduction_shape(self):
        g = in_tree(depth=3, arity=2)
        sink = g.n_tasks - 1
        assert len(g.parents[sink]) == 2

    def test_depth_one(self):
        assert out_tree(1).n_tasks == 1


class TestDiamondMesh:
    def test_counts(self):
        g = diamond_mesh(4)
        assert g.n_tasks == 16
        assert g.n_edges == 2 * 4 * 3

    def test_wavefront_depth(self):
        g = diamond_mesh(5)
        assert g.depth == 9  # 2·side - 1

    def test_corner_dependencies(self):
        g = diamond_mesh(3)
        assert g.roots == (0,)
        assert g.leaves == (8,)
        assert set(g.parents[4]) == {1, 3}


class TestFft:
    def test_counts(self):
        g = fft(8)
        assert g.n_tasks == 4 * 8  # (log2(8)+1) ranks
        assert g.depth == 4

    def test_butterfly_parents(self):
        g = fft(4)
        # Rank-1 node i depends on rank-0 nodes i and i^1.
        assert set(g.parents[4]) == {0, 1}
        assert set(g.parents[5]) == {0, 1}

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft(6)
        with pytest.raises(ValueError):
            fft(1)


class TestGaussianElimination:
    def test_counts(self):
        g = gaussian_elimination(4)
        # steps k=0..2 contribute 1 + (4-k-1) tasks: 4 + 3 + 2 = 9.
        assert g.n_tasks == 9

    def test_pivot_chain_depth(self):
        g = gaussian_elimination(5)
        # pivot->update->pivot->... alternation: depth 2·(size-1).
        assert g.depth == 2 * 4

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            gaussian_elimination(1)


class TestMapReduce:
    def test_structure(self):
        g = map_reduce(mappers=4, reducers=2)
        assert g.n_tasks == 7
        assert len(g.children[0]) == 4
        for r in (5, 6):
            assert len(g.parents[r]) == 4


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_all_topologies_are_dags(name):
    build = TOPOLOGIES[name]
    kwargs = {
        "chain": dict(n_tasks=6),
        "fork_join": dict(branches=3),
        "out_tree": dict(depth=3),
        "in_tree": dict(depth=3),
        "diamond_mesh": dict(side=3),
        "fft": dict(points=4),
        "gaussian_elimination": dict(size=4),
        "map_reduce": dict(mappers=3),
    }[name]
    g = build(**kwargs)
    assert nx.is_directed_acyclic_graph(g.to_networkx())
    # ids increase along edges (valid topological labelling).
    assert all(u < v for u, v in g.edges())


def test_topologies_schedulable(tiny_scenario):
    """A structured DAG slots into the normal scenario pipeline."""
    from repro.core.slrh import SLRH1, SlrhConfig
    from repro.core.objective import Weights
    from repro.workload.data import generate_data_sizes
    from repro.workload.scenario import Scenario
    from repro.sim.validate import validate_schedule
    import numpy as np

    g = diamond_mesh(3)
    rng = np.random.default_rng(0)
    etc = np.abs(rng.gamma(4.0, 5.0, size=(g.n_tasks, tiny_scenario.n_machines))) + 1.0
    scenario = Scenario(
        grid=tiny_scenario.grid,
        etc=etc,
        dag=g,
        data_sizes=generate_data_sizes(g, seed=1),
        tau=1e9,
        name="mesh",
    )
    result = SLRH1(SlrhConfig(weights=Weights.from_alpha_beta(0.6, 0.2))).map(scenario)
    assert result.complete
    validate_schedule(result.schedule, require_complete=True)
