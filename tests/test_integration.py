"""Cross-module integration: the full paper pipeline at miniature scale."""

import pytest

from repro import (
    SLRH1,
    SLRH3,
    MaxMaxConfig,
    MaxMaxScheduler,
    SlrhConfig,
    Weights,
    upper_bound,
    validate_schedule,
)
from repro.baselines.greedy import calibrate_tau
from repro.core.pool import build_candidate_pool
from repro.sim.engine import execute_schedule
from repro.tuning.weight_search import search_weights


class TestSuitePipeline:
    """Generate suite → per-case scenarios → map → validate → compare."""

    @pytest.fixture(scope="class")
    def suite(self, tiny_suite):
        return tiny_suite

    @pytest.mark.parametrize("case", ["A", "B", "C"])
    def test_all_heuristics_validate_everywhere(self, suite, case, mid_weights):
        for scenario in suite.scenarios(case):
            for mapper in (
                SLRH1(SlrhConfig(weights=mid_weights)),
                SLRH3(SlrhConfig(weights=mid_weights)),
                MaxMaxScheduler(MaxMaxConfig(weights=mid_weights)),
            ):
                result = mapper.map(scenario)
                validate_schedule(result.schedule)

    def test_bound_dominates_all_accepted_runs(self, suite, mid_weights):
        for case in "ABC":
            scenario = suite.scenario(0, 0, case)
            bound = upper_bound(scenario).t100_bound
            for mapper in (
                SLRH1(SlrhConfig(weights=mid_weights)),
                MaxMaxScheduler(MaxMaxConfig(weights=mid_weights)),
            ):
                result = mapper.map(scenario)
                if result.success:
                    assert result.t100 <= bound

    def test_replay_of_every_mapping(self, suite, mid_weights):
        scenario = suite.scenario(1, 1, "A")
        result = SLRH1(SlrhConfig(weights=mid_weights)).map(scenario)
        log = execute_schedule(result.schedule)
        assert log.makespan == pytest.approx(result.schedule.makespan)


class TestTauCalibrationPipeline:
    def test_calibrated_tau_admits_slrh_solutions(self, small_scenario):
        tau = calibrate_tau(small_scenario, slack=1.5)
        scenario = small_scenario.with_tau(tau)
        res = search_weights(
            scenario,
            lambda w: SLRH1(SlrhConfig(weights=w)),
            coarse_step=0.25,
            fine=False,
        )
        assert res.succeeded


class TestEnergyConservation:
    def test_tec_equals_sum_of_assignment_energies(self, small_scenario, mid_weights):
        result = SLRH1(SlrhConfig(weights=mid_weights)).map(small_scenario)
        sched = result.schedule
        total = sum(a.energy for a in sched.assignments.values()) + sum(
            c.energy for a in sched.assignments.values() for c in a.comms
        )
        assert sched.total_energy_consumed == pytest.approx(total)

    def test_no_battery_exceeded_ever(self, small_scenario, mid_weights):
        result = SLRH1(SlrhConfig(weights=mid_weights)).map(small_scenario)
        sched = result.schedule
        for j in range(small_scenario.n_machines):
            assert sched.energy.consumed(j) <= small_scenario.grid[j].battery + 1e-9


class TestPoolScheduleAgreement:
    def test_pool_plans_commit_cleanly(self, small_scenario, mid_weights):
        """Every candidate the pool produces must be committable."""
        from repro.core.feasibility import FeasibilityChecker
        from repro.core.objective import ObjectiveFunction
        from repro.sim.schedule import Schedule

        schedule = Schedule(small_scenario)
        checker = FeasibilityChecker(small_scenario)
        objective = ObjectiveFunction.for_scenario(small_scenario, mid_weights)
        pool = build_candidate_pool(schedule, checker, objective, 0, not_before=0.0)
        assert pool
        schedule.commit(pool[0].plan)
        validate_schedule(schedule)
