"""The shared heuristic registry (:mod:`repro.heuristics`) — the single
dispatch point behind the batch CLI, the §VII factories and the service."""

from __future__ import annotations

import pytest

from repro.baselines.greedy import GreedyScheduler
from repro.baselines.maxmax import MaxMaxScheduler
from repro.baselines.minmin import MinMinScheduler
from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SLRH2, SLRH3
from repro.experiments.comparison import make_factory
from repro.heuristics import (
    HEURISTIC_NAMES,
    WEIGHTED_HEURISTICS,
    display_name,
    generate_named_scenario,
    make_scheduler,
    normalize_heuristic,
    run_heuristic,
)


class TestNormalization:
    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("slrh1", "slrh1"),
            ("SLRH-1", "slrh1"),
            ("slrh_2", "slrh2"),
            ("SLRH-3", "slrh3"),
            ("Max-Max", "maxmax"),
            ("MAXMAX", "maxmax"),
            ("Min-Min", "minmin"),
            ("Greedy", "greedy"),
        ],
    )
    def test_aliases(self, alias, canonical):
        assert normalize_heuristic(alias) == canonical

    def test_unknown_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown heuristic"):
            normalize_heuristic("olb9000")

    def test_display_names(self):
        assert display_name("slrh1") == "SLRH-1"
        assert display_name("maxmax") == "Max-Max"
        assert display_name("Greedy") == "Greedy"

    def test_registry_covers_issue_names(self):
        assert set(HEURISTIC_NAMES) == {
            "slrh1", "slrh2", "slrh3", "maxmax", "minmin", "greedy"
        }
        assert set(WEIGHTED_HEURISTICS) == {"slrh1", "slrh2", "slrh3", "maxmax"}


class TestMakeScheduler:
    def test_builds_expected_classes(self):
        w = Weights.from_alpha_beta(0.4, 0.3)
        assert isinstance(make_scheduler("slrh1", w), SLRH1)
        assert isinstance(make_scheduler("slrh2", w), SLRH2)
        assert isinstance(make_scheduler("slrh3", w), SLRH3)
        assert isinstance(make_scheduler("maxmax", w), MaxMaxScheduler)
        assert isinstance(make_scheduler("minmin"), MinMinScheduler)
        assert isinstance(make_scheduler("greedy"), GreedyScheduler)

    def test_weights_reach_the_config(self):
        w = Weights.from_alpha_beta(0.7, 0.1)
        assert make_scheduler("slrh1", w).config.weights == w
        assert make_scheduler("maxmax", w).config.weights == w

    def test_weightless_baselines_reject_weights(self):
        with pytest.raises(ValueError, match="does not take objective weights"):
            make_scheduler("greedy", Weights.from_alpha_beta(0.5, 0.2))


class TestRunHeuristic:
    @pytest.mark.parametrize("name", HEURISTIC_NAMES)
    def test_every_heuristic_maps(self, tiny_scenario, name):
        result = run_heuristic(name, tiny_scenario)
        assert result.schedule.n_mapped > 0
        assert result.heuristic == display_name(name)

    def test_alpha_beta_forwarded(self, tiny_scenario):
        result = run_heuristic("slrh1", tiny_scenario, alpha=0.6, beta=0.1)
        assert result.weights.alpha == 0.6
        assert result.weights.beta == 0.1

    def test_weights_rejected_for_baselines(self, tiny_scenario):
        with pytest.raises(ValueError):
            run_heuristic("minmin", tiny_scenario, alpha=0.5)


class TestComparisonFactoryIntegration:
    def test_factory_dispatches_through_registry(self):
        w = Weights.from_alpha_beta(0.5, 0.2)
        assert isinstance(make_factory("SLRH-1")(w), SLRH1)
        assert isinstance(make_factory("Max-Max")(w), MaxMaxScheduler)

    def test_factory_rejects_unweighted_and_unknown(self):
        with pytest.raises(KeyError):
            make_factory("Greedy")  # nothing to weight-search
        with pytest.raises(KeyError):
            make_factory("nope")


class TestGenerateNamedScenario:
    def test_deterministic_and_named(self):
        a = generate_named_scenario(16, 3)
        b = generate_named_scenario(16, 3)
        assert a.name == b.name == "gen16-seed3"
        assert (a.etc == b.etc).all()
        assert a.dag.edges() == b.dag.edges()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            generate_named_scenario(0, 1)
