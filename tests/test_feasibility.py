"""SLRH feasibility rule: parents mapped + worst-case comm energy reserve."""

import pytest

from repro.core.feasibility import FeasibilityChecker
from repro.sim.schedule import Schedule
from repro.workload.versions import PRIMARY, SECONDARY


@pytest.fixture
def checker(tiny_scenario):
    return FeasibilityChecker(tiny_scenario)


@pytest.fixture
def schedule(tiny_scenario):
    return Schedule(tiny_scenario)


class TestRequiredEnergy:
    def test_includes_comm_reserve(self, tiny_scenario, checker):
        no_reserve = FeasibilityChecker(tiny_scenario, comm_reserve=False)
        root = tiny_scenario.dag.roots[0]
        with_r = checker.required_energy(root, 0, SECONDARY)
        without = no_reserve.required_energy(root, 0, SECONDARY)
        if tiny_scenario.dag.children[root]:
            assert with_r > without
        else:
            assert with_r == pytest.approx(without)

    def test_version_scaling(self, tiny_scenario, checker):
        root = tiny_scenario.dag.roots[0]
        primary = checker.required_energy(root, 0, PRIMARY)
        secondary = checker.required_energy(root, 0, SECONDARY)
        assert secondary == pytest.approx(0.1 * primary)

    def test_worst_case_comm_energy_formula(self, tiny_scenario, checker):
        root = tiny_scenario.dag.roots[0]
        total_bits = sum(
            tiny_scenario.data_bits(root, c, PRIMARY)
            for c in tiny_scenario.dag.children[root]
        )
        expected = tiny_scenario.network.worst_case_transfer_energy(0, total_bits)
        assert checker.worst_case_comm_energy(root, 0, PRIMARY) == pytest.approx(expected)


class TestIsFeasible:
    def test_root_feasible_initially(self, schedule, checker, tiny_scenario):
        root = tiny_scenario.dag.roots[0]
        assert checker.is_feasible(schedule, root, 0)

    def test_unmapped_parents_infeasible(self, schedule, checker, tiny_scenario):
        dag = tiny_scenario.dag
        non_root = next(t for t in range(dag.n_tasks) if dag.parents[t])
        assert not checker.is_feasible(schedule, non_root, 0)

    def test_mapped_task_infeasible(self, schedule, checker, tiny_scenario):
        root = tiny_scenario.dag.roots[0]
        schedule.commit(schedule.plan(root, PRIMARY, 0))
        assert not checker.is_feasible(schedule, root, 0)

    def test_energy_exhaustion_infeasible(self, tiny_scenario, checker):
        schedule = Schedule(tiny_scenario)
        root = tiny_scenario.dag.roots[0]
        # Drain machine 0 almost entirely.
        schedule.debit_external(0, schedule.available_energy(0) * 0.9999)
        need = checker.required_energy(root, 0, SECONDARY)
        if need > schedule.available_energy(0):
            assert not checker.is_feasible(schedule, root, 0)
        else:
            assert checker.is_feasible(schedule, root, 0)

    def test_reserves_reduce_feasibility(self, tiny_scenario):
        """Held reserves shrink the budget the checker sees."""
        checker = FeasibilityChecker(tiny_scenario)
        schedule = Schedule(tiny_scenario)
        root = tiny_scenario.dag.roots[0]
        before = schedule.available_energy(0)
        schedule.commit(schedule.plan(root, PRIMARY, 0))
        after = schedule.available_energy(0)
        assert after < before
