"""Objective function: weights simplex, term normalisation, AET modes."""

import pytest

from repro.core.objective import ObjectiveFunction, Weights
from repro.sim.schedule import Schedule
from repro.workload.versions import PRIMARY, SECONDARY


class TestWeights:
    def test_from_alpha_beta(self):
        w = Weights.from_alpha_beta(0.5, 0.3)
        assert w.gamma == pytest.approx(0.2)

    def test_simplex_sum_enforced(self):
        with pytest.raises(ValueError):
            Weights(0.5, 0.5, 0.5)

    def test_range_enforced(self):
        with pytest.raises(ValueError):
            Weights(1.5, -0.5, 0.0)

    def test_alpha_beta_overflow(self):
        with pytest.raises(ValueError):
            Weights.from_alpha_beta(0.8, 0.4)

    def test_corners_allowed(self):
        for corner in [(1, 0), (0, 1), (0, 0)]:
            Weights.from_alpha_beta(*corner)

    def test_as_tuple(self):
        assert Weights.from_alpha_beta(0.2, 0.3).as_tuple() == pytest.approx(
            (0.2, 0.3, 0.5)
        )


@pytest.fixture
def objective():
    return ObjectiveFunction(
        weights=Weights.from_alpha_beta(0.5, 0.3),
        n_tasks=100,
        total_system_energy=1000.0,
        tau=500.0,
    )


class TestValue:
    def test_empty_state_zero(self, objective):
        assert objective.value(0, 0.0, 0.0) == pytest.approx(0.0)

    def test_alpha_term(self, objective):
        assert objective.value(100, 0.0, 0.0) == pytest.approx(0.5)

    def test_beta_term_negative(self, objective):
        assert objective.value(0, 1000.0, 0.0) == pytest.approx(-0.3)

    def test_gamma_term_peaks_at_tau(self, objective):
        at_tau = objective.value(0, 0.0, 500.0)
        below = objective.value(0, 0.0, 400.0)
        above = objective.value(0, 0.0, 600.0)
        assert at_tau == pytest.approx(0.2)
        assert below < at_tau
        assert above < at_tau  # tent decays past tau

    def test_tent_reaches_zero_at_two_tau(self, objective):
        assert objective.value(0, 0.0, 1000.0) == pytest.approx(0.0)
        assert objective.value(0, 0.0, 2000.0) == pytest.approx(0.0)

    def test_bounded_in_unit_interval(self, objective):
        # With weights on the simplex and all terms normalised, ObjFn
        # stays within [-1, 1].
        for t100 in (0, 50, 100):
            for tec in (0.0, 500.0, 1000.0):
                for aet in (0.0, 250.0, 500.0, 750.0):
                    assert -1.0 <= objective.value(t100, tec, aet) <= 1.0

    def test_clamp_mode(self):
        obj = ObjectiveFunction(
            weights=Weights(0, 0, 1.0), n_tasks=10,
            total_system_energy=1.0, tau=100.0, aet_mode="clamp",
        )
        assert obj.value(0, 0, 150.0) == pytest.approx(1.0)

    def test_raw_mode(self):
        obj = ObjectiveFunction(
            weights=Weights(0, 0, 1.0), n_tasks=10,
            total_system_energy=1.0, tau=100.0, aet_mode="raw",
        )
        assert obj.value(0, 0, 150.0) == pytest.approx(1.5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveFunction(
                weights=Weights(1, 0, 0), n_tasks=10,
                total_system_energy=1.0, tau=1.0, aet_mode="bogus",
            )

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ObjectiveFunction(Weights(1, 0, 0), 0, 1.0, 1.0)
        with pytest.raises(ValueError):
            ObjectiveFunction(Weights(1, 0, 0), 1, 0.0, 1.0)
        with pytest.raises(ValueError):
            ObjectiveFunction(Weights(1, 0, 0), 1, 1.0, 0.0)


class TestAfterPlan:
    def test_after_plan_matches_commit(self, tiny_scenario, mid_weights):
        schedule = Schedule(tiny_scenario)
        objective = ObjectiveFunction.for_scenario(tiny_scenario, mid_weights)
        root = tiny_scenario.dag.roots[0]
        plan = schedule.plan(root, PRIMARY, 0)
        predicted = objective.after_plan(schedule, plan)
        schedule.commit(plan)
        assert objective.of_schedule(schedule) == pytest.approx(predicted)

    def test_primary_beats_secondary_alpha_only(self, tiny_scenario):
        schedule = Schedule(tiny_scenario)
        objective = ObjectiveFunction.for_scenario(
            tiny_scenario, Weights(1.0, 0.0, 0.0)
        )
        root = tiny_scenario.dag.roots[0]
        p1 = schedule.plan(root, PRIMARY, 0)
        p2 = schedule.plan(root, SECONDARY, 0)
        assert objective.after_plan(schedule, p1) > objective.after_plan(schedule, p2)

    def test_secondary_beats_primary_beta_only(self, tiny_scenario):
        schedule = Schedule(tiny_scenario)
        objective = ObjectiveFunction.for_scenario(
            tiny_scenario, Weights(0.0, 1.0, 0.0)
        )
        root = tiny_scenario.dag.roots[0]
        p1 = schedule.plan(root, PRIMARY, 0)
        p2 = schedule.plan(root, SECONDARY, 0)
        assert objective.after_plan(schedule, p2) > objective.after_plan(schedule, p1)

    def test_for_scenario_binds_constants(self, tiny_scenario, mid_weights):
        obj = ObjectiveFunction.for_scenario(tiny_scenario, mid_weights)
        assert obj.n_tasks == tiny_scenario.n_tasks
        assert obj.tau == tiny_scenario.tau
        assert obj.total_system_energy == pytest.approx(
            tiny_scenario.grid.total_system_energy
        )
