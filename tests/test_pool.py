"""Candidate pool construction, version selection, and ordering."""

import pytest

from repro.core.feasibility import FeasibilityChecker
from repro.core.objective import ObjectiveFunction, Weights
from repro.core.pool import build_candidate_pool, evaluate_versions
from repro.sim.schedule import Schedule
from repro.workload.versions import PRIMARY, SECONDARY


@pytest.fixture
def parts(tiny_scenario, mid_weights):
    schedule = Schedule(tiny_scenario)
    checker = FeasibilityChecker(tiny_scenario)
    objective = ObjectiveFunction.for_scenario(tiny_scenario, mid_weights)
    return schedule, checker, objective


class TestEvaluateVersions:
    def test_returns_candidate(self, parts, tiny_scenario):
        schedule, _, objective = parts
        root = tiny_scenario.dag.roots[0]
        c = evaluate_versions(schedule, objective, root, 0, not_before=0.0)
        assert c is not None
        assert c.task == root
        assert c.version in (PRIMARY, SECONDARY)

    def test_alpha_dominant_selects_primary(self, tiny_scenario):
        schedule = Schedule(tiny_scenario)
        objective = ObjectiveFunction.for_scenario(tiny_scenario, Weights(1, 0, 0))
        root = tiny_scenario.dag.roots[0]
        c = evaluate_versions(schedule, objective, root, 0, not_before=0.0)
        assert c.version is PRIMARY

    def test_beta_dominant_selects_secondary(self, tiny_scenario):
        schedule = Schedule(tiny_scenario)
        objective = ObjectiveFunction.for_scenario(tiny_scenario, Weights(0, 1, 0))
        root = tiny_scenario.dag.roots[0]
        c = evaluate_versions(schedule, objective, root, 0, not_before=0.0)
        assert c.version is SECONDARY

    def test_score_matches_objective(self, parts, tiny_scenario):
        schedule, _, objective = parts
        root = tiny_scenario.dag.roots[0]
        c = evaluate_versions(schedule, objective, root, 0, not_before=0.0)
        assert c.score == pytest.approx(objective.after_plan(schedule, c.plan))

    def test_equal_scores_prefer_primary(self, parts, tiny_scenario, monkeypatch):
        """The explicit tie rule: on equal objective the version counting
        toward T100 wins, even if the evaluation order is flipped."""
        schedule, _, objective = parts
        root = tiny_scenario.dag.roots[0]
        monkeypatch.setattr(
            type(objective), "after_plan", lambda self, sched, plan: 0.0
        )
        original = type(schedule).plan_versions
        monkeypatch.setattr(
            type(schedule),
            "plan_versions",
            lambda self, *a, **kw: tuple(reversed(original(self, *a, **kw))),
        )
        c = evaluate_versions(schedule, objective, root, 0, not_before=0.0)
        assert c.score == 0.0
        assert c.version is PRIMARY


class TestBuildPool:
    def test_pool_contains_only_ready(self, parts, tiny_scenario):
        schedule, checker, objective = parts
        pool = build_candidate_pool(schedule, checker, objective, 0, not_before=0.0)
        ready = schedule.ready_tasks()
        assert {c.task for c in pool} <= ready

    def test_pool_sorted_descending(self, parts):
        schedule, checker, objective = parts
        pool = build_candidate_pool(schedule, checker, objective, 0, not_before=0.0)
        scores = [c.score for c in pool]
        assert scores == sorted(scores, reverse=True)

    def test_one_candidate_per_task(self, parts):
        schedule, checker, objective = parts
        pool = build_candidate_pool(schedule, checker, objective, 0, not_before=0.0)
        tasks = [c.task for c in pool]
        assert len(tasks) == len(set(tasks))

    def test_explicit_task_filter(self, parts, tiny_scenario):
        schedule, checker, objective = parts
        roots = tiny_scenario.dag.roots
        pool = build_candidate_pool(
            schedule, checker, objective, 0, not_before=0.0, tasks=[roots[0]]
        )
        assert [c.task for c in pool] == [roots[0]]

    def test_empty_when_all_mapped(self, tiny_scenario, mid_weights):
        schedule = Schedule(tiny_scenario)
        checker = FeasibilityChecker(tiny_scenario)
        objective = ObjectiveFunction.for_scenario(tiny_scenario, mid_weights)
        for task in tiny_scenario.dag.topological_order:
            for j in range(tiny_scenario.n_machines):
                plan = schedule.plan(task, SECONDARY, j, insertion=True)
                if plan.feasible:
                    schedule.commit(plan)
                    break
        pool = build_candidate_pool(schedule, checker, objective, 0, not_before=0.0)
        assert pool == []

    def test_deterministic(self, tiny_scenario, mid_weights):
        def build():
            schedule = Schedule(tiny_scenario)
            checker = FeasibilityChecker(tiny_scenario)
            objective = ObjectiveFunction.for_scenario(tiny_scenario, mid_weights)
            return [
                (c.task, c.version.value, c.score)
                for c in build_candidate_pool(schedule, checker, objective, 0, 0.0)
            ]

        assert build() == build()


class TestLedgerCompleteness:
    """Every plan that loses the version selection must land in the ledger.

    The old implementation kept a single ``loser`` slot, so with three or
    more plans in flight an intermediate dethroned best silently vanished
    from the rejection trail.  These tests synthesise a >2-plan selection
    by doubling ``plan_versions`` and scripting the scores."""

    def _run(self, parts, tiny_scenario, monkeypatch, scores):
        from repro.obs.ledger import LOST_ON_SCORE, DecisionLedger

        schedule, _, objective = parts
        root = tiny_scenario.dag.roots[0]
        original = type(schedule).plan_versions
        monkeypatch.setattr(
            type(schedule),
            "plan_versions",
            lambda self, *a, **kw: original(self, *a, **kw) * 2,
        )
        it = iter(scores)
        monkeypatch.setattr(
            type(objective), "after_plan", lambda self, sched, plan: next(it)
        )
        ledger = DecisionLedger()
        best = evaluate_versions(
            schedule, objective, root, 0, not_before=0.0, ledger=ledger
        )
        lost = [r for r in ledger.records if r.reason == LOST_ON_SCORE]
        return best, lost

    def test_every_dethroned_best_is_recorded(
        self, parts, tiny_scenario, monkeypatch
    ):
        """Ascending scores: each plan dethrones the previous best; all
        three intermediate bests must be ledgered against the final winner."""
        best, lost = self._run(
            parts, tiny_scenario, monkeypatch, [1.0, 2.0, 3.0, 4.0]
        )
        assert best is not None and best.score == 4.0
        assert len(lost) == 3
        assert [r.margin for r in lost] == [3.0, 2.0, 1.0]
        assert [r.score for r in lost] == [1.0, 2.0, 3.0]
        assert all(r.version is not None for r in lost)

    def test_every_outscored_plan_is_recorded(
        self, parts, tiny_scenario, monkeypatch
    ):
        """Descending scores: the first plan wins outright; every later
        plan is an outscored loser and must be ledgered."""
        best, lost = self._run(
            parts, tiny_scenario, monkeypatch, [4.0, 3.0, 2.0, 1.0]
        )
        assert best is not None and best.score == 4.0
        assert len(lost) == 3
        assert [r.margin for r in lost] == [1.0, 2.0, 3.0]
