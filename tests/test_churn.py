"""Grid churn: machines leaving and rejoining mid-run."""

import pytest

from repro.core.slrh import SLRH1, SlrhConfig
from repro.sim.churn import ChurnEvent, run_with_churn
from repro.sim.schedule import Schedule
from repro.sim.validate import validate_schedule


@pytest.fixture(scope="module")
def scheduler(mid_weights):
    return SLRH1(SlrhConfig(weights=mid_weights))


def _quarter(scenario):
    return int(scenario.tau / 4 / 0.1)


class TestChurnEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnEvent(cycle=-1, machine=0, kind="loss")
        with pytest.raises(ValueError):
            ChurnEvent(cycle=0, machine=0, kind="explode")


class TestOfflineFlag:
    def test_set_offline_blocks_availability(self, tiny_scenario):
        schedule = Schedule(tiny_scenario)
        schedule.set_offline(0)
        assert not schedule.machine_available(0, 0.0)
        schedule.set_offline(0, False)
        assert schedule.machine_available(0, 0.0)

    def test_offline_plans_infeasible(self, tiny_scenario):
        schedule = Schedule(tiny_scenario)
        schedule.set_offline(0)
        root = tiny_scenario.dag.roots[0]
        from repro.workload.versions import PRIMARY

        plan = schedule.plan(root, PRIMARY, 0)
        assert not plan.feasible
        assert "offline" in plan.reason

    def test_set_offline_bad_index(self, tiny_scenario):
        with pytest.raises(IndexError):
            Schedule(tiny_scenario).set_offline(99)


class TestLossOnly:
    def test_loss_rolls_back_machine_work(self, small_scenario, scheduler):
        q = _quarter(small_scenario)
        out = run_with_churn(small_scenario, scheduler, [ChurnEvent(q, 0, "loss")])
        validate_schedule(out.final.schedule)
        for a in out.final.schedule.assignments.values():
            # Work on machine 0 may only exist if it started fresh after...
            # no: machine 0 never returns, so nothing may sit on it except
            # assignments committed before the loss that were kept — but the
            # rollback rule drops all machine-0 work.
            assert a.machine != 0

    def test_sunk_energy_nonnegative(self, small_scenario, scheduler):
        q = _quarter(small_scenario)
        out = run_with_churn(small_scenario, scheduler, [ChurnEvent(q, 1, "loss")])
        assert all(r.sunk_energy >= 0.0 for r in out.records)

    def test_double_loss_rejected(self, small_scenario, scheduler):
        q = _quarter(small_scenario)
        with pytest.raises(ValueError):
            run_with_churn(
                small_scenario, scheduler,
                [ChurnEvent(q, 0, "loss"), ChurnEvent(q + 10, 0, "loss")],
            )

    def test_join_without_loss_rejected(self, small_scenario, scheduler):
        with pytest.raises(ValueError):
            run_with_churn(small_scenario, scheduler, [ChurnEvent(5, 0, "join")])

    def test_bad_machine_rejected(self, small_scenario, scheduler):
        with pytest.raises(IndexError):
            run_with_churn(small_scenario, scheduler, [ChurnEvent(5, 42, "loss")])


class TestLossAndRejoin:
    def test_machine_usable_after_rejoin(self, small_scenario, scheduler):
        q = _quarter(small_scenario)
        out = run_with_churn(
            small_scenario, scheduler,
            [ChurnEvent(q, 1, "loss"), ChurnEvent(2 * q, 1, "join")],
        )
        validate_schedule(out.final.schedule)
        # Any machine-1 assignment must have been (re)committed after the
        # machine was back — i.e. it cannot *start executing* while the
        # machine was offline... it can start after rejoin only.
        rejoin_time = 2 * q * 0.1
        loss_time = q * 0.1
        for a in out.final.schedule.assignments.values():
            if a.machine == 1 and a.start >= loss_time - 1e-9:
                assert a.start >= rejoin_time - 1e-9

    def test_no_events_equals_plain_map(self, small_scenario, scheduler):
        plain = scheduler.map(small_scenario)
        churned = run_with_churn(small_scenario, scheduler, [])
        assert churned.final.schedule.summary()["t100"] == plain.t100
        assert churned.final.schedule.summary()["aet"] == pytest.approx(plain.aet)

    def test_rejoin_improves_on_pure_loss(self, small_scenario, scheduler):
        q = _quarter(small_scenario)
        lost = run_with_churn(small_scenario, scheduler, [ChurnEvent(q, 1, "loss")])
        back = run_with_churn(
            small_scenario, scheduler,
            [ChurnEvent(q, 1, "loss"), ChurnEvent(q + 10, 1, "join")],
        )
        # A near-immediate rejoin must not map fewer subtasks than a
        # permanent loss.
        assert back.final.schedule.n_mapped >= lost.final.schedule.n_mapped

    def test_trace_merged_across_segments(self, small_scenario, scheduler):
        q = _quarter(small_scenario)
        out = run_with_churn(
            small_scenario, scheduler,
            [ChurnEvent(q, 1, "loss"), ChurnEvent(2 * q, 1, "join")],
        )
        assert out.final.trace.n_commits >= out.final.schedule.n_mapped
