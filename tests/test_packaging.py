"""Public API surface sanity."""

import pathlib

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


def test_no_private_names_exported():
    assert all(not n.startswith("_") or n == "__version__" for n in repro.__all__)


def test_key_entry_points_present():
    for name in (
        "SLRH1", "SLRH2", "SLRH3", "MaxMaxScheduler", "LrnnScheduler",
        "Weights", "Scenario", "Schedule", "validate_schedule",
        "upper_bound", "upper_bound_strict", "paper_scaled_suite",
        "run_with_machine_loss", "run_with_churn",
    ):
        assert name in repro.__all__


def test_py_typed_marker_ships():
    pkg_root = pathlib.Path(repro.__file__).parent
    assert (pkg_root / "py.typed").exists()


def test_subpackages_importable():
    import importlib

    for mod in (
        "repro.grid", "repro.workload", "repro.sim", "repro.core",
        "repro.baselines", "repro.bounds", "repro.tuning",
        "repro.experiments", "repro.analysis", "repro.io",
    ):
        importlib.import_module(mod)


def test_docs_exist():
    repo = pathlib.Path(repro.__file__).parents[2]
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
        assert (repo / doc).exists(), f"{doc} missing from repository root"
