"""ETC generation: CVB gamma statistics and MR computation."""

import numpy as np
import pytest

from repro.grid.config import CASE_A, make_case
from repro.workload.etc import EtcSpec, generate_etc, min_relative_speed


class TestSpecValidation:
    def test_defaults_valid(self):
        EtcSpec()

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            EtcSpec(mean_task_time=0.0)

    def test_rejects_nonpositive_cv(self):
        with pytest.raises(ValueError):
            EtcSpec(task_cv=0.0)
        with pytest.raises(ValueError):
            EtcSpec(machine_cv=-0.1)

    def test_rejects_sub_unit_speedup(self):
        with pytest.raises(ValueError):
            EtcSpec(fast_speedup_mean=0.5)


class TestGeneration:
    def test_shape(self):
        etc = generate_etc(100, CASE_A, seed=0)
        assert etc.shape == (100, 4)

    def test_strictly_positive(self):
        etc = generate_etc(500, CASE_A, seed=1)
        assert (etc > 0).all()

    def test_reproducible(self):
        a = generate_etc(50, CASE_A, seed=9)
        b = generate_etc(50, CASE_A, seed=9)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        a = generate_etc(50, CASE_A, seed=1)
        b = generate_etc(50, CASE_A, seed=2)
        assert not np.array_equal(a, b)

    def test_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            generate_etc(0, CASE_A, seed=0)

    def test_slow_class_mean_near_spec(self):
        spec = EtcSpec(mean_task_time=131.0)
        etc = generate_etc(4000, CASE_A, spec, seed=3)
        slow_mean = etc[:, 2:].mean()
        assert slow_mean == pytest.approx(131.0, rel=0.1)

    def test_fast_machines_roughly_ten_times_faster(self):
        etc = generate_etc(4000, CASE_A, seed=4)
        ratio = etc[:, 2:].mean() / etc[:, :2].mean()
        assert 6.0 < ratio < 14.0

    def test_fast_beats_slow_per_task_usually(self):
        etc = generate_etc(1000, CASE_A, seed=5)
        frac = (etc[:, 0] < etc[:, 2]).mean()
        assert frac > 0.95

    def test_per_task_ratio_random_not_constant(self):
        etc = generate_etc(200, CASE_A, seed=6)
        ratios = etc[:, 2] / etc[:, 0]
        assert ratios.std() / ratios.mean() > 0.1

    def test_slow_only_grid(self):
        g = make_case(0, 2)
        etc = generate_etc(100, g, seed=7)
        assert etc.shape == (100, 2)


class TestMinRelativeSpeed:
    def test_reference_is_one(self):
        etc = generate_etc(100, CASE_A, seed=0)
        mr = min_relative_speed(etc)
        assert mr[0] == pytest.approx(1.0)

    def test_fast_below_one_slow_above(self):
        etc = generate_etc(1024, CASE_A, seed=0)
        mr = min_relative_speed(etc)
        assert mr[1] < 1.0
        assert mr[2] > 1.0 and mr[3] > 1.0

    def test_is_lower_bound_on_ratio(self):
        etc = generate_etc(64, CASE_A, seed=2)
        mr = min_relative_speed(etc)
        ratios = etc / etc[:, [0]]
        assert (ratios >= mr[np.newaxis, :] - 1e-12).all()

    def test_alternative_reference(self):
        etc = generate_etc(64, CASE_A, seed=2)
        mr = min_relative_speed(etc, reference=2)
        assert mr[2] == pytest.approx(1.0)

    def test_rejects_bad_reference(self):
        etc = generate_etc(10, CASE_A, seed=0)
        with pytest.raises(IndexError):
            min_relative_speed(etc, reference=4)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            min_relative_speed(np.ones(5))
