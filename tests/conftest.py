"""Shared fixtures: small, fast scenarios reused across the test suite."""

from __future__ import annotations

import pytest

from repro import (
    CASE_A,
    ScenarioSpec,
    SlrhConfig,
    Weights,
    generate_scenario,
    paper_scaled_grid,
    paper_scaled_spec,
    paper_scaled_suite,
)


@pytest.fixture(scope="session")
def tiny_scenario():
    """12 subtasks on the paper-scaled Case A grid — fast regime-faithful
    instance for scheduler unit tests."""
    # Seed 21 gives a DAG whose first root has a single-parent child and
    # which has two roots — shapes several schedule/validation tests rely on.
    spec = paper_scaled_spec(12)
    return generate_scenario(spec, grid=paper_scaled_grid(12), seed=21, name="tiny")


@pytest.fixture(scope="session")
def small_scenario():
    """32 subtasks, the workhorse for integration-level assertions."""
    spec = paper_scaled_spec(32)
    return generate_scenario(spec, grid=paper_scaled_grid(32), seed=5, name="small")


@pytest.fixture(scope="session")
def loose_scenario():
    """A scenario with effectively no time/energy pressure: every heuristic
    should map everything primary.  Useful for invariant checks."""
    spec = ScenarioSpec(n_tasks=16, tau=1e9)
    return generate_scenario(spec, grid=CASE_A, seed=3, name="loose")


@pytest.fixture(scope="session")
def tiny_suite():
    """A 2-ETC × 2-DAG suite at |T| = 16 for protocol tests."""
    return paper_scaled_suite(16, n_etc=2, n_dag=2, seed=42)


@pytest.fixture(scope="session")
def mid_weights():
    return Weights.from_alpha_beta(0.5, 0.2)


@pytest.fixture(scope="session")
def mid_config(mid_weights):
    return SlrhConfig(weights=mid_weights)
