"""Property-based stress of the Schedule plan/commit/unassign protocol.

Hypothesis drives randomised action sequences against a small scenario and
asserts the invariants that no unit test can sweep exhaustively:

* the independent validator accepts the schedule after *every* action;
* energy is conserved across commit/unassign round trips;
* held communication reserves are exactly the sum of live edge reserves;
* the ready set always equals {unmapped tasks with all parents mapped}.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.schedule import Schedule
from repro.sim.validate import validate_schedule
from repro.workload.scenario import (
    generate_scenario,
    paper_scaled_grid,
    paper_scaled_spec,
)
from repro.workload.versions import PRIMARY, SECONDARY


def _scenario(seed: int):
    return generate_scenario(
        paper_scaled_spec(10), grid=paper_scaled_grid(10), seed=seed
    )


def _check_invariants(schedule: Schedule) -> None:
    validate_schedule(schedule)
    scenario = schedule.scenario
    # Ready set definition.
    expected_ready = {
        t
        for t in range(scenario.n_tasks)
        if t not in schedule.assignments
        and all(p in schedule.assignments for p in scenario.dag.parents[t])
    }
    assert schedule.ready_tasks() == frozenset(expected_ready)
    # Reserve ledger is the sum of per-edge reserves, per machine.
    per_machine = [0.0] * scenario.n_machines
    for (parent, _child), held in schedule._edge_reserve.items():
        per_machine[schedule.assignments[parent].machine] += held
    for j in range(scenario.n_machines):
        assert abs(per_machine[j] - schedule.reserved_energy(j)) < 1e-9
        assert schedule.available_energy(j) <= schedule.energy.remaining(j) + 1e-9


actions = st.lists(
    st.tuples(
        st.sampled_from(["commit", "unassign"]),
        st.integers(min_value=0, max_value=9),  # task selector
        st.integers(min_value=0, max_value=3),  # machine selector
        st.booleans(),  # primary?
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=7), script=actions)
def test_random_action_sequences_preserve_invariants(seed, script):
    scenario = _scenario(seed)
    schedule = Schedule(scenario)
    for op, task_sel, machine_sel, primary in script:
        machine = machine_sel % scenario.n_machines
        if op == "commit":
            ready = sorted(schedule.ready_tasks())
            if not ready:
                continue
            task = ready[task_sel % len(ready)]
            version = PRIMARY if primary else SECONDARY
            plan = schedule.plan(task, version, machine, insertion=True)
            if plan.feasible:
                schedule.commit(plan)
        else:  # unassign a task whose children are unmapped
            candidates = sorted(
                t
                for t in schedule.assignments
                if all(
                    c not in schedule.assignments
                    for c in scenario.dag.children[t]
                )
            )
            if not candidates:
                continue
            schedule.unassign(candidates[task_sel % len(candidates)])
        _check_invariants(schedule)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=7))
def test_commit_all_then_unassign_all_is_identity(seed):
    scenario = _scenario(seed)
    schedule = Schedule(scenario)
    committed = []
    for task in scenario.dag.topological_order:
        for machine in range(scenario.n_machines):
            plan = schedule.plan(task, SECONDARY, machine, insertion=True)
            if plan.feasible:
                schedule.commit(plan)
                committed.append(task)
                break
    for task in reversed(committed):
        schedule.unassign(task)
    assert schedule.n_mapped == 0
    assert schedule.t100 == 0
    assert schedule.makespan == 0.0
    assert schedule.total_energy_consumed < 1e-9
    for j in range(scenario.n_machines):
        assert abs(schedule.reserved_energy(j)) < 1e-9
        assert len(schedule.exec_timeline[j]) == 0
        assert len(schedule.out_channel[j]) == 0
        assert len(schedule.in_channel[j]) == 0
    assert schedule.ready_tasks() == frozenset(scenario.dag.roots)
