"""Machine model: Table 2 constants and spec invariants."""

import pytest

from repro.grid.machine import FAST_MACHINE, SLOW_MACHINE, MachineClass, MachineSpec
from repro.util.units import MEGABIT


class TestTable2Constants:
    def test_fast_battery(self):
        assert FAST_MACHINE.battery == 580.0

    def test_slow_battery(self):
        assert SLOW_MACHINE.battery == 58.0

    def test_fast_rates(self):
        assert FAST_MACHINE.compute_rate == 0.1
        assert FAST_MACHINE.transmit_rate == 0.2

    def test_slow_rates(self):
        assert SLOW_MACHINE.compute_rate == 0.001
        assert SLOW_MACHINE.transmit_rate == 0.002

    def test_bandwidths(self):
        assert FAST_MACHINE.bandwidth == 8 * MEGABIT
        assert SLOW_MACHINE.bandwidth == 4 * MEGABIT

    def test_classes(self):
        assert FAST_MACHINE.machine_class is MachineClass.FAST
        assert SLOW_MACHINE.machine_class is MachineClass.SLOW


class TestSpecValidation:
    def _spec(self, **kw):
        base = dict(
            battery=10.0, compute_rate=0.1, transmit_rate=0.1,
            bandwidth=1e6, machine_class=MachineClass.FAST,
        )
        base.update(kw)
        return MachineSpec(**base)

    def test_rejects_zero_battery(self):
        with pytest.raises(ValueError):
            self._spec(battery=0.0)

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            self._spec(compute_rate=-1.0)
        with pytest.raises(ValueError):
            self._spec(transmit_rate=-1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            self._spec(bandwidth=0.0)


class TestEnergyHelpers:
    def test_compute_energy(self):
        assert FAST_MACHINE.compute_energy(10.0) == pytest.approx(1.0)

    def test_transmit_energy(self):
        assert FAST_MACHINE.transmit_energy(10.0) == pytest.approx(2.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            FAST_MACHINE.compute_energy(-1.0)
        with pytest.raises(ValueError):
            FAST_MACHINE.transmit_energy(-0.1)


class TestTransforms:
    def test_renamed_keeps_parameters(self):
        m = FAST_MACHINE.renamed("alpha")
        assert m.name == "alpha"
        assert m.battery == FAST_MACHINE.battery
        assert m.machine_class is FAST_MACHINE.machine_class

    def test_battery_scale(self):
        m = FAST_MACHINE.with_battery_scale(0.5)
        assert m.battery == pytest.approx(290.0)
        assert m.compute_rate == FAST_MACHINE.compute_rate
        assert m.bandwidth == FAST_MACHINE.bandwidth

    def test_battery_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FAST_MACHINE.with_battery_scale(0.0)

    def test_spec_is_frozen(self):
        with pytest.raises(Exception):
            FAST_MACHINE.battery = 1.0  # type: ignore[misc]
