"""Regression tests for the Figure 7 value metric and its aggregation.

A sub-tick mapping (``heuristic_seconds`` below the wall-clock timer's
resolution, or exactly ``0.0``) used to yield ``t100 / 0 == inf``, which
silently poisoned every mean it was averaged into.  The fix has two
layers: the metric clamps its denominator to :data:`MIN_TIMED_SECONDS`,
and :func:`mean_std` refuses non-finite input loudly.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.core.slrh import SLRH1, MIN_TIMED_SECONDS, SlrhConfig
from repro.experiments.comparison import HeuristicScenarioOutcome
from repro.experiments.reporting import mean_std


class TestValuePerSecond:
    def test_zero_seconds_is_finite(self, tiny_scenario, mid_weights):
        result = SLRH1(SlrhConfig(weights=mid_weights)).map(tiny_scenario)
        degenerate = replace(result, heuristic_seconds=0.0)
        value = degenerate.value_per_second()
        assert math.isfinite(value)
        assert value == degenerate.t100 / MIN_TIMED_SECONDS

    def test_clamp_inactive_above_resolution(self, tiny_scenario, mid_weights):
        result = SLRH1(SlrhConfig(weights=mid_weights)).map(tiny_scenario)
        slow = replace(result, heuristic_seconds=2.0)
        assert slow.value_per_second() == slow.t100 / 2.0

    def test_outcome_value_metric_is_finite(self):
        outcome = HeuristicScenarioOutcome(
            heuristic="SLRH-1",
            case="A",
            etc=0,
            dag=0,
            succeeded=True,
            alpha=0.5,
            beta=0.2,
            t100=40,
            aet=100.0,
            heuristic_seconds=0.0,
            ub=45,
            evaluations=10,
        )
        assert math.isfinite(outcome.value_metric)
        assert outcome.value_metric == 40 / MIN_TIMED_SECONDS


class TestMeanStd:
    def test_empty_is_nan_pair(self):
        mean, std = mean_std([])
        assert math.isnan(mean) and math.isnan(std)

    def test_basic_aggregate(self):
        mean, std = mean_std([1.0, 3.0])
        assert mean == 2.0
        assert std == 1.0

    @pytest.mark.parametrize("bad", [float("inf"), float("-inf"), float("nan")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError, match="non-finite"):
            mean_std([1.0, bad, 2.0])
