"""Seeding discipline: reproducibility and stream independence."""

import numpy as np
import pytest

from repro.util.seeding import as_generator, spawn_generators, spawn_seeds, stable_choice


def test_as_generator_from_int_reproducible():
    a = as_generator(7).random(5)
    b = as_generator(7).random(5)
    assert np.array_equal(a, b)


def test_as_generator_passthrough():
    rng = np.random.default_rng(0)
    assert as_generator(rng) is rng


def test_as_generator_none_works():
    assert as_generator(None).random() >= 0.0


def test_spawn_seeds_deterministic():
    a = [s.generate_state(2).tolist() for s in spawn_seeds(3, 4)]
    b = [s.generate_state(2).tolist() for s in spawn_seeds(3, 4)]
    assert a == b


def test_spawn_seeds_independent_children():
    children = spawn_seeds(3, 3)
    states = [tuple(c.generate_state(4)) for c in children]
    assert len(set(states)) == 3


def test_spawn_seeds_rejects_generator():
    with pytest.raises(TypeError):
        spawn_seeds(np.random.default_rng(0), 2)


def test_spawn_seeds_rejects_negative_count():
    with pytest.raises(ValueError):
        spawn_seeds(0, -1)


def test_spawn_seeds_accepts_seedsequence():
    root = np.random.SeedSequence(9)
    assert len(spawn_seeds(root, 2)) == 2


def test_spawn_generators_distinct_streams():
    g1, g2 = spawn_generators(0, 2)
    assert not np.array_equal(g1.random(8), g2.random(8))


def test_adding_children_does_not_shift_existing():
    first_two = [s.generate_state(2).tolist() for s in spawn_seeds(5, 2)]
    first_of_many = [s.generate_state(2).tolist() for s in spawn_seeds(5, 6)][:2]
    assert first_two == first_of_many


def test_stable_choice_picks_member():
    rng = as_generator(1)
    options = ["a", "b", "c"]
    for _ in range(20):
        assert stable_choice(rng, options) in options


def test_stable_choice_empty_errors():
    with pytest.raises(ValueError):
        stable_choice(as_generator(1), [])
