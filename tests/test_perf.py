"""Tests for the performance-counter registry (:mod:`repro.perf`)."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.slrh import SLRH1, SlrhConfig
from repro.perf import (
    PERF_SCHEMA,
    Histogram,
    PerfCounters,
    comm_reuse_rate,
    hit_rate,
    merge_snapshots,
    write_perf_json,
)


class TestPerfCounters:
    def test_inc_creates_and_accumulates(self):
        c = PerfCounters()
        assert "x" not in c
        c.inc("x")
        c.inc("x", 2.5)
        assert c.get("x") == 3.5
        assert "x" in c
        assert len(c) == 1

    def test_timer_accumulates_wall_time(self):
        c = PerfCounters()
        with c.timer("t"):
            pass
        with c.timer("t"):
            pass
        assert c.get("t") >= 0.0
        assert len(c) == 1

    def test_snapshot_is_independent_copy(self):
        c = PerfCounters({"a": 1.0})
        snap = c.snapshot()
        c.inc("a")
        assert snap == {"a": 1.0}
        assert c.get("a") == 2.0

    def test_merge_adds_counters(self):
        c = PerfCounters({"a": 1.0, "b": 2.0})
        c.merge(PerfCounters({"a": 10.0, "c": 3.0}))
        c.merge({"b": 0.5})
        assert c.snapshot() == {"a": 11.0, "b": 2.5, "c": 3.0}

    def test_clear(self):
        c = PerfCounters({"a": 1.0})
        c.clear()
        assert len(c) == 0


class TestAggregation:
    def test_merge_snapshots(self):
        merged = merge_snapshots([{"a": 1.0}, {}, {"a": 2.0, "b": 1.0}])
        assert merged == {"a": 3.0, "b": 1.0}

    def test_hit_rate(self):
        counters = {"plan.cache.pair_hit": 3.0, "plan.cache.pair_miss": 1.0}
        assert hit_rate(counters, "plan.cache.pair") == 0.75
        assert math.isnan(hit_rate({}, "plan.cache.pair"))

    def test_comm_reuse_rate_counts_shifts(self):
        counters = {
            "plan.cache.comm_hit": 2.0,
            "plan.cache.comm_shift": 2.0,
            "plan.cache.comm_miss": 4.0,
        }
        assert comm_reuse_rate(counters) == 0.5
        assert math.isnan(comm_reuse_rate({}))


class TestWritePerfJson:
    def test_schema_layout(self, tmp_path):
        path = tmp_path / "perf.json"
        counters = {
            "plan.pairs": 10.0,
            "plan.cache.comm_hit": 6.0,
            "plan.cache.comm_miss": 2.0,
        }
        doc = write_perf_json(path, counters, scale="SMOKE", jobs=2)
        on_disk = json.loads(path.read_text())
        assert on_disk.keys() == doc.keys() == {"schema", "context", "counters", "derived"}
        assert on_disk["counters"] == doc["counters"]
        assert doc["schema"] == PERF_SCHEMA
        assert doc["context"] == {"scale": "SMOKE", "jobs": 2}
        assert doc["counters"] == counters
        assert doc["derived"]["plan_cache_comm_hit_rate"] == 0.75
        assert doc["derived"]["plan_cache_comm_reuse_rate"] == 0.75
        # pair cache unused here -> NaN survives the JSON round trip
        assert math.isnan(doc["derived"]["plan_cache_pair_hit_rate"])


class TestGauges:
    def test_set_and_snapshot(self):
        c = PerfCounters()
        c.set_gauge("queue.depth", 3)
        c.set_gauge("queue.depth", 5)  # last write wins
        assert c.gauge("queue.depth") == 5.0
        snap = c.gauges_snapshot()
        c.set_gauge("queue.depth", 9)
        assert snap == {"queue.depth": 5.0}

    def test_merge_updates_gauges(self):
        a = PerfCounters()
        a.set_gauge("g", 1.0)
        b = PerfCounters()
        b.set_gauge("g", 2.0)
        b.set_gauge("h", 7.0)
        a.merge(b)
        assert a.gauge("g") == 2.0
        assert a.gauge("h") == 7.0


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(50.0) == 50.0
        assert h.percentile(95.0) == 95.0
        assert h.percentile(99.0) == 99.0
        assert h.mean == pytest.approx(50.5)

    def test_summary_ordering(self):
        h = Histogram()
        for v in (0.4, 0.1, 0.9, 0.2, 0.7):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 5
        assert s["p50"] <= s["p95"] <= s["p99"]
        assert s["sum"] == pytest.approx(2.3)

    def test_merge(self):
        a = Histogram()
        a.observe(1.0)
        b = Histogram()
        b.observe(3.0)
        a.merge(b)
        assert a.summary()["count"] == 2
        assert a.mean == pytest.approx(2.0)

    def test_counters_observe_and_merge_histograms(self):
        a = PerfCounters()
        a.observe("lat", 0.5)
        b = PerfCounters()
        b.observe("lat", 1.5)
        a.merge(b)
        summary = a.histograms_summary()
        assert summary["lat"]["count"] == 2
        assert summary["lat"]["mean"] == pytest.approx(1.0)

    def test_latency_timer_observes(self):
        c = PerfCounters()
        with c.latency_timer("t"):
            pass
        assert c.histograms_summary()["t"]["count"] == 1

    def test_percentiles_exact_below_maxlen(self):
        """Until the reservoir overflows, every percentile is an exact
        nearest-rank member of the observed multiset (no interpolation,
        no compression loss) — regardless of arrival order."""
        h = Histogram(maxlen=1000)
        values = [float(v) for v in range(1, 201)]
        for v in reversed(values):  # worst-case arrival order
            h.observe(v)
        assert h.percentile(50.0) == 100.0
        assert h.percentile(95.0) == 190.0
        assert h.percentile(99.0) == 198.0
        assert h.percentile(0.0) == 1.0
        assert h.percentile(100.0) == 200.0
        assert all(h.percentile(q) in values for q in (10.0, 33.0, 66.6, 87.5))

    def test_compression_is_deterministic_and_keeps_shape(self):
        """Overflow compresses by sorting and keeping every second element:
        no RNG, so replaying the same observation sequence retains the
        identical sample set — percentiles are reproducible run-to-run."""
        values = [float((v * 37) % 101) for v in range(200)]

        def build():
            h = Histogram(maxlen=64)
            for v in values:
                h.observe(v)
            return h

        a, b = build(), build()
        assert a.count == b.count == 200
        assert a._obs == b._obs  # bit-identical retained samples
        for q in (50.0, 95.0, 99.0):
            assert a.percentile(q) == b.percentile(q)
        # compression halves memory but keeps the retained minimum;
        # count/sum/mean stay exact over the histogram's lifetime
        assert len(a._obs) <= 64
        assert min(a._obs) == min(values)
        assert a.total == pytest.approx(sum(values))
        assert a.mean == pytest.approx(sum(values) / 200)

    def test_merge_is_commutative_after_compression(self):
        """a.merge(b) and b.merge(a) retain identical samples even when the
        merge itself triggers compression (the docstring's contract)."""
        left = [float(v) for v in range(0, 120)]
        right = [float(v) for v in range(500, 560)]

        def build(values, maxlen=128):
            h = Histogram(maxlen=maxlen)
            for v in values:
                h.observe(v)
            return h

        ab = build(left).merge(build(right))
        ba = build(right).merge(build(left))
        assert ab.count == ba.count == 180
        assert sorted(ab._obs) == sorted(ba._obs)  # merge compressed: >128 obs
        assert len(ab._obs) <= 128
        for q in (1.0, 50.0, 95.0, 99.0, 100.0):
            assert ab.percentile(q) == ba.percentile(q)


class TestWritePerfJsonParents:
    def test_creates_missing_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "dir" / "perf.json"
        assert not path.parent.exists()
        write_perf_json(path, {"plan.pairs": 1.0})
        assert json.loads(path.read_text())["counters"] == {"plan.pairs": 1.0}


class TestTraceIntegration:
    def test_mapping_snapshots_counters(self, tiny_scenario, mid_weights):
        result = SLRH1(SlrhConfig(weights=mid_weights)).map(tiny_scenario)
        perf = result.perf
        assert perf["map.runs"] == 1.0
        assert perf["plan.pairs"] > 0
        assert perf["commit.count"] == len(result.schedule.assignments)
        assert perf["map.seconds"] > 0.0
        # Snapshot, not a live view: mutating the schedule's registry
        # afterwards must not change the trace.
        result.schedule.perf.inc("plan.pairs", 1000.0)
        assert result.perf["plan.pairs"] == perf["plan.pairs"]
