"""Tests for the performance-counter registry (:mod:`repro.perf`)."""

from __future__ import annotations

import json
import math

from repro.core.slrh import SLRH1, SlrhConfig
from repro.perf import (
    PERF_SCHEMA,
    PerfCounters,
    comm_reuse_rate,
    hit_rate,
    merge_snapshots,
    write_perf_json,
)


class TestPerfCounters:
    def test_inc_creates_and_accumulates(self):
        c = PerfCounters()
        assert "x" not in c
        c.inc("x")
        c.inc("x", 2.5)
        assert c.get("x") == 3.5
        assert "x" in c
        assert len(c) == 1

    def test_timer_accumulates_wall_time(self):
        c = PerfCounters()
        with c.timer("t"):
            pass
        with c.timer("t"):
            pass
        assert c.get("t") >= 0.0
        assert len(c) == 1

    def test_snapshot_is_independent_copy(self):
        c = PerfCounters({"a": 1.0})
        snap = c.snapshot()
        c.inc("a")
        assert snap == {"a": 1.0}
        assert c.get("a") == 2.0

    def test_merge_adds_counters(self):
        c = PerfCounters({"a": 1.0, "b": 2.0})
        c.merge(PerfCounters({"a": 10.0, "c": 3.0}))
        c.merge({"b": 0.5})
        assert c.snapshot() == {"a": 11.0, "b": 2.5, "c": 3.0}

    def test_clear(self):
        c = PerfCounters({"a": 1.0})
        c.clear()
        assert len(c) == 0


class TestAggregation:
    def test_merge_snapshots(self):
        merged = merge_snapshots([{"a": 1.0}, {}, {"a": 2.0, "b": 1.0}])
        assert merged == {"a": 3.0, "b": 1.0}

    def test_hit_rate(self):
        counters = {"plan.cache.pair_hit": 3.0, "plan.cache.pair_miss": 1.0}
        assert hit_rate(counters, "plan.cache.pair") == 0.75
        assert math.isnan(hit_rate({}, "plan.cache.pair"))

    def test_comm_reuse_rate_counts_shifts(self):
        counters = {
            "plan.cache.comm_hit": 2.0,
            "plan.cache.comm_shift": 2.0,
            "plan.cache.comm_miss": 4.0,
        }
        assert comm_reuse_rate(counters) == 0.5
        assert math.isnan(comm_reuse_rate({}))


class TestWritePerfJson:
    def test_schema_layout(self, tmp_path):
        path = tmp_path / "perf.json"
        counters = {
            "plan.pairs": 10.0,
            "plan.cache.comm_hit": 6.0,
            "plan.cache.comm_miss": 2.0,
        }
        doc = write_perf_json(path, counters, scale="SMOKE", jobs=2)
        on_disk = json.loads(path.read_text())
        assert on_disk.keys() == doc.keys() == {"schema", "context", "counters", "derived"}
        assert on_disk["counters"] == doc["counters"]
        assert doc["schema"] == PERF_SCHEMA
        assert doc["context"] == {"scale": "SMOKE", "jobs": 2}
        assert doc["counters"] == counters
        assert doc["derived"]["plan_cache_comm_hit_rate"] == 0.75
        assert doc["derived"]["plan_cache_comm_reuse_rate"] == 0.75
        # pair cache unused here -> NaN survives the JSON round trip
        assert math.isnan(doc["derived"]["plan_cache_pair_hit_rate"])


class TestTraceIntegration:
    def test_mapping_snapshots_counters(self, tiny_scenario, mid_weights):
        result = SLRH1(SlrhConfig(weights=mid_weights)).map(tiny_scenario)
        perf = result.perf
        assert perf["map.runs"] == 1.0
        assert perf["plan.pairs"] > 0
        assert perf["commit.count"] == len(result.schedule.assignments)
        assert perf["map.seconds"] > 0.0
        # Snapshot, not a live view: mutating the schedule's registry
        # afterwards must not change the trace.
        result.schedule.perf.inc("plan.pairs", 1000.0)
        assert result.perf["plan.pairs"] == perf["plan.pairs"]
