"""Critical-path bound and slack analytics."""

import pytest

from repro.analysis.critical_path import (
    critical_chain,
    critical_path_bound,
    efficiency,
    schedule_slack,
)
from repro.core.slrh import SLRH1
from repro.baselines.greedy import GreedyScheduler
from repro.sim.schedule import Schedule
from repro.workload.versions import PRIMARY, SECONDARY


@pytest.fixture(scope="module")
def result(small_scenario, mid_config):
    return SLRH1(mid_config).map(small_scenario)


class TestBound:
    def test_bound_positive(self, small_scenario):
        assert critical_path_bound(small_scenario) > 0.0

    def test_secondary_bound_is_tenth(self, small_scenario):
        primary = critical_path_bound(small_scenario, PRIMARY)
        secondary = critical_path_bound(small_scenario, SECONDARY)
        assert secondary == pytest.approx(0.1 * primary)

    def test_bounds_all_primary_schedules(self, small_scenario, mid_config):
        """Any complete all-primary schedule's makespan dominates the
        primary bound; any complete schedule dominates the secondary one."""
        result = GreedyScheduler().map(small_scenario)
        assert result.complete
        lower = critical_path_bound(small_scenario, SECONDARY)
        assert result.aet >= lower - 1e-6
        if result.t100 == small_scenario.n_tasks:
            assert result.aet >= critical_path_bound(small_scenario, PRIMARY) - 1e-6

    def test_releases_raise_bound(self, small_scenario):
        from repro.workload.arrivals import generate_release_times

        rel = generate_release_times(small_scenario.dag, 50.0, seed=3)
        delayed = small_scenario.with_release_times(rel)
        assert critical_path_bound(delayed) >= critical_path_bound(small_scenario)

    def test_chain_dag_bound_is_sum(self):
        import numpy as np

        from repro.workload.data import generate_data_sizes
        from repro.workload.scenario import Scenario
        from repro.workload.topologies import chain
        from repro.grid.config import CASE_A

        dag = chain(5)
        etc = np.full((5, 4), 10.0)
        sc = Scenario(
            grid=CASE_A, etc=etc, dag=dag,
            data_sizes=generate_data_sizes(dag, seed=0), tau=1e9,
        )
        assert critical_path_bound(sc) == pytest.approx(50.0)


class TestEfficiency:
    def test_in_unit_interval(self, result):
        if not result.complete:
            pytest.skip("scenario too tight")
        e = efficiency(result.schedule, SECONDARY)
        assert 0.0 < e <= 1.0 + 1e-9

    def test_realized_bound_dominates_uniform_secondary(self, result):
        from repro.analysis.critical_path import realized_critical_path_bound

        realized = realized_critical_path_bound(result.schedule)
        uniform = critical_path_bound(result.schedule.scenario, SECONDARY)
        assert realized >= uniform - 1e-9
        # And the schedule's makespan dominates its realized bound.
        assert result.schedule.makespan >= realized - 1e-6

    def test_default_efficiency_uses_realized_bound(self, result):
        if not result.complete:
            pytest.skip("scenario too tight")
        e = efficiency(result.schedule)
        assert 0.0 < e <= 1.0 + 1e-9
        assert e >= efficiency(result.schedule, SECONDARY) - 1e-9

    def test_requires_complete(self, small_scenario):
        with pytest.raises(ValueError):
            efficiency(Schedule(small_scenario))


class TestSlack:
    def test_nonnegative_and_complete(self, result):
        slack = schedule_slack(result.schedule)
        assert set(slack) == set(result.schedule.assignments)
        assert all(s >= -1e-6 for s in slack.values())

    def test_makespan_task_has_zero_slack(self, result):
        slack = schedule_slack(result.schedule)
        last = max(
            result.schedule.assignments,
            key=lambda t: result.schedule.assignments[t].finish,
        )
        assert slack[last] == pytest.approx(0.0, abs=1e-6)

    def test_critical_chain_nonempty_and_ordered(self, result):
        chain_tasks = critical_chain(result.schedule)
        assert chain_tasks
        starts = [result.schedule.assignments[t].start for t in chain_tasks]
        assert starts == sorted(starts)

    def test_empty_schedule(self, small_scenario):
        assert schedule_slack(Schedule(small_scenario)) == {}
