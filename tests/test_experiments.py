"""Experiment drivers: scales, tables, reporting (cheap paths only —
the figure drivers are exercised end-to-end by the benchmarks)."""

import pytest

from repro.experiments.reporting import format_table, mean_std
from repro.experiments.scale import (
    MEDIUM_SCALE,
    PAPER_SCALE,
    SMALL_SCALE,
    SMOKE_SCALE,
    ExperimentScale,
    scale_from_env,
)
from repro.experiments.tables import (
    table1_configurations,
    table2_machine_parameters,
    table3_min_relative_speed,
    table4_upper_bound,
)


class TestScale:
    def test_presets_consistent(self):
        for s in (SMOKE_SCALE, SMALL_SCALE, MEDIUM_SCALE, PAPER_SCALE):
            assert s.n_tasks >= 2

    def test_paper_scale_matches_protocol(self):
        assert PAPER_SCALE.n_tasks == 1024
        assert PAPER_SCALE.n_etc == PAPER_SCALE.n_dag == 10
        assert PAPER_SCALE.coarse_step == 0.1
        assert PAPER_SCALE.fine_step == 0.02

    def test_suite_cached(self):
        assert SMOKE_SCALE.suite() is SMOKE_SCALE.suite()

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env() is SMALL_SCALE

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert scale_from_env() is SMOKE_SCALE

    def test_env_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(KeyError):
            scale_from_env()

    def test_degenerate_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentScale(name="bad", n_tasks=1, n_etc=1, n_dag=1)


class TestTables:
    def test_table1_matches_paper(self):
        rows = {r["case"]: (r["n_fast"], r["n_slow"]) for r in table1_configurations()}
        assert rows == {"A": (2, 2), "B": (2, 1), "C": (1, 2)}

    def test_table2_matches_paper(self):
        rows = {r["class"]: r for r in table2_machine_parameters()}
        assert rows["fast"]["B_energy_units"] == 580.0
        assert rows["slow"]["B_energy_units"] == 58.0
        assert rows["fast"]["BW_mbit_per_s"] == pytest.approx(8.0)
        assert rows["slow"]["BW_mbit_per_s"] == pytest.approx(4.0)

    def test_table3_shape(self):
        stats = table3_min_relative_speed(SMOKE_SCALE)
        # Case A: 3 non-reference machines; B: 2; C: 2.
        assert len(stats) == 7
        by_case = {}
        for s in stats:
            by_case.setdefault(s.case, []).append(s)
        assert len(by_case["A"]) == 3
        assert len(by_case["B"]) == 2
        assert len(by_case["C"]) == 2

    def test_table3_fast_below_one_slow_above(self):
        for s in table3_min_relative_speed(SMOKE_SCALE):
            if "fast" in s.machine:
                assert s.mean < 1.0
            else:
                assert s.mean > 1.0

    def test_table4_rows(self):
        rows = table4_upper_bound(SMOKE_SCALE)
        assert len(rows) == SMOKE_SCALE.n_etc
        for r in rows:
            for case in "ABC":
                assert 0 <= r[f"case_{case}"] <= SMOKE_SCALE.n_tasks

    def test_table4_case_c_not_above_a(self):
        for r in table4_upper_bound(SMOKE_SCALE):
            assert r["case_C"] <= r["case_A"]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["x", "yy"], [[1, 2.5], [10, 0.123456]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("x")

    def test_format_table_title(self):
        text = format_table(["a"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_format_nan(self):
        text = format_table(["a"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_mean_std(self):
        m, s = mean_std([1.0, 2.0, 3.0])
        assert m == pytest.approx(2.0)
        assert s == pytest.approx((2 / 3) ** 0.5)

    def test_mean_std_empty(self):
        m, s = mean_std([])
        assert m != m and s != s  # NaN
