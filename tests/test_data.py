"""Global data item size generation."""

import pytest

from repro.workload.dag import DagSpec, generate_dag
from repro.workload.data import DataSpec, generate_data_sizes


@pytest.fixture(scope="module")
def dag():
    return generate_dag(DagSpec(n_tasks=120), seed=0)


class TestSpec:
    def test_defaults(self):
        spec = DataSpec()
        assert spec.mean_bits == pytest.approx(1e6)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DataSpec(mean_bits=0)
        with pytest.raises(ValueError):
            DataSpec(cv=0)


class TestGeneration:
    def test_every_edge_covered(self, dag):
        sizes = generate_data_sizes(dag, seed=1)
        assert set(sizes) == set(dag.edges())

    def test_sizes_positive(self, dag):
        sizes = generate_data_sizes(dag, seed=2)
        assert all(v >= 1.0 for v in sizes.values())

    def test_reproducible(self, dag):
        a = generate_data_sizes(dag, seed=3)
        b = generate_data_sizes(dag, seed=3)
        assert a == b

    def test_seeds_differ(self, dag):
        a = generate_data_sizes(dag, seed=3)
        b = generate_data_sizes(dag, seed=4)
        assert a != b

    def test_mean_near_spec(self, dag):
        spec = DataSpec(mean_bits=2e6, cv=0.3)
        sizes = generate_data_sizes(dag, spec, seed=5)
        mean = sum(sizes.values()) / len(sizes)
        assert mean == pytest.approx(2e6, rel=0.25)

    def test_empty_dag_no_sizes(self):
        from repro.workload.dag import TaskGraph

        g = TaskGraph(3, [])
        assert generate_data_sizes(g, seed=0) == {}
