"""LRNN static Lagrangian-relaxation mapper."""

import numpy as np
import pytest

from repro.baselines.lrnn import LrnnConfig, LrnnScheduler
from repro.core.objective import Weights
from repro.sim.validate import validate_schedule


@pytest.fixture(scope="module")
def config(mid_weights):
    return LrnnConfig(weights=mid_weights, iterations=20)


class TestConfig:
    def test_validation(self, mid_weights):
        with pytest.raises(ValueError):
            LrnnConfig(weights=mid_weights, iterations=0)
        with pytest.raises(ValueError):
            LrnnConfig(weights=mid_weights, step=0.0)


class TestRelaxedSubproblem:
    def test_zero_prices_alpha_dominant_prefers_primary(self, small_scenario):
        sched = LrnnScheduler(LrnnConfig(weights=Weights(1.0, 0.0, 0.0)))
        machine, version = sched._relaxed_choice(
            small_scenario, np.zeros(small_scenario.n_machines)
        )
        assert (version == 0).all()  # primary everywhere

    def test_beta_dominant_prefers_secondary_on_cheap_machine(self, small_scenario):
        sched = LrnnScheduler(LrnnConfig(weights=Weights(0.0, 1.0, 0.0)))
        machine, version = sched._relaxed_choice(
            small_scenario, np.zeros(small_scenario.n_machines)
        )
        assert (version == 1).all()
        slow = set(small_scenario.grid.slow_indices)
        assert set(np.unique(machine)) <= slow

    def test_high_price_repels_machine(self, small_scenario, config):
        sched = LrnnScheduler(config)
        prices = np.zeros(small_scenario.n_machines)
        prices[0] = 1e9
        machine, _ = sched._relaxed_choice(small_scenario, prices)
        assert 0 not in set(np.unique(machine))

    def test_prices_nonnegative_after_iteration(self, small_scenario, config):
        sched = LrnnScheduler(config)
        _, _, prices = sched._iterate_prices(small_scenario)
        assert (prices >= 0).all()


class TestMapping:
    def test_valid_schedule(self, small_scenario, config):
        result = LrnnScheduler(config).map(small_scenario)
        validate_schedule(result.schedule)
        assert result.heuristic == "LRNN"

    def test_loose_scenario_completes_primary(self, loose_scenario):
        config = LrnnConfig(weights=Weights.from_alpha_beta(0.8, 0.1))
        result = LrnnScheduler(config).map(loose_scenario)
        assert result.complete
        assert result.t100 == loose_scenario.n_tasks

    def test_deterministic(self, tiny_scenario, config):
        a = LrnnScheduler(config).map(tiny_scenario)
        b = LrnnScheduler(config).map(tiny_scenario)
        assert a.schedule.summary() == b.schedule.summary()

    def test_repair_respects_precedence(self, small_scenario, config):
        result = LrnnScheduler(config).map(small_scenario)
        dag = small_scenario.dag
        for t, a in result.schedule.assignments.items():
            for p in dag.parents[t]:
                assert result.schedule.assignments[p].finish <= a.start + 1e-6

    def test_competitive_t100_under_pressure(self, small_scenario, config):
        """The Lagrangian prices should spread load well enough to map a
        substantial primary fraction (sanity floor, not a tight claim)."""
        result = LrnnScheduler(config).map(small_scenario)
        if result.complete:
            assert result.t100 >= small_scenario.n_tasks // 4
