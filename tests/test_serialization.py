"""JSON round-tripping of scenarios and mappings."""

import json

import numpy as np
import pytest

from repro.core.slrh import SLRH1
from repro.io.serialization import (
    load_mapping,
    load_scenario,
    mapping_from_dict,
    mapping_to_dict,
    save_mapping,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.sim.validate import ValidationError


class TestScenarioRoundTrip:
    def test_lossless(self, small_scenario):
        restored = scenario_from_dict(scenario_to_dict(small_scenario))
        assert np.array_equal(restored.etc, small_scenario.etc)
        assert restored.dag.edges() == small_scenario.dag.edges()
        assert restored.data_sizes == small_scenario.data_sizes
        assert restored.tau == small_scenario.tau
        assert restored.name == small_scenario.name
        assert len(restored.grid) == len(small_scenario.grid)
        for a, b in zip(restored.grid, small_scenario.grid):
            assert a == b

    def test_file_roundtrip(self, small_scenario, tmp_path):
        path = tmp_path / "scenario.json"
        save_scenario(small_scenario, path)
        restored = load_scenario(path)
        assert np.array_equal(restored.etc, small_scenario.etc)

    def test_document_is_plain_json(self, small_scenario, tmp_path):
        path = tmp_path / "scenario.json"
        save_scenario(small_scenario, path)
        data = json.loads(path.read_text())
        assert data["kind"] == "scenario"

    def test_wrong_kind_rejected(self, small_scenario):
        doc = scenario_to_dict(small_scenario)
        doc["kind"] = "mapping"
        with pytest.raises(ValueError):
            scenario_from_dict(doc)

    def test_wrong_format_rejected(self, small_scenario):
        doc = scenario_to_dict(small_scenario)
        doc["format"] = 99
        with pytest.raises(ValueError):
            scenario_from_dict(doc)


class TestMappingRoundTrip:
    @pytest.fixture(scope="class")
    def mapped(self, small_scenario, mid_config):
        return SLRH1(mid_config).map(small_scenario)

    def test_lossless_replay(self, mapped, small_scenario):
        restored = mapping_from_dict(mapping_to_dict(mapped.schedule), small_scenario)
        assert restored.n_mapped == mapped.schedule.n_mapped
        assert restored.t100 == mapped.schedule.t100
        assert restored.makespan == pytest.approx(mapped.schedule.makespan)
        assert restored.total_energy_consumed == pytest.approx(
            mapped.schedule.total_energy_consumed
        )
        for t, a in mapped.schedule.assignments.items():
            b = restored.assignments[t]
            assert (b.machine, b.version) == (a.machine, a.version)
            assert b.start == pytest.approx(a.start)
            assert b.finish == pytest.approx(a.finish)

    def test_file_roundtrip(self, mapped, small_scenario, tmp_path):
        path = tmp_path / "mapping.json"
        save_mapping(mapped.schedule, path)
        restored = load_mapping(path, small_scenario)
        assert restored.t100 == mapped.t100

    def test_tampered_duration_rejected(self, mapped, small_scenario):
        doc = mapping_to_dict(mapped.schedule)
        doc["assignments"][0]["finish"] += 1000.0
        with pytest.raises((ValidationError, ValueError)):
            mapping_from_dict(doc, small_scenario)

    def test_tampered_overlap_rejected(self, mapped, small_scenario):
        doc = mapping_to_dict(mapped.schedule)
        recs = doc["assignments"]
        same_machine = [r for r in recs if r["machine"] == recs[0]["machine"]]
        if len(same_machine) < 2:
            pytest.skip("need two assignments on one machine")
        same_machine[1]["start"] = same_machine[0]["start"]
        same_machine[1]["finish"] = same_machine[0]["finish"]
        with pytest.raises((ValidationError, ValueError)):
            mapping_from_dict(doc, small_scenario)

    def test_wrong_kind_rejected(self, mapped, small_scenario):
        doc = mapping_to_dict(mapped.schedule)
        doc["kind"] = "scenario"
        with pytest.raises(ValueError):
            mapping_from_dict(doc, small_scenario)

    def test_external_debits_roundtrip(self, small_scenario, mid_config):
        result = SLRH1(mid_config).map(small_scenario)
        # Debit within whatever the run left on machine 0.
        amount = result.schedule.energy.remaining(0) / 2
        result.schedule.debit_external(0, amount)
        restored = mapping_from_dict(
            mapping_to_dict(result.schedule), small_scenario
        )
        assert restored.external_debits[0] == pytest.approx(amount)
