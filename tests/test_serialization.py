"""JSON round-tripping of scenarios and mappings."""

import json

import numpy as np
import pytest

from repro.core.slrh import SLRH1
from repro.io.serialization import (
    canonical_json_bytes,
    canonical_mapping_bytes,
    iter_mapping_ndjson,
    load_mapping,
    load_scenario,
    mapping_from_dict,
    mapping_from_ndjson,
    mapping_to_dict,
    save_mapping,
    save_scenario,
    scenario_digest,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.sim.validate import ValidationError


class TestScenarioRoundTrip:
    def test_lossless(self, small_scenario):
        restored = scenario_from_dict(scenario_to_dict(small_scenario))
        assert np.array_equal(restored.etc, small_scenario.etc)
        assert restored.dag.edges() == small_scenario.dag.edges()
        assert restored.data_sizes == small_scenario.data_sizes
        assert restored.tau == small_scenario.tau
        assert restored.name == small_scenario.name
        assert len(restored.grid) == len(small_scenario.grid)
        for a, b in zip(restored.grid, small_scenario.grid):
            assert a == b

    def test_file_roundtrip(self, small_scenario, tmp_path):
        path = tmp_path / "scenario.json"
        save_scenario(small_scenario, path)
        restored = load_scenario(path)
        assert np.array_equal(restored.etc, small_scenario.etc)

    def test_document_is_plain_json(self, small_scenario, tmp_path):
        path = tmp_path / "scenario.json"
        save_scenario(small_scenario, path)
        data = json.loads(path.read_text())
        assert data["kind"] == "scenario"

    def test_wrong_kind_rejected(self, small_scenario):
        doc = scenario_to_dict(small_scenario)
        doc["kind"] = "mapping"
        with pytest.raises(ValueError):
            scenario_from_dict(doc)

    def test_wrong_format_rejected(self, small_scenario):
        doc = scenario_to_dict(small_scenario)
        doc["format"] = 99
        with pytest.raises(ValueError):
            scenario_from_dict(doc)


class TestMappingRoundTrip:
    @pytest.fixture(scope="class")
    def mapped(self, small_scenario, mid_config):
        return SLRH1(mid_config).map(small_scenario)

    def test_lossless_replay(self, mapped, small_scenario):
        restored = mapping_from_dict(mapping_to_dict(mapped.schedule), small_scenario)
        assert restored.n_mapped == mapped.schedule.n_mapped
        assert restored.t100 == mapped.schedule.t100
        assert restored.makespan == pytest.approx(mapped.schedule.makespan)
        assert restored.total_energy_consumed == pytest.approx(
            mapped.schedule.total_energy_consumed
        )
        for t, a in mapped.schedule.assignments.items():
            b = restored.assignments[t]
            assert (b.machine, b.version) == (a.machine, a.version)
            assert b.start == pytest.approx(a.start)
            assert b.finish == pytest.approx(a.finish)

    def test_file_roundtrip(self, mapped, small_scenario, tmp_path):
        path = tmp_path / "mapping.json"
        save_mapping(mapped.schedule, path)
        restored = load_mapping(path, small_scenario)
        assert restored.t100 == mapped.t100

    def test_tampered_duration_rejected(self, mapped, small_scenario):
        doc = mapping_to_dict(mapped.schedule)
        doc["assignments"][0]["finish"] += 1000.0
        with pytest.raises((ValidationError, ValueError)):
            mapping_from_dict(doc, small_scenario)

    def test_tampered_overlap_rejected(self, mapped, small_scenario):
        doc = mapping_to_dict(mapped.schedule)
        recs = doc["assignments"]
        same_machine = [r for r in recs if r["machine"] == recs[0]["machine"]]
        if len(same_machine) < 2:
            pytest.skip("need two assignments on one machine")
        same_machine[1]["start"] = same_machine[0]["start"]
        same_machine[1]["finish"] = same_machine[0]["finish"]
        with pytest.raises((ValidationError, ValueError)):
            mapping_from_dict(doc, small_scenario)

    def test_wrong_kind_rejected(self, mapped, small_scenario):
        doc = mapping_to_dict(mapped.schedule)
        doc["kind"] = "scenario"
        with pytest.raises(ValueError):
            mapping_from_dict(doc, small_scenario)

    def test_external_debits_roundtrip(self, small_scenario, mid_config):
        result = SLRH1(mid_config).map(small_scenario)
        # Debit within whatever the run left on machine 0.
        amount = result.schedule.energy.remaining(0) / 2
        result.schedule.debit_external(0, amount)
        restored = mapping_from_dict(
            mapping_to_dict(result.schedule), small_scenario
        )
        assert restored.external_debits[0] == pytest.approx(amount)


class TestChurnMappingRoundTrip:
    """A mapping produced under churn (loss + rejoin, rolled-back work,
    sunk-energy debits) must survive the serialise → replay cycle with
    identical energy accounting."""

    @pytest.fixture(scope="class")
    def churned(self, small_scenario, mid_config):
        from repro.sim.churn import ChurnEvent, run_with_churn

        quarter = int(small_scenario.tau / 4 / 0.1)
        outcome = run_with_churn(
            small_scenario,
            SLRH1(mid_config),
            [
                ChurnEvent(cycle=quarter, machine=1, kind="loss"),
                ChurnEvent(cycle=2 * quarter, machine=1, kind="join"),
            ],
        )
        assert outcome.total_rolled_back > 0  # the loss actually bit
        return outcome

    def test_replay_accepts_churned_mapping(self, churned, small_scenario):
        schedule = churned.final.schedule
        restored = mapping_from_dict(mapping_to_dict(schedule), small_scenario)
        assert restored.n_mapped == schedule.n_mapped
        assert restored.t100 == schedule.t100
        for t, a in schedule.assignments.items():
            b = restored.assignments[t]
            assert (b.machine, b.version) == (a.machine, a.version)
            assert b.start == pytest.approx(a.start)
            assert b.finish == pytest.approx(a.finish)

    def test_energy_accounting_identical(self, churned, small_scenario):
        schedule = churned.final.schedule
        restored = mapping_from_dict(mapping_to_dict(schedule), small_scenario)
        # Sunk energy from rolled-back work travels via external debits.
        sunk = sum(r.sunk_energy for r in churned.records)
        assert sunk > 0
        assert sum(restored.external_debits) == pytest.approx(
            sum(schedule.external_debits)
        )
        assert restored.total_energy_consumed == pytest.approx(
            schedule.total_energy_consumed
        )
        for j in range(small_scenario.n_machines):
            assert restored.energy.remaining(j) == pytest.approx(
                schedule.energy.remaining(j)
            )

    def test_canonical_bytes_stable_across_replay(self, churned, small_scenario):
        schedule = churned.final.schedule
        payload = canonical_mapping_bytes(schedule)
        restored = mapping_from_dict(json.loads(payload), small_scenario)
        assert canonical_mapping_bytes(restored) == payload


class TestCanonicalEncoding:
    def test_canonical_bytes_key_order_independent(self):
        assert canonical_json_bytes({"b": 1, "a": [1.5, 2]}) == canonical_json_bytes(
            {"a": [1.5, 2], "b": 1}
        )
        assert canonical_json_bytes({"a": 1}).endswith(b"\n")

    def test_scenario_digest_matches_dict_and_object(self, small_scenario):
        doc = scenario_to_dict(small_scenario)
        assert scenario_digest(small_scenario) == scenario_digest(doc)
        assert scenario_digest(doc).startswith("sha256:")

    def test_scenario_digest_sensitive_to_content(self, small_scenario):
        doc = scenario_to_dict(small_scenario)
        other = json.loads(json.dumps(doc))
        other["tau"] += 1.0
        assert scenario_digest(other) != scenario_digest(doc)

    def test_scenario_digest_rejects_non_scenarios(self):
        with pytest.raises(ValueError):
            scenario_digest({"kind": "mapping"})


class TestNdjsonMappingStream:
    @pytest.fixture(scope="class")
    def mapped(self, small_scenario, mid_config):
        return SLRH1(mid_config).map(small_scenario)

    def test_roundtrip(self, mapped, small_scenario):
        lines = list(iter_mapping_ndjson(mapped.schedule))
        header = json.loads(lines[0])
        assert header["record"] == "header"
        assert header["n_assignments"] == mapped.schedule.n_mapped
        assert len(lines) == mapped.schedule.n_mapped + 2
        restored = mapping_from_ndjson(lines, small_scenario)
        assert canonical_mapping_bytes(restored) == canonical_mapping_bytes(
            mapped.schedule
        )

    def test_partial_prefix_replays(self, mapped, small_scenario):
        lines = list(iter_mapping_ndjson(mapped.schedule))
        # Header + first assignments only, no footer: a resumable prefix.
        # The first committed tasks are roots-first, so a topological
        # prefix of the stream replays cleanly.
        prefix = lines[:2]
        restored = mapping_from_ndjson(prefix, small_scenario)
        assert restored.n_mapped == 1

    def test_text_lines_accepted(self, mapped, small_scenario):
        text = [line.decode() for line in iter_mapping_ndjson(mapped.schedule)]
        restored = mapping_from_ndjson(text, small_scenario)
        assert restored.n_mapped == mapped.schedule.n_mapped

    def test_malformed_streams_rejected(self, mapped, small_scenario):
        lines = list(iter_mapping_ndjson(mapped.schedule))
        with pytest.raises(ValueError, match="empty"):
            mapping_from_ndjson([], small_scenario)
        with pytest.raises(ValueError, match="header"):
            mapping_from_ndjson(lines[1:2], small_scenario)
        with pytest.raises(ValueError, match="past its footer"):
            mapping_from_ndjson(lines + lines[1:2], small_scenario)
        with pytest.raises(ValueError, match="advertised"):
            mapping_from_ndjson([lines[0], lines[-1]], small_scenario)
        with pytest.raises(ValueError, match="duplicate"):
            mapping_from_ndjson([lines[0], lines[0]], small_scenario)


class TestSessionMappingNdjson:
    """NDJSON round-trips of mappings produced by live sessions —
    interleaved mid-run arrivals and machine losses, sunk-energy debits,
    and out-of-order client reads."""

    @pytest.fixture(scope="class")
    def sessioned(self, small_scenario, mid_config):
        from repro.session import SessionEvent, run_with_events

        quarter = int(small_scenario.tau / 4 / 0.1)
        held = tuple(small_scenario.dag.topological_order[-3:])
        events = [
            SessionEvent("task_arrival", quarter // 2, task=held[0]),
            SessionEvent("machine_loss", quarter, machine=1),
            SessionEvent("task_arrival", quarter + 2, task=held[1]),
            SessionEvent("machine_rejoin", 2 * quarter, machine=1),
            SessionEvent("task_arrival", 2 * quarter + 2, task=held[2]),
            SessionEvent("close", 4 * quarter),
        ]
        outcome = run_with_events(
            small_scenario, SLRH1(mid_config), events, pending=held
        )
        assert outcome.total_rolled_back > 0  # the loss actually bit
        return outcome

    def test_full_stream_roundtrip(self, sessioned, small_scenario):
        schedule = sessioned.final.schedule
        lines = list(iter_mapping_ndjson(schedule))
        restored = mapping_from_ndjson(lines, small_scenario)
        assert canonical_mapping_bytes(restored) == canonical_mapping_bytes(
            schedule
        )
        # Sunk energy survives the trip through the stream's footer.
        assert sum(restored.external_debits) == pytest.approx(
            sum(schedule.external_debits)
        )
        assert sum(schedule.external_debits) > 0

    def test_out_of_order_assignment_lines(self, sessioned, small_scenario):
        import random

        schedule = sessioned.final.schedule
        lines = list(iter_mapping_ndjson(schedule))
        body = lines[1:-1]
        rng = random.Random(13)
        for _ in range(3):
            rng.shuffle(body)
            restored = mapping_from_ndjson(
                [lines[0], *body, lines[-1]], small_scenario
            )
            assert canonical_mapping_bytes(restored) == canonical_mapping_bytes(
                schedule
            )

    def test_partial_prefix_replays(self, sessioned, small_scenario):
        schedule = sessioned.final.schedule
        lines = list(iter_mapping_ndjson(schedule))
        # Header plus all but the last three assignment lines, no footer:
        # a client cut off mid-transfer still holds a replayable prefix
        # (task-id order is topological for generated scenarios).
        prefix = lines[1:-1][:-3]
        restored = mapping_from_ndjson([lines[0], *prefix], small_scenario)
        assert restored.n_mapped == schedule.n_mapped - 3

    def test_delta_and_full_streams_agree(
        self, sessioned, small_scenario, mid_config
    ):
        from repro.session import (
            DeltaEncoder,
            SessionEngine,
            SessionEvent,
            mapping_from_delta_ndjson,
        )

        schedule = sessioned.final.schedule
        # Re-drive the identical stream through a delta encoder the way
        # the service does: the delta reassembly and the full-stream
        # encoding must land on the same bytes.
        quarter = int(small_scenario.tau / 4 / 0.1)
        held = tuple(small_scenario.dag.topological_order[-3:])
        events = [
            SessionEvent("task_arrival", quarter // 2, task=held[0]),
            SessionEvent("machine_loss", quarter, machine=1),
            SessionEvent("task_arrival", quarter + 2, task=held[1]),
            SessionEvent("machine_rejoin", 2 * quarter, machine=1),
            SessionEvent("task_arrival", 2 * quarter + 2, task=held[2]),
            SessionEvent("close", 4 * quarter),
        ]
        engine = SessionEngine(small_scenario, SLRH1(mid_config), pending=held)
        encoder = DeltaEncoder(engine.schedule)
        lines: list[bytes] = []
        for ev in events:
            engine.apply(ev)
            lines.extend(encoder.delta_lines(cycle=ev.cycle, event=ev.kind))
        lines.extend(encoder.footer_lines())
        restored = mapping_from_delta_ndjson(lines, small_scenario)
        assert canonical_mapping_bytes(restored) == canonical_mapping_bytes(
            schedule
        )
