"""Non-deterministic subtask arrivals (release times)."""

import pytest

from repro.core.slrh import SLRH1, SlrhConfig
from repro.sim.validate import ValidationError, validate_schedule
from repro.workload.arrivals import generate_release_times
from repro.workload.scenario import Scenario


class TestGeneration:
    def test_tuple_per_task(self, small_scenario):
        rel = generate_release_times(small_scenario.dag, 5.0, seed=0)
        assert len(rel) == small_scenario.n_tasks
        assert all(r >= 0 for r in rel)

    def test_topologically_consistent(self, small_scenario):
        dag = small_scenario.dag
        rel = generate_release_times(dag, 5.0, seed=1)
        for u, v in dag.edges():
            assert rel[u] <= rel[v] + 1e-9

    def test_reproducible(self, small_scenario):
        a = generate_release_times(small_scenario.dag, 5.0, seed=2)
        b = generate_release_times(small_scenario.dag, 5.0, seed=2)
        assert a == b

    def test_zero_interarrival_all_at_start(self, small_scenario):
        rel = generate_release_times(small_scenario.dag, 0.0, seed=0, start=7.0)
        assert set(rel) == {7.0}

    def test_validation(self, small_scenario):
        with pytest.raises(ValueError):
            generate_release_times(small_scenario.dag, -1.0)
        with pytest.raises(ValueError):
            generate_release_times(small_scenario.dag, 1.0, start=-1.0)


class TestScenarioReleases:
    def test_default_is_paper_simplification(self, small_scenario):
        assert small_scenario.release_times is None
        assert small_scenario.release(0) == 0.0

    def test_with_release_times(self, small_scenario):
        rel = generate_release_times(small_scenario.dag, 3.0, seed=4)
        sc = small_scenario.with_release_times(rel)
        assert sc.release(0) == rel[0]
        assert sc.with_tau(999.0).release_times == rel  # propagated

    def test_wrong_length_rejected(self, small_scenario):
        with pytest.raises(ValueError):
            small_scenario.with_release_times([0.0])

    def test_negative_rejected(self, small_scenario):
        bad = [0.0] * small_scenario.n_tasks
        bad[3] = -1.0
        with pytest.raises(ValueError):
            small_scenario.with_release_times(bad)


class TestSchedulingUnderArrivals:
    @pytest.fixture(scope="class")
    def arriving(self, small_scenario):
        rel = generate_release_times(small_scenario.dag, 4.0, seed=9)
        return small_scenario.with_release_times(rel)

    def test_slrh_respects_releases(self, arriving, mid_weights):
        result = SLRH1(SlrhConfig(weights=mid_weights)).map(arriving)
        validate_schedule(result.schedule)
        for t, a in result.schedule.assignments.items():
            assert a.start >= arriving.release(t) - 1e-9

    def test_arrivals_delay_completion(self, small_scenario, mid_weights):
        base = SLRH1(SlrhConfig(weights=mid_weights)).map(small_scenario)
        slow_arrivals = small_scenario.with_release_times(
            generate_release_times(small_scenario.dag, 30.0, seed=9)
        )
        delayed = SLRH1(SlrhConfig(weights=mid_weights)).map(slow_arrivals)
        if base.complete and delayed.complete:
            assert delayed.aet >= base.aet - 1e-6

    def test_validator_catches_early_start(self, arriving, mid_weights):
        import dataclasses

        result = SLRH1(SlrhConfig(weights=mid_weights)).map(arriving)
        late_task = max(
            result.schedule.assignments,
            key=lambda t: arriving.release(t),
        )
        if arriving.release(late_task) <= 0:
            pytest.skip("no strictly-positive release among mapped tasks")
        a = result.schedule.assignments[late_task]
        result.schedule.assignments[late_task] = dataclasses.replace(
            a, start=0.0, finish=a.duration
        )
        with pytest.raises(ValidationError):
            validate_schedule(result.schedule)


class TestDecisionLatency:
    def test_latency_pushes_starts(self, small_scenario, mid_weights):
        latency = 50  # cycles = 5 s
        result = SLRH1(
            SlrhConfig(weights=mid_weights, decision_latency_cycles=latency)
        ).map(small_scenario)
        validate_schedule(result.schedule)
        # Every assignment starts at least one latency after *some* tick —
        # in particular nothing can start before the very first decision
        # could take effect.
        earliest = min(a.start for a in result.schedule.assignments.values())
        assert earliest >= latency * 0.1 - 1e-9

    def test_latency_costs_quality(self, small_scenario, mid_weights):
        crisp = SLRH1(SlrhConfig(weights=mid_weights)).map(small_scenario)
        laggy = SLRH1(
            SlrhConfig(weights=mid_weights, decision_latency_cycles=200)
        ).map(small_scenario)
        # A 20 s decision lag can only delay completion (or break it).
        if crisp.complete and laggy.complete:
            assert laggy.aet >= crisp.aet - 1e-6
