"""Network model: CMT formula, transfer times and energies."""

import pytest

from repro.grid.config import CASE_A, make_case
from repro.grid.network import NetworkModel


@pytest.fixture(scope="module")
def net():
    return NetworkModel(CASE_A)


class TestCmt:
    def test_same_machine_free(self, net):
        assert net.cmt(0, 0) == 0.0

    def test_fast_fast_link(self, net):
        # min(8, 8) Mbit/s
        assert net.cmt(0, 1) == pytest.approx(1 / 8e6)

    def test_fast_slow_link_limited_by_slow(self, net):
        assert net.cmt(0, 2) == pytest.approx(1 / 4e6)

    def test_symmetry(self, net):
        for i in range(4):
            for j in range(4):
                assert net.cmt(i, j) == net.cmt(j, i)

    def test_worst_case_is_min_bandwidth(self, net):
        assert net.worst_case_cmt == pytest.approx(1 / 4e6)


class TestTransfers:
    def test_transfer_time(self, net):
        assert net.transfer_time(0, 2, 4e6) == pytest.approx(1.0)

    def test_transfer_time_colocated_zero(self, net):
        assert net.transfer_time(1, 1, 4e6) == 0.0

    def test_negative_bits_rejected(self, net):
        with pytest.raises(ValueError):
            net.transfer_time(0, 1, -1.0)
        with pytest.raises(ValueError):
            net.worst_case_transfer_energy(0, -1.0)

    def test_transfer_energy_charged_to_sender(self, net):
        # 1 s over the 4 Mbit/s link at fast transmit rate 0.2 u/s.
        assert net.transfer_energy(0, 2, 4e6) == pytest.approx(0.2)
        # Reverse direction: slow sender at 0.002 u/s.
        assert net.transfer_energy(2, 0, 4e6) == pytest.approx(0.002)

    def test_worst_case_energy_upper_bounds_actual(self, net):
        bits = 3e6
        for src in range(4):
            wc = net.worst_case_transfer_energy(src, bits)
            for dst in range(4):
                assert net.transfer_energy(src, dst, bits) <= wc + 1e-12


def test_homogeneous_grid_cmt_uniform():
    g = make_case(3, 0)
    net = NetworkModel(g)
    assert net.cmt(0, 1) == net.cmt(1, 2) == pytest.approx(1 / 8e6)
