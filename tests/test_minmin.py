"""Classic Min-Min baseline (extension)."""

import pytest

from repro.baselines.minmin import MinMinScheduler
from repro.sim.validate import validate_schedule


class TestMinMin:
    def test_valid_schedule(self, small_scenario):
        result = MinMinScheduler().map(small_scenario)
        validate_schedule(result.schedule)
        assert result.heuristic == "Min-Min"

    def test_loose_scenario_completes(self, loose_scenario):
        result = MinMinScheduler().map(loose_scenario)
        assert result.complete
        assert result.t100 == loose_scenario.n_tasks  # primary when affordable

    def test_deterministic(self, tiny_scenario):
        a = MinMinScheduler().map(tiny_scenario)
        b = MinMinScheduler().map(tiny_scenario)
        assert a.schedule.summary() == b.schedule.summary()

    def test_short_makespan_bias(self, small_scenario):
        """Min-Min minimises completion times; its makespan should beat an
        intentionally bad mapping (everything on one slow machine)."""
        result = MinMinScheduler().map(small_scenario)
        if not result.complete:
            pytest.skip("scenario too tight for Min-Min")
        slow = small_scenario.grid.slow_indices[0]
        serial_slow = sum(
            small_scenario.exec_time(t, slow, a.version)
            for t, a in result.schedule.assignments.items()
        )
        assert result.aet < serial_slow

    def test_respects_precedence(self, small_scenario):
        result = MinMinScheduler().map(small_scenario)
        dag = small_scenario.dag
        for t, a in result.schedule.assignments.items():
            for p in dag.parents[t]:
                assert result.schedule.assignments[p].finish <= a.start + 1e-6
