"""Property-based round-trips for the JSON persistence layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig
from repro.io.serialization import (
    mapping_from_dict,
    mapping_to_dict,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.workload.scenario import (
    generate_scenario,
    paper_scaled_grid,
    paper_scaled_spec,
)

_CACHE = {}


def _scenario(seed: int, n: int):
    key = (seed, n)
    if key not in _CACHE:
        _CACHE[key] = generate_scenario(
            paper_scaled_spec(n), grid=paper_scaled_grid(n), seed=seed
        )
    return _CACHE[key]


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=50),
    n=st.integers(min_value=2, max_value=24),
)
def test_scenario_roundtrip_any_instance(seed, n):
    scenario = _scenario(seed, n)
    restored = scenario_from_dict(scenario_to_dict(scenario))
    assert np.array_equal(restored.etc, scenario.etc)
    assert restored.dag.edges() == scenario.dag.edges()
    assert restored.data_sizes == scenario.data_sizes
    assert restored.tau == scenario.tau


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=20),
    alpha10=st.integers(min_value=0, max_value=10),
)
def test_mapping_roundtrip_any_weights(seed, alpha10):
    scenario = _scenario(seed, 14)
    alpha = alpha10 / 10
    beta = (1 - alpha) / 2
    result = SLRH1(
        SlrhConfig(weights=Weights.from_alpha_beta(alpha, beta))
    ).map(scenario)
    restored = mapping_from_dict(mapping_to_dict(result.schedule), scenario)
    assert restored.t100 == result.t100
    assert restored.n_mapped == result.schedule.n_mapped
    assert restored.makespan == result.schedule.makespan
    assert abs(
        restored.total_energy_consumed - result.schedule.total_energy_consumed
    ) < 1e-6
