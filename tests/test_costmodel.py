"""Analytic SLRH cost model."""

import math

import pytest

from repro.core.costmodel import (
    calibrate_seconds_per_plan,
    estimate_cost,
    validate_against_trace,
)
from repro.core.slrh import SLRH1, SLRH3


class TestEstimate:
    def test_fields_positive(self, small_scenario):
        est = estimate_cost(small_scenario)
        assert est.ticks > 0
        assert est.machine_scans >= est.ticks
        assert est.plan_evaluations >= est.pool_builds

    def test_unknown_variant_rejected(self, small_scenario):
        with pytest.raises(KeyError):
            estimate_cost(small_scenario, variant="SLRH-9")

    def test_slrh2_costs_more_than_slrh1(self, small_scenario):
        e1 = estimate_cost(small_scenario, "SLRH-1")
        e2 = estimate_cost(small_scenario, "SLRH-2")
        assert e2.plan_evaluations > e1.plan_evaluations

    def test_seconds_nan_without_calibration(self, small_scenario):
        assert math.isnan(estimate_cost(small_scenario).seconds)

    def test_seconds_with_calibration(self, small_scenario):
        est = estimate_cost(small_scenario, seconds_per_plan=1e-4)
        assert est.seconds == pytest.approx(est.plan_evaluations * 1e-4)

    def test_summary_keys(self, small_scenario):
        s = estimate_cost(small_scenario).summary()
        assert set(s) == {"ticks", "machine_scans", "pool_builds",
                          "plan_evaluations", "seconds"}


class TestCalibration:
    def test_calibrated_prediction_reasonable(self, small_scenario, mid_config):
        result = SLRH1(mid_config).map(small_scenario)
        spp = calibrate_seconds_per_plan(result, small_scenario)
        assert spp > 0
        est = estimate_cost(small_scenario, seconds_per_plan=spp)
        # Calibration is exact by construction on the same run.
        assert est.seconds == pytest.approx(result.heuristic_seconds)

    def test_transfers_across_variants(self, small_scenario, mid_config):
        """A constant fit on SLRH-1 predicts SLRH-3's runtime within an
        order of magnitude — the model's stated accuracy claim."""
        r1 = SLRH1(mid_config).map(small_scenario)
        spp = calibrate_seconds_per_plan(r1, small_scenario)
        r3 = SLRH3(mid_config).map(small_scenario)
        est3 = estimate_cost(small_scenario, "SLRH-3", seconds_per_plan=spp)
        assert est3.seconds / r3.heuristic_seconds < 10.0
        assert est3.seconds / r3.heuristic_seconds > 0.1


class TestTraceValidation:
    def test_ratios_within_order_of_magnitude(self, small_scenario, mid_config):
        result = SLRH1(mid_config).map(small_scenario)
        ratios = validate_against_trace(result, small_scenario)
        for key, ratio in ratios.items():
            assert 0.1 < ratio < 10.0, f"{key} prediction off by {ratio}"
