"""Stopwatch semantics."""

import pytest

from repro.util.timing import Stopwatch


def test_elapsed_accumulates():
    sw = Stopwatch()
    with sw:
        pass
    first = sw.elapsed
    with sw:
        pass
    assert sw.elapsed >= first


def test_double_start_rejected():
    sw = Stopwatch()
    sw.start()
    with pytest.raises(RuntimeError):
        sw.start()
    sw.stop()


def test_stop_without_start_rejected():
    with pytest.raises(RuntimeError):
        Stopwatch().stop()


def test_running_flag():
    sw = Stopwatch()
    assert not sw.running
    sw.start()
    assert sw.running
    sw.stop()
    assert not sw.running


def test_reset_clears():
    sw = Stopwatch()
    with sw:
        pass
    sw.reset()
    assert sw.elapsed == 0.0
    assert not sw.running


def test_context_manager_returns_self():
    sw = Stopwatch()
    with sw as inner:
        assert inner is sw
