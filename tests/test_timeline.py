"""IntervalTimeline: reservations, gap search, common-gap search."""

import pytest

from repro.sim.timeline import IntervalTimeline, earliest_common_gap


@pytest.fixture
def tl():
    return IntervalTimeline()


class TestReserve:
    def test_reserve_and_query(self, tl):
        tl.reserve(1.0, 2.0)
        assert not tl.is_free(1.5, 1.8)
        assert tl.is_free(2.0, 3.0)
        assert tl.is_free(0.0, 1.0)

    def test_overlap_rejected(self, tl):
        tl.reserve(1.0, 2.0)
        with pytest.raises(ValueError):
            tl.reserve(1.5, 2.5)
        with pytest.raises(ValueError):
            tl.reserve(0.5, 1.5)
        with pytest.raises(ValueError):
            tl.reserve(0.0, 3.0)

    def test_touching_intervals_ok(self, tl):
        tl.reserve(1.0, 2.0)
        tl.reserve(2.0, 3.0)
        tl.reserve(0.0, 1.0)
        assert len(tl) == 3

    def test_zero_length_noop(self, tl):
        tl.reserve(1.0, 1.0)
        assert len(tl) == 0

    def test_negative_interval_rejected(self, tl):
        with pytest.raises(ValueError):
            tl.reserve(2.0, 1.0)

    def test_tail(self, tl):
        assert tl.tail == 0.0
        tl.reserve(5.0, 7.0)
        tl.reserve(1.0, 2.0)
        assert tl.tail == 7.0

    def test_busy_time(self, tl):
        tl.reserve(0.0, 2.0)
        tl.reserve(3.0, 4.5)
        assert tl.busy_time() == pytest.approx(3.5)


class TestRelease:
    def test_release_exact(self, tl):
        tl.reserve(1.0, 2.0)
        tl.release(1.0, 2.0)
        assert len(tl) == 0
        assert tl.is_free(1.0, 2.0)

    def test_release_unknown_rejected(self, tl):
        tl.reserve(1.0, 2.0)
        with pytest.raises(ValueError):
            tl.release(1.0, 1.5)

    def test_release_then_rereserve(self, tl):
        tl.reserve(1.0, 2.0)
        tl.release(1.0, 2.0)
        tl.reserve(0.5, 2.5)

    def test_release_zero_length_noop(self, tl):
        tl.release(1.0, 1.0)


class TestEarliestGap:
    def test_empty_timeline(self, tl):
        assert tl.earliest_gap(5.0, not_before=3.0) == 3.0

    def test_finds_hole(self, tl):
        tl.reserve(0.0, 2.0)
        tl.reserve(5.0, 8.0)
        assert tl.earliest_gap(3.0, not_before=0.0) == pytest.approx(2.0)

    def test_hole_too_small_skipped(self, tl):
        tl.reserve(0.0, 2.0)
        tl.reserve(3.0, 5.0)
        assert tl.earliest_gap(2.0, not_before=0.0) == pytest.approx(5.0)

    def test_not_before_inside_interval(self, tl):
        tl.reserve(0.0, 4.0)
        assert tl.earliest_gap(1.0, not_before=2.0) == pytest.approx(4.0)

    def test_append_only_ignores_holes(self, tl):
        tl.reserve(0.0, 1.0)
        tl.reserve(5.0, 6.0)
        assert tl.earliest_gap(1.0, not_before=0.0, append_only=True) == pytest.approx(6.0)

    def test_zero_duration(self, tl):
        tl.reserve(0.0, 2.0)
        t = tl.earliest_gap(0.0, not_before=1.0)
        assert t == pytest.approx(2.0)

    def test_negative_duration_rejected(self, tl):
        with pytest.raises(ValueError):
            tl.earliest_gap(-1.0)

    def test_gap_between_many(self, tl):
        for k in range(10):
            tl.reserve(2 * k, 2 * k + 1)
        assert tl.earliest_gap(1.0, not_before=0.5) == pytest.approx(1.0)
        assert tl.earliest_gap(1.5, not_before=0.0) == pytest.approx(19.0)


class TestCommonGap:
    def test_both_empty(self):
        a, b = IntervalTimeline(), IntervalTimeline()
        assert earliest_common_gap(a, b, 2.0, not_before=1.0) == 1.0

    def test_alternating_conflicts(self):
        a, b = IntervalTimeline(), IntervalTimeline()
        a.reserve(0.0, 2.0)
        b.reserve(2.0, 4.0)
        a.reserve(4.0, 6.0)
        assert earliest_common_gap(a, b, 1.0) == pytest.approx(6.0)

    def test_shared_hole(self):
        a, b = IntervalTimeline(), IntervalTimeline()
        a.reserve(0.0, 1.0)
        a.reserve(3.0, 9.0)
        b.reserve(0.0, 2.0)
        b.reserve(4.0, 9.0)
        # Common free window of length 1 is [2, 3).
        assert earliest_common_gap(a, b, 1.0) == pytest.approx(2.0)

    def test_result_is_free_in_both(self):
        a, b = IntervalTimeline(), IntervalTimeline()
        for k in range(6):
            a.reserve(3 * k, 3 * k + 1.5)
            b.reserve(3 * k + 1, 3 * k + 2.2)
        d = 0.7
        t = earliest_common_gap(a, b, d)
        assert a.is_free(t, t + d)
        assert b.is_free(t, t + d)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            earliest_common_gap(IntervalTimeline(), IntervalTimeline(), -1.0)


def test_copy_is_independent(tl):
    tl.reserve(0.0, 1.0)
    dup = tl.copy()
    dup.reserve(2.0, 3.0)
    assert len(tl) == 1
    assert len(dup) == 2


def test_has_work_at_or_after(tl):
    assert not tl.has_work_at_or_after(0.0)
    tl.reserve(1.0, 2.0)
    assert tl.has_work_at_or_after(0.0)
    assert tl.has_work_at_or_after(1.5)
    assert not tl.has_work_at_or_after(2.0)
