"""The shared figures-3-7 comparison engine, at a throwaway tiny scale."""

import pytest

from repro.experiments.comparison import (
    CaseComparison,
    HeuristicScenarioOutcome,
    make_factory,
    run_comparison,
)
from repro.experiments.figures import (
    figure3_weight_sensitivity,
    figure4_t100_comparison,
    figure5_vs_upper_bound,
    figure6_execution_time,
    figure7_value_metric,
)
from repro.experiments.scale import ExperimentScale

TINY = ExperimentScale(
    name="unit-tiny", n_tasks=14, n_etc=1, n_dag=1,
    coarse_step=0.5, fine=False, include_slrh2=False,
)


@pytest.fixture(scope="module")
def results():
    return run_comparison(TINY)


class TestFactory:
    @pytest.mark.parametrize("name", ["SLRH-1", "SLRH-2", "SLRH-3", "Max-Max"])
    def test_known_heuristics(self, name):
        from repro.core.objective import Weights

        mapper = make_factory(name)(Weights.from_alpha_beta(0.5, 0.2))
        assert hasattr(mapper, "map")

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_factory("SLRH-42")


class TestRunComparison:
    def test_all_cells_present(self, results):
        heuristics = results.heuristics()
        assert heuristics == ["SLRH-1", "SLRH-3", "Max-Max"]
        for h in heuristics:
            for case in "ABC":
                cell = results.cell(h, case)
                assert len(cell.outcomes) == 1

    def test_outcome_fields(self, results):
        for cell in results.cells.values():
            for o in cell.outcomes:
                assert 0 <= o.ub <= TINY.n_tasks
                assert o.evaluations > 0
                if o.succeeded:
                    assert 0 <= o.t100 <= TINY.n_tasks
                    assert o.heuristic_seconds > 0

    def test_memoised(self):
        assert run_comparison(TINY) is run_comparison(TINY)

    def test_bad_n_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_comparison(TINY, n_jobs=0)


class TestCellAggregates:
    def test_stats_on_failure_are_nan(self):
        cell = CaseComparison(heuristic="X", case="A")
        cell.outcomes.append(
            HeuristicScenarioOutcome(
                heuristic="X", case="A", etc=0, dag=0, succeeded=False,
                alpha=float("nan"), beta=float("nan"), t100=0,
                aet=float("nan"), heuristic_seconds=float("nan"),
                ub=10, evaluations=3,
            )
        )
        assert cell.success_rate == 0.0
        assert cell.t100_mean != cell.t100_mean  # NaN
        a_mean, a_min, a_max = cell.alpha_stats()
        assert a_mean != a_mean

    def test_vs_bound(self, results):
        for cell in results.cells.values():
            for o in cell.outcomes:
                if o.succeeded and o.ub:
                    assert o.vs_bound == pytest.approx(o.t100 / o.ub)


class TestFigureViews:
    def test_fig3_renders(self, results):
        fig = figure3_weight_sensitivity(TINY)
        text = fig.render()
        assert "SLRH-1" in text
        assert fig.slrh2_success_rate() is None  # SLRH-2 excluded at TINY

    def test_fig4_to_7_values(self):
        for driver in (
            figure4_t100_comparison,
            figure5_vs_upper_bound,
            figure6_execution_time,
            figure7_value_metric,
        ):
            fig = driver(TINY)
            v = fig.value("SLRH-1", "A")
            assert v == v  # not NaN: the tiny scenario is solvable
            assert "Case A" in fig.render()
            with pytest.raises(KeyError):
                fig.value("nonsense", "A")
