"""ΔT and H sweeps (Figure 2 machinery)."""

import pytest

from repro.core.slrh import SLRH1
from repro.tuning.sweeps import sweep_delta_t, sweep_horizon


class TestDeltaTSweep:
    @pytest.fixture(scope="class")
    def points(self, small_scenario, mid_weights):
        return sweep_delta_t(
            SLRH1, small_scenario, mid_weights, values=(1, 10, 100)
        )

    def test_one_point_per_value(self, points):
        assert [p.value for p in points] == [1, 10, 100]

    def test_small_delta_t_more_ticks(self, points):
        by_value = {p.value: p for p in points}
        assert by_value[1].ticks > by_value[100].ticks

    def test_small_delta_t_slower_heuristic(self, points):
        by_value = {p.value: p for p in points}
        assert by_value[1].heuristic_seconds > by_value[100].heuristic_seconds

    def test_point_fields_consistent(self, points):
        for p in points:
            assert 0 <= p.t100 <= p.mapped
            assert p.aet >= 0
            assert p.heuristic_seconds > 0


class TestTauSlackSweep:
    @pytest.fixture(scope="class")
    def points(self, small_scenario, mid_weights):
        from repro.tuning.sweeps import sweep_tau_slack

        return sweep_tau_slack(
            SLRH1, small_scenario, mid_weights, slacks=(0.25, 1.0, 4.0)
        )

    def test_values_are_percentages(self, points):
        assert [p.value for p in points] == [25, 100, 400]

    def test_generous_budget_completes(self, points, small_scenario):
        assert points[-1].mapped == small_scenario.n_tasks

    def test_tight_budget_worse_or_equal(self, points):
        assert points[0].mapped <= points[-1].mapped

    def test_bad_slack_rejected(self, small_scenario, mid_weights):
        from repro.tuning.sweeps import sweep_tau_slack

        with pytest.raises(ValueError):
            sweep_tau_slack(SLRH1, small_scenario, mid_weights, slacks=(0.0,))


class TestChooseDeltaT:
    def test_picks_a_swept_value(self, small_scenario, mid_weights):
        from repro.tuning.sweeps import choose_delta_t

        chosen, points = choose_delta_t(
            SLRH1, small_scenario, mid_weights, values=(1, 10, 100)
        )
        assert chosen in (1, 10, 100)
        assert len(points) == 3

    def test_prefers_cheap_over_expensive_at_equal_quality(
        self, small_scenario, mid_weights
    ):
        from repro.tuning.sweeps import choose_delta_t

        chosen, points = choose_delta_t(
            SLRH1, small_scenario, mid_weights, values=(1, 10, 100),
            t100_tolerance=1.0,  # any T100 acceptable -> cheapest wins
        )
        successes = [p for p in points if p.success] or points
        cheapest = min(successes, key=lambda p: (p.heuristic_seconds, p.value))
        assert chosen == cheapest.value

    def test_falls_back_when_nothing_succeeds(self, small_scenario, mid_weights):
        from repro.tuning.sweeps import choose_delta_t

        impossible = small_scenario.with_tau(1.0)
        chosen, points = choose_delta_t(
            SLRH1, impossible, mid_weights, values=(5, 50)
        )
        assert chosen in (5, 50)


class TestHorizonSweep:
    def test_values_recorded(self, small_scenario, mid_weights):
        points = sweep_horizon(
            SLRH1, small_scenario, mid_weights, values=(50, 100, 1000)
        )
        assert [p.value for p in points] == [50, 100, 1000]

    def test_horizon_negligible_effect_on_t100(self, small_scenario, mid_weights):
        """The paper found H to have negligible impact; at our scale results
        across a 20× H range should differ by at most a few subtasks."""
        points = sweep_horizon(
            SLRH1, small_scenario, mid_weights, values=(50, 1000)
        )
        assert abs(points[0].t100 - points[1].t100) <= small_scenario.n_tasks * 0.25
