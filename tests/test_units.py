"""Unit-conversion helpers."""

import pytest

from repro.util.units import (
    CYCLE_SECONDS,
    MEGABIT,
    cycles_to_seconds,
    seconds_to_cycles,
)


def test_cycle_is_paper_tenth_second():
    assert CYCLE_SECONDS == pytest.approx(0.1)


def test_megabit_constant():
    assert MEGABIT == 1e6


def test_cycles_to_seconds():
    assert cycles_to_seconds(10) == pytest.approx(1.0)
    assert cycles_to_seconds(0) == 0.0


def test_seconds_to_cycles():
    assert seconds_to_cycles(1.0) == pytest.approx(10.0)


def test_roundtrip():
    for v in (0.0, 1.0, 13.7, 34075.0):
        assert cycles_to_seconds(seconds_to_cycles(v)) == pytest.approx(v)
