"""Greedy static mapper and τ calibration."""

import pytest

from repro.baselines.greedy import GreedyScheduler, calibrate_tau
from repro.sim.validate import validate_schedule
from repro.util.units import CYCLE_SECONDS


class TestGreedy:
    def test_valid_complete_schedule(self, small_scenario):
        result = GreedyScheduler().map(small_scenario)
        assert result.complete
        validate_schedule(result.schedule, require_complete=True)

    def test_topological_commit_order(self, small_scenario):
        result = GreedyScheduler().map(small_scenario)
        dag = small_scenario.dag
        for t, a in result.schedule.assignments.items():
            for p in dag.parents[t]:
                assert result.schedule.assignments[p].finish <= a.start + 1e-6

    def test_prefers_primary_when_affordable(self, loose_scenario):
        result = GreedyScheduler().map(loose_scenario)
        assert result.t100 == loose_scenario.n_tasks

    def test_deterministic(self, tiny_scenario):
        a = GreedyScheduler().map(tiny_scenario)
        b = GreedyScheduler().map(tiny_scenario)
        assert a.schedule.summary() == b.schedule.summary()


class TestCalibrateTau:
    def test_tau_close_to_greedy_makespan(self, small_scenario):
        tau = calibrate_tau(small_scenario, slack=1.0)
        greedy = GreedyScheduler().map(small_scenario)
        assert tau >= greedy.aet - 1e-9
        assert tau <= greedy.aet + CYCLE_SECONDS + 1e-9

    def test_slack_scales(self, small_scenario):
        t1 = calibrate_tau(small_scenario, slack=1.0)
        t2 = calibrate_tau(small_scenario, slack=2.0)
        assert t2 > t1 * 1.8

    def test_rounded_to_cycle(self, small_scenario):
        tau = calibrate_tau(small_scenario, slack=1.3)
        cycles = tau / CYCLE_SECONDS
        assert cycles == pytest.approx(round(cycles))

    def test_bad_slack_rejected(self, small_scenario):
        with pytest.raises(ValueError):
            calibrate_tau(small_scenario, slack=0.0)

    def test_greedy_feasible_tau_accepts_greedy(self, small_scenario):
        """A τ calibrated at slack 1 must accept the greedy mapping itself."""
        tau = calibrate_tau(small_scenario, slack=1.0)
        result = GreedyScheduler().map(small_scenario.with_tau(tau))
        assert result.success
