"""The scheduling service (:mod:`repro.service`): registry, job manager,
HTTP surface, backpressure, drain — and the differential determinism
contract against the batch CLI."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.heuristics import HEURISTIC_NAMES, generate_named_scenario
from repro.io.serialization import (
    canonical_json_bytes,
    scenario_digest,
    scenario_to_dict,
)
from repro.service.app import ServiceServer, make_server
from repro.service.jobs import DrainingError, JobManager, QueueFullError
from repro.service.registry import ScenarioRegistry


def _scenario_doc(n_tasks=16, seed=3) -> dict:
    return scenario_to_dict(generate_named_scenario(n_tasks, seed))


# ---------------------------------------------------------------------------
# registry


class TestScenarioRegistry:
    def test_put_is_content_addressed(self):
        reg = ScenarioRegistry()
        doc = _scenario_doc()
        sid, created = reg.put(doc)
        assert created and sid.startswith("sha256:")
        assert sid == scenario_digest(doc)
        sid2, created2 = reg.put(json.loads(json.dumps(doc)))  # fresh dict, same content
        assert sid2 == sid and not created2
        assert len(reg) == 1 and sid in reg

    def test_get_scenario_uses_lru(self):
        reg = ScenarioRegistry(max_cached=1)
        a, _ = reg.put(_scenario_doc(12, 1))
        b, _ = reg.put(_scenario_doc(12, 2))
        assert reg.get_scenario(a).name == "gen12-seed1"  # evicted -> rebuild
        assert reg.perf.get("registry.cache_miss") >= 1
        assert reg.get_scenario(a).name == "gen12-seed1"  # now cached
        assert reg.perf.get("registry.cache_hit") >= 1
        assert reg.get_scenario(b).name == "gen12-seed2"
        assert reg.perf.gauge("registry.cached") == 1.0

    def test_rejects_malformed_documents(self):
        reg = ScenarioRegistry()
        with pytest.raises(ValueError):
            reg.put({"kind": "mapping"})
        doc = _scenario_doc()
        doc["etc"] = [[1.0]]  # shape mismatch vs dag/grid
        with pytest.raises(ValueError):
            reg.put(doc)
        assert len(reg) == 0

    def test_unknown_id_raises(self):
        reg = ScenarioRegistry()
        with pytest.raises(KeyError):
            reg.get_doc("sha256:missing")
        with pytest.raises(KeyError):
            reg.get_scenario("sha256:missing")


# ---------------------------------------------------------------------------
# job manager (no HTTP)


class TestJobManager:
    def test_submit_and_run(self):
        reg = ScenarioRegistry()
        sid, _ = reg.put(_scenario_doc())
        manager = JobManager(reg, n_jobs=1, max_queue=4).start()
        try:
            job = manager.submit(sid, "slrh1", alpha=0.5, beta=0.2)
            assert job.done.wait(timeout=120)
            assert job.state == "succeeded"
            assert job.outcome["summary"]["n_mapped"] > 0
            assert job.mapping_bytes.endswith(b"\n")
            assert manager.perf.get("service.completed") == 1.0
            assert manager.perf.histogram("service.request_seconds").count == 1
        finally:
            manager.close(drain_timeout=10)

    def test_validation_happens_at_admission(self):
        reg = ScenarioRegistry()
        sid, _ = reg.put(_scenario_doc())
        manager = JobManager(reg, n_jobs=1, max_queue=4)  # never started
        with pytest.raises(KeyError):
            manager.submit("sha256:unregistered", "slrh1")
        with pytest.raises(KeyError):
            manager.submit(sid, "frobnicate")
        with pytest.raises(ValueError):
            manager.submit(sid, "greedy", alpha=0.5)
        assert manager.queue_depth == 0

    def test_bounded_queue_rejects_with_retry_after(self):
        reg = ScenarioRegistry()
        sid, _ = reg.put(_scenario_doc())
        # Dispatcher intentionally NOT started: the queue cannot drain, so
        # saturation is deterministic.
        manager = JobManager(reg, n_jobs=1, max_queue=2)
        manager.submit(sid, "slrh1")
        manager.submit(sid, "slrh2")
        with pytest.raises(QueueFullError) as exc_info:
            manager.submit(sid, "slrh3")
        assert exc_info.value.retry_after >= 1
        assert exc_info.value.depth == 2
        assert manager.perf.get("service.rejected") == 1.0
        # The backlog never grew past the bound.
        assert manager.queue_depth == 2
        # Start the dispatcher: the queued jobs drain and complete.
        manager.start()
        assert manager.drain(timeout=120)
        assert all(
            manager.get(f"job-{i:08d}").state == "succeeded" for i in (1, 2)
        )
        manager.close(drain_timeout=10)

    def test_drain_blocks_until_idle_then_rejects(self):
        reg = ScenarioRegistry()
        sid, _ = reg.put(_scenario_doc())
        manager = JobManager(reg, n_jobs=1, max_queue=8).start()
        jobs = [manager.submit(sid, "greedy") for _ in range(3)]
        assert manager.drain(timeout=120)
        assert all(j.state == "succeeded" for j in jobs)
        assert manager.queue_depth == 0 and manager.inflight == 0
        with pytest.raises(DrainingError):
            manager.submit(sid, "greedy")
        assert manager.perf.get("service.rejected_draining") == 1.0
        manager.close(drain_timeout=10)

    def test_metrics_document_schema(self):
        reg = ScenarioRegistry()
        sid, _ = reg.put(_scenario_doc())
        manager = JobManager(reg, n_jobs=1, max_queue=4).start()
        try:
            manager.submit(sid, "slrh1").done.wait(timeout=120)
            doc = manager.metrics_document()
            assert doc["schema"] == "repro.perf/2"
            assert doc["gauges"]["service.queue_depth"] == 0.0
            assert doc["gauges"]["registry.scenarios"] == 1.0
            hist = doc["histograms"]["service.request_seconds"]
            assert hist["count"] == 1 and hist["p50"] > 0.0
            # Engine counters from the job's run were merged in.
            assert doc["counters"]["map.runs"] == 1.0
            assert doc["counters"]["plan.pairs"] > 0
        finally:
            manager.close(drain_timeout=10)


# ---------------------------------------------------------------------------
# HTTP surface


def _post(base, path, doc, timeout=120):
    req = urllib.request.Request(
        base + path,
        data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _get(base, path, timeout=120):
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


@pytest.fixture()
def service():
    """A live service on an ephemeral port (serial worker, small queue)."""
    manager = JobManager(ScenarioRegistry(), n_jobs=1, max_queue=16)
    server = make_server("127.0.0.1", 0, manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", manager
    manager.drain(timeout=60)
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()
    manager.close(drain_timeout=0)


class TestHTTPSurface:
    def test_register_map_and_jobs(self, service):
        base, _ = service
        status, _, body = _post(base, "/v1/scenarios", _scenario_doc())
        assert status == 201
        reg_doc = json.loads(body)
        assert reg_doc["created"] and reg_doc["n_tasks"] == 16
        sid = reg_doc["id"]
        # duplicate registration: 200, same id
        status, _, body = _post(base, "/v1/scenarios", _scenario_doc())
        assert status == 200 and json.loads(body)["id"] == sid
        # server-side generation converges on the same content address
        status, _, body = _post(
            base, "/v1/scenarios", {"generate": {"n_tasks": 16, "seed": 3}}
        )
        assert status == 200 and json.loads(body)["id"] == sid

        # synchronous map returns the mapping document directly
        status, headers, mapping = _post(
            base, "/v1/map", {"scenario": sid, "heuristic": "SLRH-3"}
        )
        assert status == 200
        doc = json.loads(mapping)
        assert doc["kind"] == "mapping" and doc["assignments"]
        job_id = headers["X-Job-Id"]

        # job endpoints agree
        status, _, body = _get(base, f"/v1/jobs/{job_id}")
        assert status == 200
        job_doc = json.loads(body)
        assert job_doc["state"] == "succeeded"
        assert job_doc["heuristic"] == "slrh3"
        assert job_doc["summary"]["n_tasks"] == 16
        status, _, result = _get(base, f"/v1/jobs/{job_id}/result")
        assert status == 200 and result == mapping

        status, _, body = _get(base, "/v1/scenarios")
        assert status == 200 and json.loads(body)["scenarios"] == [sid]

    def test_async_map_with_ndjson_events(self, service):
        base, _ = service
        _, _, body = _post(base, "/v1/scenarios", _scenario_doc())
        sid = json.loads(body)["id"]
        status, _, body = _post(
            base, "/v1/map", {"scenario": sid, "heuristic": "slrh1", "wait": False}
        )
        assert status == 202
        pending = json.loads(body)
        assert pending["job"].startswith("job-")
        status, headers, stream = _get(base, pending["events_url"])
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        events = [json.loads(line) for line in stream.splitlines() if line]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "status"
        assert kinds[-1] == "done" and events[-1]["state"] == "succeeded"
        commits = [e for e in events if e["event"] == "commit"]
        assert commits and {"clock", "task", "machine", "t100"} <= set(commits[0])
        (trace,) = [e for e in events if e["event"] == "trace"]
        assert trace["commits"] == len(commits)

    def test_error_statuses(self, service):
        base, _ = service
        status, _, _ = _post(base, "/v1/map", {"scenario": "sha256:nope"})
        assert status == 404
        _, _, body = _post(base, "/v1/scenarios", _scenario_doc())
        sid = json.loads(body)["id"]
        status, _, _ = _post(base, "/v1/map", {"scenario": sid, "heuristic": "bogus"})
        assert status == 404
        status, _, _ = _post(
            base, "/v1/map", {"scenario": sid, "heuristic": "greedy", "alpha": 0.5}
        )
        assert status == 400
        status, _, _ = _post(base, "/v1/map", {})
        assert status == 400
        status, _, _ = _post(base, "/v1/scenarios", {"kind": "other"})
        assert status == 400
        status, _, _ = _get(base, "/v1/jobs/job-99999999")
        assert status == 404
        status, _, _ = _get(base, "/nope")
        assert status == 404

    def test_healthz_and_metrics_under_traffic(self, service):
        base, _ = service
        _, _, body = _post(base, "/v1/scenarios", _scenario_doc())
        sid = json.loads(body)["id"]
        for heuristic in ("slrh1", "minmin"):
            status, _, _ = _post(base, "/v1/map", {"scenario": sid, "heuristic": heuristic})
            assert status == 200
        status, _, body = _get(base, "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok" and health["scenarios"] == 1
        status, _, body = _get(base, "/metrics")
        assert status == 200
        metrics = json.loads(body)
        assert metrics["schema"] == "repro.perf/2"
        assert metrics["counters"]["service.completed"] == 2.0
        assert metrics["gauges"]["service.queue_depth"] == 0.0
        assert 0.0 <= metrics["derived"]["plan_cache_comm_hit_rate"] <= 1.0
        lat = metrics["histograms"]["service.request_seconds"]
        assert lat["count"] == 2
        assert lat["p50"] <= lat["p95"] <= lat["p99"]

    def test_queue_saturation_returns_429_over_http(self):
        manager = JobManager(ScenarioRegistry(), n_jobs=1, max_queue=1)
        # Dispatcher NOT started: saturation is deterministic.
        server = ServiceServer(("127.0.0.1", 0), manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            _, _, body = _post(base, "/v1/scenarios", _scenario_doc())
            sid = json.loads(body)["id"]
            payload = {"scenario": sid, "heuristic": "slrh1", "wait": False}
            status, _, _ = _post(base, "/v1/map", payload)
            assert status == 202
            status, headers, body = _post(base, "/v1/map", payload)
            assert status == 429
            # RFC 9110 delta-seconds: a plain decimal string, no float repr.
            assert headers["Retry-After"].isdigit()
            assert int(headers["Retry-After"]) >= 1
            doc = json.loads(body)
            assert doc["queue_depth"] == 1
            # Body keeps the integer too — loadgen backs off on this field.
            assert doc["retry_after"] == int(headers["Retry-After"])
            # Draining rejects with 503, not 429.
            manager.start()
            assert manager.drain(timeout=120)
            status, _, _ = _post(base, "/v1/map", payload)
            assert status == 503
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            manager.close(drain_timeout=0)


class TestRetryAfterHeaderType:
    """The 429 Retry-After header must hit the wire as RFC 9110
    delta-seconds — a decimal string — regardless of how the queue's
    integer estimate reaches the handler, and the same integer must stay
    in the JSON body for clients that back off on ``retry_after``."""

    @pytest.mark.parametrize("estimate,expected", [(7, "7"), (12.0, "12")])
    def test_error_serialises_retry_after_at_the_boundary(
        self, estimate, expected
    ):
        import io

        from repro.service.app import ServiceHandler

        handler = object.__new__(ServiceHandler)
        sent: dict[str, object] = {}
        handler.send_response = lambda status: None  # type: ignore[method-assign]
        handler.send_header = (  # type: ignore[method-assign]
            lambda name, value: sent.__setitem__(name, value)
        )
        handler.end_headers = lambda: None  # type: ignore[method-assign]
        handler.wfile = io.BytesIO()  # type: ignore[assignment]
        handler._error(429, "job queue full", retry_after=estimate, queue_depth=3)
        assert sent["Retry-After"] == expected
        assert isinstance(sent["Retry-After"], str)
        body = json.loads(handler.wfile.getvalue())
        assert body["retry_after"] == estimate
        assert body["queue_depth"] == 3


# ---------------------------------------------------------------------------
# differential determinism: service bytes == batch CLI bytes


class TestDifferentialDeterminism:
    @pytest.fixture(scope="class")
    def served_mappings(self):
        """Every registry heuristic served once for one fixed scenario+seed."""
        manager = JobManager(ScenarioRegistry(), n_jobs=1, max_queue=32)
        server = make_server("127.0.0.1", 0, manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        served = {}
        try:
            _, _, body = _post(
                base, "/v1/scenarios", {"generate": {"n_tasks": 16, "seed": 3}}
            )
            sid = json.loads(body)["id"]
            for heuristic in HEURISTIC_NAMES:
                status, _, mapping = _post(
                    base, "/v1/map", {"scenario": sid, "heuristic": heuristic}
                )
                assert status == 200, mapping
                served[heuristic] = mapping
        finally:
            manager.drain(timeout=120)
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            manager.close(drain_timeout=0)
        return served

    @pytest.mark.parametrize("heuristic", HEURISTIC_NAMES)
    def test_service_matches_batch_cli_byte_for_byte(
        self, served_mappings, heuristic, tmp_path
    ):
        from repro.experiments.__main__ import main as cli_main

        out = tmp_path / f"{heuristic}.json"
        rc = cli_main(
            ["map", "--generate", "16", "--seed", "3",
             "--heuristic", heuristic, "--out", str(out)]
        )
        assert rc == 0
        assert out.read_bytes() == served_mappings[heuristic]

    def test_mapping_bytes_are_canonical(self, served_mappings):
        for payload in served_mappings.values():
            assert payload == canonical_json_bytes(json.loads(payload))


# ---------------------------------------------------------------------------
# the daemon process: boot, serve, SIGTERM drain


class TestDaemonProcess:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "--port", "0", "--jobs", "1"],
            cwd="/root/repo",
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on" in line, line
            base = line.split("listening on ", 1)[1].split()[0].rstrip("/")
            status, _, body = _post(
                base, "/v1/scenarios", {"generate": {"n_tasks": 12, "seed": 1}}
            )
            assert status == 201
            sid = json.loads(body)["id"]
            status, _, mapping = _post(base, "/v1/map", {"scenario": sid})
            assert status == 200 and json.loads(mapping)["kind"] == "mapping"
            status, _, body = _get(base, "/metrics")
            assert status == 200 and json.loads(body)["counters"]
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        except BaseException:
            proc.kill()
            raise
        assert proc.returncode == 0, out
        assert "drained" in out and "1 jobs completed" in out


# ---------------------------------------------------------------------------
# load generator


class TestLoadgen:
    def test_run_loadgen_self_hosted(self, tmp_path):
        from repro.service.loadgen import main as loadgen_main

        out = tmp_path / "bench" / "BENCH_service.json"
        rc = loadgen_main(
            ["--clients", "1,2", "--requests", "2", "--n-tasks", "12",
             "--seed", "1", "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.bench.service/1"
        assert [lvl["clients"] for lvl in doc["levels"]] == [1, 2]
        for lvl in doc["levels"]:
            assert lvl["errors"] == 0
            assert lvl["requests"] == lvl["clients"] * 2
            assert lvl["throughput_rps"] > 0
            lat = lvl["latency_seconds"]
            assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"]
        after = doc["metrics_after"]
        assert after["counters"]["service.completed"] == 6.0
        assert "service.request_seconds" in after["histograms"]
