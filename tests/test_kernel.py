"""The scheduling kernel: mode resolution, pool-delta equivalence, and the
byte-identity differential between incremental and rebuild modes.

The incremental candidate pool is an optimisation with a proof obligation:
for every heuristic, under any event sequence, the mapping it produces must
be byte-identical to the from-scratch rebuild path (the differential
oracle, ``REPRO_KERNEL=rebuild``).  These tests pin that obligation three
ways — a Hypothesis property test equating :meth:`CandidatePool.pool_for`
with :func:`build_candidate_pool` under random commit/advance/churn
interleavings, whole-mapping byte identity for all six registry
heuristics, and a churn replay driven through one persistent kernel.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feasibility import FeasibilityChecker
from repro.core.kernel import (
    KERNEL_MODES,
    CandidatePool,
    SchedulingKernel,
    TickPolicy,
    resolve_kernel_mode,
)
from repro.core.objective import ObjectiveFunction, Weights
from repro.core.pool import build_candidate_pool
from repro.core.slrh import SLRH1, SLRH2, SLRH3, SlrhConfig
from repro.heuristics import HEURISTIC_NAMES, run_heuristic
from repro.io.serialization import canonical_mapping_bytes
from repro.sim.churn import ChurnEvent, run_with_churn
from repro.sim.schedule import Schedule
from repro.workload.scenario import (
    generate_scenario,
    paper_scaled_grid,
    paper_scaled_spec,
)

_WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)
_SCENARIOS = {}


def _scenario(n: int, seed: int):
    key = (n, seed)
    if key not in _SCENARIOS:
        _SCENARIOS[key] = generate_scenario(
            paper_scaled_spec(n), grid=paper_scaled_grid(n), seed=seed
        )
    return _SCENARIOS[key]


class TestModeResolution:
    def test_default_is_incremental(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel_mode() == "incremental"

    def test_env_selects_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "rebuild")
        assert resolve_kernel_mode() == "rebuild"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "rebuild")
        assert resolve_kernel_mode("incremental") == "incremental"

    @pytest.mark.parametrize(
        "alias,mode",
        [
            ("inc", "incremental"), ("delta", "incremental"),
            ("1", "incremental"), ("on", "incremental"),
            ("full", "rebuild"), ("oracle", "rebuild"),
            ("0", "rebuild"), ("off", "rebuild"),
            ("Rebuild", "rebuild"), (" incremental ", "incremental"),
        ],
    )
    def test_aliases(self, alias, mode):
        assert resolve_kernel_mode(alias) == mode

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown kernel mode"):
            resolve_kernel_mode("bogus")

    def test_ledger_forces_rebuild(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "incremental")
        assert resolve_kernel_mode("incremental", ledger=True) == "rebuild"

    def test_scheduler_with_ledger_builds_rebuild_kernel(self, tiny_scenario):
        scheduler = SLRH1(
            SlrhConfig(weights=_WEIGHTS, ledger=True, kernel="incremental")
        )
        kernel = scheduler.make_kernel(Schedule(tiny_scenario))
        assert kernel.mode == "rebuild"
        assert kernel.pool is None


class TestConstruction:
    def test_policy_rejects_unknown_refresh(self):
        with pytest.raises(ValueError, match="refresh"):
            TickPolicy(max_commits=1, refresh="sometimes")

    def test_policy_rejects_nonpositive_commits(self):
        with pytest.raises(ValueError, match="max_commits"):
            TickPolicy(max_commits=0, refresh="none")

    def test_kernel_rejects_unknown_mode(self, tiny_scenario):
        schedule = Schedule(tiny_scenario)
        with pytest.raises(ValueError, match="kernel mode"):
            SchedulingKernel(schedule, None, None, mode="bogus")

    def test_kernel_rejects_unknown_machine_order(self, tiny_scenario):
        schedule = Schedule(tiny_scenario)
        with pytest.raises(ValueError, match="machine_order"):
            SchedulingKernel(schedule, None, None, machine_order="alphabetical")

    def test_modes_constant_covers_both_paths(self):
        assert KERNEL_MODES == ("incremental", "rebuild")

    def test_map_rejects_foreign_kernel(self, tiny_scenario):
        scheduler = SLRH1(SlrhConfig(weights=_WEIGHTS))
        foreign = scheduler.make_kernel(Schedule(tiny_scenario))
        with pytest.raises(ValueError, match="different schedule"):
            scheduler.map(
                tiny_scenario, schedule=Schedule(tiny_scenario), kernel=foreign
            )


def _pool_key(pool):
    """Comparable image of an ordered candidate pool — every field a fresh
    build determines, bit-for-bit."""
    return [
        (
            c.task,
            c.version,
            c.plan.machine,
            c.plan.start,
            c.plan.finish,
            c.plan.data_ready,
            c.plan.energy_delta,
            tuple((x.src, x.dst, x.start, x.finish) for x in c.plan.comms),
            c.score,
        )
        for c in pool
    ]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5),
    n=st.sampled_from([8, 12, 16]),
    data=st.data(),
)
def test_incremental_pool_matches_rebuild_under_random_events(seed, n, data):
    """THE kernel property: after any interleaving of commits, clock
    advances, and churn-style invalidations, the delta-maintained pool is
    identical — members, plans, scores, order — to a from-scratch build."""
    scenario = _scenario(n, seed)
    schedule = Schedule(scenario)
    checker = FeasibilityChecker(scenario)
    objective = ObjectiveFunction.for_scenario(scenario, _WEIGHTS)
    pool = CandidatePool(schedule, checker, objective)
    n_machines = scenario.n_machines
    offline: set[int] = set()
    nb = 0.0

    def check(machine: int) -> list:
        incremental, _ = pool.pool_for(machine, nb)
        oracle = build_candidate_pool(
            schedule, checker, objective, machine, not_before=nb
        )
        assert _pool_key(incremental) == _pool_key(oracle)
        return incremental

    actions = data.draw(
        st.lists(
            st.sampled_from(["query", "commit", "advance", "churn"]),
            min_size=4,
            max_size=14,
        )
    )
    for action in actions:
        online = [j for j in range(n_machines) if j not in offline]
        if action in ("query", "commit") and online:
            machine = data.draw(st.sampled_from(online))
            members = check(machine)
            if action == "commit" and members and not schedule.is_complete:
                plan = members[data.draw(
                    st.integers(min_value=0, max_value=len(members) - 1)
                )].plan
                schedule.commit(plan)
                pool.note_commit(plan)
        elif action == "advance":
            nb += data.draw(st.floats(min_value=0.5, max_value=400.0))
        elif action == "churn":
            machine = data.draw(st.integers(min_value=0, max_value=n_machines - 1))
            if machine in offline:
                offline.discard(machine)
                schedule.set_offline(machine, False)
            else:
                offline.add(machine)
                schedule.set_offline(machine, True)
            pool.invalidate_all()
    # Final sweep: every online machine agrees with the oracle.
    for machine in range(n_machines):
        if machine not in offline:
            check(machine)


def _map_with_mode(name: str, scenario, mode: str, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", mode)
    if name in ("minmin", "greedy"):
        return run_heuristic(name, scenario)
    return run_heuristic(name, scenario, 0.5, 0.2)


class TestByteIdentity:
    """Mapping bytes must not depend on the kernel mode — for any registry
    heuristic (the static baselines are mode-blind by construction; the
    SLRH family is where the incremental pool earns its keep)."""

    @pytest.mark.parametrize("name", HEURISTIC_NAMES)
    def test_registry_heuristics_identical_across_modes(
        self, name, small_scenario, monkeypatch
    ):
        results = {
            mode: _map_with_mode(name, small_scenario, mode, monkeypatch)
            for mode in KERNEL_MODES
        }
        inc, reb = results["incremental"], results["rebuild"]
        assert canonical_mapping_bytes(inc.schedule) == canonical_mapping_bytes(
            reb.schedule
        )

    @pytest.mark.parametrize("cls", [SLRH1, SLRH2, SLRH3])
    def test_slrh_trace_counters_identical_across_modes(self, cls, small_scenario):
        traces = {}
        for mode in KERNEL_MODES:
            cfg = SlrhConfig(weights=_WEIGHTS, kernel=mode)
            traces[mode] = cls(cfg).map(small_scenario).trace
        inc, reb = traces["incremental"], traces["rebuild"]
        assert (inc.ticks, inc.machine_scans, inc.empty_pool_ticks) == (
            reb.ticks, reb.machine_scans, reb.empty_pool_ticks
        )
        assert inc.records == reb.records

    @pytest.mark.parametrize("order", ["battery", "round_robin"])
    def test_machine_order_variants_identical_across_modes(
        self, order, small_scenario
    ):
        mappings = {}
        for mode in KERNEL_MODES:
            cfg = SlrhConfig(weights=_WEIGHTS, kernel=mode, machine_order=order)
            mappings[mode] = canonical_mapping_bytes(
                SLRH2(cfg).map(small_scenario).schedule
            )
        assert mappings["incremental"] == mappings["rebuild"]

    def test_incremental_kernel_actually_reuses_entries(self, small_scenario):
        result = SLRH1(SlrhConfig(weights=_WEIGHTS, kernel="incremental")).map(
            small_scenario
        )
        perf = result.trace.perf
        assert perf.get("pool.reuse_hits", 0) > 0
        assert perf.get("pool.invalidations", 0) > 0

    def test_ledger_contents_match_rebuild(self, small_scenario):
        """A ledgered run (forced onto the rebuild path) must report the
        same rejection history as an explicitly rebuild-mode run."""
        via_default = SLRH1(SlrhConfig(weights=_WEIGHTS, ledger=True)).map(
            small_scenario
        )
        via_rebuild = SLRH1(
            SlrhConfig(weights=_WEIGHTS, ledger=True, kernel="rebuild")
        ).map(small_scenario)
        assert via_default.trace.ledger.records == via_rebuild.trace.ledger.records
        assert canonical_mapping_bytes(via_default.schedule) == (
            canonical_mapping_bytes(via_rebuild.schedule)
        )


class TestChurnDifferential:
    """One kernel persisted across churn segments re-bases cleanly: the
    whole timeline — mappings, rollbacks, traces — is byte-identical to
    the rebuild oracle."""

    _EVENTS = (
        ChurnEvent(cycle=2, machine=1, kind="loss"),
        ChurnEvent(cycle=5, machine=1, kind="join"),
        ChurnEvent(cycle=7, machine=3, kind="loss"),
    )

    @pytest.mark.parametrize("cls", [SLRH1, SLRH2, SLRH3])
    def test_churn_identical_across_modes(self, cls, small_scenario):
        outcomes = {}
        for mode in KERNEL_MODES:
            scheduler = cls(SlrhConfig(weights=_WEIGHTS, kernel=mode))
            outcomes[mode] = run_with_churn(
                small_scenario, scheduler, list(self._EVENTS)
            )
        inc, reb = outcomes["incremental"], outcomes["rebuild"]
        assert canonical_mapping_bytes(inc.final.schedule) == (
            canonical_mapping_bytes(reb.final.schedule)
        )
        assert inc.records == reb.records
        assert inc.final.trace.records == reb.final.trace.records
        assert (
            inc.final.trace.ticks,
            inc.final.trace.machine_scans,
            inc.final.trace.empty_pool_ticks,
        ) == (
            reb.final.trace.ticks,
            reb.final.trace.machine_scans,
            reb.final.trace.empty_pool_ticks,
        )
