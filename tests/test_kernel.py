"""The scheduling kernel: mode resolution, pool-delta equivalence, and the
byte-identity differential between the columnar, incremental and rebuild
modes.

The maintained candidate pools are optimisations with a proof obligation:
for every heuristic, under any event sequence, the mapping they produce
must be byte-identical to the from-scratch rebuild path (the differential
oracle, ``REPRO_KERNEL=rebuild``) — and the columnar pool must additionally
replicate the incremental pool's ``pool.*`` counters, since it claims the
same maintenance discipline.  These tests pin those obligations three ways
— a Hypothesis property test equating :meth:`ColumnarPool.pool_for` and
:meth:`CandidatePool.pool_for` with :func:`build_candidate_pool` under
random commit/advance/churn interleavings, whole-mapping byte identity for
all six registry heuristics, and a churn replay driven through one
persistent kernel.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columnar import ColumnarPool
from repro.core.constants import EPSILON
from repro.core.feasibility import FeasibilityChecker
from repro.core.kernel import (
    KERNEL_MODES,
    CandidatePool,
    SchedulingKernel,
    TickPolicy,
    resolve_kernel_mode,
)
from repro.core.objective import ObjectiveFunction, Weights
from repro.core.pool import build_candidate_pool
from repro.core.slrh import SLRH1, SLRH2, SLRH3, SlrhConfig
from repro.heuristics import HEURISTIC_NAMES, run_heuristic
from repro.io.serialization import canonical_mapping_bytes
from repro.sim.churn import ChurnEvent, run_with_churn
from repro.sim.clock import SimulationClock
from repro.sim.schedule import Schedule
from repro.workload.scenario import (
    generate_scenario,
    paper_scaled_grid,
    paper_scaled_spec,
)

_WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)
_SCENARIOS = {}


def _scenario(n: int, seed: int):
    key = (n, seed)
    if key not in _SCENARIOS:
        _SCENARIOS[key] = generate_scenario(
            paper_scaled_spec(n), grid=paper_scaled_grid(n), seed=seed
        )
    return _SCENARIOS[key]


class TestModeResolution:
    def test_default_is_columnar(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel_mode() == "columnar"

    def test_env_selects_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "rebuild")
        assert resolve_kernel_mode() == "rebuild"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "rebuild")
        assert resolve_kernel_mode("incremental") == "incremental"

    @pytest.mark.parametrize(
        "alias,mode",
        [
            ("inc", "incremental"), ("delta", "incremental"),
            ("1", "incremental"), ("on", "incremental"),
            ("full", "rebuild"), ("oracle", "rebuild"),
            ("0", "rebuild"), ("off", "rebuild"),
            ("Rebuild", "rebuild"), (" incremental ", "incremental"),
            ("col", "columnar"), ("flat", "columnar"),
            ("Columnar", "columnar"), (" columnar ", "columnar"),
        ],
    )
    def test_aliases(self, alias, mode):
        assert resolve_kernel_mode(alias) == mode

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown kernel mode"):
            resolve_kernel_mode("bogus")

    def test_ledger_forces_rebuild(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "incremental")
        assert resolve_kernel_mode("incremental", ledger=True) == "rebuild"

    def test_scheduler_with_ledger_builds_rebuild_kernel(self, tiny_scenario):
        scheduler = SLRH1(
            SlrhConfig(weights=_WEIGHTS, ledger=True, kernel="incremental")
        )
        kernel = scheduler.make_kernel(Schedule(tiny_scenario))
        assert kernel.mode == "rebuild"
        assert kernel.pool is None


class TestConstruction:
    def test_policy_rejects_unknown_refresh(self):
        with pytest.raises(ValueError, match="refresh"):
            TickPolicy(max_commits=1, refresh="sometimes")

    def test_policy_rejects_nonpositive_commits(self):
        with pytest.raises(ValueError, match="max_commits"):
            TickPolicy(max_commits=0, refresh="none")

    def test_kernel_rejects_unknown_mode(self, tiny_scenario):
        schedule = Schedule(tiny_scenario)
        with pytest.raises(ValueError, match="kernel mode"):
            SchedulingKernel(schedule, None, None, mode="bogus")

    def test_kernel_rejects_unknown_machine_order(self, tiny_scenario):
        schedule = Schedule(tiny_scenario)
        with pytest.raises(ValueError, match="machine_order"):
            SchedulingKernel(schedule, None, None, machine_order="alphabetical")

    def test_modes_constant_covers_all_paths(self):
        assert KERNEL_MODES == ("columnar", "incremental", "rebuild")

    def test_map_rejects_foreign_kernel(self, tiny_scenario):
        scheduler = SLRH1(SlrhConfig(weights=_WEIGHTS))
        foreign = scheduler.make_kernel(Schedule(tiny_scenario))
        with pytest.raises(ValueError, match="different schedule"):
            scheduler.map(
                tiny_scenario, schedule=Schedule(tiny_scenario), kernel=foreign
            )


def _pool_key(pool):
    """Comparable image of an ordered candidate pool — every field a fresh
    build determines, bit-for-bit."""
    return [
        (
            c.task,
            c.version,
            c.plan.machine,
            c.plan.start,
            c.plan.finish,
            c.plan.data_ready,
            c.plan.energy_delta,
            tuple((x.src, x.dst, x.start, x.finish) for x in c.plan.comms),
            c.score,
        )
        for c in pool
    ]


#: The pool counters the columnar path must replicate exactly — they pin
#: "same maintenance discipline", not just "same answer".
_POOL_COUNTERS = ("pool.builds", "pool.reuse_hits", "pool.invalidations", "pool.members")


def _pool_counter_snapshot(schedule):
    perf = schedule.perf.snapshot()
    return tuple(perf.get(key, 0) for key in _POOL_COUNTERS)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5),
    n=st.sampled_from([8, 12, 16]),
    data=st.data(),
)
def test_maintained_pools_match_rebuild_under_random_events(seed, n, data):
    """THE kernel property: after any interleaving of commits, clock
    advances, and churn-style invalidations, both maintained pools —
    object-incremental and columnar — are identical (members, plans,
    scores, order, wake-up hint) to a from-scratch build, and the columnar
    pool's reuse/invalidation/member counters match the incremental
    pool's delta for delta."""
    scenario = _scenario(n, seed)
    schedule = Schedule(scenario)
    checker = FeasibilityChecker(scenario)
    objective = ObjectiveFunction.for_scenario(scenario, _WEIGHTS)
    pool = CandidatePool(schedule, checker, objective)
    cpool = ColumnarPool(schedule, checker, objective)
    n_machines = scenario.n_machines
    offline: set[int] = set()
    nb = 0.0

    def check(machine: int) -> list:
        before = _pool_counter_snapshot(schedule)
        incremental, release_inc = pool.pool_for(machine, nb)
        mid = _pool_counter_snapshot(schedule)
        columnar, release_col = cpool.pool_for(machine, nb)
        after = _pool_counter_snapshot(schedule)
        oracle = build_candidate_pool(
            schedule, checker, objective, machine, not_before=nb
        )
        assert _pool_key(incremental) == _pool_key(oracle)
        assert _pool_key(columnar) == _pool_key(oracle)
        assert release_col == release_inc
        inc_delta = tuple(m - b for m, b in zip(mid, before))
        col_delta = tuple(a - m for a, m in zip(after, mid))
        assert col_delta == inc_delta
        return incremental

    actions = data.draw(
        st.lists(
            st.sampled_from(["query", "commit", "advance", "churn"]),
            min_size=4,
            max_size=14,
        )
    )
    for action in actions:
        online = [j for j in range(n_machines) if j not in offline]
        if action in ("query", "commit") and online:
            machine = data.draw(st.sampled_from(online))
            members = check(machine)
            if action == "commit" and members and not schedule.is_complete:
                plan = members[data.draw(
                    st.integers(min_value=0, max_value=len(members) - 1)
                )].plan
                schedule.commit(plan)
                pool.note_commit(plan)
                cpool.note_commit(plan)
        elif action == "advance":
            nb += data.draw(st.floats(min_value=0.5, max_value=400.0))
        elif action == "churn":
            machine = data.draw(st.integers(min_value=0, max_value=n_machines - 1))
            if machine in offline:
                offline.discard(machine)
                schedule.set_offline(machine, False)
            else:
                offline.add(machine)
                schedule.set_offline(machine, True)
            pool.invalidate_all()
            cpool.invalidate_all()
    # Final sweep: every online machine agrees with the oracle.
    for machine in range(n_machines):
        if machine not in offline:
            check(machine)


def _map_with_mode(name: str, scenario, mode: str, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", mode)
    if name in ("minmin", "greedy"):
        return run_heuristic(name, scenario)
    return run_heuristic(name, scenario, 0.5, 0.2)


class TestByteIdentity:
    """Mapping bytes must not depend on the kernel mode — for any registry
    heuristic (the static baselines are mode-blind by construction; the
    SLRH family is where the incremental pool earns its keep)."""

    @pytest.mark.parametrize("name", HEURISTIC_NAMES)
    def test_registry_heuristics_identical_across_modes(
        self, name, small_scenario, monkeypatch
    ):
        results = {
            mode: _map_with_mode(name, small_scenario, mode, monkeypatch)
            for mode in KERNEL_MODES
        }
        oracle = canonical_mapping_bytes(results["rebuild"].schedule)
        assert canonical_mapping_bytes(results["incremental"].schedule) == oracle
        assert canonical_mapping_bytes(results["columnar"].schedule) == oracle

    @pytest.mark.parametrize("cls", [SLRH1, SLRH2, SLRH3])
    def test_slrh_trace_counters_identical_across_modes(self, cls, small_scenario):
        traces = {}
        for mode in KERNEL_MODES:
            cfg = SlrhConfig(weights=_WEIGHTS, kernel=mode)
            traces[mode] = cls(cfg).map(small_scenario).trace
        reb = traces["rebuild"]
        oracle = (reb.ticks, reb.machine_scans, reb.empty_pool_ticks)
        for mode in ("incremental", "columnar"):
            got = traces[mode]
            assert (got.ticks, got.machine_scans, got.empty_pool_ticks) == oracle
            assert got.records == reb.records

    @pytest.mark.parametrize("order", ["battery", "round_robin"])
    def test_machine_order_variants_identical_across_modes(
        self, order, small_scenario
    ):
        mappings = {}
        for mode in KERNEL_MODES:
            cfg = SlrhConfig(weights=_WEIGHTS, kernel=mode, machine_order=order)
            mappings[mode] = canonical_mapping_bytes(
                SLRH2(cfg).map(small_scenario).schedule
            )
        assert mappings["incremental"] == mappings["rebuild"]
        assert mappings["columnar"] == mappings["rebuild"]

    @pytest.mark.parametrize("mode", ["incremental", "columnar"])
    def test_maintained_kernels_actually_reuse_entries(self, mode, small_scenario):
        result = SLRH1(SlrhConfig(weights=_WEIGHTS, kernel=mode)).map(
            small_scenario
        )
        perf = result.trace.perf
        assert perf.get("pool.reuse_hits", 0) > 0
        assert perf.get("pool.invalidations", 0) > 0

    @pytest.mark.parametrize("cls", [SLRH1, SLRH2, SLRH3])
    def test_pool_counters_identical_between_maintained_modes(
        self, cls, small_scenario
    ):
        """Columnar must replan exactly the same dirty entries as the
        incremental pool: its speedup comes from constant factors, never
        from doing less maintenance work."""
        perfs = {}
        for mode in ("incremental", "columnar"):
            result = cls(SlrhConfig(weights=_WEIGHTS, kernel=mode)).map(
                small_scenario
            )
            perfs[mode] = result.trace.perf
        for key in ("pool.builds", "pool.reuse_hits",
                    "pool.invalidations", "pool.members"):
            assert perfs["columnar"].get(key, 0) == perfs["incremental"].get(key, 0)

    def test_ledger_contents_match_rebuild(self, small_scenario):
        """A ledgered run (forced onto the rebuild path) must report the
        same rejection history as an explicitly rebuild-mode run."""
        via_default = SLRH1(SlrhConfig(weights=_WEIGHTS, ledger=True)).map(
            small_scenario
        )
        via_rebuild = SLRH1(
            SlrhConfig(weights=_WEIGHTS, ledger=True, kernel="rebuild")
        ).map(small_scenario)
        assert via_default.trace.ledger.records == via_rebuild.trace.ledger.records
        assert canonical_mapping_bytes(via_default.schedule) == (
            canonical_mapping_bytes(via_rebuild.schedule)
        )


class TestChurnDifferential:
    """One kernel persisted across churn segments re-bases cleanly: the
    whole timeline — mappings, rollbacks, traces — is byte-identical to
    the rebuild oracle."""

    _EVENTS = (
        ChurnEvent(cycle=2, machine=1, kind="loss"),
        ChurnEvent(cycle=5, machine=1, kind="join"),
        ChurnEvent(cycle=7, machine=3, kind="loss"),
    )

    @pytest.mark.parametrize("cls", [SLRH1, SLRH2, SLRH3])
    def test_churn_identical_across_modes(self, cls, small_scenario):
        outcomes = {}
        for mode in KERNEL_MODES:
            scheduler = cls(SlrhConfig(weights=_WEIGHTS, kernel=mode))
            outcomes[mode] = run_with_churn(
                small_scenario, scheduler, list(self._EVENTS)
            )
        reb = outcomes["rebuild"]
        oracle_bytes = canonical_mapping_bytes(reb.final.schedule)
        oracle_counters = (
            reb.final.trace.ticks,
            reb.final.trace.machine_scans,
            reb.final.trace.empty_pool_ticks,
        )
        for mode in ("incremental", "columnar"):
            got = outcomes[mode]
            assert canonical_mapping_bytes(got.final.schedule) == oracle_bytes
            assert got.records == reb.records
            assert got.final.trace.records == reb.final.trace.records
            assert (
                got.final.trace.ticks,
                got.final.trace.machine_scans,
                got.final.trace.empty_pool_ticks,
            ) == oracle_counters


class TestSleepGate:
    """Regression pin for the early-wake rounding bug: the legacy sleep
    computation stored ``min_release - latency - 1e-9`` as a wake *time*,
    and the two chained subtractions could round that threshold below the
    release gate's own arithmetic ``release > (now + latency) + EPSILON``.
    A machine then woke one tick early and burned a pool build on a gate
    that was still closed.  The constants below are a concrete float
    counterexample (cycle 22 at 0.1 s/cycle, latency of 3 cycles)."""

    _CS = 0.1
    _CYCLE = 22
    _LAT = 3 * 0.1  # 0.30000000000000004
    _RELEASE = 2.5000000010000005

    def test_counterexample_splits_the_two_formulas(self):
        """At the pinned instant the legacy wake formula says 'serve' while
        the release gate the serve would actually apply is still closed."""
        now = self._CYCLE * self._CS
        legacy_wake = self._RELEASE - self._LAT - 1e-9
        assert now >= legacy_wake  # legacy sleep state: machine wakes
        # ...but the pool's release gate rejects the task at this instant:
        assert self._RELEASE > (now + self._LAT) + EPSILON

    def test_kernel_asleep_uses_gate_arithmetic(self):
        """`_asleep` evaluates the raw release time with the gate's own
        arithmetic: still asleep at the counterexample instant, awake once
        the gate genuinely opens."""
        scenario = _scenario(8, 0)
        schedule = Schedule(scenario)
        checker = FeasibilityChecker(scenario)
        objective = ObjectiveFunction.for_scenario(scenario, _WEIGHTS)
        kernel = SchedulingKernel(
            schedule,
            checker,
            objective,
            mode="columnar",
            decision_latency_seconds=self._LAT,
        )
        kernel._wake_release[0] = self._RELEASE
        kernel._wake_ready[0] = math.inf
        asleep_clock = SimulationClock(
            delta_t_cycles=10, horizon_cycles=100,
            cycle_seconds=self._CS, cycle=self._CYCLE,
        )
        assert kernel._asleep(0, asleep_clock)
        awake_clock = SimulationClock(
            delta_t_cycles=10, horizon_cycles=100,
            cycle_seconds=self._CS, cycle=25,
        )
        assert not kernel._asleep(0, awake_clock)

    def test_wake_all_resets_both_event_times(self):
        scenario = _scenario(8, 0)
        schedule = Schedule(scenario)
        checker = FeasibilityChecker(scenario)
        objective = ObjectiveFunction.for_scenario(scenario, _WEIGHTS)
        kernel = SchedulingKernel(schedule, checker, objective, mode="incremental")
        kernel._wake_release[1] = 99.0
        kernel._wake_ready[1] = 99.0
        kernel._wake_all()
        clock = SimulationClock()
        assert not kernel._asleep(1, clock)
        assert kernel._wake_release[1] == -math.inf
        assert kernel._wake_ready[1] == -math.inf


class TestReleaseTimesDifferential:
    """generate_scenario leaves arrivals at 0.0; attaching staggered release
    times exercises the sleep/wake path (machines provably idle until the
    next arrival) — all three kernels must still agree byte for byte,
    including the tick counters the columnar fast-forward bulk-adds."""

    @pytest.mark.parametrize("cls", [SLRH1, SLRH2, SLRH3])
    def test_staggered_releases_identical_across_modes(self, cls, small_scenario):
        n = small_scenario.n_tasks
        releases = [(task % 7) * 1.5 + (task % 3) * 0.1 for task in range(n)]
        scenario = small_scenario.with_release_times(releases)
        results = {}
        for mode in KERNEL_MODES:
            results[mode] = cls(SlrhConfig(weights=_WEIGHTS, kernel=mode)).map(
                scenario
            )
        reb = results["rebuild"]
        oracle = canonical_mapping_bytes(reb.schedule)
        oracle_counters = (
            reb.trace.ticks, reb.trace.machine_scans, reb.trace.empty_pool_ticks
        )
        for mode in ("incremental", "columnar"):
            got = results[mode]
            assert canonical_mapping_bytes(got.schedule) == oracle
            assert got.trace.records == reb.trace.records
            assert (
                got.trace.ticks,
                got.trace.machine_scans,
                got.trace.empty_pool_ticks,
            ) == oracle_counters
