"""OLB and MET reference mappers."""

import pytest

from repro.baselines.simple import MetScheduler, OlbScheduler
from repro.sim.validate import validate_schedule


@pytest.mark.parametrize("cls", [OlbScheduler, MetScheduler], ids=lambda c: c.name)
class TestCommon:
    def test_valid_schedule(self, cls, small_scenario):
        result = cls().map(small_scenario)
        validate_schedule(result.schedule)
        assert result.heuristic == cls.name

    def test_loose_completes_primary(self, cls, loose_scenario):
        result = cls().map(loose_scenario)
        assert result.complete
        assert result.t100 == loose_scenario.n_tasks

    def test_deterministic(self, cls, tiny_scenario):
        a = cls().map(tiny_scenario)
        b = cls().map(tiny_scenario)
        assert a.schedule.summary() == b.schedule.summary()


def test_met_prefers_fast_machines(loose_scenario):
    result = MetScheduler().map(loose_scenario)
    fast = set(loose_scenario.grid.fast_indices)
    on_fast = sum(
        1 for a in result.schedule.assignments.values() if a.machine in fast
    )
    # Fast machines win almost every per-task ETC comparison.
    assert on_fast >= 0.8 * loose_scenario.n_tasks


def test_olb_spreads_load(loose_scenario):
    result = OlbScheduler().map(loose_scenario)
    machines = {a.machine for a in result.schedule.assignments.values()}
    # OLB chases idle machines, so it touches all of them.
    assert machines == set(range(loose_scenario.n_machines))


def test_met_vs_olb_differ(small_scenario):
    met = MetScheduler().map(small_scenario)
    olb = OlbScheduler().map(small_scenario)
    a = {(t, x.machine) for t, x in met.schedule.assignments.items()}
    b = {(t, x.machine) for t, x in olb.schedule.assignments.items()}
    assert a != b
