"""The shard layer (:mod:`repro.service.shard`, the sharded
:class:`~repro.service.jobs.ShardRouter`): process-resident shard RPC,
affine routing, crash semantics, global admission under concurrency, the
per-shard scenario LRU, and the byte-identity contract across shard
counts, heuristics and kernel modes."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.heuristics import HEURISTIC_NAMES, generate_named_scenario
from repro.io.serialization import (
    canonical_json_bytes,
    mapping_to_dict,
    scenario_to_dict,
)
from repro.service.jobs import QueueFullError, ShardRouter
from repro.service.registry import ScenarioRegistry
from repro.service.shard import InlineShard, ProcessShard
from repro.service.worker import (
    DEFAULT_SCENARIO_CACHE,
    _ScenarioCache,
    configure_scenario_cache,
    scenario_cache_limit,
    shard_main,
)
from repro.util.parallel import ShardCrashedError, ShardProcess, resolve_shards


def _scenario_doc(n_tasks=12, seed=3) -> dict:
    return scenario_to_dict(generate_named_scenario(n_tasks, seed))


@pytest.fixture
def fresh_cache_config():
    """Reset the process-wide scenario-cache override around a test."""
    yield
    configure_scenario_cache(None)


# ---------------------------------------------------------------------------
# shard-count resolution


class TestResolveShards:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(None) == 1

    def test_env_and_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert resolve_shards(None) == 3
        assert resolve_shards(2) == 2  # explicit beats the environment
        assert resolve_shards("4") == 4

    def test_auto_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        import os

        assert resolve_shards("auto") == (os.cpu_count() or 1)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_shards("many")
        with pytest.raises(ValueError):
            resolve_shards(0)


# ---------------------------------------------------------------------------
# the shard process RPC primitive


class TestShardProcess:
    def test_ping_roundtrip_and_stop(self):
        proc = ShardProcess(shard_main, index=5)
        proc.start()
        try:
            assert proc.alive() and proc.pid is not None
            status, reply = proc.call("ping")
            assert status == "ok"
            assert reply["pid"] == proc.pid
            assert reply["sessions"] == 0
        finally:
            proc.stop()
        assert not proc.alive()

    def test_crash_raises_instead_of_hanging(self):
        proc = ShardProcess(shard_main, index=0)
        proc.start()
        try:
            with pytest.raises(ShardCrashedError):
                proc.call("exit", 3)  # os._exit in the child; no reply
            assert not proc.alive()
            # Every subsequent call fails fast too.
            with pytest.raises(ShardCrashedError):
                proc.call("ping")
        finally:
            proc.stop()

    def test_start_is_idempotent(self):
        proc = ShardProcess(shard_main, index=0)
        proc.start()
        try:
            pid = proc.pid
            proc.start()
            assert proc.pid == pid
        finally:
            proc.stop()


# ---------------------------------------------------------------------------
# affine routing


class TestAffineRouting:
    def test_shard_of_is_digest_modulo(self):
        reg = ScenarioRegistry()
        manager = ShardRouter(reg, shards=4)
        sid, _ = reg.put(_scenario_doc())
        digest = int(sid.split(":", 1)[1], 16)
        assert manager.shard_of(sid) == digest % 4
        assert manager.shard_for(sid) is manager.shards[digest % 4]
        manager.close(drain_timeout=0)

    def test_same_scenario_always_same_shard(self):
        reg = ScenarioRegistry()
        manager = ShardRouter(reg, shards=4, max_queue=64).start()
        try:
            sid, _ = reg.put(_scenario_doc())
            jobs = [manager.submit(sid, "greedy") for _ in range(6)]
            for job in jobs:
                assert job.done.wait(timeout=120)
            assert len({job.shard for job in jobs}) == 1
            assert {job.state for job in jobs} == {"succeeded"}
        finally:
            manager.close(drain_timeout=0)

    def test_sessions_round_robin_over_shards(self):
        manager = ShardRouter(ScenarioRegistry(), shards=3)
        try:
            assert manager.session_shard(1) is manager.shards[1]
            assert manager.session_shard(3) is manager.shards[0]
            assert manager.session_shard(5) is manager.shards[2]
        finally:
            manager.close(drain_timeout=0)


# ---------------------------------------------------------------------------
# the byte-identity contract: shard counts are invisible in the output


class TestShardCountInvariance:
    def _mappings(self, n_shards: int, heuristics) -> dict[str, bytes]:
        reg = ScenarioRegistry()
        sid, _ = reg.put(_scenario_doc(16, 7))
        manager = ShardRouter(reg, shards=n_shards, max_queue=64).start()
        try:
            jobs = {h: manager.submit(sid, h) for h in heuristics}
            out = {}
            for name, job in jobs.items():
                assert job.done.wait(timeout=120), name
                assert job.state == "succeeded", (name, job.error)
                out[name] = job.mapping_bytes
            return out
        finally:
            manager.close(drain_timeout=0)

    def test_all_heuristics_identical_at_1_2_4_shards(self):
        baseline = self._mappings(1, HEURISTIC_NAMES)
        for n_shards in (2, 4):
            sharded = self._mappings(n_shards, HEURISTIC_NAMES)
            for name in HEURISTIC_NAMES:
                assert sharded[name] == baseline[name], (n_shards, name)

    @pytest.mark.parametrize("kernel", ["columnar", "incremental", "rebuild"])
    def test_kernel_modes_identical_across_shard_counts(self, kernel, monkeypatch):
        # Shard children inherit the environment through fork, so the
        # kernel mode pins itself in every process the same way.
        monkeypatch.setenv("REPRO_KERNEL", kernel)
        heuristics = ("slrh1", "slrh3")
        baseline = self._mappings(1, heuristics)
        sharded = self._mappings(4, heuristics)
        assert sharded == baseline


# ---------------------------------------------------------------------------
# crash semantics: a dead shard fails fast and is visible


class TestCrashSemantics:
    def test_dead_shard_fails_jobs_and_healthz(self):
        reg = ScenarioRegistry()
        sid, _ = reg.put(_scenario_doc())
        manager = ShardRouter(reg, shards=2, max_queue=8).start()
        try:
            victim = manager.shard_for(sid)
            other = manager.shards[1 - victim.index]
            with pytest.raises(ShardCrashedError):
                victim.backend._proc.call("exit", 7)
            # The job routed at the dead shard fails — it does not hang.
            job = manager.submit(sid, "greedy")
            assert job.done.wait(timeout=120)
            assert job.state == "failed"
            assert "ShardCrashedError" in (job.error or "")
            # Liveness is per shard, and one dead shard degrades the lot.
            health = manager.health_doc()
            assert health["healthy"] is False
            by_index = {s["shard"]: s for s in health["shards"]}
            assert by_index[victim.index]["alive"] is False
            assert by_index[other.index]["alive"] is True
            assert manager.perf.get("service.failed") == 1
        finally:
            manager.close(drain_timeout=0)

    def test_healthz_503_over_http_when_a_shard_dies(self):
        from repro.service.app import make_server

        reg = ScenarioRegistry()
        manager = ShardRouter(reg, shards=2, max_queue=8)
        server = make_server("127.0.0.1", 0, manager)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(base + "/healthz", timeout=30) as resp:
                doc = json.loads(resp.read())
            assert resp.status == 200 and doc["status"] == "ok"
            assert len(doc["shards"]) == 2
            for entry in doc["shards"]:
                assert entry["alive"] is True
                assert isinstance(entry["pid"], int)
                assert entry["queue_depth"] == 0
            with pytest.raises(ShardCrashedError):
                manager.shards[0].backend._proc.call("exit", 1)
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(base + "/healthz", timeout=30)
            assert exc_info.value.code == 503
            doc = json.loads(exc_info.value.read())
            assert doc["status"] == "degraded"
            assert any(not s["alive"] for s in doc["shards"])
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            manager.close(drain_timeout=0)


# ---------------------------------------------------------------------------
# global admission under concurrency (the hammer)


class TestConcurrentAdmission:
    def test_full_queue_hammered_from_many_threads(self):
        """Hammer one shard's full queue from 12 threads: exactly
        ``max_queue`` jobs are admitted, every rejection carries a
        coherent Retry-After, and each admitted job executes exactly
        once."""
        reg = ScenarioRegistry()
        sid, _ = reg.put(_scenario_doc())
        max_queue = 4
        # Not started: nothing drains the queue while the hammer runs,
        # so the admission arithmetic is exact.
        manager = ShardRouter(reg, shards=1, max_queue=max_queue)
        admitted: list = []
        rejections: list[QueueFullError] = []
        lock = threading.Lock()
        barrier = threading.Barrier(12)

        def hammer() -> None:
            barrier.wait()
            for _ in range(3):
                try:
                    job = manager.submit(sid, "greedy")
                except QueueFullError as exc:
                    with lock:
                        rejections.append(exc)
                else:
                    with lock:
                        admitted.append(job)

        threads = [threading.Thread(target=hammer) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(admitted) == max_queue
        assert len(rejections) == 12 * 3 - max_queue
        assert len({job.id for job in admitted}) == max_queue  # no id reuse
        for exc in rejections:
            assert exc.retry_after >= 1  # coherent backoff hint
            assert exc.depth >= max_queue
        # Now let the shard run: every admitted job executes exactly once
        # and nothing that was rejected ever runs.
        manager.start()
        try:
            for job in admitted:
                assert job.done.wait(timeout=120)
                assert job.state == "succeeded"
            assert manager.perf.get("service.submitted") == max_queue
            assert manager.perf.get("service.completed") == max_queue
            assert manager.perf.get("service.rejected") == len(rejections)
        finally:
            manager.close(drain_timeout=0)


# ---------------------------------------------------------------------------
# the per-shard scenario LRU


class TestScenarioCache:
    def test_configure_parses_and_validates(self, fresh_cache_config):
        assert configure_scenario_cache("3") == 3
        assert scenario_cache_limit() == 3
        with pytest.raises(ValueError):
            configure_scenario_cache(0)
        with pytest.raises(ValueError):
            configure_scenario_cache("lots")
        assert configure_scenario_cache(None) is None

    def test_env_fallback(self, fresh_cache_config, monkeypatch):
        configure_scenario_cache(None)
        monkeypatch.setenv("REPRO_SCENARIO_CACHE", "5")
        assert scenario_cache_limit() == 5
        monkeypatch.setenv("REPRO_SCENARIO_CACHE", "0")
        with pytest.raises(ValueError):
            scenario_cache_limit()
        monkeypatch.delenv("REPRO_SCENARIO_CACHE")
        assert scenario_cache_limit() == DEFAULT_SCENARIO_CACHE

    def test_lru_evicts_and_reports(self, fresh_cache_config):
        configure_scenario_cache(1)
        cache = _ScenarioCache()
        doc_a, doc_b = _scenario_doc(12, 1), _scenario_doc(12, 2)
        _, stats = cache.get("sha256:a", doc_a)
        assert stats == {"worker.scenario_cache_misses": 1}
        _, stats = cache.get("sha256:a", doc_a)
        assert stats == {"worker.scenario_cache_hits": 1}
        _, stats = cache.get("sha256:b", doc_b)
        assert stats["worker.scenario_cache_evictions"] == 1
        assert len(cache) == 1

    def test_router_rejects_bad_cache_size_eagerly(self, fresh_cache_config):
        with pytest.raises(ValueError):
            ShardRouter(ScenarioRegistry(), shards=1, scenario_cache="0")

    def test_eviction_counter_reaches_metrics(self, fresh_cache_config):
        reg = ScenarioRegistry()
        a, _ = reg.put(_scenario_doc(12, 1))
        b, _ = reg.put(_scenario_doc(12, 2))
        manager = ShardRouter(reg, shards=1, scenario_cache=1, max_queue=16)
        manager.start()
        try:
            for sid in (a, b, a, b):
                job = manager.submit(sid, "greedy")
                assert job.done.wait(timeout=120)
                assert job.state == "succeeded"
            # Alternating two scenarios through a 1-deep LRU must evict.
            assert manager.perf.get("worker.scenario_cache_evictions") >= 2
            metrics = manager.metrics_document()
            assert metrics["counters"]["shard0.cache_evictions"] >= 2
            assert metrics["counters"]["worker.scenario_cache_misses"] >= 3
        finally:
            manager.close(drain_timeout=0)


# ---------------------------------------------------------------------------
# shard-hosted sessions


class TestShardedSessions:
    def test_session_on_process_shard_matches_offline_replay(self):
        from repro.core.objective import Weights
        from repro.heuristics import make_scheduler
        from repro.service.sessions import SessionManager
        from repro.session import run_with_events, synthesize_events

        reg = ScenarioRegistry()
        scenario = generate_named_scenario(24, 7)
        sid, _ = reg.put(scenario_to_dict(scenario))
        manager = ShardRouter(reg, shards=2, max_queue=8).start()
        sessions = SessionManager(reg, perf=manager.perf, router=manager)
        try:
            held, events = synthesize_events(
                scenario, seed=11, n_events=14, max_cycle=60
            )
            session = sessions.open(
                {"scenario": sid, "heuristic": "slrh1", "pending": list(held)}
            )
            # sess-00000001 -> shard 1 of 2: a real child process.
            assert session.backend is manager.shards[1].backend
            assert isinstance(session.backend, ProcessShard)
            lines: list[bytes] = []
            for start in range(0, len(events), 5):
                lines.extend(session.stream(events[start : start + 5]))
            assert session.is_closed()
            oracle = run_with_events(
                scenario,
                make_scheduler("slrh1", Weights.from_alpha_beta(0.5, 0.2)),
                events,
                pending=held,
            )
            want = canonical_json_bytes(mapping_to_dict(oracle.final.schedule))
            assert session.result_bytes() == want
            status = session.status_doc()
            assert status["state"] == "closed"
            assert status["n_events"] == len(events)
        finally:
            manager.close(drain_timeout=0)

    def test_crashed_shard_session_yields_error_record(self):
        from repro.service.sessions import SessionManager
        from repro.session import SessionEvent, synthesize_events

        reg = ScenarioRegistry()
        scenario = generate_named_scenario(16, 3)
        sid, _ = reg.put(scenario_to_dict(scenario))
        manager = ShardRouter(reg, shards=2, max_queue=8).start()
        sessions = SessionManager(reg, perf=manager.perf, router=manager)
        try:
            _, events = synthesize_events(
                scenario, seed=5, n_events=6, max_cycle=40
            )
            session = sessions.open({"scenario": sid, "heuristic": "greedy"})
            backend = session.backend
            assert isinstance(backend, ProcessShard)
            with pytest.raises(ShardCrashedError):
                backend._proc.call("exit", 2)
            lines = list(session.stream(events))
            assert len(lines) == 1
            record = json.loads(lines[0])
            assert record["record"] == "error"
            assert manager.perf.get("session.event_errors") == 1
        finally:
            manager.close(drain_timeout=0)


# ---------------------------------------------------------------------------
# shard backends directly


class TestShardBackends:
    def test_inline_shard_runs_jobs_in_process(self):
        import os

        reg = ScenarioRegistry()
        sid, _ = reg.put(_scenario_doc())
        shard = InlineShard(0)
        assert shard.alive() and shard.pid == os.getpid()
        outcome = shard.run_job(sid, reg.get_doc(sid), "greedy", None, None)
        assert outcome["summary"]["n_tasks"] == 12
        assert shard.heartbeat_age() == 0.0

    def test_process_shard_ships_each_doc_once(self):
        reg = ScenarioRegistry()
        sid, _ = reg.put(_scenario_doc())
        doc = reg.get_doc(sid)
        shard = ProcessShard(0).start()
        try:
            first = shard.run_job(sid, doc, "greedy", None, None)
            second = shard.run_job(sid, doc, "greedy", None, None)
            assert first["mapping"] == second["mapping"]
            # Second run hit the child's deserialised-scenario LRU.
            assert second["perf"].get("worker.scenario_cache_hits") == 1
            assert shard._doc_to_ship(sid, doc) is None  # already shipped
        finally:
            shard.stop()

    def test_process_shard_maps_child_errors_to_builtins(self):
        shard = ProcessShard(0).start()
        try:
            with pytest.raises(KeyError):
                shard.session_events("sess-nope", [])
        finally:
            shard.stop()
