"""Fixture: import rules fire in the stdlib-only service layer."""

import json  # stdlib: fine everywhere

import numpy  # stdlib-only-layer (declared dep, but not allowed in service)
import pandas  # import-whitelist AND stdlib-only-layer (undeclared)

from repro.perf import PerfCounters  # first-party: fine


def use_them():
    return json, numpy, pandas, PerfCounters
