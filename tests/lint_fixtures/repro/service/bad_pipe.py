"""Fixture: unpicklable payloads crossing a process boundary, plus a
thread started before the fork.  Every finding here is the kind of bug
that passes unit tests (same-process) and detonates only under real
multi-process load.
"""

import multiprocessing
import threading


def child(conn, results):
    return conn, results


class Sender:
    def __init__(self):
        ctx = multiprocessing.get_context()
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        self._cmd = send_conn
        self._recv = recv_conn

    def ship(self, item):
        self._cmd.send(item)  # boundary sink: `item` flows to the pipe


def setup():
    ctx = multiprocessing.get_context()
    recv_conn, send_conn = ctx.Pipe(duplex=False)
    results = ctx.Queue()
    lock = threading.Lock()
    send_conn.send(lock)  # pipe-unpicklable: a lock through the pipe
    results.put((1, threading.Thread(target=setup)))  # pipe-unpicklable
    worker = threading.Thread(target=setup)
    worker.start()  # thread-before-fork: started before proc.start()
    proc = ctx.Process(
        target=child,
        args=(recv_conn, lock),  # pipe-unpicklable: lock at fork time
    )
    proc.start()


def misuse(sender: Sender):
    sender.ship(threading.Lock())  # pipe-unpicklable: via Sender.ship
