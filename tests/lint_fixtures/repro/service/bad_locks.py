"""Fixture: lock-discipline positives and negatives in one class."""

import threading


class Manager:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = []  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._name = "m"  # unannotated: never checked

    def locked_ok(self):
        with self._lock:
            self._queue.append(1)  # fine: under the declared lock

    def helper_ok_locked(self):
        self._queue.append(2)  # fine: *_locked naming convention

    # requires-lock: _lock
    def annotated_ok(self):
        return len(self._queue)  # fine: requires-lock annotation

    def racy(self):
        self._count += 1  # lock-guarded-attr
        return self._queue  # lock-guarded-attr

    def closure_escapes(self):
        with self._lock:
            return lambda: self._count  # lock-guarded-attr (runs later)

    def unannotated_ok(self):
        return self._name  # fine: attribute not declared guarded
