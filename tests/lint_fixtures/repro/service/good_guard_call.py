"""Fixture: every contract call site provably holds the declared lock —
via an enclosing ``with``, an ``.acquire()`` interval, or the caller's
own verified ``*_locked`` contract (contracts chain through the graph).
"""

import threading


class Ledger:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = []  # guarded-by: _lock

    def _append_locked(self, item):
        self._entries.append(item)

    def record(self, item):
        with self._lock:
            self._append_locked(item)

    def record_interval(self, item):
        self._lock.acquire()
        try:
            self._append_locked(item)
        finally:
            self._lock.release()

    def _batch_locked(self, items):
        for item in items:
            self._append_locked(item)  # fine: caller's contract chains
