"""Fixture: clean process-boundary usage — plain-data payloads, the
pipe/queue endpoints themselves handed over as fork-time ``Process``
args (inherited, not pickled), and the traffic thread started only
*after* the fork.
"""

import multiprocessing
import threading


def child(conn, results):
    return conn, results


def setup(doc):
    ctx = multiprocessing.get_context()
    recv_conn, send_conn = ctx.Pipe(duplex=False)
    results = ctx.Queue()
    proc = ctx.Process(
        target=child,
        args=(recv_conn, results),  # fine: endpoints inherit across fork
    )
    proc.start()
    pump = threading.Thread(target=setup, args=(doc,))
    pump.start()  # fine: after the fork
    send_conn.send(("job", doc))  # fine: plain tuple of data
    results.put(("ok", {"n": 1}))  # fine: plain dict payload
