"""Fixture: guarded state reached through a helper call, lock not held.

The per-file lock-discipline rule *trusts* ``_bump_locked``'s suffix, so
the unguarded touch of ``self._total`` inside it passes file-local
linting.  The whole-program guard-verification rule walks the call graph
and catches ``racy`` calling it without ``_lock`` — the exact race the
naming convention was hiding.
"""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0  # guarded-by: _lock

    def _bump_locked(self):
        self._total += 1  # fine per-file: *_locked contract

    # requires-lock: _lock
    def _read(self):
        return self._total

    def safe(self):
        with self._lock:
            self._bump_locked()  # fine: lock provably held

    def racy(self):
        self._bump_locked()  # guard-verified-call: _lock not held

    def racy_read(self):
        return self._read()  # guard-verified-call: annotation unhonored
