"""Fixture: unbounded blocking waits the liveness design cannot survive —
``get()`` with no timeout, a blocking ``put()`` on a bounded queue, and a
bare ``recv()`` with no prior ``poll()``.
"""

import multiprocessing
import queue


class Worker:
    def __init__(self):
        self._inbox = queue.Queue()
        self._outbox = queue.Queue(maxsize=8)

    def loop(self):
        item = self._inbox.get()  # blocking-call-timeout: no bound
        self._outbox.put(item)  # blocking-call-timeout: bounded queue


def pump():
    ctx = multiprocessing.get_context()
    recv_conn, send_conn = ctx.Pipe(duplex=False)
    send_conn.send("x")
    return recv_conn.recv()  # blocking-call-timeout: no poll() first
