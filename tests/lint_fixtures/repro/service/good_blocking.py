"""Fixture: every wait is bounded — timeouts, non-blocking forms,
unbounded-queue ``put`` (which never blocks), ``poll()`` before
``recv()``, and one justified suppression.
"""

import multiprocessing
import queue


class Worker:
    def __init__(self):
        self._inbox = queue.Queue()
        self._outbox = queue.Queue(maxsize=8)

    def loop(self):
        item = self._inbox.get(timeout=0.5)  # fine: bounded wait
        self._outbox.put(item, timeout=0.5)  # fine: bounded wait
        self._inbox.put(item)  # fine: unbounded queue never blocks
        return self._inbox.get(False)  # fine: non-blocking form

    def drain(self):
        try:
            return self._inbox.get_nowait()  # fine: non-blocking
        except queue.Empty:
            return None


def pump():
    ctx = multiprocessing.get_context()
    recv_conn, send_conn = ctx.Pipe(duplex=False)
    send_conn.send("x")
    if recv_conn.poll(0.5):
        return recv_conn.recv()  # fine: bounded by the poll above
    return None


def final_drain():
    ctx = multiprocessing.get_context()
    recv_conn, send_conn = ctx.Pipe(duplex=False)
    send_conn.send("bye")
    # repro-lint: disable=blocking-call-timeout -- fixture: final drain after peer confirmed exit
    return recv_conn.recv()
