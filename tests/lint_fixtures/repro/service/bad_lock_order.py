"""Fixture: a two-lock cycle the lock-order analysis must catch.

``Alpha.forward`` holds ``Alpha._lock`` and calls into ``Beta.grab``
(which takes ``Beta._lock``); ``Beta.backward`` holds ``Beta._lock`` and
calls back into ``Alpha.poke`` (which takes ``Alpha._lock``).  Two
threads entering from opposite ends deadlock — the classic AB/BA cycle.
"""

import threading


class Alpha:
    def __init__(self, beta: "Beta"):
        self._lock = threading.Lock()
        self.beta = beta

    def forward(self):
        with self._lock:
            self.beta.grab()  # acquires Beta._lock while holding ours

    def poke(self):
        with self._lock:
            return 1


class Beta:
    def __init__(self, alpha: Alpha):
        self._lock = threading.Lock()
        self.alpha = alpha

    def grab(self):
        with self._lock:
            return 2

    def backward(self):
        with self._lock:
            self.alpha.poke()  # lock-order-cycle: the reverse edge
