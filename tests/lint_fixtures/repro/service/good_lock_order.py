"""Fixture: a strictly hierarchical lock order — no cycle findings.

``Parent`` always acquires downward into ``Child``; the only upward
touch is a *non-blocking* ``acquire(blocking=False)`` probe (the
idle-eviction pattern), which cannot hold-and-wait and so creates no
edge in the acquisition graph.
"""

import threading


class Parent:
    def __init__(self, child: "Child"):
        self._lock = threading.Lock()
        self.child = child

    def down(self):
        with self._lock:
            self.child.work()


class Child:
    def __init__(self):
        self._lock = threading.Lock()

    def work(self):
        with self._lock:
            return 1

    def probe(self, parent: Parent):
        with self._lock:
            # Upward, but non-blocking: a thread that cannot wait cannot
            # deadlock, so this is legal under a Child-held lock.
            if parent._lock.acquire(blocking=False):
                parent._lock.release()
                return True
            return False
