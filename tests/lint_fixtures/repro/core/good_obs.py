"""Fixture: the repo's blessed obs guard idioms — zero findings."""

from repro.obs.log import enabled as _obs_enabled
from repro.obs.log import get_logger
from repro.obs.spans import NULL_SPAN

_LOG = get_logger("fixture")


def guarded_log(n):
    if _obs_enabled():
        _LOG.event("fixture.ran", count=n)


def guarded_span_ternary(tracer, name):
    span = tracer.span("map", scenario=name) if tracer.enabled else NULL_SPAN
    with span:
        return 1


def guarded_span_proxy(tracer, pool):
    tracing = tracer.enabled
    for entry in pool:
        if tracing:
            tracer.instant("pool.entry", task=entry)


def guarded_ledger(ledger, task):
    if ledger is not None:
        ledger.reject(task, 0, "why")


def guarded_ledger_compound(trace, task):
    if trace.ledger is not None and task > 0:
        trace.ledger.note_tick()
