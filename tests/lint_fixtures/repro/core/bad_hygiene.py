"""Fixture: every api-hygiene rule fires.  Never imported — AST only."""


def mutable_default(items=[], mapping={}):  # no-mutable-default (x2)
    items.append(1)
    mapping["k"] = 1
    return items, mapping


def swallow():
    try:
        return 1 / 0
    except:  # no-bare-except
        return None


def validate(n):
    assert n > 0, "n must be positive"  # no-assert
    return n
