"""Fixture: determinism-clean equivalents of bad_determinism.py."""

import time

from repro.util.seeding import as_generator


def measurement_clock():
    # perf_counter/monotonic time the heuristic, they never steer it.
    started = time.perf_counter()
    return time.perf_counter() - started, time.monotonic()


def seeded_rng(seed):
    rng = as_generator(seed)  # all RNG flows through repro.util.seeding
    return rng.random()


def ordered_sets(items):
    for item in sorted({3, 1, 2}):  # sorted() makes the order deterministic
        print(item)
    total = sum(sorted(set(items)))  # sorted() is the blessed set consumer
    return total
