"""Fixture: every obs-discipline rule fires.  Never imported — AST only."""

from repro.obs.log import get_logger

_LOG = get_logger("fixture")


def unguarded_log(n):
    _LOG.event("fixture.ran", count=n)  # obs-guarded-log


def unguarded_span(tracer, name):
    with tracer.span("map", scenario=name):  # obs-guarded-span
        return 1


def unguarded_ledger(ledger, task):
    ledger.reject(task, 0, "why")  # obs-guarded-ledger
    ledger.note_tick()  # obs-guarded-ledger
