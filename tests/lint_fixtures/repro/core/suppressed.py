"""Fixture: suppression comment handling.

Three cases: a same-line justified suppression (finding kept with
suppressed=True), a standalone justified suppression covering the next
line, and a suppression with NO justification — there the underlying
finding stays unsuppressed AND the comment itself becomes a
suppression-needs-justification finding.
"""


def justified_same_line(n):
    assert n > 0  # repro-lint: disable=no-assert -- fixture: exercising same-line suppression
    return n


def justified_standalone(items):
    # repro-lint: disable=no-set-iteration -- fixture: order irrelevant, max() is commutative
    return max(x for x in set(items))


def unjustified(n):
    assert n < 10  # repro-lint: disable=no-assert
    return n
