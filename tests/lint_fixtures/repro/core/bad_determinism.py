"""Fixture: every determinism rule fires.  Never imported — AST only."""

import random
import time
import uuid
from datetime import datetime

import numpy as np


def wall_clock_reads():
    a = time.time()  # no-wall-clock
    b = datetime.now()  # no-wall-clock
    c = uuid.uuid4()  # no-wall-clock
    return a, b, c


def global_rng():
    x = random.random()  # no-global-random (call; import also fires)
    y = np.random.rand(3)  # no-global-random
    return x, y


def set_order(items):
    for item in {3, 1, 2}:  # no-set-iteration
        print(item)
    return [x for x in set(items)]  # no-set-iteration
