"""Fixture: wall-clock reads are fine OUTSIDE the determinism scopes.

This module path (repro.analysis.*) is not in repro.core / repro.sim /
repro.baselines / repro.workload, so the determinism rules skip it; only
the repo-wide rules (imports, hygiene) apply — and it is clean for those.
"""

import time
from datetime import datetime


def report_stamp():
    return time.time(), datetime.now()
