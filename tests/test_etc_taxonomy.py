"""Range-based ETC generation and consistency shaping ([AlS00] taxonomy)."""

import numpy as np
import pytest

from repro.grid.config import CASE_A
from repro.workload.etc import (
    Consistency,
    RangeEtcSpec,
    generate_etc_range_based,
    is_consistent,
    shape_consistency,
)


class TestRangeSpec:
    def test_defaults(self):
        RangeEtcSpec()

    def test_rejects_bad_task_range(self):
        with pytest.raises(ValueError):
            RangeEtcSpec(task_range=1.0)

    def test_rejects_bad_multiplier(self):
        with pytest.raises(ValueError):
            RangeEtcSpec(slow_multiplier=(5.0, 2.0))
        with pytest.raises(ValueError):
            RangeEtcSpec(fast_multiplier=(0.0, 2.0))


class TestRangeBased:
    def test_shape_and_positive(self):
        etc = generate_etc_range_based(50, CASE_A, seed=0)
        assert etc.shape == (50, 4)
        assert (etc > 0).all()

    def test_reproducible(self):
        a = generate_etc_range_based(30, CASE_A, seed=4)
        b = generate_etc_range_based(30, CASE_A, seed=4)
        assert np.array_equal(a, b)

    def test_bounded_by_ranges(self):
        spec = RangeEtcSpec(task_range=2.0, slow_multiplier=(60, 115), fast_multiplier=(6, 11.5))
        etc = generate_etc_range_based(200, CASE_A, spec, seed=1)
        # Slow columns: q in [1,2), multiplier in [60,115) -> [60, 230).
        assert etc[:, 2:].min() >= 60.0
        assert etc[:, 2:].max() < 230.0
        assert etc[:, :2].min() >= 6.0
        assert etc[:, :2].max() < 23.0

    def test_class_separation(self):
        etc = generate_etc_range_based(500, CASE_A, seed=2)
        ratio = etc[:, 2:].mean() / etc[:, :2].mean()
        assert 7.0 < ratio < 13.0

    def test_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            generate_etc_range_based(0, CASE_A, seed=0)


class TestConsistencyShaping:
    @pytest.fixture(scope="class")
    def raw(self):
        return generate_etc_range_based(40, CASE_A, seed=7)

    def test_inconsistent_is_identity(self, raw):
        out = shape_consistency(raw, Consistency.INCONSISTENT)
        assert np.array_equal(out, raw)
        assert out is not raw  # still a copy

    def test_consistent_output_is_consistent(self, raw):
        out = shape_consistency(raw, Consistency.CONSISTENT)
        assert is_consistent(out)

    def test_raw_is_not_consistent(self, raw):
        assert not is_consistent(raw)

    def test_values_preserved_per_row(self, raw):
        out = shape_consistency(raw, Consistency.CONSISTENT)
        for i in range(raw.shape[0]):
            assert np.allclose(sorted(out[i]), sorted(raw[i]))

    def test_semi_consistent_shapes_even_rows(self, raw):
        out = shape_consistency(raw, Consistency.SEMI_CONSISTENT)
        ranking = np.argsort(raw.mean(axis=0))
        even = out[::2][:, ranking]
        assert np.all(np.diff(even, axis=1) >= -1e-12)
        # Odd rows untouched.
        assert np.array_equal(out[1::2], raw[1::2])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            shape_consistency(np.ones(4), Consistency.CONSISTENT)
        with pytest.raises(ValueError):
            is_consistent(np.ones(4))
