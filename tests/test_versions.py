"""Primary/secondary version semantics (the 10 % rule)."""

import pytest

from repro.workload.versions import (
    BOTH_VERSIONS,
    PRIMARY,
    SECONDARY,
    SECONDARY_FRACTION,
    Version,
)


def test_secondary_fraction_is_ten_percent():
    assert SECONDARY_FRACTION == pytest.approx(0.1)


def test_scales():
    assert PRIMARY.scale == 1.0
    assert SECONDARY.scale == pytest.approx(0.1)


def test_t100_counting():
    assert PRIMARY.counts_toward_t100
    assert not SECONDARY.counts_toward_t100


def test_both_versions_order_prefers_primary():
    assert BOTH_VERSIONS == (PRIMARY, SECONDARY)


def test_enum_roundtrip():
    assert Version("primary") is PRIMARY
    assert Version("secondary") is SECONDARY


def test_scenario_version_scaling(tiny_scenario):
    t = 0
    for j in range(tiny_scenario.n_machines):
        primary = tiny_scenario.exec_time(t, j, PRIMARY)
        secondary = tiny_scenario.exec_time(t, j, SECONDARY)
        assert secondary == pytest.approx(0.1 * primary)
        assert tiny_scenario.compute_energy(t, j, SECONDARY) == pytest.approx(
            0.1 * tiny_scenario.compute_energy(t, j, PRIMARY)
        )


def test_scenario_data_scaling(tiny_scenario):
    edges = tiny_scenario.dag.edges()
    if not edges:
        pytest.skip("generated DAG has no edges")
    u, v = edges[0]
    assert tiny_scenario.data_bits(u, v, SECONDARY) == pytest.approx(
        0.1 * tiny_scenario.data_bits(u, v, PRIMARY)
    )
