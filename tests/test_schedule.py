"""Schedule: planning, committing, rollback, and energy reserves."""

import pytest

from repro.sim.schedule import Schedule
from repro.sim.validate import validate_schedule
from repro.workload.versions import PRIMARY, SECONDARY


@pytest.fixture
def schedule(tiny_scenario):
    return Schedule(tiny_scenario)


def _map_all_greedy(schedule):
    """Minimal completion-time mapping used to drive schedule state."""
    scenario = schedule.scenario
    for task in scenario.dag.topological_order:
        best = None
        for j in range(scenario.n_machines):
            for v in (PRIMARY, SECONDARY):
                p = schedule.plan(task, v, j, insertion=True)
                if p.feasible and (best is None or p.finish < best.finish):
                    best = p
                if p.feasible:
                    break
        assert best is not None
        schedule.commit(best)


class TestReadyTracking:
    def test_initial_ready_is_roots(self, schedule):
        assert schedule.ready_tasks() == frozenset(schedule.scenario.dag.roots)

    def test_commit_unlocks_children(self, schedule):
        dag = schedule.scenario.dag
        root = dag.roots[0]
        plan = schedule.plan(root, PRIMARY, 0)
        schedule.commit(plan)
        only_child = [
            c for c in dag.children[root] if all(p == root for p in dag.parents[c])
        ]
        for c in only_child:
            assert c in schedule.ready_tasks()

    def test_mapped_task_not_ready(self, schedule):
        root = schedule.scenario.dag.roots[0]
        schedule.commit(schedule.plan(root, PRIMARY, 0))
        assert root not in schedule.ready_tasks()


class TestPlan:
    def test_plan_does_not_mutate(self, schedule):
        root = schedule.scenario.dag.roots[0]
        schedule.plan(root, PRIMARY, 0)
        assert schedule.n_mapped == 0
        assert schedule.total_energy_consumed == 0.0
        assert len(schedule.exec_timeline[0]) == 0

    def test_plan_duration_matches_etc(self, schedule, tiny_scenario):
        root = tiny_scenario.dag.roots[0]
        p = schedule.plan(root, PRIMARY, 1)
        assert p.duration == pytest.approx(tiny_scenario.exec_time(root, 1, PRIMARY))

    def test_plan_respects_not_before(self, schedule):
        root = schedule.scenario.dag.roots[0]
        p = schedule.plan(root, PRIMARY, 0, not_before=50.0)
        assert p.start >= 50.0
        assert p.data_ready >= 50.0

    def test_plan_mapped_task_rejected(self, schedule):
        root = schedule.scenario.dag.roots[0]
        schedule.commit(schedule.plan(root, PRIMARY, 0))
        with pytest.raises(ValueError):
            schedule.plan(root, SECONDARY, 0)

    def test_plan_unready_task_rejected(self, schedule):
        dag = schedule.scenario.dag
        non_root = next(t for t in range(dag.n_tasks) if dag.parents[t])
        with pytest.raises(ValueError):
            schedule.plan(non_root, PRIMARY, 0)

    def test_plan_bad_machine_rejected(self, schedule):
        root = schedule.scenario.dag.roots[0]
        with pytest.raises(IndexError):
            schedule.plan(root, PRIMARY, 99)

    def test_comm_scheduled_for_remote_parent(self, schedule):
        dag = schedule.scenario.dag
        root = dag.roots[0]
        child = next((c for c in dag.children[root] if len(dag.parents[c]) == 1), None)
        if child is None:
            pytest.skip("no single-parent child")
        schedule.commit(schedule.plan(root, PRIMARY, 0))
        p = schedule.plan(child, PRIMARY, 1)
        assert len(p.comms) == 1
        comm = p.comms[0]
        assert comm.src == 0 and comm.dst == 1
        assert comm.start >= schedule.assignments[root].finish
        assert p.start >= comm.finish

    def test_colocated_parent_no_comm(self, schedule):
        dag = schedule.scenario.dag
        root = dag.roots[0]
        child = next((c for c in dag.children[root] if len(dag.parents[c]) == 1), None)
        if child is None:
            pytest.skip("no single-parent child")
        schedule.commit(schedule.plan(root, PRIMARY, 0))
        p = schedule.plan(child, PRIMARY, 0)
        assert p.comms == ()
        assert p.start >= schedule.assignments[root].finish


class TestPlanVersions:
    def test_equivalent_to_two_plan_calls(self, schedule):
        scenario = schedule.scenario
        # Put a parent on machine 0 so comm planning is exercised.
        root = scenario.dag.roots[0]
        schedule.commit(schedule.plan(root, PRIMARY, 0))
        for task in sorted(schedule.ready_tasks()):
            for machine in range(scenario.n_machines):
                pair = schedule.plan_versions(task, machine, not_before=3.0)
                singles = (
                    schedule.plan(task, PRIMARY, machine, not_before=3.0),
                    schedule.plan(task, SECONDARY, machine, not_before=3.0),
                )
                for got, want in zip(pair, singles):
                    assert got == want

    def test_rejects_mapped_task(self, schedule):
        root = schedule.scenario.dag.roots[0]
        schedule.commit(schedule.plan(root, PRIMARY, 0))
        with pytest.raises(ValueError):
            schedule.plan_versions(root, 0)

    def test_versions_in_order(self, schedule):
        root = schedule.scenario.dag.roots[0]
        primary, secondary = schedule.plan_versions(root, 0)
        assert primary.version is PRIMARY
        assert secondary.version is SECONDARY
        assert secondary.duration == pytest.approx(0.1 * primary.duration)


class TestCommit:
    def test_commit_updates_aggregates(self, schedule):
        root = schedule.scenario.dag.roots[0]
        p = schedule.plan(root, PRIMARY, 0)
        schedule.commit(p)
        assert schedule.n_mapped == 1
        assert schedule.t100 == 1
        assert schedule.makespan == pytest.approx(p.finish)
        assert schedule.total_energy_consumed == pytest.approx(p.exec_energy)

    def test_secondary_does_not_count_t100(self, schedule):
        root = schedule.scenario.dag.roots[0]
        schedule.commit(schedule.plan(root, SECONDARY, 0))
        assert schedule.t100 == 0

    def test_double_commit_rejected(self, schedule):
        root = schedule.scenario.dag.roots[0]
        p = schedule.plan(root, PRIMARY, 0)
        schedule.commit(p)
        with pytest.raises(ValueError):
            schedule.commit(p)

    def test_infeasible_plan_rejected(self, schedule):
        root = schedule.scenario.dag.roots[0]
        p = schedule.plan(root, PRIMARY, 0)
        object.__setattr__(p, "feasible", False)
        with pytest.raises(ValueError):
            schedule.commit(p)

    def test_machine_available_flips(self, schedule):
        root = schedule.scenario.dag.roots[0]
        assert schedule.machine_available(0, 0.0)
        p = schedule.plan(root, PRIMARY, 0)
        schedule.commit(p)
        assert not schedule.machine_available(0, 0.0)
        assert schedule.machine_available(0, p.finish + 1.0)

    def test_full_mapping_is_complete_and_valid(self, schedule):
        _map_all_greedy(schedule)
        assert schedule.is_complete
        validate_schedule(schedule, require_complete=True)


class TestCommReserves:
    def test_reserve_held_after_commit(self, schedule):
        dag = schedule.scenario.dag
        root = dag.roots[0]
        p = schedule.plan(root, PRIMARY, 0)
        schedule.commit(p)
        if dag.children[root]:
            assert schedule.reserved_energy(0) > 0.0
            assert schedule.available_energy(0) < schedule.energy.remaining(0)
        else:
            assert schedule.reserved_energy(0) == 0.0

    def test_reserve_released_when_child_mapped(self, schedule):
        dag = schedule.scenario.dag
        root = dag.roots[0]
        child = next((c for c in dag.children[root] if len(dag.parents[c]) == 1), None)
        if child is None:
            pytest.skip("no single-parent child")
        schedule.commit(schedule.plan(root, PRIMARY, 0))
        before = schedule.reserved_energy(0)
        schedule.commit(schedule.plan(child, PRIMARY, 1))
        assert schedule.reserved_energy(0) < before

    def test_reserves_prevent_wedging(self, tiny_scenario):
        """With reserves held, any machine that maps a task can always pay
        to ship that task's outputs later."""
        schedule = Schedule(tiny_scenario)
        _map_all_greedy(schedule)
        # Reserves fully released once everything is mapped.
        for j in range(tiny_scenario.n_machines):
            assert schedule.reserved_energy(j) == pytest.approx(0.0, abs=1e-9)

    def test_no_reserve_mode(self, tiny_scenario):
        schedule = Schedule(tiny_scenario, hold_comm_reserves=False)
        root = tiny_scenario.dag.roots[0]
        schedule.commit(schedule.plan(root, PRIMARY, 0))
        assert schedule.reserved_energy(0) == 0.0


class TestUnassign:
    def test_unassign_restores_everything(self, schedule):
        root = schedule.scenario.dag.roots[0]
        p = schedule.plan(root, PRIMARY, 0)
        schedule.commit(p)
        schedule.unassign(root)
        assert schedule.n_mapped == 0
        assert schedule.t100 == 0
        assert schedule.makespan == 0.0
        assert schedule.total_energy_consumed == pytest.approx(0.0)
        assert schedule.reserved_energy(0) == pytest.approx(0.0)
        assert root in schedule.ready_tasks()

    def test_unassign_with_mapped_child_rejected(self, schedule):
        dag = schedule.scenario.dag
        root = dag.roots[0]
        child = next((c for c in dag.children[root] if len(dag.parents[c]) == 1), None)
        if child is None:
            pytest.skip("no single-parent child")
        schedule.commit(schedule.plan(root, PRIMARY, 0))
        schedule.commit(schedule.plan(child, PRIMARY, 1))
        with pytest.raises(ValueError):
            schedule.unassign(root)

    def test_unassign_unmapped_rejected(self, schedule):
        with pytest.raises(ValueError):
            schedule.unassign(0)

    def test_unassign_reholds_parent_reserve(self, schedule):
        dag = schedule.scenario.dag
        root = dag.roots[0]
        child = next((c for c in dag.children[root] if len(dag.parents[c]) == 1), None)
        if child is None:
            pytest.skip("no single-parent child")
        schedule.commit(schedule.plan(root, PRIMARY, 0))
        held_before_child = schedule.reserved_energy(0)
        schedule.commit(schedule.plan(child, PRIMARY, 1))
        schedule.unassign(child)
        assert schedule.reserved_energy(0) == pytest.approx(held_before_child)

    def test_plan_commit_unassign_roundtrip_energy(self, schedule):
        dag = schedule.scenario.dag
        root = dag.roots[0]
        child = next((c for c in dag.children[root] if len(dag.parents[c]) == 1), None)
        if child is None:
            pytest.skip("no single-parent child")
        schedule.commit(schedule.plan(root, PRIMARY, 0))
        base = schedule.total_energy_consumed
        schedule.commit(schedule.plan(child, PRIMARY, 1))
        schedule.unassign(child)
        assert schedule.total_energy_consumed == pytest.approx(base)


class TestExternalDebits:
    def test_debit_external_counts(self, schedule):
        schedule.debit_external(0, 5.0)
        assert schedule.total_energy_consumed == pytest.approx(5.0)
        assert schedule.external_debits[0] == pytest.approx(5.0)
        assert schedule.available_energy(0) == pytest.approx(
            schedule.scenario.grid[0].battery - 5.0
        )

    def test_validation_accounts_external(self, schedule):
        schedule.debit_external(0, 2.0)
        validate_schedule(schedule)
