"""Energy ledger: debits, credits, snapshots, affordability."""

import numpy as np
import pytest

from repro.grid.config import CASE_A, make_case
from repro.grid.energy import EnergyLedger


@pytest.fixture
def ledger():
    return EnergyLedger(CASE_A)


class TestQueries:
    def test_initial_state(self, ledger):
        assert ledger.remaining(0) == pytest.approx(580.0)
        assert ledger.consumed(0) == 0.0
        assert ledger.total_energy_consumed == 0.0
        assert ledger.total_system_energy == pytest.approx(1276.0)

    def test_can_afford_boundary(self, ledger):
        assert ledger.can_afford(2, 58.0)
        assert not ledger.can_afford(2, 58.1)


class TestDebit:
    def test_debit_reduces_remaining(self, ledger):
        ledger.debit(0, 100.0)
        assert ledger.remaining(0) == pytest.approx(480.0)
        assert ledger.total_energy_consumed == pytest.approx(100.0)

    def test_debit_exact_battery_allowed(self, ledger):
        ledger.debit(2, 58.0)
        assert ledger.remaining(2) == pytest.approx(0.0)

    def test_overdraft_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.debit(2, 60.0)

    def test_negative_debit_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.debit(0, -1.0)

    def test_incremental_debits_accumulate(self, ledger):
        for _ in range(5):
            ledger.debit(1, 10.0)
        assert ledger.consumed(1) == pytest.approx(50.0)


class TestCredit:
    def test_credit_refunds(self, ledger):
        ledger.debit(0, 50.0)
        ledger.credit(0, 20.0)
        assert ledger.remaining(0) == pytest.approx(550.0)

    def test_credit_beyond_consumption_rejected(self, ledger):
        ledger.debit(0, 5.0)
        with pytest.raises(ValueError):
            ledger.credit(0, 6.0)

    def test_negative_credit_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.credit(0, -1.0)


class TestSnapshot:
    def test_snapshot_restore_roundtrip(self, ledger):
        ledger.debit(0, 33.0)
        snap = ledger.snapshot()
        ledger.debit(0, 10.0)
        ledger.restore(snap)
        assert ledger.consumed(0) == pytest.approx(33.0)

    def test_snapshot_is_a_copy(self, ledger):
        snap = ledger.snapshot()
        ledger.debit(0, 1.0)
        assert snap[0] == 0.0

    def test_restore_shape_mismatch(self, ledger):
        with pytest.raises(ValueError):
            ledger.restore(np.zeros(2))

    def test_copy_independent(self, ledger):
        dup = ledger.copy()
        ledger.debit(0, 7.0)
        assert dup.consumed(0) == 0.0


def test_ledger_on_single_machine_grid():
    ledger = EnergyLedger(make_case(1, 0))
    ledger.debit(0, 580.0)
    assert not ledger.can_afford(0, 0.1)
