"""Tests for the process-pool fan-out (:mod:`repro.util.parallel`) and for
the determinism contract of the drivers built on it: any ``n_jobs`` must
reproduce the serial results exactly."""

from __future__ import annotations

import pytest

from repro.core.slrh import SLRH1, SlrhConfig
from repro.tuning.sweeps import sweep_delta_t
from repro.tuning.weight_search import search_weights
from repro.util.parallel import WorkerPool, parallel_starmap, resolve_jobs


def _mul(a, b):
    return a * b


class TestResolveJobs:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "  ")
        assert resolve_jobs() == 1

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            resolve_jobs(bad)

    def test_auto_argument_resolves_to_cpu_count(self):
        import os

        assert resolve_jobs("auto") == (os.cpu_count() or 1)
        assert resolve_jobs("AUTO") == (os.cpu_count() or 1)

    def test_auto_env_variable(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert resolve_jobs() == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_JOBS", " Auto ")
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_numeric_string_argument(self):
        assert resolve_jobs("3") == 3

    def test_rejects_garbage_strings(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_jobs("many")
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ValueError):
            resolve_jobs()


class TestParallelStarmap:
    def test_serial_path(self):
        args = [(i, i + 1) for i in range(5)]
        assert parallel_starmap(_mul, args, n_jobs=1) == [i * (i + 1) for i in range(5)]

    def test_parallel_matches_serial_and_preserves_order(self):
        args = [(i, 7) for i in range(20)]
        serial = parallel_starmap(_mul, args, n_jobs=1)
        fanned = parallel_starmap(_mul, args, n_jobs=2)
        assert fanned == serial == [7 * i for i in range(20)]

    def test_empty_input(self):
        assert parallel_starmap(_mul, [], n_jobs=2) == []


class TestWorkerPool:
    def test_serial_pool_never_spawns_processes(self):
        pool = WorkerPool(n_jobs=1)
        args = [(i, 2) for i in range(6)]
        assert pool.starmap(_mul, args) == [2 * i for i in range(6)]
        assert not pool.started
        pool.shutdown()

    def test_persistent_executor_is_reused_across_batches(self):
        with WorkerPool(n_jobs=2) as pool:
            first = pool.starmap(_mul, [(i, 3) for i in range(8)])
            assert pool.started
            executor = pool._executor
            second = pool.starmap(_mul, [(i, 5) for i in range(8)])
            assert pool._executor is executor  # same pool, no respawn
            assert first == [3 * i for i in range(8)]
            assert second == [5 * i for i in range(8)]

    def test_matches_serial_results(self):
        args = [(i, 11) for i in range(10)]
        with WorkerPool(n_jobs=2) as pool:
            assert pool.starmap(_mul, args) == parallel_starmap(_mul, args, n_jobs=1)

    def test_shutdown_is_idempotent_and_final(self):
        pool = WorkerPool(n_jobs=2)
        pool.starmap(_mul, [(1, 2), (3, 4)])
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.starmap(_mul, [(1, 2), (3, 4)])

    def test_parallel_starmap_routes_through_given_pool(self):
        with WorkerPool(n_jobs=1) as pool:
            result = parallel_starmap(_mul, [(2, 3), (4, 5)], n_jobs=2, pool=pool)
            assert result == [6, 20]
            assert not pool.started  # the pool's own (serial) count won


def _slrh1_factory(weights):
    return SLRH1(SlrhConfig(weights=weights))


class TestDriverDeterminism:
    def test_search_weights_jobs_invariant(self, tiny_scenario):
        serial = search_weights(
            tiny_scenario, _slrh1_factory, coarse_step=0.25, fine=False, n_jobs=1
        )
        fanned = search_weights(
            tiny_scenario, _slrh1_factory, coarse_step=0.25, fine=False, n_jobs=2
        )
        assert fanned.best_weights == serial.best_weights
        assert fanned.evaluations == serial.evaluations
        assert fanned.accepted == serial.accepted
        # Mapping outcomes are identical; only wall-clock timing may differ.
        strip = lambda s: {k: v for k, v in s.items() if k != "heuristic_seconds"}
        assert strip(fanned.best_result.summary()) == strip(serial.best_result.summary())
        assert fanned.perf.keys() == serial.perf.keys()

    def test_sweep_jobs_invariant(self, tiny_scenario, mid_weights):
        serial = sweep_delta_t(
            SLRH1, tiny_scenario, mid_weights, values=(5, 10, 20), n_jobs=1
        )
        fanned = sweep_delta_t(
            SLRH1, tiny_scenario, mid_weights, values=(5, 10, 20), n_jobs=2
        )
        assert [(p.value, p.t100, p.success, p.ticks) for p in fanned] == [
            (p.value, p.t100, p.success, p.ticks) for p in serial
        ]
