"""The streaming-session subsystem (:mod:`repro.session`): event grammar,
engine semantics, the byte-identity differential against offline replay
across every heuristic and kernel mode, the rejoin touch-epoch regression,
and the NDJSON delta codec."""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.core.objective import Weights
from repro.heuristics import (
    HEURISTIC_NAMES,
    SLRH_FAMILY,
    make_scheduler,
)
from repro.io.serialization import canonical_json_bytes, mapping_to_dict
from repro.session import (
    DeltaEncoder,
    SessionEngine,
    SessionEvent,
    event_from_dict,
    mapping_from_delta_ndjson,
    run_with_events,
    synthesize_events,
)
from repro.session.events import validate_events
from repro.sim.churn import ChurnEvent, run_with_churn

WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)
KERNEL_MODES = ("columnar", "incremental", "rebuild")


@pytest.fixture(scope="module")
def scenario():
    from repro.heuristics import generate_named_scenario

    return generate_named_scenario(24, 3)


def _mapping_bytes(schedule) -> bytes:
    return canonical_json_bytes(mapping_to_dict(schedule))


def _scheduler(name: str, **config):
    if name in SLRH_FAMILY and config:
        base = make_scheduler(name, WEIGHTS)
        from dataclasses import replace

        return base.__class__(replace(base.config, **config))
    if name in ("maxmax", *SLRH_FAMILY):
        return make_scheduler(name, WEIGHTS)
    return make_scheduler(name)


# ---------------------------------------------------------------------------
# event grammar


class TestEventGrammar:
    def test_kind_field_requirements(self):
        assert SessionEvent("task_arrival", 3, task=1).task == 1
        assert SessionEvent("machine_loss", 3, machine=0).machine == 0
        with pytest.raises(ValueError):
            SessionEvent("task_arrival", 3)  # task required
        with pytest.raises(ValueError):
            SessionEvent("machine_loss", 3)  # machine required
        with pytest.raises(ValueError):
            SessionEvent("advance", 3, task=1)  # no extras
        with pytest.raises(ValueError):
            SessionEvent("close", 3, machine=1)
        with pytest.raises(ValueError):
            SessionEvent("frobnicate", 3)
        with pytest.raises(ValueError):
            SessionEvent("advance", -1)

    def test_wire_round_trip(self):
        for ev in (
            SessionEvent("task_arrival", 5, task=2),
            SessionEvent("machine_rejoin", 9, machine=1),
            SessionEvent("close", 60),
        ):
            assert event_from_dict(ev.to_dict()) == ev

    def test_event_from_dict_rejects_malformed(self):
        good = {"event": "advance", "cycle": 1}
        for bad in (
            [],  # not an object
            {"cycle": 1},  # kind missing
            {"event": "advance"},  # cycle missing
            {"event": "advance", "cycle": True},  # bool is not an int
            {"event": "advance", "cycle": 1.5},
            {"event": "task_arrival", "cycle": 1, "task": "3"},
            {**good, "unexpected": 1},
        ):
            with pytest.raises(ValueError):
                event_from_dict(bad)

    def test_validate_events_checks_ranges_and_order(self, scenario):
        with pytest.raises(IndexError):
            validate_events(
                [SessionEvent("task_arrival", 1, task=scenario.n_tasks)],
                scenario,
            )
        with pytest.raises(IndexError):
            validate_events(
                [SessionEvent("machine_loss", 1, machine=99)], scenario
            )
        with pytest.raises(ValueError):
            validate_events(
                [SessionEvent("advance", 5), SessionEvent("advance", 4)],
                scenario,
            )

    def test_synthesize_is_deterministic_and_legal(self, scenario):
        held_a, events_a = synthesize_events(
            scenario, seed=11, n_events=16, max_cycle=50
        )
        held_b, events_b = synthesize_events(
            scenario, seed=11, n_events=16, max_cycle=50
        )
        assert held_a == held_b and events_a == events_b
        validate_events(events_a, scenario)
        assert events_a[-1].kind == "close"
        arrivals = [e.task for e in events_a if e.kind == "task_arrival"]
        assert sorted(arrivals) == sorted(held_a)
        assert synthesize_events(scenario, seed=12, n_events=16, max_cycle=50)[1] != events_a


# ---------------------------------------------------------------------------
# engine semantics


class TestEngineSemantics:
    def test_rejects_illegal_streams(self, scenario):
        engine = SessionEngine(scenario, _scheduler("slrh1"), pending=(5,))
        engine.apply(SessionEvent("advance", 10))
        with pytest.raises(ValueError):  # time travel
            engine.apply(SessionEvent("advance", 9))
        with pytest.raises(ValueError):  # not held
            engine.apply(SessionEvent("task_arrival", 10, task=0))
        with pytest.raises(IndexError):
            engine.apply(SessionEvent("machine_loss", 10, machine=99))
        engine.apply(SessionEvent("machine_loss", 10, machine=1))
        with pytest.raises(ValueError):  # already offline
            engine.apply(SessionEvent("machine_loss", 11, machine=1))
        with pytest.raises(ValueError):  # machine 0 is online
            engine.apply(SessionEvent("machine_rejoin", 11, machine=0))
        engine.apply(SessionEvent("machine_rejoin", 12, machine=1))
        with pytest.raises(RuntimeError):
            engine.outcome  # not closed yet
        engine.apply(SessionEvent("task_arrival", 13, task=5))
        outcome = engine.close()
        assert engine.closed
        assert outcome.final.schedule.n_mapped == scenario.n_tasks
        with pytest.raises(ValueError):
            engine.apply(SessionEvent("advance", 99))
        assert engine.close() is outcome  # idempotent

    def test_pending_requires_slrh(self, scenario):
        with pytest.raises(ValueError):
            SessionEngine(scenario, _scheduler("greedy"), pending=(1,))
        with pytest.raises(IndexError):
            SessionEngine(scenario, _scheduler("slrh1"), pending=(999,))

    def test_static_scheduler_rejects_arrivals(self, scenario):
        engine = SessionEngine(scenario, _scheduler("greedy"))
        with pytest.raises(ValueError):
            engine.apply(SessionEvent("task_arrival", 1, task=0))

    def test_held_tasks_start_unreleased(self, scenario):
        engine = SessionEngine(scenario, _scheduler("slrh1"), pending=(7,))
        assert engine.schedule.release(7) == math.inf

    def test_loss_records_rollbacks_and_counters(self, scenario):
        scheduler = _scheduler("slrh1")
        engine = SessionEngine(scenario, scheduler)
        engine.apply(SessionEvent("advance", 30))
        assert engine.schedule.n_mapped > 0
        victim = next(iter(engine.schedule.assignments.values())).machine
        record = engine.apply(SessionEvent("machine_loss", 30, machine=victim))
        assert record is not None
        outcome = engine.close()
        assert outcome.total_rolled_back == len(record.rolled_back)
        assert outcome.n_events == 3
        perf = engine.schedule.perf
        assert perf.get("session.events") == 3.0
        assert perf.get("session.rolled_back") == len(record.rolled_back)

    def test_static_final_state_mapping_avoids_offline_machine(self, scenario):
        engine = SessionEngine(scenario, _scheduler("greedy"))
        engine.apply(SessionEvent("machine_loss", 5, machine=1))
        outcome = engine.close()
        used = {a.machine for a in outcome.final.schedule.assignments.values()}
        assert 1 not in used
        assert outcome.final.schedule.n_mapped == scenario.n_tasks


# ---------------------------------------------------------------------------
# the byte-identity differential


class TestStreamingDifferential:
    @pytest.mark.parametrize("mode", KERNEL_MODES)
    @pytest.mark.parametrize("name", HEURISTIC_NAMES)
    def test_streaming_equals_offline_replay(
        self, scenario, name, mode, monkeypatch
    ):
        """The contract of the subsystem: a streamed session, the offline
        replay of the same events and (for SLRH) the non-persistent
        per-segment rebuild all land on byte-identical final mappings, in
        every kernel mode, for every registry heuristic."""
        monkeypatch.setenv("REPRO_KERNEL", mode)
        slrh = name in SLRH_FAMILY
        held, events = synthesize_events(
            scenario,
            seed=5,
            n_events=14,
            max_cycle=50,
            pending=None if slrh else (),
        )
        # Streamed: one engine, events applied one at a time.
        engine = SessionEngine(
            scenario, _scheduler(name), pending=held if slrh else ()
        )
        for ev in events:
            engine.apply(ev)
        streamed = _mapping_bytes(engine.outcome.final.schedule)
        # Offline replay of the recorded stream (the oracle).
        replayed = run_with_events(
            scenario, _scheduler(name), events, pending=held if slrh else ()
        )
        assert _mapping_bytes(replayed.final.schedule) == streamed
        if slrh:
            scratch = run_with_events(
                scenario,
                _scheduler(name),
                events,
                pending=held,
                persistent=False,
            )
            assert _mapping_bytes(scratch.final.schedule) == streamed

    def test_kernel_modes_agree(self, scenario):
        held, events = synthesize_events(
            scenario, seed=9, n_events=16, max_cycle=60
        )
        payloads = {
            mode: _mapping_bytes(
                run_with_events(
                    scenario,
                    _scheduler("slrh1", kernel=mode),
                    events,
                    pending=held,
                ).final.schedule
            )
            for mode in KERNEL_MODES
        }
        assert len(set(payloads.values())) == 1

    def test_session_matches_run_with_churn(self, scenario):
        """A loss/rejoin-only stream is exactly a churn timeline: the
        session engine and the churn replay must agree byte for byte."""
        timeline = [
            ChurnEvent(cycle=8, machine=2, kind="loss"),
            ChurnEvent(cycle=15, machine=0, kind="loss"),
            ChurnEvent(cycle=24, machine=2, kind="join"),
        ]
        churn = run_with_churn(scenario, _scheduler("slrh2"), timeline)
        events = [
            SessionEvent(
                "machine_loss" if ev.kind == "loss" else "machine_rejoin",
                ev.cycle,
                machine=ev.machine,
            )
            for ev in timeline
        ]
        session = run_with_events(scenario, _scheduler("slrh2"), events)
        assert _mapping_bytes(session.final.schedule) == _mapping_bytes(
            churn.final.schedule
        )
        assert session.total_rolled_back == churn.total_rolled_back

    def test_rejoin_reenters_candidate_pool_fresh(self, scenario):
        """Satellite regression: after machine_rejoin the machine must be
        usable again with a fresh touch epoch — the persistent columnar
        session must match the rebuild oracle on a stream whose optimum
        needs the rejoined machine."""
        events = [
            SessionEvent("machine_loss", 2, machine=1),
            SessionEvent("machine_rejoin", 6, machine=1),
            SessionEvent("advance", 40),
            SessionEvent("close", 50),
        ]
        warm = run_with_events(
            scenario, _scheduler("slrh1", kernel="columnar"), events
        )
        oracle = run_with_events(
            scenario,
            _scheduler("slrh1", kernel="rebuild", plan_cache=False),
            events,
            persistent=False,
        )
        warm_bytes = _mapping_bytes(warm.final.schedule)
        assert warm_bytes == _mapping_bytes(oracle.final.schedule)
        used = {a.machine for a in warm.final.schedule.assignments.values()}
        assert 1 in used  # the rejoined machine is genuinely reconsidered

    def test_columnar_note_machine_return_bumps_touch_epoch(self, scenario):
        from repro.sim.schedule import Schedule

        scheduler = _scheduler("slrh1", kernel="columnar")
        schedule = Schedule(scenario)
        kernel = scheduler.make_kernel(schedule)
        scheduler.map(scenario, schedule=schedule, stop_cycle=10, kernel=kernel)
        pool = kernel.pool
        before = pool._touch[1]
        kernel.note_rejoin(1)
        assert pool._touch[1] == before + 1
        base = 1 * pool._n_tasks
        assert all(
            pool._kind[i] == -1 for i in range(base, base + pool._n_tasks)
        )


# ---------------------------------------------------------------------------
# the delta codec


def _stream_with_encoder(scenario, scheduler, events, pending=()):
    """Drive one engine the way the service does: encoder after every
    event, footer after close.  Returns (lines, final schedule)."""
    engine = SessionEngine(scenario, scheduler, pending=pending)
    encoder = DeltaEncoder(engine.schedule)
    lines: list[bytes] = []
    for ev in events:
        engine.apply(ev)
        lines.extend(encoder.delta_lines(cycle=ev.cycle, event=ev.kind))
        if engine.closed:
            lines.extend(encoder.footer_lines())
    return lines, engine.outcome.final.schedule


class TestDeltaCodec:
    @pytest.fixture(scope="class")
    def stream(self, scenario):
        held, events = synthesize_events(
            scenario, seed=21, n_events=18, max_cycle=60
        )
        # Guarantee at least one loss is present so retractions appear.
        assert any(e.kind == "machine_loss" for e in events)
        return _stream_with_encoder(
            scenario, _scheduler("slrh1"), events, pending=held
        ) + (events,)

    def test_round_trip_is_byte_identical(self, scenario, stream):
        lines, schedule, events = stream
        rebuilt = mapping_from_delta_ndjson(lines, scenario)
        assert _mapping_bytes(rebuilt) == _mapping_bytes(schedule)
        # one block per event, numbered densely
        heads = [
            json.loads(l) for l in lines if b'"record":"delta"' in l
        ]
        assert [h["seq"] for h in heads] == list(range(len(events)))
        assert [h["event"] for h in heads] == [e.kind for e in events]

    def test_quiet_events_emit_empty_delta_blocks(self, scenario):
        events = [
            SessionEvent("advance", 5),
            SessionEvent("advance", 5),  # zero-width segment: no change
            SessionEvent("close", 50),
        ]
        lines, schedule = _stream_with_encoder(
            scenario, _scheduler("slrh1"), events
        )
        heads = [json.loads(l) for l in lines if b'"record":"delta"' in l]
        assert len(heads) == 3
        assert heads[1]["n_new"] == 0 and heads[1]["n_retracted"] == 0
        rebuilt = mapping_from_delta_ndjson(lines, scenario)
        assert _mapping_bytes(rebuilt) == _mapping_bytes(schedule)

    def test_blocks_reorder_tolerant(self, scenario, stream):
        lines, schedule, _ = stream
        blocks: list[list[bytes]] = []
        footer: list[bytes] = []
        for line in lines:
            if b'"record":"delta"' in line:
                blocks.append([line])
            elif b'"record":"footer"' in line:
                footer.append(line)
            else:
                blocks[-1].append(line)
        rng = random.Random(4)
        for _ in range(3):
            rng.shuffle(blocks)
            shuffled = [ln for block in blocks for ln in block] + footer
            rebuilt = mapping_from_delta_ndjson(shuffled, scenario)
            assert _mapping_bytes(rebuilt) == _mapping_bytes(schedule)

    def test_missing_block_is_rejected(self, scenario, stream):
        lines, _, _ = stream
        blocks: list[list[bytes]] = []
        footer: list[bytes] = []
        for line in lines:
            if b'"record":"delta"' in line:
                blocks.append([line])
            elif b'"record":"footer"' in line:
                footer.append(line)
            else:
                blocks[-1].append(line)
        del blocks[2]
        kept = [ln for block in blocks for ln in block] + footer
        with pytest.raises(ValueError, match="missing block"):
            mapping_from_delta_ndjson(kept, scenario)

    def test_count_mismatch_is_rejected(self, scenario, stream):
        lines, _, _ = stream
        tampered = []
        for line in lines:
            if b'"record":"delta"' in line and b'"seq":0' in line:
                head = json.loads(line)
                head["n_new"] += 1
                line = (json.dumps(head, sort_keys=True) + "\n").encode()
            tampered.append(line)
        with pytest.raises(ValueError, match="advertises"):
            mapping_from_delta_ndjson(tampered, scenario)

    def test_orphan_and_duplicate_records_rejected(self, scenario, stream):
        lines, _, _ = stream
        with pytest.raises(ValueError, match="outside any delta block"):
            mapping_from_delta_ndjson(
                [b'{"record":"retract","task":1}\n'], scenario
            )
        with pytest.raises(ValueError, match="duplicate"):
            footer = [l for l in lines if b'"record":"footer"' in l]
            mapping_from_delta_ndjson(list(lines) + footer, scenario)
        with pytest.raises(ValueError, match="empty delta stream"):
            mapping_from_delta_ndjson([], scenario)
        with pytest.raises(ValueError, match="unknown delta-stream record"):
            mapping_from_delta_ndjson([b'{"record":"nope"}\n'], scenario)

    def test_retract_of_unannounced_task_rejected(self, scenario):
        events = [SessionEvent("close", 10)]
        lines, _ = _stream_with_encoder(scenario, _scheduler("slrh1"), events)
        head = json.loads(lines[0])
        head["n_retracted"] = 1
        tampered = [
            (json.dumps(head, sort_keys=True) + "\n").encode(),
            b'{"record":"retract","task":0}\n',
            *lines[1:],
        ]
        with pytest.raises(ValueError, match="never announced"):
            mapping_from_delta_ndjson(tampered, scenario)

    def test_footer_count_mismatch_rejected(self, scenario, stream):
        lines, _, _ = stream
        tampered = []
        for line in lines:
            if b'"record":"footer"' in line:
                foot = json.loads(line)
                foot["n_assignments"] += 1
                line = (json.dumps(foot, sort_keys=True) + "\n").encode()
            tampered.append(line)
        with pytest.raises(ValueError, match="footer advertised"):
            mapping_from_delta_ndjson(tampered, scenario)

    def test_partial_stream_without_footer_applies(self, scenario, stream):
        """A client that disconnects before close still holds a valid
        prefix: blocks up to any point reassemble and validate."""
        lines, _, _ = stream
        prefix: list[bytes] = []
        seen = 0
        for line in lines:
            if b'"record":"delta"' in line:
                seen += 1
                if seen > 4:
                    break
            prefix.append(line)
        rebuilt = mapping_from_delta_ndjson(prefix, scenario)
        assert rebuilt.n_mapped == len(rebuilt.assignments)
