"""The streaming-session HTTP surface (:mod:`repro.service.sessions` +
the ``/v1/session`` routes): open/stream/status/result, the byte-identity
contract against offline replay, admission limits, idle eviction, drain,
and the session-mode load generator."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.heuristics import generate_named_scenario
from repro.io.serialization import (
    canonical_json_bytes,
    mapping_to_dict,
    scenario_to_dict,
)
from repro.service.app import make_server
from repro.service.jobs import JobManager
from repro.service.registry import ScenarioRegistry
from repro.service.sessions import SessionManager
from repro.session import (
    mapping_from_delta_ndjson,
    run_with_events,
    synthesize_events,
)

N_TASKS, SEED = 24, 3


def _post(base, path, doc, timeout=120):
    req = urllib.request.Request(
        base + path,
        data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _post_ndjson(base, path, payload: bytes, timeout=120):
    req = urllib.request.Request(
        base + path,
        data=payload,
        headers={"Content-Type": "application/x-ndjson"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _get(base, path, timeout=120):
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _ndjson(events) -> bytes:
    return b"".join(canonical_json_bytes(ev.to_dict()) for ev in events)


@pytest.fixture()
def make_service():
    """Factory for live services with configurable session policies."""
    started = []

    def _make(max_sessions=8, idle_timeout=900.0):
        manager = JobManager(ScenarioRegistry(), n_jobs=1, max_queue=16)
        sessions = SessionManager(
            manager.registry,
            max_sessions=max_sessions,
            idle_timeout=idle_timeout,
            perf=manager.perf,
        )
        server = make_server("127.0.0.1", 0, manager, sessions=sessions)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        started.append((manager, server, thread))
        host, port = server.server_address[:2]
        return f"http://{host}:{port}", manager, sessions

    yield _make
    for manager, server, thread in started:
        manager.drain(timeout=60)
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()
        manager.close(drain_timeout=0)


def _register(base) -> str:
    scenario = generate_named_scenario(N_TASKS, SEED)
    _, _, body = _post(base, "/v1/scenarios", scenario_to_dict(scenario))
    return json.loads(body)["id"]


class TestSessionLifecycle:
    def test_open_stream_result_matches_offline_replay(self, make_service):
        """The acceptance contract end to end over HTTP: a streamed
        session's deltas reassemble to — and its /result endpoint returns
        — the byte-identical mapping of an offline replay."""
        base, _, _ = make_service()
        sid = _register(base)
        scenario = generate_named_scenario(N_TASKS, SEED)
        held, events = synthesize_events(
            scenario, seed=11, n_events=20, max_cycle=60
        )
        status, _, body = _post(
            base,
            "/v1/session",
            {"scenario": sid, "heuristic": "slrh1", "pending": list(held)},
        )
        assert status == 201, body
        doc = json.loads(body)
        assert doc["heuristic"] == "slrh1"
        assert doc["pending"] == sorted(held)
        events_url = doc["events_url"]
        # Fresh session: open, nothing mapped beyond cycle 0, result 409.
        status, _, body = _get(base, doc["status_url"])
        assert status == 200 and json.loads(body)["state"] == "open"
        status, _, _ = _get(base, doc["result_url"])
        assert status == 409
        # Stream the events in three batches; collect every delta line.
        lines: list[bytes] = []
        for start in range(0, len(events), 7):
            batch = events[start : start + 7]
            status, headers, body = _post_ndjson(
                base, events_url, _ndjson(batch)
            )
            assert status == 200, body
            assert headers["Content-Type"] == "application/x-ndjson"
            lines.extend(body.splitlines(keepends=True))
        assert b'"record":"footer"' in lines[-1]
        oracle = run_with_events(scenario, _oracle_scheduler(), events, pending=held)
        oracle_bytes = canonical_json_bytes(
            mapping_to_dict(oracle.final.schedule)
        )
        rebuilt = mapping_from_delta_ndjson(lines, scenario)
        assert canonical_json_bytes(mapping_to_dict(rebuilt)) == oracle_bytes
        # The stored result is the same bytes.
        status, headers, body = _get(base, doc["result_url"])
        assert status == 200
        assert headers["X-Session-Id"] == doc["session"]
        assert body == oracle_bytes
        # Closed status carries the outcome summary.
        status, _, body = _get(base, doc["status_url"])
        closed = json.loads(body)
        assert closed["state"] == "closed"
        assert closed["n_events"] == len(events)
        assert closed["errors"] == 0
        # Listed, counted in healthz, and visible in metrics.
        status, _, body = _get(base, "/v1/sessions")
        assert doc["session"] in json.loads(body)["sessions"]
        status, _, body = _get(base, "/healthz")
        assert json.loads(body)["sessions"] == 1
        status, _, body = _get(base, "/metrics")
        metrics = json.loads(body)
        assert metrics["counters"]["session.opened"] == 1.0
        assert metrics["counters"]["session.closed"] == 1.0
        assert metrics["counters"]["session.events"] == len(events)

    def test_config_overrides_reach_the_engine(self, make_service):
        """delta_t/horizon/kernel overrides at open time change the
        session's replanning exactly like the same SlrhConfig offline."""
        from dataclasses import replace

        base, _, _ = make_service()
        sid = _register(base)
        scenario = generate_named_scenario(N_TASKS, SEED)
        held, events = synthesize_events(
            scenario, seed=4, n_events=10, max_cycle=60
        )
        status, _, body = _post(
            base,
            "/v1/session",
            {
                "scenario": sid,
                "heuristic": "slrh1",
                "pending": list(held),
                "delta_t_cycles": 5,
                "horizon_cycles": 50,
                "kernel": "rebuild",
            },
        )
        assert status == 201, body
        doc = json.loads(body)
        status, _, body = _post_ndjson(base, doc["events_url"], _ndjson(events))
        assert status == 200
        scheduler = _oracle_scheduler()
        scheduler = scheduler.__class__(
            replace(
                scheduler.config,
                delta_t_cycles=5,
                horizon_cycles=50,
                kernel="rebuild",
            )
        )
        oracle = run_with_events(scenario, scheduler, events, pending=held)
        _, _, result = _get(base, doc["result_url"])
        assert result == canonical_json_bytes(
            mapping_to_dict(oracle.final.schedule)
        )

    def test_static_heuristic_session(self, make_service):
        """Statics stream churn/advance events and map once at close."""
        base, _, _ = make_service()
        sid = _register(base)
        scenario = generate_named_scenario(N_TASKS, SEED)
        _, events = synthesize_events(
            scenario, seed=6, n_events=8, max_cycle=40, pending=()
        )
        status, _, body = _post(
            base, "/v1/session", {"scenario": sid, "heuristic": "greedy"}
        )
        assert status == 201, body
        doc = json.loads(body)
        status, _, _ = _post_ndjson(base, doc["events_url"], _ndjson(events))
        assert status == 200
        from repro.heuristics import make_scheduler

        oracle = run_with_events(
            scenario, make_scheduler("greedy"), events, pending=()
        )
        _, _, result = _get(base, doc["result_url"])
        assert result == canonical_json_bytes(
            mapping_to_dict(oracle.final.schedule)
        )


class TestSessionErrors:
    def test_open_rejections(self, make_service):
        base, _, _ = make_service()
        sid = _register(base)
        cases = [
            ({}, 400),  # no scenario
            ({"scenario": "sha256:missing"}, 404),
            ({"scenario": sid, "heuristic": "frobnicate"}, 404),
            ({"scenario": sid, "heuristic": "greedy", "alpha": 0.5}, 400),
            ({"scenario": sid, "heuristic": "greedy", "kernel": "columnar"}, 400),
            ({"scenario": sid, "heuristic": "slrh1", "kernel": "warp"}, 400),
            ({"scenario": sid, "heuristic": "slrh1", "delta_t_cycles": 0}, 400),
            ({"scenario": sid, "heuristic": "slrh1", "pending": [99]}, 400),
            ({"scenario": sid, "heuristic": "slrh1", "pending": "0,1"}, 400),
            ({"scenario": sid, "heuristic": "greedy", "pending": [1]}, 400),
        ]
        for body, expected in cases:
            status, _, resp = _post(base, "/v1/session", body)
            assert status == expected, (body, resp)

    def test_event_batch_rejections(self, make_service):
        base, _, _ = make_service()
        sid = _register(base)
        status, _, body = _post(
            base, "/v1/session", {"scenario": sid, "heuristic": "slrh1"}
        )
        doc = json.loads(body)
        # Unknown session.
        status, _, _ = _post_ndjson(
            base, "/v1/session/sess-unknown/events", b'{"event":"advance","cycle":1}\n'
        )
        assert status == 404
        # Empty batch.
        status, _, _ = _post_ndjson(base, doc["events_url"], b"")
        assert status == 400
        # Malformed line: named with its line number.
        status, _, body = _post_ndjson(
            base,
            doc["events_url"],
            b'{"event":"advance","cycle":1}\n{"event":"advance"}\n',
        )
        assert status == 400
        assert b"line 2" in body
        # The 400 rejected the whole batch before any event applied.
        status, _, body = _get(base, doc["status_url"])
        assert json.loads(body)["cursor"] == 0

    def test_illegal_event_yields_error_record_not_corruption(
        self, make_service
    ):
        base, _, _ = make_service()
        sid = _register(base)
        _, _, body = _post(
            base, "/v1/session", {"scenario": sid, "heuristic": "slrh1"}
        )
        doc = json.loads(body)
        status, _, body = _post_ndjson(
            base, doc["events_url"], b'{"event":"advance","cycle":10}\n'
        )
        assert status == 200
        # Time travel: 200 with an error record, batch stops there.
        status, _, body = _post_ndjson(
            base,
            doc["events_url"],
            b'{"event":"advance","cycle":5}\n{"event":"advance","cycle":12}\n',
        )
        assert status == 200
        error = json.loads(body.splitlines()[0])
        assert error["record"] == "error" and error["event_index"] == 0
        # The session survives and keeps streaming.
        status, _, body = _post_ndjson(
            base, doc["events_url"], b'{"event":"close","cycle":12}\n'
        )
        assert status == 200
        assert b'"record":"footer"' in body
        # Batches after close answer with an error record too.
        status, _, body = _post_ndjson(
            base, doc["events_url"], b'{"event":"advance","cycle":20}\n'
        )
        assert status == 200
        assert json.loads(body.splitlines()[0])["record"] == "error"
        _, _, metrics = _get(base, "/metrics")
        counters = json.loads(metrics)["counters"]
        assert counters["session.event_errors"] == 2.0
        assert counters["session.closed"] == 1.0  # accounted exactly once


class TestSessionAdmission:
    def test_session_limit_answers_429(self, make_service):
        base, _, _ = make_service(max_sessions=1)
        sid = _register(base)
        status, _, _ = _post(base, "/v1/session", {"scenario": sid})
        assert status == 201
        status, headers, body = _post(base, "/v1/session", {"scenario": sid})
        assert status == 429
        assert headers["Retry-After"].isdigit()
        doc = json.loads(body)
        assert doc["active_sessions"] == 1
        assert doc["retry_after"] == int(headers["Retry-After"])

    def test_drain_answers_503(self, make_service):
        base, _, sessions = make_service()
        sid = _register(base)
        _, _, body = _post(base, "/v1/session", {"scenario": sid})
        doc = json.loads(body)
        sessions.drain()
        status, _, _ = _post(base, "/v1/session", {"scenario": sid})
        assert status == 503
        status, _, _ = _post_ndjson(
            base, doc["events_url"], b'{"event":"advance","cycle":1}\n'
        )
        assert status == 503

    def test_idle_sessions_are_evicted(self, make_service):
        base, manager, sessions = make_service(idle_timeout=0.05)
        sid = _register(base)
        _, _, body = _post(base, "/v1/session", {"scenario": sid})
        doc = json.loads(body)
        assert len(sessions) == 1
        time.sleep(0.1)
        # Any table access past the timeout sweeps the session out.
        status, _, _ = _get(base, doc["status_url"])
        assert status == 404
        assert len(sessions) == 0
        assert manager.perf.get("session.evicted") == 1.0


class TestSessionLoadgen:
    def test_session_mode_loadgen_round_trip(self, make_service):
        from repro.service.loadgen import run_session_loadgen

        base, _, _ = make_service()
        artifact = run_session_loadgen(
            base, levels=(1, 2), n_tasks=16, seed=5, n_events=8, batch=3,
            max_cycle=40,
        )
        assert artifact["mode"] == "session"
        for level in artifact["levels"]:
            assert level["errors"] == 0
            assert level["sessions"] == level["clients"]
            assert level["delta_lines"] > 0


def _oracle_scheduler():
    from repro.core.objective import Weights
    from repro.heuristics import make_scheduler

    return make_scheduler("slrh1", Weights.from_alpha_beta(0.5, 0.2))
