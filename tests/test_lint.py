"""Tests for the repro.lint static-analysis framework.

Golden fixtures live under ``tests/lint_fixtures/repro/...`` — the
``repro`` path component makes :func:`repro.lint.model.module_path_for`
infer the right dotted module, so rule scoping behaves exactly as it does
on ``src/repro``.  Fixture files are parsed, never imported, so they may
freely contain banned imports and deliberate bugs.
"""

from __future__ import annotations

import json
import tomllib
from pathlib import Path

import pytest

from repro.lint import (
    SCHEMA,
    all_rules,
    get_rule,
    lint_file,
    lint_paths,
    render_json,
    render_text,
)
from repro.lint.__main__ import main as lint_main
from repro.lint.model import FileContext, module_path_for
from repro.lint.runner import UNJUSTIFIED

REPO = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def findings_for(name: str, rule: str | None = None):
    """Unsuppressed findings for one fixture file (optionally one rule)."""
    found = lint_file(FIXTURES / "repro" / name)
    found = [f for f in found if not f.suppressed]
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


# -- rule registry ------------------------------------------------------------


def test_all_rule_families_are_registered():
    families = {r.family for r in all_rules()}
    assert families == {
        "determinism",
        "stdlib-only",
        "obs-discipline",
        "lock-discipline",
        "api-hygiene",
        # whole-program families (PR 10)
        "lock-order",
        "guard-verification",
        "process-boundary",
        "blocking-discipline",
    }


def test_program_rules_are_marked_program():
    by_family = {}
    for rule in all_rules():
        by_family.setdefault(rule.family, []).append(rule)
    for family in (
        "lock-order",
        "guard-verification",
        "process-boundary",
        "blocking-discipline",
    ):
        assert by_family[family], family
        assert all(r.program for r in by_family[family])
    for family in ("determinism", "api-hygiene", "lock-discipline"):
        assert all(not r.program for r in by_family[family])


def test_get_rule_unknown_lists_known_ids():
    with pytest.raises(KeyError, match="no-wall-clock"):
        get_rule("definitely-not-a-rule")


def test_rule_ids_are_kebab_case():
    from repro.lint.registry import _RULE_ID_RE

    for rule in all_rules():
        assert _RULE_ID_RE.match(rule.id), rule.id


# -- determinism --------------------------------------------------------------


def test_no_wall_clock_positive():
    lines = {f.line for f in findings_for("core/bad_determinism.py", "no-wall-clock")}
    assert lines == {12, 13, 14}  # time.time, datetime.now, uuid4


def test_no_global_random_positive():
    found = findings_for("core/bad_determinism.py", "no-global-random")
    assert len(found) == 3  # the import, random.random(), np.random.rand()


def test_no_set_iteration_positive():
    found = findings_for("core/bad_determinism.py", "no-set-iteration")
    assert len(found) == 2  # for-loop over display, listcomp over set()


def test_determinism_negative():
    assert findings_for("core/good_determinism.py") == []


def test_determinism_rules_respect_scope():
    # Same calls, module outside the determinism scopes: no findings.
    assert findings_for("analysis/out_of_scope.py") == []


def test_scope_matches_at_package_boundary():
    path = FIXTURES / "repro" / "core" / "bad_determinism.py"
    ctx = FileContext(path, path.read_text(), "repro.coreutils.thing")
    assert not ctx.in_scope(("repro.core",))
    assert ctx.in_scope(("repro.coreutils",))
    assert ctx.in_scope(())  # empty scopes = everywhere


def test_module_override_disables_scoped_rules():
    path = FIXTURES / "repro" / "core" / "bad_determinism.py"
    found = lint_file(path, module="somewhere.else")
    assert [f for f in found if f.rule.startswith("no-")] == []


# -- stdlib-only --------------------------------------------------------------


def test_import_rules_positive():
    by_rule = {}
    for f in findings_for("service/bad_imports.py"):
        by_rule.setdefault(f.rule, []).append(f.line)
    # pandas: undeclared anywhere; numpy: declared but banned in the layer.
    assert by_rule["import-whitelist"] == [6]
    assert sorted(by_rule["stdlib-only-layer"]) == [5, 6]


def test_src_layer_modules_are_in_stdlib_scope():
    rule = get_rule("stdlib-only-layer")
    for module in ("repro.service.jobs", "repro.obs.log", "repro.lint.runner"):
        ctx = FileContext(Path("x.py"), "", module)
        assert ctx.in_scope(rule.scopes)
    assert not FileContext(Path("x.py"), "", "repro.core.slrh").in_scope(rule.scopes)


# -- obs-discipline -----------------------------------------------------------


def test_obs_rules_positive():
    rules = sorted(f.rule for f in findings_for("core/bad_obs.py"))
    assert rules == [
        "obs-guarded-ledger",
        "obs-guarded-ledger",
        "obs-guarded-log",
        "obs-guarded-span",
    ]


def test_obs_guard_idioms_negative():
    # Every blessed guard idiom from the real code: zero findings.
    assert findings_for("core/good_obs.py") == []


# -- lock-discipline ----------------------------------------------------------


def test_lock_rule_positive_and_negative():
    found = findings_for("service/bad_locks.py", "lock-guarded-attr")
    assert {f.line for f in found} == {25, 26, 30}
    # with-block, *_locked naming, requires-lock annotation, unannotated
    # attribute: all clean (no findings on those methods' lines).


# -- api-hygiene --------------------------------------------------------------


def test_hygiene_rules_positive():
    by_rule = {}
    for f in findings_for("core/bad_hygiene.py"):
        by_rule.setdefault(f.rule, 0)
        by_rule[f.rule] += 1
    assert by_rule == {
        "no-mutable-default": 2,
        "no-bare-except": 1,
        "no-assert": 1,
    }


# -- suppressions -------------------------------------------------------------


def test_justified_suppressions_mask_but_are_reported():
    found = lint_file(FIXTURES / "repro" / "core" / "suppressed.py")
    suppressed = [f for f in found if f.suppressed]
    assert len(suppressed) == 2  # same-line assert + standalone set-iteration
    assert all(f.justification for f in suppressed)
    assert {f.rule for f in suppressed} == {"no-assert", "no-set-iteration"}


def test_unjustified_suppression_does_not_mask():
    found = lint_file(FIXTURES / "repro" / "core" / "suppressed.py")
    unsuppressed = [f for f in found if not f.suppressed]
    rules = sorted(f.rule for f in unsuppressed)
    # The assert finding survives AND the bad comment is its own finding.
    assert rules == sorted(["no-assert", UNJUSTIFIED])
    bad_comment = [f for f in unsuppressed if f.rule == UNJUSTIFIED][0]
    justified_lines = {f.line for f in found if f.suppressed}
    assert bad_comment.line not in justified_lines


def test_unjustified_marker_is_not_itself_suppressible():
    source = (
        "import random  "
        "# repro-lint: disable=no-global-random,suppression-needs-justification\n"
    )
    path = FIXTURES / "repro" / "core" / "bad_determinism.py"  # reuse module path
    ctx_path = path.parent / "_inline_.py"
    try:
        ctx_path.write_text(source)
        found = lint_file(ctx_path)
        assert any(f.rule == UNJUSTIFIED and not f.suppressed for f in found)
    finally:
        ctx_path.unlink()


# -- report output ------------------------------------------------------------


def test_json_report_schema():
    report = lint_paths([FIXTURES])
    doc = json.loads(render_json(report))
    assert doc["schema"] == SCHEMA
    assert doc["ok"] is False
    assert doc["files_checked"] == report.files_checked
    assert set(doc["counts"]) <= {r.id for r in all_rules()} | {UNJUSTIFIED}
    for finding in doc["findings"]:
        assert {"rule", "path", "line", "col", "message", "suppressed"} <= set(finding)
        if finding["suppressed"]:
            assert finding["justification"]


def test_text_report_locations_are_clickable():
    report = lint_paths([FIXTURES / "repro" / "core" / "bad_hygiene.py"])
    text = render_text(report)
    assert "bad_hygiene.py:13:" in text  # path:line:col prefix
    assert "[no-bare-except]" in text
    assert text.splitlines()[-1].startswith("1 file(s) checked")


# -- CLI ----------------------------------------------------------------------


def test_cli_exit_codes(capsys):
    assert lint_main([str(FIXTURES)]) == 1  # fixtures seeded with violations
    assert lint_main([str(FIXTURES / "repro" / "core" / "good_obs.py")]) == 0
    assert lint_main(["--list-rules"]) == 0
    assert lint_main(["--rule", "not-a-rule", str(FIXTURES)]) == 2
    assert lint_main(["no/such/path"]) == 2
    capsys.readouterr()


def test_cli_rule_filter(capsys):
    rc = lint_main(
        ["--rule", "no-assert", "--format", "json",
         str(FIXTURES / "repro" / "core" / "bad_determinism.py")]
    )
    assert rc == 0  # no asserts in that fixture
    doc = json.loads(capsys.readouterr().out)
    assert doc["rules_run"] == ["no-assert"]
    assert doc["findings"] == []


# -- the repo itself ----------------------------------------------------------


def test_repo_lints_clean():
    """src/repro passes every rule — the PR's own acceptance criterion."""
    report = lint_paths([REPO / "src"])
    assert report.files_checked > 50
    assert report.unsuppressed == [], render_text(report)


def test_module_path_inference():
    assert module_path_for(Path("src/repro/core/slrh.py")) == "repro.core.slrh"
    assert module_path_for(Path("src/repro/obs/__init__.py")) == "repro.obs"
    assert module_path_for(Path("scripts/tool.py")) == "tool"


# -- mypy ratchet -------------------------------------------------------------


def test_mypy_ratchet_matches_pyproject():
    """tools/mypy_ratchet.txt mirrors the permissive override module list."""
    config = tomllib.loads((REPO / "pyproject.toml").read_text())
    overrides = config["tool"]["mypy"]["overrides"]
    permissive = [
        o for o in overrides if o.get("disallow_untyped_defs") is False
    ]
    assert len(permissive) == 1
    ratchet_lines = [
        line.strip()
        for line in (REPO / "tools" / "mypy_ratchet.txt").read_text().splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    assert sorted(ratchet_lines) == sorted(permissive[0]["module"])


def test_mypy_strict_set_covers_mapping_packages():
    config = tomllib.loads((REPO / "pyproject.toml").read_text())
    overrides = config["tool"]["mypy"]["overrides"]
    strict = [o for o in overrides if o.get("disallow_untyped_defs") is True]
    assert len(strict) == 1
    assert set(strict[0]["module"]) == {
        "repro.core.*",
        "repro.grid.*",
        "repro.workload.*",
        "repro.heuristics",
        # promoted with the whole-program lint work (PR 10): the
        # concurrency layer and the analyzer that checks it.
        "repro.lint.*",
        "repro.service.*",
        "repro.session.*",
    }


def test_strict_packages_have_fully_annotated_defs():
    """mypy is CI-only (not installed in the dev container), so enforce
    the disallow_untyped_defs contract for the promoted packages by AST:
    every function in repro.lint / repro.service / repro.session has a
    return annotation and annotations on all non-self/cls parameters."""
    import ast

    missing: list[str] = []
    for pkg in ("lint", "service", "session"):
        for path in sorted((REPO / "src" / "repro" / pkg).rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                args = node.args
                params = (
                    args.posonlyargs + args.args + args.kwonlyargs
                )
                unannotated = [
                    a.arg
                    for a in params
                    if a.annotation is None and a.arg not in ("self", "cls")
                ]
                for star in (args.vararg, args.kwarg):
                    if star is not None and star.annotation is None:
                        unannotated.append(f"*{star.arg}")
                if unannotated or node.returns is None:
                    missing.append(
                        f"{path.relative_to(REPO)}:{node.lineno} "
                        f"{node.name} (params={unannotated}, "
                        f"returns={'ok' if node.returns else 'missing'})"
                    )
    assert missing == [], "\n".join(missing)
