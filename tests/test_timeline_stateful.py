"""Stateful property testing of IntervalTimeline (hypothesis rule machine).

Random interleavings of reserve / release / query operations against a
shadow model (a plain list of intervals) — catches ordering bugs the
example-based tests cannot enumerate.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.sim.timeline import IntervalTimeline

_START = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
_DUR = st.floats(min_value=0.05, max_value=8.0, allow_nan=False)


class TimelineMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.timeline = IntervalTimeline()
        self.shadow: list[tuple[float, float]] = []

    # -- operations --------------------------------------------------------

    @rule(start=_START, dur=_DUR)
    def reserve_if_free(self, start, dur):
        end = start + dur
        if self.timeline.is_free(start, end):
            self.timeline.reserve(start, end)
            self.shadow.append((start, end))

    @precondition(lambda self: self.shadow)
    @rule(index=st.integers(min_value=0, max_value=10**6))
    def release_one(self, index):
        start, end = self.shadow.pop(index % len(self.shadow))
        self.timeline.release(start, end)

    @rule(start=_START, dur=_DUR)
    def gap_is_usable(self, start, dur):
        t = self.timeline.earliest_gap(dur, not_before=start)
        assert t >= start - 1e-9
        assert self.timeline.is_free(t, t + dur)
        # And actually reservable right now.
        self.timeline.reserve(t, t + dur)
        self.timeline.release(t, t + dur)

    # -- invariants -----------------------------------------------------------

    @invariant()
    def shadow_agrees(self):
        assert len(self.timeline) == len(self.shadow)
        expected = sorted(self.shadow)
        assert self.timeline.intervals() == expected

    @invariant()
    def busy_time_agrees(self):
        total = sum(e - s for s, e in self.shadow)
        assert abs(self.timeline.busy_time() - total) < 1e-6

    @invariant()
    def no_overlap(self):
        ivs = self.timeline.intervals()
        for (s1, e1), (s2, e2) in zip(ivs, ivs[1:]):
            assert e1 <= s2 + 1e-9


TestTimelineStateful = TimelineMachine.TestCase
TestTimelineStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
