"""Execution replay and dynamic machine loss."""

import pytest

from repro.core.slrh import SLRH1, SlrhConfig
from repro.sim.engine import (
    execute_schedule,
    run_with_machine_loss,
    surviving_tasks,
)
from repro.sim.events import EventKind
from repro.sim.validate import validate_schedule


@pytest.fixture(scope="module")
def mapped_result(small_scenario, mid_config):
    return SLRH1(mid_config).map(small_scenario)


class TestReplay:
    def test_replay_runs_clean(self, mapped_result):
        log = execute_schedule(mapped_result.schedule)
        assert log.makespan == pytest.approx(mapped_result.schedule.makespan)

    def test_event_counts(self, mapped_result):
        log = execute_schedule(mapped_result.schedule)
        n = mapped_result.schedule.n_mapped
        assert len(log.events_of(EventKind.TASK_START)) == n
        assert len(log.events_of(EventKind.TASK_FINISH)) == n
        n_comms = sum(len(a.comms) for a in mapped_result.schedule.assignments.values())
        assert len(log.events_of(EventKind.COMM_START)) == n_comms
        assert len(log.events_of(EventKind.COMM_FINISH)) == n_comms

    def test_busy_time_matches_timelines(self, mapped_result):
        log = execute_schedule(mapped_result.schedule)
        sched = mapped_result.schedule
        for j in range(sched.scenario.n_machines):
            assert log.busy_seconds.get(j, 0.0) == pytest.approx(sched.machine_load(j))

    def test_utilisation_bounded(self, mapped_result):
        log = execute_schedule(mapped_result.schedule)
        for j in range(mapped_result.schedule.scenario.n_machines):
            assert 0.0 <= log.utilisation(j) <= 1.0

    def test_empty_schedule(self, small_scenario):
        from repro.sim.schedule import Schedule

        log = execute_schedule(Schedule(small_scenario))
        assert log.events == []
        assert log.makespan == 0.0


class TestSurvivingTasks:
    def test_lost_machine_work_dropped(self, mapped_result):
        sched = mapped_result.schedule
        kept, dropped = surviving_tasks(sched, lost_machine=0)
        for t in dropped | kept:
            a = sched.assignments[t]
            if a.machine == 0:
                assert t in dropped

    def test_descendants_dropped(self, mapped_result):
        sched = mapped_result.schedule
        dag = sched.scenario.dag
        kept, dropped = surviving_tasks(sched, lost_machine=0)
        for t in kept:
            assert all(p in kept for p in dag.parents[t] if p in sched.assignments)

    def test_partition(self, mapped_result):
        sched = mapped_result.schedule
        kept, dropped = surviving_tasks(sched, lost_machine=1)
        assert kept | dropped == set(sched.assignments)
        assert not (kept & dropped)

    def test_losing_unused_machine_drops_nothing(self, mapped_result):
        sched = mapped_result.schedule
        used = {a.machine for a in sched.assignments.values()}
        unused = set(range(sched.scenario.n_machines)) - used
        if not unused:
            pytest.skip("all machines used")
        kept, dropped = surviving_tasks(sched, lost_machine=unused.pop())
        assert not dropped


class TestMachineLoss:
    def test_outcome_consistency(self, small_scenario, mid_config):
        out = run_with_machine_loss(
            small_scenario, SLRH1(mid_config), lost_machine=1, loss_cycle=2000
        )
        assert out.lost_machine == 1
        assert out.loss_time == pytest.approx(200.0)
        assert set(out.survivors) | set(out.invalidated) == set(
            out.initial.schedule.assignments
        )
        validate_schedule(out.final.schedule)

    def test_final_schedule_on_reduced_grid(self, small_scenario, mid_config):
        out = run_with_machine_loss(
            small_scenario, SLRH1(mid_config), lost_machine=1, loss_cycle=2000
        )
        assert out.reduced_scenario.n_machines == small_scenario.n_machines - 1
        for a in out.final.schedule.assignments.values():
            assert 0 <= a.machine < out.reduced_scenario.n_machines

    def test_survivors_keep_their_slots(self, small_scenario, mid_config):
        out = run_with_machine_loss(
            small_scenario, SLRH1(mid_config), lost_machine=2, loss_cycle=2000
        )
        for t in out.survivors:
            orig = out.initial.schedule.assignments[t]
            final = out.final.schedule.assignments[t]
            assert final.start == pytest.approx(orig.start)
            assert final.finish == pytest.approx(orig.finish)
            assert final.version is orig.version

    def test_sunk_energy_recorded_when_partial_work_wasted(
        self, small_scenario, mid_config
    ):
        out = run_with_machine_loss(
            small_scenario, SLRH1(mid_config), lost_machine=0, loss_cycle=500
        )
        # Sunk cost may be zero (if no surviving machine had started work on
        # invalidated tasks), but never negative, and validation still holds.
        assert all(e >= 0.0 for e in out.final.schedule.external_debits)
        validate_schedule(out.final.schedule)

    def test_loss_of_bad_machine_index_rejected(self, small_scenario, mid_config):
        with pytest.raises(IndexError):
            run_with_machine_loss(
                small_scenario, SLRH1(mid_config), lost_machine=9, loss_cycle=100
            )

    def test_remapping_progresses(self, small_scenario, mid_config):
        out = run_with_machine_loss(
            small_scenario, SLRH1(mid_config), lost_machine=3, loss_cycle=2000
        )
        # The re-mapper must at least re-map something if anything was lost
        # and resources remain.
        if out.invalidated:
            assert out.final.schedule.n_mapped >= len(out.survivors)
