"""The observability layer (:mod:`repro.obs`): structured event log, span
tracing, decision ledger + explain, Prometheus exposition — and the
contract that none of it ever changes a mapping."""

from __future__ import annotations

import io
import json
import pathlib
import sys
import threading
import urllib.request

import pytest

from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig
from repro.heuristics import generate_named_scenario, run_heuristic
from repro.io.serialization import canonical_mapping_bytes
from repro.obs import (
    DEADLINE_INFEASIBLE,
    ENERGY_INFEASIBLE,
    LOST_ON_SCORE,
    NULL_TRACER,
    REASON_CODES,
    Tracer,
    configure,
    disable,
    enabled,
    explain_report,
    get_logger,
    read_decision_log,
    render_prometheus,
    sanitize_metric_name,
    write_decision_log,
)
from repro.obs.ledger import iter_records
from repro.perf import PerfCounters

GOLDEN = pathlib.Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _obs_clean():
    """Every test starts and ends with the event log disabled."""
    disable()
    yield
    disable()


# ---------------------------------------------------------------------------
# structured event log


class TestEventLog:
    def test_disabled_is_default_and_silent(self):
        assert not enabled()
        # No handler, no output, no error — a pure no-op.
        get_logger("t").event("nothing.happens", x=1)

    def test_enabled_writes_one_json_object_per_line(self):
        buf = io.StringIO()
        configure(stream=buf)
        assert enabled()
        log = get_logger("unit")
        log.event("alpha", n=1)
        log.event("beta", s="x", nested={"a": 1})
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert [d["event"] for d in lines] == ["alpha", "beta"]
        assert lines[0]["logger"] == "repro.obs.unit"
        assert lines[0]["level"] == "info" and lines[0]["n"] == 1
        assert lines[1]["nested"] == {"a": 1}
        # keys are sorted so the lines are diffable
        raw = buf.getvalue().splitlines()[0]
        keys = list(json.loads(raw))
        assert keys == sorted(keys)

    def test_bind_context_rides_along_and_per_call_wins(self):
        buf = io.StringIO()
        configure(stream=buf)
        log = get_logger("unit").bind(job="job-1", k="bound")
        log.event("e", k="call")
        doc = json.loads(buf.getvalue())
        assert doc["job"] == "job-1" and doc["k"] == "call"

    def test_error_level(self):
        buf = io.StringIO()
        configure(stream=buf)
        get_logger("unit").error("boom", why="test")
        doc = json.loads(buf.getvalue())
        assert doc["level"] == "error" and doc["why"] == "test"

    def test_disable_returns_to_noop(self):
        buf = io.StringIO()
        configure(stream=buf)
        disable()
        get_logger("unit").event("after")
        assert buf.getvalue() == ""
        assert not enabled()

    def test_configure_file_target(self, tmp_path):
        target = tmp_path / "sub" / "events.ndjson"
        configure(str(target))
        get_logger("unit").event("to.file", ok=True)
        disable()  # flush + close
        doc = json.loads(target.read_text())
        assert doc["event"] == "to.file" and doc["ok"] is True

    def test_configure_from_env(self, tmp_path, monkeypatch):
        from repro.obs.log import configure_from_env

        monkeypatch.delenv("REPRO_OBS_LOG", raising=False)
        assert configure_from_env() is False
        target = tmp_path / "env.ndjson"
        monkeypatch.setenv("REPRO_OBS_LOG", str(target))
        assert configure_from_env() is True
        get_logger("unit").event("via.env")
        disable()
        assert json.loads(target.read_text())["event"] == "via.env"

    def test_unserialisable_values_fall_back_to_str(self):
        buf = io.StringIO()
        configure(stream=buf)
        get_logger("unit").event("odd", obj=object())
        doc = json.loads(buf.getvalue())
        assert doc["obj"].startswith("<object object")


# ---------------------------------------------------------------------------
# span tracing


class TestTracer:
    def test_spans_record_name_duration_args(self):
        tracer = Tracer()
        with tracer.span("outer", k=1):
            with tracer.span("inner"):
                pass
        # inner exits first, so it is recorded first
        assert [e["name"] for e in tracer.events] == ["inner", "outer"]
        outer = tracer.spans_named("outer")[0]
        inner = tracer.spans_named("inner")[0]
        assert outer["args"] == {"k": 1}
        assert outer["dur"] >= inner["dur"] >= 0.0
        # containment: inner lies inside outer on the timeline
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-9

    def test_perf_histograms_fed(self):
        perf = PerfCounters()
        tracer = Tracer(perf=perf)
        for _ in range(3):
            with tracer.span("work"):
                pass
        hist = perf.histogram("span.work_seconds")
        assert hist is not None and hist.count == 3

    def test_chrome_trace_layout(self, tmp_path):
        tracer = Tracer()
        with tracer.span("phase", tick=0):
            pass
        tracer.instant("marker", note="x")
        doc = tracer.chrome_trace(pid=7, tid=9)
        assert doc["displayTimeUnit"] == "ms"
        meta, *events = doc["traceEvents"]
        assert meta["ph"] == "M" and meta["name"] == "process_name"
        complete = next(e for e in events if e["ph"] == "X")
        instant = next(e for e in events if e["ph"] == "i")
        assert complete["name"] == "phase" and complete["pid"] == 7
        assert complete["dur"] >= 0 and complete["ts"] >= 0  # microseconds
        assert instant["name"] == "marker" and instant["s"] == "t"
        out = tracer.write_chrome_trace(tmp_path / "deep" / "trace.json")
        assert json.loads(out.read_text())["traceEvents"]

    def test_null_tracer_is_shared_noop(self):
        assert NULL_TRACER.enabled is False
        a = NULL_TRACER.span("anything", x=1)
        b = NULL_TRACER.span("else")
        assert a is b  # one shared context manager, zero allocation
        with a:
            pass
        assert NULL_TRACER.instant("i") is None


# ---------------------------------------------------------------------------
# decision ledger on a real mapping


@pytest.fixture(scope="module")
def ledgered_run():
    """gen24-seed7 mapped by SLRH-1 with ledger + tracer enabled.

    This scenario is the smallest generated instance that exercises a
    secondary-version commit, so the explain report has real content.
    """
    scenario = generate_named_scenario(24, 7)
    tracer = Tracer()
    result = run_heuristic("slrh1", scenario, 0.5, 0.2, ledger=True, tracer=tracer)
    return scenario, result, tracer


class TestDecisionLedger:
    def test_observability_never_changes_the_mapping(self, ledgered_run):
        scenario, result, _ = ledgered_run
        plain = run_heuristic("slrh1", scenario, 0.5, 0.2)
        assert canonical_mapping_bytes(result.schedule) == canonical_mapping_bytes(
            plain.schedule
        )
        assert plain.trace.ledger is None  # off by default

    def test_reason_codes_are_known_and_margins_nonnegative(self, ledgered_run):
        _, result, _ = ledgered_run
        ledger = result.trace.ledger
        assert len(ledger) > 0
        for rec in ledger:
            assert rec.reason in REASON_CODES
            assert rec.tick >= 0
            if rec.margin is not None:
                assert rec.margin >= 0.0
        assert iter_records(ledger.records, LOST_ON_SCORE)

    def test_secondary_commit_explained_with_numeric_margin(self, ledgered_run):
        _, result, _ = ledgered_run
        secondary = [
            r for r in result.trace.records if r.version == "secondary"
        ]
        assert secondary, "gen24-seed7 must exercise a secondary commit"
        task = secondary[0].task
        machine = secondary[0].machine
        # The ledger holds a primary rejection on that machine for that task
        primary_rejects = [
            r
            for r in result.trace.ledger.for_task(task)
            if r.version == "primary" and r.machine == machine
        ]
        assert primary_rejects and primary_rejects[-1].margin is not None

    def test_rejected_machine_decisions_carry_margin(self, ledgered_run):
        _, result, _ = ledgered_run
        # Some committed task must have been rejected on a *different*
        # machine at some tick, with a numeric margin saying by how much.
        commits = {r.task: r.machine for r in result.trace.records}
        cross = [
            r
            for r in result.trace.ledger
            if r.task in commits
            and r.machine >= 0
            and r.machine != commits[r.task]
            and r.margin is not None
        ]
        assert cross, "expected rejected-machine records with margins"

    def test_spans_cover_the_mapping_hierarchy(self, ledgered_run):
        _, _, tracer = ledgered_run
        names = {e["name"] for e in tracer.events}
        assert {"map", "kernel.tick", "pool.build", "select", "commit"} <= names
        assert len(tracer.spans_named("map")) == 1

    def test_span_histograms_land_in_result_perf_artifact(self, ledgered_run):
        _, result, _ = ledgered_run
        hist = result.schedule.perf.histogram("span.pool.build_seconds")
        assert hist is not None and hist.count > 0

    def test_tick_and_empty_pool_counters_surface(self, ledgered_run):
        _, result, _ = ledgered_run
        assert result.perf["tick.count"] == result.trace.ticks
        assert result.perf["pool.empty_ticks"] == result.trace.empty_pool_ticks
        assert result.trace.ticks > 0

    def test_non_slrh_heuristics_reject_obs(self):
        scenario = generate_named_scenario(12, 1)
        with pytest.raises(ValueError, match="SLRH family"):
            run_heuristic("minmin", scenario, ledger=True)
        with pytest.raises(ValueError, match="SLRH family"):
            run_heuristic("maxmax", scenario, 0.5, 0.2, ledger=True)
        with pytest.raises(ValueError, match="span tracing"):
            run_heuristic("greedy", scenario, tracer=Tracer())

    def test_deadline_infeasible_recorded_when_tau_exceeded(self):
        # Shrink tau so the run cannot finish: unmapped tasks must be
        # recorded as deadline_infeasible with a seconds-past-tau margin.
        scenario = generate_named_scenario(24, 7).with_tau(1.0)
        result = SLRH1(
            SlrhConfig(weights=Weights.from_alpha_beta(0.5, 0.2), ledger=True)
        ).map(scenario)
        if result.success:
            pytest.skip("scenario still mapped under the tiny tau")
        missed = iter_records(result.trace.ledger.records, DEADLINE_INFEASIBLE)
        assert missed
        assert all(r.machine == -1 and r.margin > 0 for r in missed)


class TestDecisionLogRoundTrip:
    def test_write_read_explain(self, ledgered_run, tmp_path):
        _, result, _ = ledgered_run
        path = tmp_path / "ledger.ndjson"
        write_decision_log(path, result)
        log = read_decision_log(path)
        assert log["header"]["schema"] == "repro.obs.ledger/1"
        assert log["header"]["heuristic"] == "SLRH-1"
        assert len(log["commits"]) == len(result.trace.records)
        assert len(log["rejects"]) == len(result.trace.ledger)
        assert log["summary"]["success"] is True

        secondary = next(c for c in log["commits"] if c["version"] == "secondary")
        report = explain_report(log, secondary["task"])
        assert f"task {secondary['task']}" in report
        assert "committed:" in report and "version=secondary" in report
        assert "secondary-version verdict" in report
        assert "margin" in report  # numeric margin in the rejection lines

    def test_write_requires_ledger(self, tmp_path):
        scenario = generate_named_scenario(12, 1)
        result = run_heuristic("slrh1", scenario, 0.5, 0.2)
        with pytest.raises(ValueError, match="without the decision ledger"):
            write_decision_log(tmp_path / "x.ndjson", result)

    def test_read_rejects_foreign_files(self, tmp_path):
        bogus = tmp_path / "not_a_ledger.ndjson"
        bogus.write_text('{"event": "header", "schema": "other/1"}\n')
        with pytest.raises(ValueError, match="repro.obs.ledger/1"):
            read_decision_log(bogus)


class TestExplainCLI:
    def test_map_then_explain_subcommands(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        ledger = tmp_path / "ledger.ndjson"
        trace = tmp_path / "trace.json"
        out = tmp_path / "mapping.json"
        rc = main([
            "map", "--generate", "24", "--seed", "7",
            "--out", str(out),
            "--ledger-out", str(ledger),
            "--trace-out", str(trace),
        ])
        assert rc == 0 and ledger.exists() and trace.exists()
        assert json.loads(trace.read_text())["traceEvents"]
        capsys.readouterr()

        rc = main(["explain", str(ledger)])
        assert rc == 0
        listing = capsys.readouterr().out
        assert "commits" in listing and "--task" in listing

        # find a secondary commit to explain
        commits = [
            json.loads(l)
            for l in ledger.read_text().splitlines()
            if '"event": "commit"' in l or '"event":"commit"' in l
        ]
        task = next(c["task"] for c in commits if c["version"] == "secondary")
        rc = main(["explain", str(ledger), "--task", str(task)])
        assert rc == 0
        report = capsys.readouterr().out
        assert "secondary-version verdict" in report and "margin" in report

    def test_explain_missing_file_errors_cleanly(self, tmp_path, capsys):
        from repro.experiments.__main__ import explain_main

        with pytest.raises(SystemExit) as exc:
            explain_main([str(tmp_path / "missing.ndjson"), "--task", "0"])
        assert exc.value.code == 2
        capsys.readouterr()


# ---------------------------------------------------------------------------
# Prometheus exposition


class TestPrometheus:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("plan.cache.pair_hit") == "repro_plan_cache_pair_hit"
        assert sanitize_metric_name("repro_already") == "repro_already"
        assert sanitize_metric_name("weird-char$") == "repro_weird_char_"
        assert sanitize_metric_name("9lives", namespace="") == "_9lives"

    def test_golden_exposition(self):
        doc = {
            "schema": "repro.perf/2",
            "context": {"service": "repro.service"},
            "counters": {
                "plan.pairs": 42.0,
                "plan.cache.pair_hit": 30.0,
                "plan.cache.pair_miss": 12.0,
                "commit.count": 7.0,
                "tick.count": 19.0,
                "pool.empty_ticks": 4.0,
                "service.submitted": 3.0,
            },
            "gauges": {"service.queue_depth": 3.0, "service.draining": 0.0},
            "derived": {
                "plan_cache_pair_hit_rate": 0.7142857142857143,
                "plan_cache_comm_hit_rate": float("nan"),
            },
            "histograms": {
                "service.map_seconds": {
                    "count": 4, "sum": 1.0, "mean": 0.25,
                    "p50": 0.2, "p95": 0.4, "p99": 0.4,
                },
            },
        }
        assert render_prometheus(doc) == (GOLDEN / "metrics.prom").read_text()

    def test_exposition_grammar(self):
        text = render_prometheus(
            {"counters": {"a.b": 1}, "histograms": {"h": {"count": 1, "sum": 2.0, "p50": 2.0}}}
        )
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                name = line.split("{")[0].split(" ")[0]
                assert name[0].isalpha() or name[0] == "_"
        assert "repro_a_b_total 1" in text
        assert 'repro_h{quantile="0.5"} 2' in text
        assert "repro_h_count 1" in text
        assert render_prometheus({}) == ""


# ---------------------------------------------------------------------------
# service integration: /metrics negotiation + access log golden


@pytest.fixture()
def obs_service():
    from repro.service.app import make_server
    from repro.service.jobs import JobManager
    from repro.service.registry import ScenarioRegistry

    manager = JobManager(ScenarioRegistry(), n_jobs=1, max_queue=8)
    server = make_server("127.0.0.1", 0, manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    manager.drain(timeout=30)
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()
    manager.close(drain_timeout=0)


def _get(url: str, headers: dict | None = None) -> tuple[int, str, bytes]:
    req = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read()


class TestServiceObservability:
    def test_metrics_content_negotiation(self, obs_service):
        # default: JSON document
        status, ctype, body = _get(obs_service + "/metrics")
        assert status == 200 and ctype == "application/json"
        assert json.loads(body)["schema"] == "repro.perf/2"
        # Accept: text/plain -> Prometheus exposition
        status, ctype, body = _get(
            obs_service + "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert ctype.startswith("text/plain") and "version=0.0.4" in ctype
        text = body.decode()
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert text.endswith("\n")
        # ?format=prom works without the header; ?format=json forces JSON
        status, ctype, _ = _get(obs_service + "/metrics?format=prom")
        assert ctype.startswith("text/plain")
        status, ctype, _ = _get(
            obs_service + "/metrics?format=json", headers={"Accept": "text/plain"}
        )
        assert ctype == "application/json"

    def test_access_log_golden_record(self, obs_service):
        buf = io.StringIO()
        configure(stream=buf)
        try:
            status, _, _ = _get(obs_service + "/healthz")
            assert status == 200
        finally:
            disable()
        records = [json.loads(l) for l in buf.getvalue().splitlines()]
        access = next(r for r in records if r.get("event") == "http.request")
        assert access.pop("ts") > 0
        assert 0.0 <= access.pop("latency_seconds") < 30.0
        golden = json.loads((GOLDEN / "access_log.json").read_text())
        assert access == golden

    def test_job_lifecycle_events(self, obs_service):
        from repro.io.serialization import scenario_to_dict

        buf = io.StringIO()
        configure(stream=buf)
        try:
            doc = scenario_to_dict(generate_named_scenario(12, 1))
            req = urllib.request.Request(
                obs_service + "/v1/scenarios",
                data=json.dumps(doc).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(req, timeout=30) as resp:
                sid = json.loads(resp.read())["id"]
            req = urllib.request.Request(
                obs_service + "/v1/map",
                data=json.dumps({"scenario": sid, "heuristic": "slrh1"}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(req, timeout=60) as resp:
                assert resp.status == 200
        finally:
            disable()
        events = [json.loads(l)["event"] for l in buf.getvalue().splitlines()]
        for expected in ("job.submitted", "job.dispatched", "job.finished"):
            assert expected in events, events


# ---------------------------------------------------------------------------
# loadgen retry budget


class _Stub429Handler:
    """Minimal handler factory answering every /v1/map with 429."""

    @staticmethod
    def make(counts: dict):
        from http.server import BaseHTTPRequestHandler

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *a):
                pass

            def do_POST(self):
                length = int(self.headers.get("Content-Length", 0))
                self.rfile.read(length)
                counts["posts"] = counts.get("posts", 0) + 1
                body = json.dumps({"error": "full", "retry_after": 0}).encode()
                self.send_response(429)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        return Handler


class TestLoadgenRetryBudget:
    def test_gives_up_after_bounded_retries(self):
        from http.server import ThreadingHTTPServer

        from repro.service.loadgen import run_level

        counts: dict = {}
        server = ThreadingHTTPServer(("127.0.0.1", 0), _Stub429Handler.make(counts))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            level = run_level(
                f"http://{host}:{port}", "sha256:x", "slrh1",
                clients=2, requests_per_client=2, max_retries=3,
            )
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
        # 2 clients x 2 requests, each giving up after 3 retries
        assert level["gave_up"] == 4
        assert level["retries_429"] == 4 * (3 + 1)  # initial try + 3 retries
        assert level["requests"] == 0 and level["errors"] == 0
        # every attempt hit the stub: (3 retries + 1 first try) per request
        assert counts["posts"] == level["retries_429"]


# ---------------------------------------------------------------------------
# the CI regression gate (logic only; the workload runs in CI)


class TestRegressionGate:
    @pytest.fixture(scope="class")
    def gate(self):
        sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "benchmarks"))
        try:
            import check_regression
        finally:
            sys.path.pop(0)
        return check_regression

    def _snapshot(self, gate, speedup=1.5, pairs=100.0, rate=0.8):
        return {
            "schema": gate.SCHEMA,
            "variants": {
                "slrh1": {
                    "cached_seconds": 0.1,
                    "uncached_seconds": 0.1 * speedup,
                    "cache_speedup": speedup,
                    "counters": {"plan.pairs": pairs},
                    "rates": {"pair_hit_rate": rate},
                }
            },
        }

    def test_identical_snapshot_passes(self, gate):
        base = self._snapshot(gate)
        assert gate.compare(self._snapshot(gate), base, tolerance=0.25) == []

    def test_speedup_regression_fails_beyond_25_percent(self, gate):
        base = self._snapshot(gate, speedup=2.0)
        ok = gate.compare(self._snapshot(gate, speedup=1.6), base, 0.25)
        assert ok == []  # 20% loss: within tolerance
        bad = gate.compare(self._snapshot(gate, speedup=1.4), base, 0.25)
        assert len(bad) == 1 and "speedup regressed" in bad[0]

    def test_structural_counter_drift_fails_exactly(self, gate):
        base = self._snapshot(gate)
        bad = gate.compare(self._snapshot(gate, pairs=101.0), base, 0.25)
        assert len(bad) == 1 and "plan.pairs" in bad[0]

    def test_rate_drift_fails_beyond_tolerance(self, gate):
        base = self._snapshot(gate, rate=0.8)
        assert gate.compare(self._snapshot(gate, rate=0.78), base, 0.25) == []
        bad = gate.compare(self._snapshot(gate, rate=0.7), base, 0.25)
        assert len(bad) == 1 and "pair_hit_rate" in bad[0]

    def test_checked_in_baseline_matches_live_counters(self, gate):
        """The structural counters in the committed baseline must describe
        the current algorithm — a cheap single-variant re-measure."""
        baseline = json.loads(gate.BASELINE_PATH.read_text())
        assert baseline["schema"] == gate.SCHEMA
        scenario = generate_named_scenario(gate.N_TASKS, gate.SEED)
        result = SLRH1(
            SlrhConfig(weights=Weights.from_alpha_beta(gate.ALPHA, gate.BETA))
        ).map(scenario)
        for counter, expected in baseline["variants"]["slrh1"]["counters"].items():
            assert result.perf.get(counter, 0.0) == expected, counter
