"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import ObjectiveFunction, Weights
from repro.sim.timeline import IntervalTimeline, earliest_common_gap
from repro.workload.dag import DagSpec, generate_dag
from repro.workload.etc import EtcSpec, generate_etc, min_relative_speed
from repro.grid.config import CASE_A
from repro.grid.energy import EnergyLedger

# -- IntervalTimeline ---------------------------------------------------------

intervals_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
    ),
    max_size=20,
)


def _fill(timeline: IntervalTimeline, raw: list[tuple[float, float]]) -> list:
    placed = []
    for start, dur in raw:
        if timeline.is_free(start, start + dur):
            timeline.reserve(start, start + dur)
            placed.append((start, start + dur))
    return placed


@given(intervals_strategy)
def test_timeline_never_overlaps(raw):
    tl = IntervalTimeline()
    _fill(tl, raw)
    ivs = tl.intervals()
    for (s1, e1), (s2, e2) in zip(ivs, ivs[1:]):
        assert e1 <= s2 + 1e-9


@given(
    intervals_strategy,
    st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
)
def test_earliest_gap_is_free_and_minimal_constraints(raw, duration, not_before):
    tl = IntervalTimeline()
    _fill(tl, raw)
    t = tl.earliest_gap(duration, not_before=not_before)
    assert t >= not_before - 1e-9
    assert tl.is_free(t, t + duration)


@given(intervals_strategy, intervals_strategy, st.floats(min_value=0.01, max_value=15.0))
def test_common_gap_free_in_both(raw_a, raw_b, duration):
    a, b = IntervalTimeline(), IntervalTimeline()
    _fill(a, raw_a)
    _fill(b, raw_b)
    t = earliest_common_gap(a, b, duration)
    assert a.is_free(t, t + duration)
    assert b.is_free(t, t + duration)


@given(intervals_strategy)
def test_reserve_release_roundtrip(raw):
    tl = IntervalTimeline()
    placed = _fill(tl, raw)
    for s, e in placed:
        tl.release(s, e)
    assert len(tl) == 0


# -- EnergyLedger ---------------------------------------------------------------

debit_sequence = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3), st.floats(min_value=0.0, max_value=50.0)),
    max_size=30,
)


@given(debit_sequence)
def test_ledger_never_negative_and_conserves(seq):
    ledger = EnergyLedger(CASE_A)
    applied = 0.0
    for j, amount in seq:
        if ledger.can_afford(j, amount):
            ledger.debit(j, amount)
            applied += amount
    assert abs(ledger.total_energy_consumed - applied) < 1e-6
    for j in range(4):
        assert ledger.remaining(j) >= -1e-9


# -- Weights / objective ----------------------------------------------------------

weights_strategy = st.tuples(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
).filter(lambda ab: ab[0] + ab[1] <= 1.0)


@given(weights_strategy)
def test_weights_simplex_closed(ab):
    w = Weights.from_alpha_beta(*ab)
    assert abs(w.alpha + w.beta + w.gamma - 1.0) < 1e-9


@given(
    weights_strategy,
    st.integers(min_value=0, max_value=100),
    st.floats(min_value=0.0, max_value=1000.0),
    st.floats(min_value=0.0, max_value=2000.0),
)
def test_objective_bounded(ab, t100, tec, aet):
    obj = ObjectiveFunction(
        weights=Weights.from_alpha_beta(*ab),
        n_tasks=100,
        total_system_energy=1000.0,
        tau=500.0,
    )
    v = obj.value(t100, tec, aet)
    assert -1.0 - 1e-9 <= v <= 1.0 + 1e-9


@given(
    weights_strategy,
    st.integers(min_value=0, max_value=99),
    st.floats(min_value=0.0, max_value=900.0),
)
def test_objective_monotone_in_t100(ab, t100, tec):
    obj = ObjectiveFunction(
        weights=Weights.from_alpha_beta(*ab),
        n_tasks=100,
        total_system_energy=1000.0,
        tau=500.0,
    )
    assert obj.value(t100 + 1, tec, 100.0) >= obj.value(t100, tec, 100.0) - 1e-12


# -- workload generators -----------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=2**31 - 1))
def test_generated_dags_always_acyclic_and_complete(n, seed):
    g = generate_dag(DagSpec(n_tasks=n), seed=seed)
    assert g.n_tasks == n
    assert len(g.topological_order) == n
    for u, v in g.edges():
        assert u != v


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=50), st.integers(min_value=0, max_value=2**31 - 1))
def test_etc_positive_and_mr_bounds(n, seed):
    etc = generate_etc(n, CASE_A, EtcSpec(), seed=seed)
    assert (etc > 0).all()
    mr = min_relative_speed(etc)
    assert mr[0] == 1.0
    # MR is a minimum of ratios, so each column's ratios dominate it.
    ratios = etc / etc[:, [0]]
    assert (ratios + 1e-12 >= mr[None, :]).all()
