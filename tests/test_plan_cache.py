"""Plan-cache correctness: cached and uncached planning must be
indistinguishable.

The cache (see ``DESIGN.md`` and :class:`repro.sim.schedule.Schedule`)
only ever reuses a tentative plan when it can prove a fresh computation
would return byte-identical results, so every heuristic must produce the
same mapping — same T100/TEC/AET, same assignment set, same transfer
trains — with the cache on or off.  These differential tests pin that,
including churn runs whose rollbacks exercise the invalidation paths
(releases, offline flips, parent-epoch bumps).
"""

from __future__ import annotations

import pytest

from repro.baselines.maxmax import MaxMaxConfig, MaxMaxScheduler
from repro.core.slrh import SLRH1, SLRH2, SLRH3, SlrhConfig
from repro.sim.churn import ChurnEvent, run_with_churn
from repro.sim.schedule import Schedule
from repro.sim.validate import validate_schedule
from repro.workload.scenario import paper_scaled_suite


def _slrh_factory(cls):
    def build(weights, plan_cache):
        return cls(SlrhConfig(weights=weights, plan_cache=plan_cache))

    build.__name__ = cls.name
    return build


def _maxmax_factory(weights, plan_cache):
    return MaxMaxScheduler(MaxMaxConfig(weights=weights, plan_cache=plan_cache))


HEURISTICS = [
    pytest.param(_slrh_factory(SLRH1), id="SLRH-1"),
    pytest.param(_slrh_factory(SLRH2), id="SLRH-2"),
    pytest.param(_slrh_factory(SLRH3), id="SLRH-3"),
    pytest.param(_maxmax_factory, id="Max-Max"),
]


def _strip_timing(summary: dict) -> dict:
    return {k: v for k, v in summary.items() if k != "heuristic_seconds"}


def _assert_identical(res_on, res_off):
    assert _strip_timing(res_on.summary()) == _strip_timing(res_off.summary())
    # Assignment-level equality: same tasks, versions, machines, exec
    # windows and planned transfer trains (Assignment is a frozen
    # dataclass, so == compares every field including comms).
    assert res_on.schedule.assignments == res_off.schedule.assignments
    validate_schedule(res_on.schedule)


class TestDifferential:
    @pytest.mark.parametrize("build", HEURISTICS)
    def test_cache_on_off_identical(self, build, small_scenario, mid_weights):
        res_on = build(mid_weights, True).map(small_scenario)
        res_off = build(mid_weights, False).map(small_scenario)
        assert res_on.schedule.plan_cache_enabled
        assert not res_off.schedule.plan_cache_enabled
        _assert_identical(res_on, res_off)

    @pytest.mark.parametrize("build", HEURISTICS)
    def test_cache_on_off_identical_across_seeds(self, build, mid_weights):
        suite = paper_scaled_suite(20, n_etc=2, n_dag=1, seed=99)
        for e in range(suite.n_etc):
            for case in ("A", "C"):
                scenario = suite.scenario(e, 0, case)
                res_on = build(mid_weights, True).map(scenario)
                res_off = build(mid_weights, False).map(scenario)
                _assert_identical(res_on, res_off)

    @pytest.mark.parametrize(
        "cls", [SLRH1, SLRH3], ids=lambda c: c.name
    )
    def test_churn_machine_loss_identical(self, cls, small_scenario, mid_weights):
        """Loss + rejoin rollbacks hit every invalidation path: timeline
        releases, offline flips, unassign's parent-epoch bumps."""
        quarter = int(small_scenario.tau / 4 / 0.1)
        events = [
            ChurnEvent(cycle=quarter, machine=0, kind="loss"),
            ChurnEvent(cycle=2 * quarter, machine=0, kind="join"),
            ChurnEvent(cycle=2 * quarter + 5, machine=1, kind="loss"),
        ]
        outcomes = {}
        for plan_cache in (True, False):
            scheduler = cls(SlrhConfig(weights=mid_weights, plan_cache=plan_cache))
            outcomes[plan_cache] = run_with_churn(
                small_scenario, scheduler, list(events)
            )
        _assert_identical(outcomes[True].final, outcomes[False].final)
        assert [r.rolled_back for r in outcomes[True].records] == [
            r.rolled_back for r in outcomes[False].records
        ]

    def test_cache_records_reuse(self, small_scenario, mid_weights):
        res_on = SLRH3(SlrhConfig(weights=mid_weights, plan_cache=True)).map(
            small_scenario
        )
        res_off = SLRH3(SlrhConfig(weights=mid_weights, plan_cache=False)).map(
            small_scenario
        )
        perf_on, perf_off = res_on.perf, res_off.perf
        reused = (
            perf_on.get("plan.cache.pair_hit", 0)
            + perf_on.get("plan.cache.comm_hit", 0)
            + perf_on.get("plan.cache.comm_shift", 0)
        )
        assert reused > 0, "cache-on run never reused a plan"
        assert "plan.cache.pair_hit" not in perf_off
        assert "plan.cache.comm_hit" not in perf_off

    def test_cache_plans_fewer_pairs_incremental(
        self, small_scenario, mid_weights
    ):
        # The pair layer is an object-pool feature: the columnar kernel
        # supersedes it with its fact columns (every dirty slot re-plans,
        # reuse shows up as comm hits instead), so the pair-count
        # inequality is pinned on the incremental kernel explicitly.
        res_on = SLRH3(
            SlrhConfig(
                weights=mid_weights, plan_cache=True, kernel="incremental"
            )
        ).map(small_scenario)
        res_off = SLRH3(
            SlrhConfig(
                weights=mid_weights, plan_cache=False, kernel="incremental"
            )
        ).map(small_scenario)
        # Off-path plans every lookup from scratch; on-path must plan fewer.
        assert res_on.perf["plan.pairs"] < res_off.perf["plan.pairs"]


class TestCacheKnobs:
    def test_env_knob_disables(self, tiny_scenario, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE", "0")
        assert not Schedule(tiny_scenario).plan_cache_enabled
        monkeypatch.setenv("REPRO_PLAN_CACHE", "1")
        assert Schedule(tiny_scenario).plan_cache_enabled

    def test_explicit_arg_beats_env(self, tiny_scenario, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE", "0")
        assert Schedule(tiny_scenario, plan_cache=True).plan_cache_enabled

    def test_commit_drops_cached_task(self, tiny_scenario, mid_weights):
        from repro.workload.versions import PRIMARY

        schedule = Schedule(tiny_scenario, plan_cache=True)
        root = tiny_scenario.dag.roots[0]
        plan = schedule.plan(root, PRIMARY, 0)
        assert root in schedule._plan_cache
        schedule.commit(plan)
        assert root not in schedule._plan_cache
