"""The shipped examples stay runnable.

The two fastest examples run end-to-end in a subprocess; the longer
studies (weight sensitivity, adaptive deployment, structured workloads,
machine-loss study) are compile-checked here and exercised by their
underlying APIs' own tests — running them all would triple the suite's
wall-clock for no extra coverage.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

RUN_FULLY = ["quickstart.py", "churn_timeline.py"]
COMPILE_ONLY = [
    "machine_loss_study.py",
    "weight_sensitivity.py",
    "adaptive_field_deployment.py",
    "structured_workloads.py",
]


def test_example_inventory_complete():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(RUN_FULLY) | set(COMPILE_ONLY)


@pytest.mark.parametrize("name", RUN_FULLY)
def test_example_runs_clean(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_reports_validation():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "schedule validated" in proc.stdout
    assert "upper bound" in proc.stdout


@pytest.mark.parametrize("name", COMPILE_ONLY)
def test_example_compiles(name):
    py_compile.compile(str(EXAMPLES / name), doraise=True)
