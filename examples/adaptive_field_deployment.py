#!/usr/bin/env python
"""Adaptive multipliers in a changing field deployment (paper §VIII
future work, implemented).

Story: a sensor-fusion application (96 subtasks) runs on an ad hoc grid.
Mission control does not know good objective weights in advance — and the
paper showed the optimal α shifts by >50 % when the grid changes.  The
:func:`adaptive_slrh` controller starts from the neutral simplex centre and
adjusts the multipliers run-over-run from observed constraint violations:

* over-τ runs shift weight from γ to α;
* incomplete (resource-starved) runs shift weight from α to β;
* successful runs probe a greedier α.

The demo runs the controller on Case A, then — after the grid loses a fast
machine (Case C) — shows it re-converging to a different weight point,
the on-the-fly adjustment the paper calls for.

Run:  python examples/adaptive_field_deployment.py    (~1 minute)
"""

from repro import SLRH1, paper_scaled_suite
from repro.core.lagrangian import AdaptiveWeightController, adaptive_slrh

N_TASKS = 96


def report(label: str, best, history) -> None:
    print(f"{label}:")
    for i, r in enumerate(history, 1):
        w = r.weights
        print(f"  run {i:2d}: (a={w.alpha:.2f}, b={w.beta:.2f}, g={w.gamma:.2f})"
              f"  mapped={r.schedule.n_mapped:3d}  T100={r.t100:3d}"
              f"  AET={r.aet:7.0f}s  ok={r.success}")
    w = best.weights
    print(f"  => best: T100={best.t100} at (a={w.alpha:.2f}, b={w.beta:.2f}, "
          f"g={w.gamma:.2f})\n")


def main() -> None:
    suite = paper_scaled_suite(N_TASKS, n_etc=1, n_dag=1, seed=21)
    controller = AdaptiveWeightController(max_iters=8)

    scenario_a = suite.scenario(0, 0, "A")
    best_a, history_a = adaptive_slrh(scenario_a, SLRH1, controller)
    report(f"Case A (all machines, tau={scenario_a.tau:.0f}s)", best_a, history_a)

    scenario_c = suite.scenario(0, 0, "C")
    best_c, history_c = adaptive_slrh(scenario_c, SLRH1, controller)
    report("Case C (fast machine lost)", best_c, history_c)

    da = best_a.weights.alpha - best_c.weights.alpha
    print(f"alpha shift after machine loss: {da:+.2f} "
          "(the paper: optimal alpha changes by >50% between Cases A and C, "
          "motivating exactly this kind of online adjustment)")


if __name__ == "__main__":
    main()
