#!/usr/bin/env python
"""Structured application workloads on an ad hoc grid.

The paper's workload is a randomised layered DAG; real field applications
have recognisable dependence shapes.  This example maps four classic
structures — a sensor-fusion reduction tree, a stencil wavefront, an FFT
butterfly and a map-reduce shuffle — with SLRH-1 on the Case A grid, and
compares how each topology's parallelism profile plays against the grid's
energy/time constraints (wide graphs exploit all four machines; chains and
trees serialize onto the fast pair).

Run:  python examples/structured_workloads.py
"""

import numpy as np

from repro import (
    SLRH1,
    compute_stats,
    paper_scaled_grid,
    upper_bound_strict,
    validate_schedule,
)
from repro.baselines.greedy import calibrate_tau
from repro.core.lagrangian import AdaptiveWeightController, adaptive_slrh
from repro.workload.data import DataSpec, generate_data_sizes
from repro.workload.etc import EtcSpec, generate_etc
from repro.workload.scenario import Scenario
from repro.workload.topologies import diamond_mesh, fft, in_tree, map_reduce


def build_scenario(name, dag, seed):
    grid = paper_scaled_grid(dag.n_tasks)
    etc = generate_etc(dag.n_tasks, grid, EtcSpec(), seed=seed)
    scenario = Scenario(
        grid=grid,
        etc=etc,
        dag=dag,
        data_sizes=generate_data_sizes(dag, DataSpec(), seed=seed + 1),
        tau=1e9,  # placeholder; calibrated below
        name=name,
    )
    return scenario.with_tau(calibrate_tau(scenario, slack=1.6))


def main() -> None:
    workloads = [
        ("fusion tree (in_tree d=5)", in_tree(depth=5)),          # 31 tasks
        ("stencil wavefront (7x7)", diamond_mesh(7)),             # 49 tasks
        ("FFT butterfly (16-pt)", fft(16)),                       # 80 tasks
        ("map-reduce (30 -> 4)", map_reduce(30, 4)),              # 35 tasks
    ]
    header = (f"{'workload':>26} {'|T|':>4} {'depth':>5} {'T100':>4} "
              f"{'UB':>4} {'AET/tau':>7} {'imbal':>6} {'ok':>5}")
    print(header)
    print("-" * len(header))
    for name, dag in workloads:
        scenario = build_scenario(name, dag, seed=len(name))
        # Weights are workload-dependent (the paper's Figure 3 point);
        # let the adaptive controller find them per topology.
        result, _history = adaptive_slrh(
            scenario, SLRH1, AdaptiveWeightController(max_iters=6)
        )
        validate_schedule(result.schedule)
        stats = compute_stats(result.schedule)
        bound = upper_bound_strict(scenario)
        print(f"{name:>26} {scenario.n_tasks:>4} {dag.depth:>5} "
              f"{result.t100:>4} {bound:>4} "
              f"{result.aet / scenario.tau:>7.2f} {stats.imbalance:>6.2f} "
              f"{str(result.success):>5}")
    print(
        "\nwide graphs (FFT ranks, reduction trees) let SLRH-1 spread work and"
        "\nmeet tau; serial dependence chains (the 13-deep wavefront) and hot"
        "\nshuffles fight the clock-driven tick discipline — each tick maps one"
        "\nsubtask per idle machine, so a long critical path accumulates idle"
        "\ngaps and can overrun a tight tau even at the controller's best"
        "\nweights.  That failure mode is the paper's motivation for pairing"
        "\nthe heuristic with per-environment weight adjustment."
    )


if __name__ == "__main__":
    main()
