#!/usr/bin/env python
"""Ad hoc machine loss: the scenario that motivates the paper.

A field-deployed grid (2 notebooks + 2 PDAs) is a quarter of the way
through executing a 64-subtask application when one machine drops off the
network.  The dynamic engine rolls back every assignment whose results are
unrecoverable and lets SLRH-1 re-map the remainder on the surviving grid —
no global restart, exactly the "reschedule on-the-fly" capability §I calls
for.

The study compares losing each machine in turn, and also reports the
paper's static Cases B and C (grids that *start* without the machine) as
reference points.

Run:  python examples/machine_loss_study.py
"""

from repro import SLRH1, SlrhConfig, Weights, paper_scaled_suite, validate_schedule
from repro.sim.engine import run_with_machine_loss

N_TASKS = 64


def main() -> None:
    suite = paper_scaled_suite(N_TASKS, n_etc=1, n_dag=1, seed=7)
    scenario = suite.scenario(0, 0, "A")
    scheduler = SLRH1(SlrhConfig(weights=Weights.from_alpha_beta(0.5, 0.2)))

    baseline = scheduler.map(scenario)
    print(f"baseline (all machines): T100={baseline.t100}, "
          f"AET={baseline.aet:.0f}s, complete={baseline.complete}")

    loss_cycle = int(scenario.tau / 4 / 0.1)
    print(f"\nlosing one machine at t={loss_cycle * 0.1:.0f}s (tau/4):\n")
    header = (f"{'lost machine':>14} {'survivors':>9} {'re-mapped':>9} "
              f"{'T100 after':>10} {'complete':>8}")
    print(header)
    print("-" * len(header))
    for lost in range(scenario.n_machines):
        out = run_with_machine_loss(scenario, scheduler, lost, loss_cycle)
        validate_schedule(out.final.schedule)
        print(f"{scenario.grid[lost].name:>14} {len(out.survivors):>9} "
              f"{len(out.invalidated):>9} {out.final.t100:>10} "
              f"{str(out.final.complete):>8}")

    # The paper's static comparison points: grids that never had the machine.
    print("\nstatic reference (paper Cases B and C, machine absent from t=0):")
    for case in ("B", "C"):
        result = scheduler.map(suite.scenario(0, 0, case))
        print(f"  Case {case}: T100={result.t100}, AET={result.aet:.0f}s, "
              f"complete={result.complete}")


if __name__ == "__main__":
    main()
