#!/usr/bin/env python
"""Grid churn timeline: a machine drops out and later rejoins.

The full ad hoc story from the paper's introduction — "assets connected to
the grid can, and frequently do, appear and disappear at unanticipated
times" — on a 48-subtask run:

* t = τ/4 : fast-1 (a notebook) walks out of radio range.  Everything it
  had computed is unrecoverable (checkpoint-free model); the rollback also
  invalidates all downstream work, and surviving machines keep the energy
  they had already burnt on now-useless subtasks (sunk cost).
* t = τ/2 : fast-1 reappears with whatever battery it has left, and the
  SLRH starts assigning to it again at the next tick.

The run is compared against an uninterrupted baseline, and the final
schedule is drawn as a text Gantt chart.

Run:  python examples/churn_timeline.py
"""

from repro import (
    SLRH1,
    ChurnEvent,
    SlrhConfig,
    Weights,
    compute_stats,
    paper_scaled_suite,
    render_gantt,
    run_with_churn,
    validate_schedule,
)

N_TASKS = 48


def main() -> None:
    suite = paper_scaled_suite(N_TASKS, n_etc=1, n_dag=1, seed=3)
    scenario = suite.scenario(0, 0, "A")
    scheduler = SLRH1(SlrhConfig(weights=Weights.from_alpha_beta(0.5, 0.2)))

    baseline = scheduler.map(scenario)
    print(f"uninterrupted: T100={baseline.t100}, AET={baseline.aet:.0f}s, "
          f"complete={baseline.complete}")

    quarter = int(scenario.tau / 4 / 0.1)
    events = [
        ChurnEvent(cycle=quarter, machine=1, kind="loss"),
        ChurnEvent(cycle=2 * quarter, machine=1, kind="join"),
    ]
    out = run_with_churn(scenario, scheduler, events)
    validate_schedule(out.final.schedule)

    for record in out.records:
        ev = record.event
        what = ("lost" if ev.kind == "loss" else "rejoined")
        print(f"t={ev.cycle * 0.1:6.0f}s: {scenario.grid[ev.machine].name} {what}"
              + (f" — rolled back {len(record.rolled_back)} subtasks, "
                 f"{record.sunk_energy:.1f} energy units sunk"
                 if ev.kind == "loss" else ""))

    final = out.final
    print(f"with churn:   T100={final.t100}, AET={final.aet:.0f}s, "
          f"complete={final.complete}")
    stats = compute_stats(final.schedule)
    print(f"load imbalance {stats.imbalance:.2f}, "
          f"primary fraction {stats.version_mix:.0%}\n")
    print(render_gantt(final.schedule, width=100))


if __name__ == "__main__":
    main()
