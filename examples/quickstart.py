#!/usr/bin/env python
"""Quickstart: map a DAG of subtasks onto an ad hoc grid with SLRH-1.

Walks the full public API surface in ~40 lines:

1. build a paper-regime scenario (ETC matrix, layered DAG, data sizes, τ);
2. run the SLRH-1 resource manager at fixed objective weights;
3. validate the resulting schedule against every §III model assumption;
4. replay it through the discrete-event engine and report utilisation.

Run:  python examples/quickstart.py
"""

from repro import (
    SLRH1,
    SlrhConfig,
    Weights,
    paper_scaled_grid,
    paper_scaled_spec,
    generate_scenario,
    upper_bound,
    validate_schedule,
)
from repro.sim.engine import execute_schedule

N_TASKS = 64

def main() -> None:
    # 1. A scenario under the proportional-shrink protocol: |T| = 64 with
    #    batteries and tau scaled by 64/1024, preserving the paper's regime.
    scenario = generate_scenario(
        paper_scaled_spec(N_TASKS),
        grid=paper_scaled_grid(N_TASKS),
        seed=2004,
        name="quickstart",
    )
    print(f"scenario: |T|={scenario.n_tasks}, |M|={scenario.n_machines}, "
          f"tau={scenario.tau:.0f}s, TSE={scenario.grid.total_system_energy:.1f}")

    # 2. SLRH-1 with alpha=0.5 (T100 reward), beta=0.2 (energy penalty),
    #    gamma=0.3 (use-the-time-budget bias).
    config = SlrhConfig(weights=Weights.from_alpha_beta(0.5, 0.2))
    result = SLRH1(config).map(scenario)
    print(f"mapped {result.schedule.n_mapped}/{scenario.n_tasks} subtasks, "
          f"T100={result.t100}, AET={result.aet:.0f}s "
          f"(tau={scenario.tau:.0f}s), success={result.success}")
    print(f"heuristic execution time: {result.heuristic_seconds:.3f}s "
          f"over {result.trace.ticks} clock ticks")

    # 3. Independent validation of every simulation assumption.
    validate_schedule(result.schedule)
    print("schedule validated: precedence, channels, energy all consistent")

    # How close to the theoretical ceiling?
    bound = upper_bound(scenario)
    print(f"upper bound on T100: {bound.t100_bound} "
          f"(achieved {result.t100 / bound.t100_bound:.0%})")

    # 4. Execute the schedule event-by-event.
    log = execute_schedule(result.schedule)
    for j, machine in enumerate(scenario.grid):
        print(f"  {machine.name}: utilisation {log.utilisation(j):5.1%}, "
              f"energy used {result.schedule.energy.consumed(j):6.2f} "
              f"of {machine.battery:6.2f} units")


if __name__ == "__main__":
    main()
