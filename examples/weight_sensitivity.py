#!/usr/bin/env python
"""Objective-weight sensitivity: the paper's §VII tuning study in miniature.

Runs the two-stage (α, β) optimisation — 0.1-step coarse grid, 0.02-step
refinement — for SLRH-1, SLRH-3 and Max-Max on one scenario and prints each
heuristic's accepted region and optimum.  Reproduces the paper's Figure 3
observation: the SLRH variants' optima cluster, while Max-Max's acceptance
region is ragged and its optimum scenario-dependent.

Run:  python examples/weight_sensitivity.py           (~1 minute)
"""

from repro import (
    SLRH1,
    SLRH3,
    MaxMaxConfig,
    MaxMaxScheduler,
    SlrhConfig,
    paper_scaled_suite,
)
from repro.tuning.weight_search import search_weights

N_TASKS = 48

FACTORIES = {
    "SLRH-1": lambda w: SLRH1(SlrhConfig(weights=w)),
    "SLRH-3": lambda w: SLRH3(SlrhConfig(weights=w)),
    "Max-Max": lambda w: MaxMaxScheduler(MaxMaxConfig(weights=w)),
}


def main() -> None:
    suite = paper_scaled_suite(N_TASKS, n_etc=1, n_dag=1, seed=13)
    scenario = suite.scenario(0, 0, "A")
    print(f"scenario: |T|={scenario.n_tasks}, tau={scenario.tau:.0f}s\n")

    for name, factory in FACTORIES.items():
        res = search_weights(scenario, factory, coarse_step=0.2, fine_step=0.05)
        print(f"{name}:")
        print(f"  evaluations: {res.evaluations} "
              f"({res.coarse_evaluations} coarse + "
              f"{res.evaluations - res.coarse_evaluations} fine)")
        print(f"  accepted (alpha, beta) points: {len(res.accepted)}")
        if res.succeeded:
            w = res.best_weights
            print(f"  optimum: alpha={w.alpha:.2f} beta={w.beta:.2f} "
                  f"gamma={w.gamma:.2f} -> T100={res.best_t100} "
                  f"(AET={res.best_result.aet:.0f}s)")
            plateau = res.accepted_near_best(tolerance=0)
            print(f"  points tied at the optimum: {len(plateau)}")
        else:
            print("  no (alpha, beta) produced a complete mapping within tau")
        print()


if __name__ == "__main__":
    main()
