"""Offline parameter optimisation (§VII).

* :mod:`~repro.tuning.weight_search` — the paper's two-stage (α, β) grid
  search: 0.1-step coarse sweep over the weight simplex, then a 0.02-step
  refinement around the best accepted point.  A point is *accepted* only if
  the heuristic maps all subtasks within both the energy and time
  constraints.
* :mod:`~repro.tuning.sweeps` — the ΔT and H sensitivity sweeps behind
  Figure 2 and the (unplotted) horizon analysis.
"""

from repro.tuning.sweeps import (
    DeltaTSweepPoint,
    choose_delta_t,
    sweep_delta_t,
    sweep_horizon,
    sweep_tau_slack,
)
from repro.tuning.weight_search import (
    WeightSearchResult,
    search_weights,
    simplex_grid,
)

__all__ = [
    "search_weights",
    "WeightSearchResult",
    "simplex_grid",
    "sweep_delta_t",
    "sweep_horizon",
    "sweep_tau_slack",
    "choose_delta_t",
    "DeltaTSweepPoint",
]
