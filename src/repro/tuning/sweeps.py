"""ΔT and H sensitivity sweeps (§VII, Figure 2).

The paper fixed ΔT = 10 cycles and H = 100 cycles after sweeping both:

* **ΔT** — large values leave "potentially large gaps of unused
  computational cycles" (T100 drops); small values multiply heuristic
  invocations that map nothing (execution time blows up).  Figure 2 plots
  both T100 and heuristic runtime against ΔT for SLRH-1.
* **H** — "the impact of H on both T100 and execution time was found to be
  negligible" for this study.

Each sweep point re-runs the heuristic from scratch at fixed weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.objective import Weights
from repro.core.slrh import SlrhConfig, SlrhScheduler
from repro.util.parallel import parallel_starmap
from repro.workload.scenario import Scenario

#: ΔT values (cycles) swept by default — log-ish ladder around the paper's 10.
DEFAULT_DELTA_T_VALUES: tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500)

#: H values (cycles) swept by default, around the paper's 100.
DEFAULT_HORIZON_VALUES: tuple[int, ...] = (10, 25, 50, 100, 200, 500, 1000)


@dataclass(frozen=True)
class DeltaTSweepPoint:
    """One sweep sample: parameter value vs outcome."""

    value: int  # ΔT or H, in cycles
    t100: int
    mapped: int
    aet: float
    heuristic_seconds: float
    success: bool
    ticks: int


def _run_point(
    scheduler_cls: type[SlrhScheduler],
    scenario: Scenario,
    weights: Weights,
    delta_t: int,
    horizon: int,
) -> DeltaTSweepPoint:
    config = SlrhConfig(weights=weights, delta_t_cycles=delta_t, horizon_cycles=horizon)
    result = scheduler_cls(config).map(scenario)
    return DeltaTSweepPoint(
        value=delta_t,
        t100=result.t100,
        mapped=result.schedule.n_mapped,
        aet=result.aet,
        heuristic_seconds=result.heuristic_seconds,
        success=result.success,
        ticks=result.trace.ticks,
    )


def sweep_delta_t(
    scheduler_cls: type[SlrhScheduler],
    scenario: Scenario,
    weights: Weights,
    values: Sequence[int] = DEFAULT_DELTA_T_VALUES,
    horizon: int = 100,
    n_jobs: int | None = None,
) -> list[DeltaTSweepPoint]:
    """Figure 2's x-axis sweep: vary ΔT at fixed H.

    Each point is an independent from-scratch mapping, so ``n_jobs``
    (default ``$REPRO_JOBS``, else serial) fans them over a process pool.
    """
    return parallel_starmap(
        _run_point,
        [(scheduler_cls, scenario, weights, v, horizon) for v in values],
        n_jobs=n_jobs,
    )


def sweep_tau_slack(
    scheduler_cls: type[SlrhScheduler],
    scenario: Scenario,
    weights: Weights,
    slacks: Sequence[float] = (0.5, 0.75, 1.0, 1.25, 1.5, 2.0),
    delta_t: int = 10,
    horizon: int = 100,
    n_jobs: int | None = None,
) -> list[DeltaTSweepPoint]:
    """How tight can τ get before the heuristic stops completing?

    An extension sweep (the paper fixes τ): each point re-runs the
    heuristic with the scenario's τ multiplied by a slack factor.  The
    returned points carry the slack ×100 as their integer ``value`` (so a
    slack of 1.25 reports as 125).  ``n_jobs`` as in :func:`sweep_delta_t`.
    """
    for slack in slacks:
        if slack <= 0:
            raise ValueError(f"slack must be positive, got {slack}")
    raw = parallel_starmap(
        _run_point,
        [
            (scheduler_cls, scenario.with_tau(scenario.tau * slack), weights,
             delta_t, horizon)
            for slack in slacks
        ],
        n_jobs=n_jobs,
    )
    points = []
    for slack, p in zip(slacks, raw):
        points.append(
            DeltaTSweepPoint(
                value=int(round(slack * 100)),
                t100=p.t100,
                mapped=p.mapped,
                aet=p.aet,
                heuristic_seconds=p.heuristic_seconds,
                success=p.success,
                ticks=p.ticks,
            )
        )
    return points


def choose_delta_t(
    scheduler_cls: type[SlrhScheduler],
    scenario: Scenario,
    weights: Weights,
    values: Sequence[int] = DEFAULT_DELTA_T_VALUES,
    t100_tolerance: float = 0.05,
    horizon: int = 100,
) -> tuple[int, list[DeltaTSweepPoint]]:
    """Automate the paper's ΔT selection (§VII does it by inspection).

    Sweeps ΔT, keeps points whose T100 is within *t100_tolerance* (as a
    fraction of the best observed T100) among *successful* runs, and
    returns the one with the lowest heuristic execution time — the exact
    trade the paper describes: small ΔT wastes heuristic invocations,
    large ΔT wastes machine cycles.  Falls back to the point with the
    highest T100 when no run succeeds.  Returns ``(delta_t, sweep_points)``.
    """
    points = sweep_delta_t(scheduler_cls, scenario, weights, values=values, horizon=horizon)
    successes = [p for p in points if p.success]
    candidates = successes or points
    best_t100 = max(p.t100 for p in candidates)
    acceptable = [p for p in candidates if p.t100 >= best_t100 * (1 - t100_tolerance)]
    chosen = min(acceptable, key=lambda p: (p.heuristic_seconds, p.value))
    return chosen.value, points


def sweep_horizon(
    scheduler_cls: type[SlrhScheduler],
    scenario: Scenario,
    weights: Weights,
    values: Sequence[int] = DEFAULT_HORIZON_VALUES,
    delta_t: int = 10,
    n_jobs: int | None = None,
) -> list[DeltaTSweepPoint]:
    """The companion H sweep (paper: negligible impact).  ``n_jobs`` as in
    :func:`sweep_delta_t`."""
    raw = parallel_starmap(
        _run_point,
        [(scheduler_cls, scenario, weights, delta_t, v) for v in values],
        n_jobs=n_jobs,
    )
    points = []
    for v, p in zip(values, raw):
        # Re-label the swept value: _run_point stores ΔT by default.
        points.append(
            DeltaTSweepPoint(
                value=v,
                t100=p.t100,
                mapped=p.mapped,
                aet=p.aet,
                heuristic_seconds=p.heuristic_seconds,
                success=p.success,
                ticks=p.ticks,
            )
        )
    return points
