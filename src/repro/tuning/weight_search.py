"""The paper's two-stage (α, β) optimisation (§VII).

"The sensitivity of the heuristics to the objective function weights was
investigated by first independently varying the α and β values across their
[0,1] range in steps of 0.1 until a general range was found that produced
the best T100 performance, subject to the energy and time constraints.  In
addition, the heuristic was required to successfully map all 1024 subtasks
within both the specified energy and time constraints for that (α, β)
combination to be included in the study.  The values were then varied by
0.02 across this smaller range until an optimal performance point was
determined."

We reproduce this literally:

1. **coarse stage** — evaluate every (α, β) on the simplex grid with step
   0.1 (γ = 1 − α − β ≥ 0); keep only *accepted* runs (complete mapping,
   AET ≤ τ; energy holds by construction);
2. **fine stage** — re-grid ±(coarse step) around the best accepted point
   with step 0.02 and evaluate the new points.

The best point maximises T100; ties break toward lower AET, then lower
(α, β) lexicographically for determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.core.objective import Weights
from repro.core.slrh import MappingResult
from repro.perf import merge_snapshots
from repro.util.parallel import parallel_starmap, resolve_jobs
from repro.workload.scenario import Scenario


class _Mapper(Protocol):  # pragma: no cover - typing helper
    def map(self, scenario: Scenario) -> MappingResult: ...


#: A factory turning a weight point into a runnable heuristic, e.g.
#: ``lambda w: SLRH1(SlrhConfig(weights=w))``.
SchedulerFactory = Callable[[Weights], _Mapper]


def simplex_grid(step: float = 0.1) -> list[tuple[float, float]]:
    """All (α, β) with α, β ∈ {0, step, 2·step, …, 1} and α + β ≤ 1."""
    if not 0 < step <= 1:
        raise ValueError(f"step must be in (0, 1], got {step}")
    n = round(1.0 / step)
    points = []
    for i in range(n + 1):
        for k in range(n - i + 1):
            points.append((round(i * step, 10), round(k * step, 10)))
    return points


def _refinement_grid(
    centre: tuple[float, float], span: float, step: float
) -> list[tuple[float, float]]:
    """(α, β) grid of the given *step* within ±*span* of *centre*, clipped
    to the simplex."""
    a0, b0 = centre
    n = round(span / step)
    points = []
    for i in range(-n, n + 1):
        for k in range(-n, n + 1):
            a = round(a0 + i * step, 10)
            b = round(b0 + k * step, 10)
            if 0.0 <= a <= 1.0 and 0.0 <= b <= 1.0 and a + b <= 1.0 + 1e-9:
                points.append((a, min(b, round(1.0 - a, 10))))
    return sorted(set(points))


@dataclass
class WeightSearchResult:
    """Outcome of the two-stage search for one (heuristic, scenario) pair."""

    best_weights: Weights | None
    best_result: MappingResult | None
    #: Every accepted (α, β) with its T100, both stages.
    accepted: list[tuple[float, float, int]] = field(default_factory=list)
    evaluations: int = 0
    coarse_evaluations: int = 0
    #: Performance counters (see :mod:`repro.perf`) summed over every
    #: mapping the search evaluated, across worker processes.
    perf: dict = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """Whether any weight point produced an accepted mapping."""
        return self.best_weights is not None

    @property
    def best_t100(self) -> int:
        if self.best_result is None:
            raise ValueError("search found no accepted mapping")
        return self.best_result.t100

    def accepted_near_best(self, tolerance: int = 0) -> list[tuple[float, float]]:
        """Accepted (α, β) whose T100 is within *tolerance* of the best —
        the paper's 'general range ... that produced the best performance'."""
        if self.best_result is None:
            return []
        cut = self.best_t100 - tolerance
        return [(a, b) for (a, b, t) in self.accepted if t >= cut]


def _key(result: MappingResult, alpha: float, beta: float):
    """Ordering key: higher T100, then lower AET, then lower (α, β)."""
    return (-result.t100, result.aet, alpha, beta)


def _evaluate_point(
    scenario: Scenario, factory: SchedulerFactory, alpha: float, beta: float
) -> MappingResult:
    """One weight-point evaluation — module-level so worker processes can
    run it (*factory* must then be picklable, e.g.
    :func:`repro.experiments.comparison.make_factory`'s output)."""
    return factory(Weights.from_alpha_beta(alpha, beta)).map(scenario)


def search_weights(
    scenario: Scenario,
    factory: SchedulerFactory,
    coarse_step: float = 0.1,
    fine_step: float = 0.02,
    fine: bool = True,
    n_jobs: int | None = None,
) -> WeightSearchResult:
    """Run the §VII two-stage (α, β) optimisation.

    Parameters
    ----------
    factory:
        Builds the heuristic for a weight point (any object with
        ``.map(scenario)`` returning a :class:`MappingResult`).
    coarse_step / fine_step:
        Grid steps of the two stages (paper: 0.1 and 0.02).
    fine:
        Skip the refinement stage when ``False`` (cheaper sweeps for the
        reduced-scale benchmarks).
    n_jobs:
        Worker processes per stage (each stage's grid points are
        independent mappings).  Defaults to ``$REPRO_JOBS`` else serial;
        results are identical at any job count — the merge below walks
        the results in grid order, reproducing the serial best/tie logic.
    """
    n_jobs = resolve_jobs(n_jobs)
    out = WeightSearchResult(best_weights=None, best_result=None)
    best_key = None
    best_point: tuple[float, float] | None = None
    evaluated: set[tuple[float, float]] = set()
    perf_snapshots: list[dict] = []

    def run_stage(points: list[tuple[float, float]]) -> None:
        nonlocal best_key, best_point
        points = [p for p in points if p not in evaluated]
        evaluated.update(points)
        results = parallel_starmap(
            _evaluate_point,
            [(scenario, factory, a, b) for a, b in points],
            n_jobs=n_jobs,
        )
        for (alpha, beta), result in zip(points, results):
            out.evaluations += 1
            perf_snapshots.append(result.trace.perf)
            if not result.success:
                continue
            out.accepted.append((alpha, beta, result.t100))
            key = _key(result, alpha, beta)
            if best_key is None or key < best_key:
                best_key = key
                best_point = (alpha, beta)
                out.best_weights = result.weights
                out.best_result = result

    run_stage(simplex_grid(coarse_step))
    out.coarse_evaluations = out.evaluations

    if fine and best_point is not None:
        run_stage(_refinement_grid(best_point, span=coarse_step, step=fine_step))

    out.perf = merge_snapshots(perf_snapshots)
    return out
