"""Non-deterministic subtask arrivals (the paper's deferred dynamism).

§IV: "In a truly dynamic environment, each subtask would arrive at some
non-deterministic time.  For simplicity in this study, each subtask was
assumed to be available for mapping as soon as its precedence constraints
had been satisfied."  This module generates the general case the paper
defers: per-subtask *release times*, so the resource manager discovers the
workload incrementally.

:func:`generate_release_times` draws a Poisson arrival process (exponential
inter-arrival gaps) and hands arrivals out in topological order, so a
subtask never officially "arrives" after work that depends on it — the
natural model when a workflow's stages are submitted as they are authored.
Set ``shuffle_within_levels`` for extra nondeterminism among independent
subtasks.
"""

from __future__ import annotations

from repro.util.seeding import SeedLike, as_generator
from repro.workload.dag import TaskGraph


def generate_release_times(
    dag: TaskGraph,
    mean_interarrival: float,
    seed: SeedLike = None,
    start: float = 0.0,
    shuffle_within_levels: bool = True,
) -> tuple[float, ...]:
    """Poisson release times for every subtask of *dag*.

    Parameters
    ----------
    mean_interarrival:
        Mean gap between consecutive arrivals, seconds.  The last subtask
        arrives around ``start + |T| · mean_interarrival`` on average.
    start:
        Arrival time of the first subtask.
    shuffle_within_levels:
        Randomise arrival order among subtasks of the same DAG level
        (independent work); topological consistency is preserved either
        way.

    Returns a tuple indexed by task id.
    """
    if mean_interarrival < 0:
        raise ValueError("mean_interarrival must be non-negative")
    if start < 0:
        raise ValueError("start must be non-negative")
    rng = as_generator(seed)

    order = list(dag.topological_order)
    if shuffle_within_levels:
        levels = dag.levels
        order.sort(key=lambda t: (levels[t], rng.random()))

    releases = [0.0] * dag.n_tasks
    t = start
    for task in order:
        releases[task] = t
        if mean_interarrival > 0:
            t += float(rng.exponential(mean_interarrival))
    return tuple(releases)
