"""Global data item sizes (§III, [ShC04]).

Every DAG edge (i, k) carries a *global data item* of size ``g(i, k)`` bits
that subtask *i* must transmit to subtask *k* before *k* can start (unless
both run on the same machine).  The paper generates the sizes with the
method of [ShC04] and holds them fixed across the three grid cases; it also
reports that communication energy "proved to be a negligible factor", which
pins the magnitude: transfer times must be small relative to the 131 s mean
execution time.  With the Table 2 bandwidths (4–8 Mbit/s), a mean item of
4 Mbit moves in 0.5–1 s — two orders of magnitude below execution time,
matching the paper's observation.

Secondary-version output is 10 % of ``g(i, k)`` — scaling is applied by the
schedulers via :class:`repro.workload.versions.Version`, not stored here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.seeding import SeedLike, as_generator
from repro.util.units import MEGABIT
from repro.workload.dag import TaskGraph


@dataclass(frozen=True)
class DataSpec:
    """Parameters of the gamma-distributed data item size generator.

    Attributes
    ----------
    mean_bits:
        Mean size of one global data item, in bits.  The 1 Mbit default
        keeps transfer times (0.125–0.25 s) and transmit energies ≈ two
        orders of magnitude below execution times/energies — the paper's
        "communications energy proved to be a negligible factor" regime.
    cv:
        Coefficient of variation of the size distribution.
    """

    mean_bits: float = 1 * MEGABIT
    cv: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_bits <= 0:
            raise ValueError("mean_bits must be positive")
        if self.cv <= 0:
            raise ValueError("cv must be positive")


def generate_data_sizes(
    dag: TaskGraph,
    spec: DataSpec = DataSpec(),
    seed: SeedLike = None,
) -> dict[tuple[int, int], float]:
    """Draw ``g(i, k)`` for every edge of *dag*.

    Returns a dict keyed by (parent, child) with primary-version sizes in
    bits.  Sizes are i.i.d. Gamma with the spec's mean and CV; the dict
    iterates in (parent, child) lexicographic order for reproducible
    downstream consumption.
    """
    rng = as_generator(seed)
    shape = 1.0 / (spec.cv * spec.cv)
    scale = spec.mean_bits * spec.cv * spec.cv
    sizes: dict[tuple[int, int], float] = {}
    for u in range(dag.n_tasks):
        for v in dag.children[u]:
            sizes[(u, v)] = float(max(rng.gamma(shape, scale), 1.0))
    return sizes
