"""Task dependency DAG generation (§III, [ShC04]).

The application is a single task of |T| communicating subtasks whose
precedence constraints form a directed acyclic graph.  [ShC04] — the
companion static-mapping study whose generator produced the paper's ten
DAGs — builds *layered* random DAGs: subtasks are partitioned into levels,
and each subtask draws its predecessors from nearby earlier levels with
bounded fan-in/fan-out.  We implement that construction, parameterised by
:class:`DagSpec`.

:class:`TaskGraph` is the immutable adjacency structure consumed by every
scheduler; it precomputes parent/children lists and a topological order so
the inner mapping loops never touch networkx.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from repro.util.seeding import SeedLike, as_generator

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    import networkx


@dataclass(frozen=True)
class DagSpec:
    """Parameters of the layered random DAG generator.

    Attributes
    ----------
    n_tasks:
        |T|, number of subtasks (paper: 1024).
    mean_width:
        Mean number of subtasks per level.  Widths are drawn uniformly in
        ``[1, 2·mean_width - 1]`` so their expectation is *mean_width*.
    max_in_degree:
        Maximum number of parents per subtask.
    max_out_degree:
        Soft cap on children per subtask; parents at the cap are excluded
        from further selection while any under-cap candidate remains.
    back_level_prob:
        Probability that a parent is drawn from a level *before* the
        immediately preceding one (long edges).
    """

    n_tasks: int = 1024
    mean_width: int = 8
    max_in_degree: int = 4
    max_out_degree: int = 6
    back_level_prob: float = 0.15

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        if self.mean_width < 1:
            raise ValueError("mean_width must be >= 1")
        if self.max_in_degree < 1 or self.max_out_degree < 1:
            raise ValueError("degree bounds must be >= 1")
        if not 0.0 <= self.back_level_prob <= 1.0:
            raise ValueError("back_level_prob must be in [0, 1]")


class TaskGraph:
    """Immutable precedence DAG over subtasks ``0 .. n_tasks-1``.

    Subtask ids may appear in any order in *edges*; a topological order is
    computed (and cycles rejected) at construction.  Duplicate edges are
    collapsed; self-loops are an error.
    """

    def __init__(self, n_tasks: int, edges: list[tuple[int, int]]) -> None:
        if n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        parents: list[list[int]] = [[] for _ in range(n_tasks)]
        children: list[list[int]] = [[] for _ in range(n_tasks)]
        seen: set[tuple[int, int]] = set()
        for u, v in edges:
            if not (0 <= u < n_tasks and 0 <= v < n_tasks):
                raise ValueError(f"edge ({u}, {v}) out of range for {n_tasks} tasks")
            if u == v:
                raise ValueError(f"self-loop on task {u}")
            if (u, v) in seen:
                continue
            seen.add((u, v))
            parents[v].append(u)
            children[u].append(v)
        self.n_tasks = n_tasks
        self.parents: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(p)) for p in parents
        )
        self.children: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(c)) for c in children
        )
        self.n_edges = len(seen)
        self._topo = self._topological_order()

    def _topological_order(self) -> tuple[int, ...]:
        indegree = [len(p) for p in self.parents]
        stack = [t for t in range(self.n_tasks) if indegree[t] == 0]
        order: list[int] = []
        while stack:
            t = stack.pop()
            order.append(t)
            for c in self.children[t]:
                indegree[c] -= 1
                if indegree[c] == 0:
                    stack.append(c)
        if len(order) != self.n_tasks:
            raise ValueError("dependency graph contains a cycle")
        return tuple(order)

    # -- queries ----------------------------------------------------------

    @property
    def topological_order(self) -> tuple[int, ...]:
        """One valid topological linearisation of the subtasks."""
        return self._topo

    @cached_property
    def roots(self) -> tuple[int, ...]:
        """Subtasks with no parents — schedulable immediately."""
        return tuple(t for t in range(self.n_tasks) if not self.parents[t])

    @cached_property
    def leaves(self) -> tuple[int, ...]:
        """Subtasks with no children."""
        return tuple(t for t in range(self.n_tasks) if not self.children[t])

    @cached_property
    def depth(self) -> int:
        """Length of the longest path, in nodes (a chain of k nodes → k)."""
        level = [1] * self.n_tasks
        for t in self._topo:
            for c in self.children[t]:
                level[c] = max(level[c], level[t] + 1)
        return max(level)

    @cached_property
    def levels(self) -> tuple[int, ...]:
        """Per-task level: 1 + length of the longest path from any root."""
        level = [1] * self.n_tasks
        for t in self._topo:
            for c in self.children[t]:
                level[c] = max(level[c], level[t] + 1)
        return tuple(level)

    def edges(self) -> list[tuple[int, int]]:
        """All (parent, child) pairs."""
        return [(u, v) for u in range(self.n_tasks) for v in self.children[u]]

    def to_networkx(self) -> "networkx.DiGraph":
        """Export as a :class:`networkx.DiGraph` (for analysis/plotting)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.n_tasks))
        g.add_edges_from(self.edges())
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskGraph(n_tasks={self.n_tasks}, n_edges={self.n_edges}, depth={self.depth})"


def generate_dag(spec: DagSpec = DagSpec(), seed: SeedLike = None) -> TaskGraph:
    """Generate one layered random :class:`TaskGraph` per *spec*.

    Construction: tasks are laid out level by level with random widths; every
    non-root task draws 1..max_in_degree parents, each taken from the
    previous level with probability ``1 - back_level_prob`` or from a random
    earlier level otherwise, preferring parents whose out-degree is below the
    soft cap.  Task ids increase with level, so ids are already topologically
    ordered (useful for readable traces, not relied upon by schedulers).
    """
    rng = as_generator(seed)
    n = spec.n_tasks

    # Partition tasks into levels with E[width] == mean_width.
    levels: list[list[int]] = []
    next_id = 0
    while next_id < n:
        width = int(rng.integers(1, 2 * spec.mean_width))
        width = min(width, n - next_id)
        levels.append(list(range(next_id, next_id + width)))
        next_id += width

    out_degree = np.zeros(n, dtype=int)
    edges: list[tuple[int, int]] = []
    for li in range(1, len(levels)):
        for v in levels[li]:
            n_parents = int(rng.integers(1, spec.max_in_degree + 1))
            chosen: set[int] = set()
            for _ in range(n_parents):
                if li > 1 and rng.random() < spec.back_level_prob:
                    src_level = int(rng.integers(0, li - 1))
                else:
                    src_level = li - 1
                pool = levels[src_level]
                under_cap = [u for u in pool if out_degree[u] < spec.max_out_degree]
                candidates = under_cap or pool
                u = candidates[int(rng.integers(len(candidates)))]
                if u not in chosen:
                    chosen.add(u)
                    out_degree[u] += 1
                    edges.append((u, v))
    return TaskGraph(n, edges)
