"""Structured task-graph families.

The paper's ten DAGs come from the randomised layered generator of [ShC04]
(:func:`repro.workload.dag.generate_dag`); real applications, however, have
*structured* dependence patterns, and the heterogeneous-computing
literature the paper builds on evaluates against exactly these families.
This module provides the classic parametric topologies so examples and
extension studies can exercise the SLRH on recognisable workloads:

* :func:`chain` — strictly sequential pipeline;
* :func:`fork_join` — one source fans out to parallel branches that join;
* :func:`out_tree` / :func:`in_tree` — balanced k-ary (reduction) trees;
* :func:`diamond_mesh` — the 2-D wavefront dependence of stencil codes
  (Gauss-Seidel/SOR sweeps);
* :func:`fft` — the butterfly dependence of an n-point transform;
* :func:`gaussian_elimination` — the triangular update pattern of LU
  factorisation without pivoting;
* :func:`map_reduce` — s independent map stripes into r reducers.

All constructors return a :class:`~repro.workload.dag.TaskGraph`; task ids
increase along a valid topological order.
"""

from __future__ import annotations

import math

from repro.workload.dag import TaskGraph


def chain(n_tasks: int) -> TaskGraph:
    """A strictly sequential pipeline of *n_tasks* stages."""
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    return TaskGraph(n_tasks, [(i, i + 1) for i in range(n_tasks - 1)])


def fork_join(branches: int, branch_length: int = 1) -> TaskGraph:
    """One source forks into *branches* parallel chains that join.

    Total tasks: ``2 + branches * branch_length``; ids: 0 is the fork,
    the last id is the join.
    """
    if branches < 1 or branch_length < 1:
        raise ValueError("branches and branch_length must be >= 1")
    n = 2 + branches * branch_length
    join = n - 1
    edges = []
    for b in range(branches):
        first = 1 + b * branch_length
        edges.append((0, first))
        for k in range(branch_length - 1):
            edges.append((first + k, first + k + 1))
        edges.append((first + branch_length - 1, join))
    return TaskGraph(n, edges)


def out_tree(depth: int, arity: int = 2) -> TaskGraph:
    """Balanced *arity*-ary tree of the given *depth* (a chain is depth-1
    levels of edges), root at task 0, edges parent→child (distribution)."""
    if depth < 1 or arity < 1:
        raise ValueError("depth and arity must be >= 1")
    n = sum(arity**k for k in range(depth))
    edges = []
    # Level-order ids: node i's children are arity*i+1 .. arity*i+arity.
    for i in range(n):
        for c in range(arity * i + 1, arity * i + arity + 1):
            if c < n:
                edges.append((i, c))
    return TaskGraph(n, edges)


def in_tree(depth: int, arity: int = 2) -> TaskGraph:
    """Balanced reduction tree: leaves feed upward into a single sink.

    The mirror of :func:`out_tree`; the sink is the *last* task id.
    """
    base = out_tree(depth, arity)
    n = base.n_tasks
    # Reverse edges and relabel so ids stay topologically increasing:
    # new_id = n - 1 - old_id.
    edges = [(n - 1 - v, n - 1 - u) for (u, v) in base.edges()]
    return TaskGraph(n, edges)


def diamond_mesh(side: int) -> TaskGraph:
    """2-D wavefront: task (i, j) depends on (i-1, j) and (i, j-1).

    The dependence pattern of Gauss-Seidel sweeps and dynamic-programming
    tables; ``side × side`` tasks, row-major ids.
    """
    if side < 1:
        raise ValueError("side must be >= 1")
    edges = []
    for i in range(side):
        for j in range(side):
            t = i * side + j
            if i + 1 < side:
                edges.append((t, (i + 1) * side + j))
            if j + 1 < side:
                edges.append((t, i * side + j + 1))
    return TaskGraph(side * side, edges)


def fft(points: int) -> TaskGraph:
    """Butterfly DAG of a *points*-point FFT (*points* a power of two).

    ``log2(points) + 1`` ranks of *points* tasks each; task (r+1, i)
    depends on (r, i) and (r, i XOR 2^r).
    """
    if points < 2 or points & (points - 1):
        raise ValueError("points must be a power of two >= 2")
    ranks = int(math.log2(points))
    edges = []
    for r in range(ranks):
        for i in range(points):
            src = r * points + i
            edges.append((src, (r + 1) * points + i))
            edges.append((src, (r + 1) * points + (i ^ (1 << r))))
    return TaskGraph((ranks + 1) * points, edges)


def gaussian_elimination(size: int) -> TaskGraph:
    """Task graph of LU factorisation on a *size* × *size* matrix.

    Per elimination step k: one pivot task, then ``size - k - 1`` update
    tasks depending on it; each step's pivot depends on the previous
    step's update of its own column.  Total tasks:
    ``size - 1 + (size - 1) * size / 2``... concretely, step k (0-based,
    k < size - 1) contributes ``1 + (size - k - 1)`` tasks.
    """
    if size < 2:
        raise ValueError("size must be >= 2")
    edges = []
    ids: dict[tuple[str, int, int], int] = {}
    next_id = 0

    def new(kind: str, k: int, j: int) -> int:
        nonlocal next_id
        ids[(kind, k, j)] = next_id
        next_id += 1
        return ids[(kind, k, j)]

    for k in range(size - 1):
        pivot = new("pivot", k, k)
        if k > 0:
            edges.append((ids[("update", k - 1, k)], pivot))
        for j in range(k + 1, size):
            upd = new("update", k, j)
            edges.append((pivot, upd))
            if k > 0 and ("update", k - 1, j) in ids:
                edges.append((ids[("update", k - 1, j)], upd))
    return TaskGraph(next_id, edges)


def map_reduce(mappers: int, reducers: int = 1) -> TaskGraph:
    """*mappers* independent map tasks shuffled into *reducers* sinks.

    A splitter task 0 feeds every mapper; every mapper feeds every reducer
    (the all-to-all shuffle).
    """
    if mappers < 1 or reducers < 1:
        raise ValueError("mappers and reducers must be >= 1")
    n = 1 + mappers + reducers
    edges = []
    for m in range(1, mappers + 1):
        edges.append((0, m))
        for r in range(1 + mappers, n):
            edges.append((m, r))
    return TaskGraph(n, edges)


#: Constructors by name, for CLI/example convenience.
TOPOLOGIES = {
    "chain": chain,
    "fork_join": fork_join,
    "out_tree": out_tree,
    "in_tree": in_tree,
    "diamond_mesh": diamond_mesh,
    "fft": fft,
    "gaussian_elimination": gaussian_elimination,
    "map_reduce": map_reduce,
}
