"""Scenario bundling (§III).

A *scenario* is everything a resource manager needs: a grid configuration,
an ETC matrix, a task DAG with data item sizes, and the time constraint τ.
The paper crosses **10 ETC matrices × 10 DAGs** into 100 scenarios and runs
the same 100 in all three grid cases.  Crucially, the ETC matrices are
generated once for the full Case A machine set; Cases B and C simply *drop a
machine* — so comparisons across cases see identical workloads.
:class:`ScenarioSuite` reproduces that protocol: master artefacts are
generated against Case A and column-subset per case.

Machine indexing in the master grid: ``[fast-0, fast-1, slow-0, slow-1]``.
Case B removes slow-1; Case C removes fast-1.  Machine 0 (fast-0) is always
present — it is the upper bound's reference machine (§VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Any, Iterator

import numpy as np

from repro.grid.config import CASE_A, GridConfig
from repro.grid.network import NetworkModel
from repro.util.seeding import SeedLike, spawn_seeds
from repro.workload.dag import DagSpec, TaskGraph, generate_dag
from repro.workload.data import DataSpec, generate_data_sizes
from repro.workload.etc import EtcSpec, generate_etc
from repro.workload.versions import Version

#: τ used at paper scale (|T| = 1024, Table 2 energies): 34 075 s, chosen in
#: the paper "based on experiments using a simple greedy static heuristic".
PAPER_TAU: float = 34_075.0

#: Master-grid column indices retained by each case (see module docstring).
CASE_COLUMNS: dict[str, tuple[int, ...]] = {
    "A": (0, 1, 2, 3),
    "B": (0, 1, 2),
    "C": (0, 2, 3),
}


@dataclass(frozen=True)
class ScenarioSpec:
    """Generation parameters for one scenario family.

    The defaults reproduce the paper's scale (|T| = 1024, τ = 34 075 s);
    reduced-scale experiments override ``n_tasks`` and ``tau``.
    """

    n_tasks: int = 1024
    tau: float = PAPER_TAU
    etc: EtcSpec = field(default_factory=EtcSpec)
    dag: DagSpec = field(default_factory=lambda: DagSpec())
    data: DataSpec = field(default_factory=DataSpec)

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if self.dag.n_tasks != self.n_tasks:
            object.__setattr__(self, "dag", replace(self.dag, n_tasks=self.n_tasks))


@dataclass(frozen=True)
class Scenario:
    """One concrete mapping problem instance.

    Attributes
    ----------
    grid:
        The machines available in this case.
    etc:
        ``(|T|, |M|)`` primary-version execution times, columns aligned with
        ``grid``.
    dag:
        Precedence DAG over the |T| subtasks.
    data_sizes:
        ``g(i, k)`` in bits for every DAG edge (primary-version sizes).
    tau:
        Hard application-execution-time constraint, seconds.
    name:
        Label for reports, e.g. ``"etc0-dag3-caseB"``.
    """

    grid: GridConfig
    etc: np.ndarray
    dag: TaskGraph
    data_sizes: dict[tuple[int, int], float]
    tau: float
    name: str = "scenario"
    #: Per-task arrival (release) times, seconds.  ``None`` reproduces the
    #: paper's simplification ("each subtask was assumed to be available for
    #: mapping as soon as its precedence constraints had been satisfied",
    #: §IV); a tuple makes the workload *truly* dynamic: a subtask may not
    #: be mapped, and may not start, before its release.
    release_times: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.etc.shape != (self.dag.n_tasks, len(self.grid)):
            raise ValueError(
                f"ETC shape {self.etc.shape} does not match "
                f"({self.dag.n_tasks} tasks, {len(self.grid)} machines)"
            )
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        missing = [e for e in self.dag.edges() if e not in self.data_sizes]
        if missing:
            raise ValueError(f"data size missing for edges {missing[:5]}...")
        if self.release_times is not None:
            if len(self.release_times) != self.dag.n_tasks:
                raise ValueError(
                    f"{len(self.release_times)} release times for "
                    f"{self.dag.n_tasks} tasks"
                )
            if any(r < 0 for r in self.release_times):
                raise ValueError("release times must be non-negative")

    def release(self, task: int) -> float:
        """Arrival time of *task* (0.0 under the paper's simplification)."""
        if self.release_times is None:
            return 0.0
        return self.release_times[task]

    def with_release_times(self, release_times: np.ndarray | None) -> "Scenario":
        """A copy of this scenario with per-task arrival times attached."""
        return Scenario(
            grid=self.grid,
            etc=self.etc,
            dag=self.dag,
            data_sizes=self.data_sizes,
            tau=self.tau,
            name=self.name,
            release_times=tuple(release_times),
        )

    @property
    def n_tasks(self) -> int:
        return self.dag.n_tasks

    @property
    def n_machines(self) -> int:
        return len(self.grid)

    @cached_property
    def network(self) -> NetworkModel:
        return NetworkModel(self.grid)

    # -- per-candidate quantities -----------------------------------------

    def exec_time(self, task: int, machine: int, version: Version) -> float:
        """Execution time of *task*'s *version* on *machine*, seconds."""
        return float(self.etc[task, machine]) * version.scale

    def compute_energy(self, task: int, machine: int, version: Version) -> float:
        """Computation energy for the (task, version, machine) triple."""
        return self.grid[machine].compute_energy(self.exec_time(task, machine, version))

    def data_bits(self, parent: int, child: int, parent_version: Version) -> float:
        """Bits that *parent* (run at *parent_version*) sends to *child*."""
        return self.data_sizes[(parent, child)] * parent_version.scale

    def with_tau(self, tau: float) -> "Scenario":
        """A copy of this scenario under a different time constraint."""
        return Scenario(
            grid=self.grid,
            etc=self.etc,
            dag=self.dag,
            data_sizes=self.data_sizes,
            tau=tau,
            name=self.name,
            release_times=self.release_times,
        )

    def without_machine(self, j: int) -> "Scenario":
        """Drop machine *j* — the ad hoc "machine loss" transformation."""
        keep = [k for k in range(self.n_machines) if k != j]
        return Scenario(
            grid=self.grid.without_machine(j),
            etc=self.etc[:, keep],
            dag=self.dag,
            data_sizes=self.data_sizes,
            tau=self.tau,
            name=f"{self.name}-minus-m{j}",
            release_times=self.release_times,
        )


def generate_scenario(
    spec: ScenarioSpec = ScenarioSpec(),
    grid: GridConfig = CASE_A,
    seed: SeedLike = None,
    name: str = "scenario",
) -> Scenario:
    """Generate one self-contained scenario against *grid*."""
    etc_seed, dag_seed, data_seed = spawn_seeds(seed, 3)
    dag = generate_dag(spec.dag, seed=dag_seed)
    return Scenario(
        grid=grid,
        etc=generate_etc(spec.n_tasks, grid, spec.etc, seed=etc_seed),
        dag=dag,
        data_sizes=generate_data_sizes(dag, spec.data, seed=data_seed),
        tau=spec.tau,
        name=name,
    )


class ScenarioSuite:
    """The paper's ETC × DAG cross product, shared across grid cases.

    Master ETC matrices are generated once against the full Case A grid;
    per-case scenarios subset columns via :data:`CASE_COLUMNS`, so losing a
    machine never resamples the workload.
    """

    def __init__(
        self,
        n_etc: int = 10,
        n_dag: int = 10,
        spec: ScenarioSpec = ScenarioSpec(),
        seed: SeedLike = 0,
        master_grid: GridConfig = CASE_A,
    ) -> None:
        if n_etc < 1 or n_dag < 1:
            raise ValueError("need at least one ETC matrix and one DAG")
        if len(master_grid) != 4:
            raise ValueError(
                "the paper's case subsetting assumes the 4-machine Case A master grid"
            )
        self.spec = spec
        self.master_grid = master_grid
        etc_root, dag_root, data_root = spawn_seeds(seed, 3)
        self.etcs: list[np.ndarray] = [
            generate_etc(spec.n_tasks, master_grid, spec.etc, seed=s)
            for s in etc_root.spawn(n_etc)
        ]
        self.dags: list[TaskGraph] = [
            generate_dag(spec.dag, seed=s) for s in dag_root.spawn(n_dag)
        ]
        self.data_maps: list[dict[tuple[int, int], float]] = [
            generate_data_sizes(dag, spec.data, seed=s)
            for dag, s in zip(self.dags, data_root.spawn(n_dag))
        ]
        self._case_grids: dict[str, GridConfig] = {}

    @property
    def n_etc(self) -> int:
        return len(self.etcs)

    @property
    def n_dag(self) -> int:
        return len(self.dags)

    def case_grid(self, case: str) -> GridConfig:
        """The grid configuration for case ``"A"``, ``"B"`` or ``"C"``."""
        if case not in CASE_COLUMNS:
            raise KeyError(f"unknown case {case!r}; expected one of {sorted(CASE_COLUMNS)}")
        if case not in self._case_grids:
            cols = CASE_COLUMNS[case]
            machines = tuple(self.master_grid[j] for j in cols)
            self._case_grids[case] = GridConfig(machines=machines, name=f"Case {case}")
        return self._case_grids[case]

    def scenario(self, etc_idx: int, dag_idx: int, case: str = "A") -> Scenario:
        """Build the (etc_idx, dag_idx) scenario under the given case."""
        cols = CASE_COLUMNS[case] if case in CASE_COLUMNS else None
        if cols is None:
            raise KeyError(f"unknown case {case!r}")
        return Scenario(
            grid=self.case_grid(case),
            etc=self.etcs[etc_idx][:, list(cols)],
            dag=self.dags[dag_idx],
            data_sizes=self.data_maps[dag_idx],
            tau=self.spec.tau,
            name=f"etc{etc_idx}-dag{dag_idx}-case{case}",
        )

    def scenarios(self, case: str = "A") -> Iterator[Scenario]:
        """Iterate all ETC × DAG scenarios for one case."""
        for e in range(self.n_etc):
            for d in range(self.n_dag):
                yield self.scenario(e, d, case)


def generate_scenario_suite(
    n_etc: int = 10,
    n_dag: int = 10,
    spec: ScenarioSpec = ScenarioSpec(),
    seed: SeedLike = 0,
) -> ScenarioSuite:
    """Convenience constructor mirroring the paper's 10 × 10 protocol."""
    return ScenarioSuite(n_etc=n_etc, n_dag=n_dag, spec=spec, seed=seed)


# -- proportional-shrink protocol ---------------------------------------------

#: |T| used by the paper; the anchor of the proportional-shrink protocol.
PAPER_N_TASKS: int = 1024


def paper_scaled_spec(n_tasks: int, **overrides: Any) -> ScenarioSpec:
    """A :class:`ScenarioSpec` that shrinks the paper's study to *n_tasks*.

    Pure-Python mapping at |T| = 1024 costs minutes-to-hours per run (the
    paper's own Figure 6 reports hundreds of seconds per mapping in Python
    2.3), so experiments default to a smaller |T|.  Naively shrinking |T|
    alone breaks the resource *regime*: the α-term per subtask (α/|T|)
    grows while Table 2 batteries and τ = 34 075 s stay fixed, so energy
    and time stop binding and the (α, β) trade-off degenerates.  The
    proportional-shrink protocol scales **τ by n/1024** here and **B(j) by
    n/1024** (via :func:`paper_scaled_grid`), preserving the paper's
    regime at any scale:

    * fast machines are *energy*-bound (battery covers ≈ 17 % of τ),
    * slow machines are *time*-bound,
    * no single machine class can absorb the whole task set → forced load
      balancing, exactly the condition the paper tuned τ for (§III),
    * the Case C upper bound stays *cycles*-limited (Table 4's shape).

    Keyword *overrides* are forwarded to :class:`ScenarioSpec`.
    """
    factor = n_tasks / PAPER_N_TASKS
    overrides.setdefault("tau", PAPER_TAU * factor)
    return ScenarioSpec(n_tasks=n_tasks, **overrides)


def paper_scaled_grid(n_tasks: int, grid: GridConfig = CASE_A) -> GridConfig:
    """Scale *grid* batteries by ``n_tasks / 1024`` (see
    :func:`paper_scaled_spec`)."""
    return grid.with_battery_scale(n_tasks / PAPER_N_TASKS)


def paper_scaled_suite(
    n_tasks: int,
    n_etc: int = 10,
    n_dag: int = 10,
    seed: SeedLike = 0,
    **spec_overrides: Any,
) -> ScenarioSuite:
    """A :class:`ScenarioSuite` under the proportional-shrink protocol."""
    return ScenarioSuite(
        n_etc=n_etc,
        n_dag=n_dag,
        spec=paper_scaled_spec(n_tasks, **spec_overrides),
        seed=seed,
        master_grid=paper_scaled_grid(n_tasks),
    )
