"""Workload substrate: ETC matrices, task DAGs, data items, subtask versions.

The paper's application is a single task of |T| = 1024 communicating
subtasks whose dependencies form a DAG.  Estimated times to compute come
from the Gamma-distribution (CVB) method of [AlS00]; DAG shapes and global
data item sizes follow [ShC04].  Every subtask has a *primary* version and a
*secondary* version that uses 10 % of the primary's time, energy and output
data (§III).
"""

from repro.workload.arrivals import generate_release_times
from repro.workload.dag import DagSpec, TaskGraph, generate_dag
from repro.workload.data import DataSpec, generate_data_sizes
from repro.workload.etc import (
    Consistency,
    EtcSpec,
    RangeEtcSpec,
    generate_etc,
    generate_etc_range_based,
    shape_consistency,
)
from repro.workload.topologies import TOPOLOGIES
from repro.workload.scenario import (
    PAPER_N_TASKS,
    PAPER_TAU,
    Scenario,
    ScenarioSpec,
    ScenarioSuite,
    generate_scenario,
    generate_scenario_suite,
    paper_scaled_grid,
    paper_scaled_spec,
    paper_scaled_suite,
)
from repro.workload.versions import (
    PRIMARY,
    SECONDARY,
    SECONDARY_FRACTION,
    Version,
)

__all__ = [
    "Version",
    "PRIMARY",
    "SECONDARY",
    "SECONDARY_FRACTION",
    "EtcSpec",
    "generate_etc",
    "RangeEtcSpec",
    "generate_etc_range_based",
    "Consistency",
    "shape_consistency",
    "TOPOLOGIES",
    "generate_release_times",
    "DagSpec",
    "TaskGraph",
    "generate_dag",
    "DataSpec",
    "generate_data_sizes",
    "Scenario",
    "ScenarioSpec",
    "ScenarioSuite",
    "generate_scenario",
    "generate_scenario_suite",
    "paper_scaled_spec",
    "paper_scaled_grid",
    "paper_scaled_suite",
    "PAPER_TAU",
    "PAPER_N_TASKS",
]
