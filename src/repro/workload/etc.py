"""ETC (estimated time to compute) matrix generation (§III, [AlS00]).

``ETC(i, j)`` is the primary-version execution time of subtask *i* on machine
*j*.  The paper generates these with the Gamma-distribution
(coefficient-of-variation based, CVB) method of Ali et al. [AlS00]:

1. draw a per-task baseline ``q(i) ~ Gamma(1/V_task², μ_task · V_task²)``
   (mean μ_task, coefficient of variation V_task);
2. draw each row entry ``ETC(i, j) ~ Gamma(1/V_mach², q(i) · V_mach²)``
   (mean q(i), coefficient of variation V_mach).

The paper's grids contain two machine classes where "fast machines, on
average, executed roughly ten times faster than slow machines.  The exact
ratio was determined randomly for each subtask."  We therefore generate the
CVB baseline for the *slow* class and divide fast-machine entries by a
per-(task, machine) speedup drawn around :attr:`EtcSpec.fast_speedup_mean`.

The paper's constants: mean subtask time 131 s (on the slow class — the
absolute anchor is not stated, but the τ = 34 075 s budget for 1024 subtasks
on ≤4 machines only closes if the *fast* machines run near 13 s/subtask, so
we anchor the CVB mean on the slow class), ten matrices per study.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.grid.config import GridConfig
from repro.grid.machine import MachineClass
from repro.util.seeding import SeedLike, as_generator


@dataclass(frozen=True)
class EtcSpec:
    """Parameters of the CVB gamma ETC generator.

    Attributes
    ----------
    mean_task_time:
        μ_task — mean primary execution time on the slow machine class, in
        seconds (paper: 131 s).
    task_cv:
        V_task — coefficient of variation of the per-task baseline (task
        heterogeneity).  [AlS00] uses ~0.35 for "high" and ~0.1 for "low";
        the paper's Table 3 spread is consistent with moderate heterogeneity.
    machine_cv:
        V_mach — coefficient of variation across machines of one class
        (machine heterogeneity).
    fast_speedup_mean:
        Mean of the random per-(task, machine) speedup of fast machines over
        the slow baseline (paper: "roughly ten times faster").
    fast_speedup_cv:
        Coefficient of variation of the bulk speedup draw.
    low_speedup_prob:
        Probability that a given (task, fast machine) pair barely benefits
        from the faster CPU (memory-bound work).  This heavy left tail is
        what the paper's Table 3 statistics imply: with a light-tailed
        speedup, the slow machines' minimum relative speed sits near 3-4,
        but the paper reports ≈ 1.65 for slow machines *and* ≈ 0.28 for the
        second fast machine — both tails land there once a small fraction
        of tasks speeds up only 1.5-4×.  The Case C upper bound being
        cycles-limited (Table 4) also depends on this tail.
    low_speedup_range:
        (lo, hi) of the uniform draw used for low-benefit pairs.
    """

    mean_task_time: float = 131.0
    task_cv: float = 0.35
    machine_cv: float = 0.1
    fast_speedup_mean: float = 10.0
    fast_speedup_cv: float = 0.3
    low_speedup_prob: float = 0.1
    low_speedup_range: tuple[float, float] = (1.5, 4.0)

    def __post_init__(self) -> None:
        if self.mean_task_time <= 0:
            raise ValueError("mean_task_time must be positive")
        for label, cv in (
            ("task_cv", self.task_cv),
            ("machine_cv", self.machine_cv),
            ("fast_speedup_cv", self.fast_speedup_cv),
        ):
            if cv <= 0:
                raise ValueError(f"{label} must be positive (got {cv})")
        if self.fast_speedup_mean < 1:
            raise ValueError("fast machines must not be slower than slow ones")
        if not 0.0 <= self.low_speedup_prob <= 1.0:
            raise ValueError("low_speedup_prob must be in [0, 1]")
        lo, hi = self.low_speedup_range
        if not 1.0 <= lo <= hi:
            raise ValueError("low_speedup_range must satisfy 1 <= lo <= hi")


def _gamma(
    rng: np.random.Generator,
    mean: float | np.ndarray,
    cv: float,
    size: int | tuple[int, ...] | None = None,
) -> np.ndarray:
    """Draw Gamma variates with the given *mean* and coefficient of variation.

    shape k = 1/cv², scale θ = mean·cv² gives E = kθ = mean and
    CV = 1/√k = cv.
    """
    shape = 1.0 / (cv * cv)
    scale = np.asarray(mean, dtype=float) * (cv * cv)
    return rng.gamma(shape, scale, size=size)


def generate_etc(
    n_tasks: int,
    grid: GridConfig,
    spec: EtcSpec = EtcSpec(),
    seed: SeedLike = None,
) -> np.ndarray:
    """Generate one ``(n_tasks, |M|)`` ETC matrix for *grid*.

    Entries are primary-version times in seconds; secondary-version times are
    obtained by scaling with :data:`repro.workload.versions.SECONDARY_FRACTION`
    and are *not* stored separately.

    The same per-task baseline drives all machines, so the matrix is
    *consistent-ish*: fast machines beat slow machines on every task in
    expectation, but the random per-task speedup keeps the matrix from being
    deterministically consistent — matching the paper's "exact ratio was
    determined randomly for each subtask to avoid any deterministic
    influence".
    """
    if n_tasks <= 0:
        raise ValueError(f"n_tasks must be positive, got {n_tasks}")
    rng = as_generator(seed)

    baseline = _gamma(rng, spec.mean_task_time, spec.task_cv, size=n_tasks)
    etc = np.empty((n_tasks, len(grid)), dtype=float)
    for j, machine in enumerate(grid):
        column = _gamma(rng, baseline, spec.machine_cv)
        if machine.machine_class is MachineClass.FAST:
            speedup = _gamma(rng, spec.fast_speedup_mean, spec.fast_speedup_cv, size=n_tasks)
            low = rng.random(n_tasks) < spec.low_speedup_prob
            if low.any():
                lo, hi = spec.low_speedup_range
                speedup[low] = rng.uniform(lo, hi, size=int(low.sum()))
            column = column / np.maximum(speedup, 1.0)
        etc[:, j] = column
    # Gamma support is (0, inf) so entries are strictly positive already;
    # clip guards against denormal round-off only.
    return np.maximum(etc, np.finfo(float).tiny)


# -- the wider [AlS00] taxonomy ------------------------------------------------
#
# The paper uses the CVB gamma method above; [AlS00] itself defines a whole
# taxonomy — the older *range-based* generation and a *consistency* axis —
# that the surrounding HC literature evaluates against.  Both are provided
# so extension studies can vary matrix structure independently of the
# paper's protocol.


class Consistency(enum.Enum):
    """ETC matrix consistency classes of [AlS00].

    * **CONSISTENT** — machine A faster than B on one task ⇒ faster on all
      (rows sorted against a fixed machine ranking);
    * **SEMI_CONSISTENT** — a consistent sub-matrix embedded in an otherwise
      inconsistent matrix (classically: even-indexed rows are made
      consistent);
    * **INCONSISTENT** — no ordering relation between machines.
    """

    CONSISTENT = "consistent"
    SEMI_CONSISTENT = "semi-consistent"
    INCONSISTENT = "inconsistent"


@dataclass(frozen=True)
class RangeEtcSpec:
    """Parameters of the [AlS00] *range-based* generator.

    ``ETC(i, j) = q(i) · r(i, j)`` with ``q(i) ~ U[1, task_range)`` and
    ``r(i, j)`` uniform in the machine-class multiplier range; class ranges
    default to a 10× fast/slow separation scaled so the slow-class mean
    matches the CVB default (131 s).
    """

    task_range: float = 2.0
    slow_multiplier: tuple[float, float] = (60.0, 115.0)
    fast_multiplier: tuple[float, float] = (6.0, 11.5)

    def __post_init__(self) -> None:
        if self.task_range <= 1.0:
            raise ValueError("task_range must exceed 1")
        for label, (lo, hi) in (
            ("slow_multiplier", self.slow_multiplier),
            ("fast_multiplier", self.fast_multiplier),
        ):
            if not 0 < lo <= hi:
                raise ValueError(f"{label} must satisfy 0 < lo <= hi")


def generate_etc_range_based(
    n_tasks: int,
    grid: GridConfig,
    spec: RangeEtcSpec = RangeEtcSpec(),
    seed: SeedLike = None,
) -> np.ndarray:
    """Generate an ETC matrix with the range-based method of [AlS00]."""
    if n_tasks <= 0:
        raise ValueError(f"n_tasks must be positive, got {n_tasks}")
    rng = as_generator(seed)
    q = rng.uniform(1.0, spec.task_range, size=n_tasks)
    etc = np.empty((n_tasks, len(grid)), dtype=float)
    for j, machine in enumerate(grid):
        lo, hi = (
            spec.fast_multiplier
            if machine.machine_class is MachineClass.FAST
            else spec.slow_multiplier
        )
        etc[:, j] = q * rng.uniform(lo, hi, size=n_tasks)
    return etc


def shape_consistency(
    etc: np.ndarray,
    consistency: Consistency,
    seed: SeedLike = None,
) -> np.ndarray:
    """Reshape a matrix into the requested [AlS00] consistency class.

    The machine ranking used for sorting is the ascending mean-ETC order
    (fastest machine first), so machine-class structure is preserved.
    Returns a new array; the input is untouched.
    """
    if etc.ndim != 2:
        raise ValueError("etc must be 2-D")
    out = etc.copy()
    if consistency is Consistency.INCONSISTENT:
        return out
    ranking = np.argsort(etc.mean(axis=0))  # fastest (lowest mean) first
    rows = range(out.shape[0]) if consistency is Consistency.CONSISTENT else range(
        0, out.shape[0], 2
    )
    for i in rows:
        out[i, ranking] = np.sort(out[i, :])
    return out


def is_consistent(etc: np.ndarray) -> bool:
    """Whether one machine ordering dominates every row of *etc*."""
    if etc.ndim != 2:
        raise ValueError("etc must be 2-D")
    ranking = np.argsort(etc.mean(axis=0))
    ranked = etc[:, ranking]
    return bool(np.all(np.diff(ranked, axis=1) >= -1e-12))


def min_relative_speed(etc: np.ndarray, reference: int = 0) -> np.ndarray:
    """MR(j) = min_i ETC(i, j) / ETC(i, reference)  (§VI).

    The minimum ratio is the *best case* number of reference-machine cycles
    machine *j* needs per unit of reference work; it feeds the equivalent
    computing cycles upper bound and Table 3.
    """
    if etc.ndim != 2:
        raise ValueError("etc must be a 2-D (tasks × machines) matrix")
    if not 0 <= reference < etc.shape[1]:
        raise IndexError(f"reference machine {reference} out of range")
    ratios = etc / etc[:, [reference]]
    return ratios.min(axis=0)
