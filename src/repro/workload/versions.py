"""Primary/secondary subtask versions (§III).

Every subtask may execute in one of two versions:

* the **primary** (full) version delivers the subtask's complete value; only
  primary executions count toward the study objective ``T100``;
* the **secondary** version is a degraded fallback consuming 10 % of the
  primary's execution time and energy and emitting 10 % of its output data.

The 10 % factor is :data:`SECONDARY_FRACTION`; the scaling is applied
uniformly to execution time (hence compute energy, which is rate × time) and
to every outgoing data item.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

#: Fraction of primary time/energy/output-data used by the secondary version.
SECONDARY_FRACTION: float = 0.1


class Version(enum.Enum):
    """A subtask execution version."""

    PRIMARY = "primary"
    SECONDARY = "secondary"

    if TYPE_CHECKING:
        # At runtime these are plain per-member attributes (set below):
        # ``scale`` and ``counts_toward_t100`` sit in planning inner loops
        # where a property's descriptor call is measurable.
        @property
        def scale(self) -> float:
            """Multiplier applied to primary execution time and output data."""
            ...

        @property
        def counts_toward_t100(self) -> bool:
            """Only primary executions count toward ``T100``."""
            ...

    # Enum equality is identity, but the default ``Enum.__hash__`` is a
    # Python-level method — every memo-dict probe keyed by a Version pays
    # it.  Identity hashing is equivalent (members are singletons) and
    # runs in C.
    __hash__ = object.__hash__

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


Version.PRIMARY.scale = 1.0  # type: ignore[misc]
Version.SECONDARY.scale = SECONDARY_FRACTION  # type: ignore[misc]
Version.PRIMARY.counts_toward_t100 = True  # type: ignore[misc]
Version.SECONDARY.counts_toward_t100 = False  # type: ignore[misc]

PRIMARY = Version.PRIMARY
SECONDARY = Version.SECONDARY

#: Evaluation order used when both versions are considered (ties → primary).
BOTH_VERSIONS: tuple[Version, Version] = (PRIMARY, SECONDARY)
