"""Upper bound on T100 via "equivalent computing cycles" (§VI).

The bound treats the grid as one pooled resource, ignoring precedence and
communication entirely — anything a real mapper achieves is therefore below
it.  Construction:

1. choose machine 0 as the reference and compute each machine's *minimum
   ratio* ``MR(j) = min_i ETC(i, j) / ETC(i, 0)`` — the best-case cost of a
   unit of reference work on machine *j* (Table 3 reports these);
2. each machine contributes ``τ / MR(j)`` *equivalent cycles*, pooled as
   ``TECC = Σ_j τ / MR(j)``;
3. greedily "execute" primary versions: repeatedly pick the unused
   (subtask, machine) pair with the **minimum energy** ``E(j)·ETC(i, j)``;
   it costs ``ETC(i, j) / MR(j)`` equivalent cycles and its energy; stop at
   the first pick that no longer fits the remaining TECC or total system
   energy (Table 4 reports the resulting counts).

The greedy inner loop is vectorised: the |T|×|M| energy matrix is computed
once and masked as subtasks are consumed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.workload.etc import min_relative_speed
from repro.workload.scenario import Scenario


@dataclass(frozen=True)
class UpperBoundResult:
    """Outcome of the §VI upper bound computation."""

    #: Maximum number of primary-version subtasks (the Table 4 entry).
    t100_bound: int
    #: MR(j) per machine (the Table 3 entries).
    min_ratios: np.ndarray
    #: Total equivalent computing cycles available.
    tecc: float
    #: Equivalent cycles left when the packing stopped.
    cycles_remaining: float
    #: System energy left when the packing stopped.
    energy_remaining: float
    #: Which resource stopped the packing: "none" (all subtasks fit),
    #: "cycles" or "energy".
    limiting_resource: str


def upper_bound(scenario: Scenario, reference: int = 0) -> UpperBoundResult:
    """Compute the §VI upper bound for one scenario.

    The DAG and data sizes are deliberately ignored — the bound pools raw
    compute capacity and energy only, which is what makes it an upper bound.
    """
    etc = scenario.etc
    n_tasks, n_machines = etc.shape
    mr = min_relative_speed(etc, reference=reference)
    tecc = float(np.sum(scenario.tau / mr))
    energy_budget = scenario.grid.total_system_energy

    compute_rates = np.array([m.compute_rate for m in scenario.grid])
    energy_matrix = etc * compute_rates[np.newaxis, :]  # E(j)·ETC(i,j)
    cycles_matrix = etc / mr[np.newaxis, :]  # ETC(i,j)/MR(j)

    # Cheapest machine per subtask never changes as subtasks are consumed,
    # so precompute each subtask's (energy, cycles) at its argmin machine
    # and visit subtasks in increasing energy order.
    best_machine = np.argmin(energy_matrix, axis=1)
    rows = np.arange(n_tasks)
    best_energy = energy_matrix[rows, best_machine]
    best_cycles = cycles_matrix[rows, best_machine]
    order = np.argsort(best_energy, kind="stable")

    cycles_remaining = tecc
    energy_remaining = energy_budget
    count = 0
    limiting = "none"
    for i in order:
        e, c = float(best_energy[i]), float(best_cycles[i])
        if c > cycles_remaining + 1e-9:
            limiting = "cycles"
            break
        if e > energy_remaining + 1e-9:
            limiting = "energy"
            break
        cycles_remaining -= c
        energy_remaining -= e
        count += 1

    return UpperBoundResult(
        t100_bound=count,
        min_ratios=mr,
        tecc=tecc,
        cycles_remaining=cycles_remaining,
        energy_remaining=energy_remaining,
        limiting_resource=limiting,
    )


def upper_bound_strict(scenario: Scenario, reference: int = 0) -> int:
    """A *provable* upper bound on T100 (LP relaxation; beyond the paper).

    The §VI construction above is reproduced faithfully, but it is not
    actually an upper bound: its greedy charges every subtask to its
    minimum-**energy** machine, which on Table 2 grids is a slow machine —
    expensive in equivalent cycles.  When cycles are the binding resource,
    a real mapping that pays more energy to use fast machines can execute
    *more* primaries than the "bound" (we observe this on tight-τ
    instances; see EXPERIMENTS.md).

    This bound fixes that by relaxation.  Any schedule that runs primary
    version of a set S of subtasks satisfies

    * Σ_{i∈S} cycles(i, j_i) ≤ TECC  (pooled equivalent cycles), and
    * Σ_{i∈S} energy(i, j_i) ≤ TSE   (pooled energy),

    for the machines j_i actually used.  Lower-bounding each subtask's
    cost per resource *independently* (cᵢ = min_j cycles(i, j),
    eᵢ = min_j energy(i, j)) and allowing fractional selection only
    enlarges the feasible set, so the LP

        max Σ xᵢ   s.t.  Σ cᵢ xᵢ ≤ TECC,  Σ eᵢ xᵢ ≤ TSE,  0 ≤ xᵢ ≤ 1

    dominates every achievable T100; its floor-with-tolerance is returned.
    Secondary executions only consume additional resources, so ignoring
    them keeps the bound valid.
    """
    from scipy.optimize import linprog

    etc = scenario.etc
    n_tasks = etc.shape[0]
    mr = min_relative_speed(etc, reference=reference)
    tecc = float(np.sum(scenario.tau / mr))
    tse = scenario.grid.total_system_energy

    compute_rates = np.array([m.compute_rate for m in scenario.grid])
    min_energy = (etc * compute_rates[np.newaxis, :]).min(axis=1)
    min_cycles = (etc / mr[np.newaxis, :]).min(axis=1)

    result = linprog(
        c=-np.ones(n_tasks),  # maximise Σ x
        A_ub=np.vstack([min_cycles, min_energy]),
        b_ub=np.array([tecc, tse]),
        bounds=[(0.0, 1.0)] * n_tasks,
        method="highs",
    )
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"upper-bound LP failed: {result.message}")
    return int(math.floor(-result.fun + 1e-6))
