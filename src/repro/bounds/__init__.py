"""Upper bound on T100 via equivalent computing cycles (§VI)."""

from repro.bounds.upper_bound import (
    UpperBoundResult,
    upper_bound,
    upper_bound_strict,
)

__all__ = ["upper_bound", "UpperBoundResult", "upper_bound_strict"]
