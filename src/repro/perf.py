"""Performance counter registry.

The ROADMAP north star is a mapper that runs "as fast as the hardware
allows"; you cannot steer that without measuring it.  :class:`PerfCounters`
is a tiny flat registry of named ``float`` accumulators shared by the hot
paths (plan-cache hits/misses, plans computed, pool sizes, per-phase wall
time).  Every :class:`~repro.sim.schedule.Schedule` owns one; heuristics
snapshot it into :class:`~repro.sim.trace.MappingTrace` at the end of a
mapping, and the experiment drivers merge the snapshots upward so a whole
weight-search study (possibly spread over worker processes) reduces to one
JSON artefact next to the ``benchmarks/out/`` outputs.

Counter namespace (dotted, flat):

``plan.pairs``
    (task, machine) plan pairs computed from scratch (the hot path).
``plan.cache.comm_hit`` / ``plan.cache.comm_miss``
    Comm-plan reuse — the channel-slot search was skipped / re-run.
``plan.cache.pair_hit`` / ``plan.cache.pair_miss``
    Full plan-pair reuse (comm plan *and* exec/energy verdicts).
``pool.builds`` / ``pool.members``
    Candidate pools built and their total membership.
``commit.count`` / ``unassign.count``
    Schedule mutations.
``phase.pool_seconds`` / ``phase.commit_seconds`` / ``map.seconds``
    Wall time per phase and per whole mapping; ``map.runs`` counts
    mappings merged into a snapshot.

The registry is deliberately schema-free: unknown counters merge like any
other.  :func:`write_perf_json` pins the on-disk schema (documented in
DESIGN.md).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Iterable, Mapping

#: On-disk schema identifier written by :func:`write_perf_json`.
PERF_SCHEMA = "repro.perf/1"


class PerfCounters:
    """A flat registry of named float accumulators."""

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, float] | None = None) -> None:
        self._values: dict[str, float] = dict(values) if values else {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add *amount* to counter *name* (creating it at 0)."""
        self._values[name] = self._values.get(name, 0.0) + amount

    @contextmanager
    def timer(self, name: str):
        """Accumulate the wall time of the ``with`` body into *name*."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.inc(name, time.perf_counter() - started)

    # -- reading -----------------------------------------------------------

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __len__(self) -> int:
        return len(self._values)

    def snapshot(self) -> dict[str, float]:
        """An independent copy of the current counter values."""
        return dict(self._values)

    # -- combining ---------------------------------------------------------

    def merge(self, other: "PerfCounters | Mapping[str, float]") -> "PerfCounters":
        """Add every counter of *other* into this registry; returns self."""
        values = other._values if isinstance(other, PerfCounters) else other
        for name, amount in values.items():
            self._values[name] = self._values.get(name, 0.0) + amount
        return self

    def clear(self) -> None:
        self._values.clear()


def merge_snapshots(snapshots: Iterable[Mapping[str, float]]) -> dict[str, float]:
    """Sum an iterable of counter snapshots into one."""
    total = PerfCounters()
    for snap in snapshots:
        if snap:
            total.merge(snap)
    return total.snapshot()


def hit_rate(counters: Mapping[str, float], prefix: str) -> float:
    """``<prefix>_hit / (<prefix>_hit + <prefix>_miss)`` (NaN when unused)."""
    hits = counters.get(f"{prefix}_hit", 0.0)
    misses = counters.get(f"{prefix}_miss", 0.0)
    total = hits + misses
    return hits / total if total else float("nan")


def comm_reuse_rate(counters: Mapping[str, float]) -> float:
    """Fraction of comm-plan lookups that skipped the channel-slot search
    (cache hit or shift replay); NaN when the cache was unused."""
    hits = counters.get("plan.cache.comm_hit", 0.0)
    shifts = counters.get("plan.cache.comm_shift", 0.0)
    misses = counters.get("plan.cache.comm_miss", 0.0)
    total = hits + shifts + misses
    return (hits + shifts) / total if total else float("nan")


def write_perf_json(path, counters: Mapping[str, float], **context) -> dict:
    """Write *counters* (plus derived hit rates and *context* metadata) to
    *path* using the :data:`PERF_SCHEMA` layout; returns the document."""
    doc = {
        "schema": PERF_SCHEMA,
        "context": dict(context),
        "counters": {k: counters[k] for k in sorted(counters)},
        "derived": {
            "plan_cache_comm_hit_rate": hit_rate(counters, "plan.cache.comm"),
            "plan_cache_pair_hit_rate": hit_rate(counters, "plan.cache.pair"),
            # A comm *shift* (replaying the cached transfer train at a
            # later clock) also skips the channel-slot search, so reuse =
            # (hit + shift) / (hit + shift + miss).
            "plan_cache_comm_reuse_rate": comm_reuse_rate(counters),
        },
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, allow_nan=True)
        fh.write("\n")
    return doc
