"""Performance counter registry.

The ROADMAP north star is a mapper that runs "as fast as the hardware
allows"; you cannot steer that without measuring it.  :class:`PerfCounters`
is a tiny flat registry of named ``float`` accumulators shared by the hot
paths (plan-cache hits/misses, plans computed, pool sizes, per-phase wall
time).  Every :class:`~repro.sim.schedule.Schedule` owns one; heuristics
snapshot it into :class:`~repro.sim.trace.MappingTrace` at the end of a
mapping, and the experiment drivers merge the snapshots upward so a whole
weight-search study (possibly spread over worker processes) reduces to one
JSON artefact next to the ``benchmarks/out/`` outputs.

Counter namespace (dotted, flat):

``plan.pairs``
    (task, machine) plan pairs computed from scratch (the hot path).
``plan.cache.comm_hit`` / ``plan.cache.comm_miss``
    Comm-plan reuse — the channel-slot search was skipped / re-run.
``plan.cache.pair_hit`` / ``plan.cache.pair_miss``
    Full plan-pair reuse (comm plan *and* exec/energy verdicts).
``pool.builds`` / ``pool.members``
    Candidate pools built and their total membership.
``pool.empty_ticks`` / ``tick.count``
    Heuristic ticks whose pools all came up empty, and total ticks run
    (surfaced from :class:`~repro.sim.trace.MappingTrace` so the ratio is
    visible on ``/metrics`` without parsing traces).
``commit.count`` / ``unassign.count``
    Schedule mutations.
``phase.pool_seconds`` / ``phase.commit_seconds`` / ``map.seconds``
    Wall time per phase and per whole mapping; ``map.runs`` counts
    mappings merged into a snapshot.
``span.<name>_seconds`` (histograms)
    Per-span wall-time distributions recorded when a
    :class:`repro.obs.spans.Tracer` is attached to a mapping
    (``span.pool.build_seconds``, ``span.select_seconds``,
    ``span.commit_seconds``, ``span.tick_seconds``, ``span.map_seconds``).

The registry is deliberately schema-free: unknown counters merge like any
other.  :func:`write_perf_json` pins the on-disk schema (documented in
DESIGN.md).

Besides monotonically accumulating *counters*, the serving layer
(:mod:`repro.service`) needs two more instrument kinds, added in schema
``repro.perf/2``:

* **gauges** — last-write-wins point-in-time values (queue depth, jobs in
  flight, registry size).  :meth:`PerfCounters.set_gauge` records them;
  merging takes the other side's value.
* **histograms** — distributions of observations (request latency, map
  wall time) with exact nearest-rank percentiles.  See :class:`Histogram`;
  :meth:`PerfCounters.observe` feeds the registry-owned instances.

Counter-only callers are unaffected: snapshots, merges and the JSON layout
only grow gauge/histogram sections when those instruments were used.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Mapping

#: On-disk schema identifier written by :func:`write_perf_json`.
PERF_SCHEMA = "repro.perf/2"

#: Histogram percentiles reported in snapshots and the JSON artefact.
HISTOGRAM_PERCENTILES = (50.0, 95.0, 99.0)


class Histogram:
    """Exact distribution of float observations with bounded memory.

    Observations accumulate in insertion order; ``count``/``sum`` are exact
    over the histogram's whole lifetime.  Percentiles are computed
    *nearest-rank* over the retained observations.  When the retained list
    exceeds ``maxlen`` it is compressed deterministically: the list is
    sorted and every second element kept (the elements at even sorted
    indices 0, 2, 4, …), which halves memory while preserving the
    distribution's shape (no RNG — snapshots stay reproducible
    run-to-run for a fixed observation sequence).

    Compression bias, documented so consumers are not surprised:

    * Below ``maxlen`` retained observations, percentiles are **exact**
      nearest-rank values — some observed value, never an interpolation.
    * After compression, keeping even sorted indices systematically drops
      the retained maximum whenever the retained count is even (the last
      element sits at an odd index), so upper-tail percentiles (p99, max)
      can step **down** after a compression even though the true
      distribution did not change; the retained minimum is always kept,
      so low percentiles are stable.  ``count``/``sum``/``mean`` are
      never affected — only which sample a percentile lands on.
    * Because compression sorts first, the retained set depends only on
      the *multiset* of retained observations, never their arrival order:
      ``a.merge(b)`` and ``b.merge(a)`` report identical percentiles.
      Chained merges are deterministic for a fixed order but not
      associative — once an *intermediate* merge triggers compression,
      a different grouping may retain a slightly different sample set.
    """

    __slots__ = ("_obs", "count", "total", "maxlen")

    def __init__(self, maxlen: int = 8192) -> None:
        if maxlen < 2:
            raise ValueError("maxlen must be >= 2")
        self._obs: list[float] = []
        self.count = 0
        self.total = 0.0
        self.maxlen = maxlen

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self._obs.append(value)
        if len(self._obs) > self.maxlen:
            self._obs = sorted(self._obs)[::2]

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile *q* in [0, 100]; NaN when empty."""
        if not self._obs:
            return float("nan")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        import math

        ordered = sorted(self._obs)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other*'s observations into this histogram; returns self."""
        self.count += other.count
        self.total += other.total
        self._obs.extend(other._obs)
        while len(self._obs) > self.maxlen:
            self._obs = sorted(self._obs)[::2]
        return self

    def summary(self) -> dict:
        """JSON-ready summary: count, sum, mean and the standard percentiles."""
        doc = {"count": self.count, "sum": self.total, "mean": self.mean}
        for q in HISTOGRAM_PERCENTILES:
            doc[f"p{q:g}"] = self.percentile(q)
        return doc


class PerfCounters:
    """A flat registry of named float accumulators, gauges and histograms."""

    __slots__ = ("_values", "_gauges", "_hists")

    def __init__(self, values: Mapping[str, float] | None = None) -> None:
        self._values: dict[str, float] = dict(values) if values else {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, Histogram] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add *amount* to counter *name* (creating it at 0)."""
        self._values[name] = self._values.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name* (creating it empty)."""
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = Histogram()
        hist.observe(value)

    @contextmanager
    def timer(self, name: str):
        """Accumulate the wall time of the ``with`` body into *name*."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.inc(name, time.perf_counter() - started)

    @contextmanager
    def latency_timer(self, name: str):
        """Observe the wall time of the ``with`` body into histogram *name*."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(name, time.perf_counter() - started)

    # -- reading -----------------------------------------------------------

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def histogram(self, name: str) -> Histogram | None:
        return self._hists.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __len__(self) -> int:
        return len(self._values)

    def snapshot(self) -> dict[str, float]:
        """An independent copy of the current counter values."""
        return dict(self._values)

    def gauges_snapshot(self) -> dict[str, float]:
        """An independent copy of the current gauge values."""
        return dict(self._gauges)

    def histograms_summary(self) -> dict[str, dict]:
        """JSON-ready ``{name: Histogram.summary()}`` for every histogram."""
        return {name: h.summary() for name, h in sorted(self._hists.items())}

    # -- combining ---------------------------------------------------------

    def merge(self, other: "PerfCounters | Mapping[str, float]") -> "PerfCounters":
        """Fold *other* into this registry; returns self.

        Counters add; gauges take *other*'s value (it is newer); histograms
        concatenate observations.  Plain mappings merge as counters, which
        keeps every pre-``repro.perf/2`` call site working unchanged.
        """
        if isinstance(other, PerfCounters):
            values = other._values
            self._gauges.update(other._gauges)
            for name, hist in other._hists.items():
                mine = self._hists.get(name)
                if mine is None:
                    mine = self._hists[name] = Histogram(maxlen=hist.maxlen)
                mine.merge(hist)
        else:
            values = other
        for name, amount in values.items():
            self._values[name] = self._values.get(name, 0.0) + amount
        return self

    def clear(self) -> None:
        self._values.clear()
        self._gauges.clear()
        self._hists.clear()


def merge_registries(*registries: "PerfCounters") -> PerfCounters:
    """A fresh registry with every *registry* folded in, left to right
    (counters add, gauges last-write-wins in argument order, histograms
    concatenate).  The inputs are never mutated — this is the shard
    ``/metrics`` roll-up: global service registry + per-shard registries
    in, one document out."""
    total = PerfCounters()
    for registry in registries:
        total.merge(registry)
    return total


def merge_snapshots(snapshots: Iterable[Mapping[str, float]]) -> dict[str, float]:
    """Sum an iterable of counter snapshots into one."""
    total = PerfCounters()
    for snap in snapshots:
        if snap:
            total.merge(snap)
    return total.snapshot()


def hit_rate(counters: Mapping[str, float], prefix: str) -> float:
    """``<prefix>_hit / (<prefix>_hit + <prefix>_miss)`` (NaN when unused)."""
    hits = counters.get(f"{prefix}_hit", 0.0)
    misses = counters.get(f"{prefix}_miss", 0.0)
    total = hits + misses
    return hits / total if total else float("nan")


def comm_reuse_rate(counters: Mapping[str, float]) -> float:
    """Fraction of comm-plan lookups that skipped the channel-slot search
    (cache hit or shift replay); NaN when the cache was unused."""
    hits = counters.get("plan.cache.comm_hit", 0.0)
    shifts = counters.get("plan.cache.comm_shift", 0.0)
    misses = counters.get("plan.cache.comm_miss", 0.0)
    total = hits + shifts + misses
    return (hits + shifts) / total if total else float("nan")


def perf_document(
    counters: Mapping[str, float],
    gauges: Mapping[str, float] | None = None,
    histograms: Mapping[str, dict] | None = None,
    **context,
) -> dict:
    """The :data:`PERF_SCHEMA` document for *counters* (plus derived hit
    rates, optional gauge/histogram sections and *context* metadata).

    *histograms* maps names to :meth:`Histogram.summary` dicts.  The gauge
    and histogram sections appear only when provided, so counter-only
    artefacts keep the original four-key layout.
    """
    doc = {
        "schema": PERF_SCHEMA,
        "context": dict(context),
        "counters": {k: counters[k] for k in sorted(counters)},
        "derived": {
            "plan_cache_comm_hit_rate": hit_rate(counters, "plan.cache.comm"),
            "plan_cache_pair_hit_rate": hit_rate(counters, "plan.cache.pair"),
            # A comm *shift* (replaying the cached transfer train at a
            # later clock) also skips the channel-slot search, so reuse =
            # (hit + shift) / (hit + shift + miss).
            "plan_cache_comm_reuse_rate": comm_reuse_rate(counters),
        },
    }
    if gauges is not None:
        doc["gauges"] = {k: gauges[k] for k in sorted(gauges)}
    if histograms is not None:
        doc["histograms"] = {k: dict(histograms[k]) for k in sorted(histograms)}
    return doc


def write_perf_json(
    path,
    counters: Mapping[str, float],
    gauges: Mapping[str, float] | None = None,
    histograms: Mapping[str, dict] | None = None,
    **context,
) -> dict:
    """Write the :func:`perf_document` for *counters* to *path* (creating
    parent directories as needed); returns the document."""
    doc = perf_document(counters, gauges=gauges, histograms=histograms, **context)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, allow_nan=True)
        fh.write("\n")
    return doc
