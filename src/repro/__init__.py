"""repro — reproduction of the Simplified Lagrangian Receding Horizon (SLRH)
resource manager for ad hoc grid environments.

Paper: R. H. Castain, W. W. Saylor, H. J. Siegel, "Application of Lagrangian
Receding Horizon Techniques to Resource Management in Ad Hoc Grid
Environments", IPDPS 2004.

Quickstart
----------
>>> from repro import (CASE_A, ScenarioSpec, generate_scenario, Weights,
...                    SlrhConfig, SLRH1, calibrate_tau)
>>> spec = ScenarioSpec(n_tasks=48, tau=1e9)
>>> scenario = generate_scenario(spec, grid=CASE_A, seed=7)
>>> scenario = scenario.with_tau(calibrate_tau(scenario, slack=1.1))
>>> result = SLRH1(SlrhConfig(weights=Weights.from_alpha_beta(0.5, 0.1))).map(scenario)
>>> result.complete
True

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

# repro.core first: its __init__ must be on the import stack (partially
# initialised is enough) before any repro.sim module runs, so that
# ``from repro.core.constants import EPSILON`` inside repro.sim.schedule
# resolves the leaf submodule without re-entering repro.core.__init__.
import repro.core  # noqa: F401  (re-imported with names below)

from repro.analysis import (
    compute_stats,
    critical_chain,
    critical_path_bound,
    efficiency,
    energy_profile,
    render_gantt,
    schedule_slack,
)
from repro.baselines import (
    GreedyScheduler,
    LrnnConfig,
    LrnnScheduler,
    MaxMaxConfig,
    MaxMaxScheduler,
    MetScheduler,
    MinMinScheduler,
    OlbScheduler,
    calibrate_tau,
)
from repro.bounds import UpperBoundResult, upper_bound, upper_bound_strict
from repro.core import (
    SLRH1,
    SLRH2,
    SLRH3,
    AdaptiveWeightController,
    Candidate,
    FeasibilityChecker,
    MappingResult,
    ObjectiveFunction,
    SlrhConfig,
    SlrhScheduler,
    Weights,
    adaptive_slrh,
    build_candidate_pool,
)
from repro.grid import (
    CASE_A,
    CASE_B,
    CASE_C,
    FAST_MACHINE,
    PAPER_CASES,
    SLOW_MACHINE,
    EnergyLedger,
    GridConfig,
    MachineClass,
    MachineSpec,
    NetworkModel,
    make_case,
)
from repro.sim import (
    Assignment,
    ChurnEvent,
    ChurnOutcome,
    ExecutionPlan,
    IntervalTimeline,
    MappingTrace,
    PlannedComm,
    Schedule,
    SimulationClock,
    ValidationError,
    execute_schedule,
    run_with_churn,
    run_with_machine_loss,
    validate_schedule,
)
from repro.workload import (
    PAPER_N_TASKS,
    PRIMARY,
    SECONDARY,
    DagSpec,
    DataSpec,
    EtcSpec,
    Scenario,
    ScenarioSpec,
    TaskGraph,
    Version,
    generate_dag,
    generate_data_sizes,
    generate_etc,
    generate_release_times,
    generate_scenario,
    generate_scenario_suite,
    paper_scaled_grid,
    paper_scaled_spec,
    paper_scaled_suite,
)
from repro.heuristics import (
    HEURISTIC_NAMES,
    WEIGHTED_HEURISTICS,
    make_scheduler,
    run_heuristic,
)
from repro.workload.scenario import PAPER_TAU, ScenarioSuite

__version__ = "1.0.0"

__all__ = [
    # grid
    "MachineClass", "MachineSpec", "FAST_MACHINE", "SLOW_MACHINE",
    "GridConfig", "make_case", "CASE_A", "CASE_B", "CASE_C", "PAPER_CASES",
    "NetworkModel", "EnergyLedger",
    # workload
    "Version", "PRIMARY", "SECONDARY", "EtcSpec", "generate_etc",
    "DagSpec", "TaskGraph", "generate_dag", "DataSpec", "generate_data_sizes",
    "Scenario", "ScenarioSpec", "ScenarioSuite", "generate_scenario",
    "generate_release_times",
    "generate_scenario_suite", "PAPER_TAU", "PAPER_N_TASKS",
    "paper_scaled_spec", "paper_scaled_grid", "paper_scaled_suite",
    # sim
    "IntervalTimeline", "Schedule", "Assignment", "ExecutionPlan",
    "PlannedComm", "SimulationClock", "MappingTrace",
    "validate_schedule", "ValidationError",
    # core
    "Weights", "ObjectiveFunction", "FeasibilityChecker", "Candidate",
    "build_candidate_pool", "SlrhConfig", "SlrhScheduler",
    "SLRH1", "SLRH2", "SLRH3", "MappingResult",
    "AdaptiveWeightController", "adaptive_slrh",
    # baselines & bounds
    "MaxMaxScheduler", "MaxMaxConfig", "MinMinScheduler", "GreedyScheduler",
    "OlbScheduler", "MetScheduler", "LrnnScheduler", "LrnnConfig",
    "calibrate_tau", "upper_bound", "upper_bound_strict", "UpperBoundResult",
    # dynamics & analysis
    "execute_schedule", "run_with_machine_loss",
    "ChurnEvent", "ChurnOutcome", "run_with_churn",
    "compute_stats", "energy_profile", "render_gantt",
    "critical_path_bound", "efficiency", "schedule_slack", "critical_chain",
    # heuristic registry (shared by CLI + service dispatch)
    "HEURISTIC_NAMES", "WEIGHTED_HEURISTICS", "make_scheduler", "run_heuristic",
    "__version__",
]
