"""Unit conventions used throughout the reproduction.

The paper mixes three unit systems:

* **time** — wall-clock seconds in the simulation model, but the SLRH loop is
  *clock-driven* with a cycle of 0.1 s (§IV); ΔT and H are quoted in cycles.
* **data** — megabits per second for bandwidth, so data item sizes are bits.
* **energy** — abstract "energy units" (Table 2).

Internally every quantity is stored in base units (seconds, bits, energy
units); these helpers convert at the API boundary.
"""

from __future__ import annotations

#: Duration of one simulation clock cycle, in seconds (§IV).
CYCLE_SECONDS: float = 0.1

#: One megabit, in bits.
MEGABIT: float = 1e6


def cycles_to_seconds(cycles: float) -> float:
    """Convert a duration in clock cycles to seconds."""
    return cycles * CYCLE_SECONDS


def seconds_to_cycles(seconds: float) -> float:
    """Convert a duration in seconds to (fractional) clock cycles."""
    return seconds / CYCLE_SECONDS
