"""Deterministic random-stream derivation.

The paper's experiments combine 10 ETC matrices with 10 DAGs in three grid
configurations; all 100 scenarios must be reproducible.  We follow the
``numpy.random.SeedSequence`` discipline: a single root seed is spawned into
independent child streams, one per generated artefact, so adding a new
artefact never perturbs existing ones.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

#: Anything acceptable as a seed: ``None`` (non-reproducible), an int, a
#: :class:`numpy.random.SeedSequence`, or an existing ``Generator``.
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    An existing ``Generator`` is passed through untouched, so callers can
    thread a single stream through multiple helpers when they want coupled
    draws.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, n: int) -> list[np.random.SeedSequence]:
    """Derive *n* independent child seed sequences from *seed*.

    Raises
    ------
    TypeError
        If *seed* is a ``Generator`` — generators cannot be spawned without
        consuming entropy from the parent stream, which would make sibling
        artefacts order-dependent.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "cannot spawn child seeds from a Generator; pass an int or "
            "SeedSequence so children are order-independent"
        )
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds")
    if isinstance(seed, np.random.SeedSequence):
        return seed.spawn(n)
    return np.random.SeedSequence(seed).spawn(n)


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive *n* independent generators from *seed* (see :func:`spawn_seeds`)."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


def stable_choice(rng: np.random.Generator, options: Sequence) -> object:
    """Pick one element of *options* uniformly; errors on empty input."""
    if len(options) == 0:
        raise ValueError("cannot choose from an empty sequence")
    return options[int(rng.integers(len(options)))]
