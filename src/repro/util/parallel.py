"""Process-pool fan-out shared by the experiment and tuning drivers.

Every study in :mod:`repro.experiments` and :mod:`repro.tuning` is an
embarrassingly parallel grid — independent (heuristic, scenario,
weight-point) cells, each reproducible from its own
``SeedSequence.spawn`` stream — so fanning them over a
:class:`~concurrent.futures.ProcessPoolExecutor` is safe by construction.
The worker count comes from an explicit ``n_jobs`` argument, else the
``REPRO_JOBS`` environment variable (the CLI's ``--jobs`` flag sets it),
else 1; ``n_jobs == 1`` runs serially in-process with no executor, so the
serial path stays exactly the pre-parallel code path.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def resolve_jobs(n_jobs: int | None = None) -> int:
    """Effective worker count: *n_jobs*, else ``$REPRO_JOBS``, else 1."""
    if n_jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if raw:
            try:
                n_jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {raw!r}"
                ) from None
        else:
            n_jobs = 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    return n_jobs


def parallel_starmap(
    fn: Callable[..., T],
    argtuples: Iterable[Sequence],
    n_jobs: int | None = None,
    chunksize: int | None = None,
) -> list[T]:
    """Order-preserving ``[fn(*args) for args in argtuples]``, fanned over
    a process pool when the effective job count exceeds 1.

    *fn* and every argument must be picklable (module-level functions,
    plain dataclasses).  Results come back in input order, so callers can
    keep the deterministic merge logic of their serial loops.
    """
    argtuples = [tuple(args) for args in argtuples]
    n_jobs = resolve_jobs(n_jobs)
    if n_jobs == 1 or len(argtuples) <= 1:
        return [fn(*args) for args in argtuples]
    from concurrent.futures import ProcessPoolExecutor

    if chunksize is None:
        chunksize = max(1, len(argtuples) // (4 * n_jobs))
    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        return list(pool.map(fn, *zip(*argtuples), chunksize=chunksize))
