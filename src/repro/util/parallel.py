"""Process-pool fan-out shared by the experiment and tuning drivers.

Every study in :mod:`repro.experiments` and :mod:`repro.tuning` is an
embarrassingly parallel grid — independent (heuristic, scenario,
weight-point) cells, each reproducible from its own
``SeedSequence.spawn`` stream — so fanning them over a
:class:`~concurrent.futures.ProcessPoolExecutor` is safe by construction.
The worker count comes from an explicit ``n_jobs`` argument, else the
``REPRO_JOBS`` environment variable (the CLI's ``--jobs`` flag sets it),
else 1; ``n_jobs == 1`` runs serially in-process with no executor, so the
serial path stays exactly the pre-parallel code path.  ``auto`` (either
spelling) resolves to :func:`os.cpu_count`.

Two entry points:

* :func:`parallel_starmap` — one-shot fan-out; spins an executor up and
  down around a single batch (the batch drivers' historical behaviour).
* :class:`WorkerPool` — a *persistent* pool for long-running callers: the
  executor is created lazily on first use and reused across batches, so
  steady-state request batches don't pay process-startup cost.
  ``parallel_starmap(..., pool=...)`` routes a batch through an existing
  pool.
* :class:`ShardProcess` — a single *long-lived*, *stateful* child process
  driven over a command pipe with a result queue coming back.  Unlike the
  executor pools above, the child keeps process-resident state between
  calls (the :mod:`repro.service` shard layer parks hot deserialised
  scenarios and live session kernels there).  Calls are synchronous RPCs
  serialised by a lock; a dead child is *detected* (liveness polled while
  waiting on the result queue) and surfaces as
  :class:`ShardCrashedError`, never as a hang.
"""

from __future__ import annotations

import os
import queue as _queue
import threading
import time
from typing import Any, Callable, Iterable, Sequence, TypeVar, Union

T = TypeVar("T")

JobsLike = Union[int, str, None]


def _coerce_count(value: int | str, what: str) -> int:
    """Parse a worker/shard count: an int, digits, or ``'auto'``."""
    if isinstance(value, str):
        text = value.strip()
        if text.lower() == "auto":
            value = os.cpu_count() or 1
        else:
            try:
                value = int(text)
            except ValueError:
                raise ValueError(
                    f"{what} must be an integer or 'auto', got {text!r}"
                ) from None
    if value < 1:
        raise ValueError(f"{what} must be >= 1, got {value}")
    return value


def resolve_jobs(n_jobs: JobsLike = None) -> int:
    """Effective worker count: *n_jobs*, else ``$REPRO_JOBS``, else 1.

    Either source accepts the literal string ``"auto"`` (case-insensitive),
    which resolves to :func:`os.cpu_count` (floored at 1 when the count is
    unknown).
    """
    if n_jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        n_jobs = raw if raw else 1
    return _coerce_count(n_jobs, "jobs")


def resolve_shards(shards: JobsLike = None) -> int:
    """Effective shard count: *shards*, else ``$REPRO_SHARDS``, else 1.

    Same grammar as :func:`resolve_jobs` (``'auto'`` →
    :func:`os.cpu_count`); only the argument and environment sources
    differ, so ``--shards`` and ``--jobs`` stay independently settable.
    """
    if shards is None:
        raw = os.environ.get("REPRO_SHARDS", "").strip()
        shards = raw if raw else 1
    return _coerce_count(shards, "shards")


class ShardCrashedError(RuntimeError):
    """The shard child process died before answering a call.

    The contract is *failure surfaced, never a hang*: callers waiting on
    a result observe this exception within one liveness-poll interval of
    the child's death, and every later call on the same process fails
    fast with it too (a dead shard stays dead; restarts are a deployment
    concern, not a library one).
    """


class ShardProcess:
    """One long-lived child process behind a command-pipe RPC.

    The parent sends picklable command tuples down a one-way pipe; the
    child's *main* function (``main(cmd_conn, result_queue, index,
    *args)``) answers every command with exactly one reply tuple on the
    result queue.  :meth:`call` pairs one send with one receive under a
    lock, so concurrent callers interleave at whole-call granularity —
    the child never sees interleaved commands and replies cannot be
    misattributed.

    Liveness: while waiting for a reply the parent wakes every
    ``poll_seconds`` to check the child is still alive; a dead child
    raises :class:`ShardCrashedError` (after one final drain of the
    result queue, closing the race where the reply was already in
    flight).  :attr:`last_beat` is the monotonic time of the last message
    received — the per-shard heartbeat ``/healthz`` reports.
    """

    _POLL_SECONDS = 0.25

    def __init__(
        self,
        main: Callable[..., None],
        index: int = 0,
        args: Sequence[Any] = (),
        poll_seconds: float = _POLL_SECONDS,
    ) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context()
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        self.index = index
        self._results = ctx.Queue()
        self._proc = ctx.Process(
            target=main,
            args=(recv_conn, self._results, index, *args),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self._cmd = send_conn
        self._child_end = recv_conn
        self._poll = poll_seconds
        self._lock = threading.Lock()
        self._started = False
        self._stopped = False
        self.last_beat = 0.0

    def start(self) -> "ShardProcess":
        """Fork the child (idempotent); returns self."""
        with self._lock:
            if not self._started:
                self._proc.start()
                self._child_end.close()  # the child's end lives in the child
                self._started = True
                self.last_beat = time.monotonic()
        return self

    @property
    def pid(self) -> int | None:
        return self._proc.pid if self._started else None

    def alive(self) -> bool:
        return self._started and not self._stopped and self._proc.is_alive()

    def call(self, *command: Any) -> Any:
        """Send *command* and block for its reply (lock-serialised RPC).

        Raises :class:`ShardCrashedError` when the child is (or dies)
        mid-call — detected by liveness polling, so a crash never leaves
        the caller blocked forever.
        """
        with self._lock:
            return self._call_holding_lock(*command)

    def try_call(self, *command: Any) -> Any | None:
        """Like :meth:`call` but returns None instead of blocking when
        another call is in flight (used for non-blocking heartbeats)."""
        if not self._lock.acquire(blocking=False):
            return None
        try:
            return self._call_holding_lock(*command)
        finally:
            self._lock.release()

    def _call_holding_lock(self, *command: Any) -> Any:
        # requires-lock: _lock
        if not self._started or self._stopped or not self._proc.is_alive():
            raise ShardCrashedError(
                f"shard {self.index} is not running (pid={self.pid})"
            )
        try:
            self._cmd.send(command)
        except (BrokenPipeError, OSError) as exc:
            raise ShardCrashedError(
                f"shard {self.index} (pid={self.pid}) pipe is closed: {exc}"
            ) from None
        deadline_drain = False
        while True:
            try:
                reply = self._results.get(timeout=self._poll)
            except _queue.Empty:
                if deadline_drain:
                    raise ShardCrashedError(
                        f"shard {self.index} (pid={self.pid}) died while "
                        f"handling {command[0]!r}"
                    ) from None
                if not self._proc.is_alive():
                    # One final drain: the reply may already be in flight.
                    deadline_drain = True
                continue
            self.last_beat = time.monotonic()
            return reply

    def stop(self, timeout: float = 5.0) -> None:
        """Ask the child to exit, then make sure it did.  Idempotent."""
        with self._lock:
            if not self._started or self._stopped:
                self._stopped = True
                return
            self._stopped = True
            try:
                self._cmd.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            self._cmd.close()
        self._proc.join(timeout=timeout)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=timeout)
        self._results.close()
        self._results.cancel_join_thread()


class WorkerPool:
    """A reusable process pool with the :func:`parallel_starmap` contract.

    The underlying :class:`~concurrent.futures.ProcessPoolExecutor` is
    created lazily on the first batch whose effective job count exceeds 1
    and then *kept* until :meth:`shutdown` — unlike
    :func:`parallel_starmap`'s historical one-executor-per-call behaviour.
    With ``n_jobs == 1`` no executor ever exists and every batch runs
    serially in the calling thread, which keeps single-worker deployments
    (and tests) free of process-spawn latency while preserving bit-exact
    results at any job count.

    Thread-safe: concurrent :meth:`starmap` calls from several dispatcher
    threads share one executor.
    """

    def __init__(self, n_jobs: JobsLike = None) -> None:
        self.n_jobs = resolve_jobs(n_jobs)
        self._lock = threading.Lock()
        self._executor = None
        self._closed = False

    def _ensure_executor(self):
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is shut down")
            if self._executor is None:
                from concurrent.futures import ProcessPoolExecutor

                self._executor = ProcessPoolExecutor(max_workers=self.n_jobs)
            return self._executor

    @property
    def started(self) -> bool:
        """Whether the underlying executor has been created."""
        return self._executor is not None

    def starmap(
        self,
        fn: Callable[..., T],
        argtuples: Iterable[Sequence],
        chunksize: int | None = None,
    ) -> list[T]:
        """Order-preserving ``[fn(*args) for args in argtuples]`` over the
        persistent pool (serial in-process when ``n_jobs == 1``)."""
        argtuples = [tuple(args) for args in argtuples]
        if self.n_jobs == 1 or len(argtuples) <= 1:
            return [fn(*args) for args in argtuples]
        if chunksize is None:
            chunksize = max(1, len(argtuples) // (4 * self.n_jobs))
        executor = self._ensure_executor()
        return list(executor.map(fn, *zip(*argtuples), chunksize=chunksize))

    def shutdown(self, wait: bool = True) -> None:
        """Stop the executor (idempotent); the pool is unusable afterwards."""
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def parallel_starmap(
    fn: Callable[..., T],
    argtuples: Iterable[Sequence],
    n_jobs: JobsLike = None,
    chunksize: int | None = None,
    pool: WorkerPool | None = None,
) -> list[T]:
    """Order-preserving ``[fn(*args) for args in argtuples]``, fanned over
    a process pool when the effective job count exceeds 1.

    *fn* and every argument must be picklable (module-level functions,
    plain dataclasses).  Results come back in input order, so callers can
    keep the deterministic merge logic of their serial loops.

    With *pool*, the batch runs through that persistent :class:`WorkerPool`
    (its job count wins and no per-call executor is created); otherwise an
    executor is spun up and torn down around this one call.
    """
    if pool is not None:
        return pool.starmap(fn, argtuples, chunksize=chunksize)
    argtuples = [tuple(args) for args in argtuples]
    n_jobs = resolve_jobs(n_jobs)
    if n_jobs == 1 or len(argtuples) <= 1:
        return [fn(*args) for args in argtuples]
    from concurrent.futures import ProcessPoolExecutor

    if chunksize is None:
        chunksize = max(1, len(argtuples) // (4 * n_jobs))
    with ProcessPoolExecutor(max_workers=n_jobs) as pool_:
        return list(pool_.map(fn, *zip(*argtuples), chunksize=chunksize))
