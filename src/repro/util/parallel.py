"""Process-pool fan-out shared by the experiment and tuning drivers.

Every study in :mod:`repro.experiments` and :mod:`repro.tuning` is an
embarrassingly parallel grid — independent (heuristic, scenario,
weight-point) cells, each reproducible from its own
``SeedSequence.spawn`` stream — so fanning them over a
:class:`~concurrent.futures.ProcessPoolExecutor` is safe by construction.
The worker count comes from an explicit ``n_jobs`` argument, else the
``REPRO_JOBS`` environment variable (the CLI's ``--jobs`` flag sets it),
else 1; ``n_jobs == 1`` runs serially in-process with no executor, so the
serial path stays exactly the pre-parallel code path.  ``auto`` (either
spelling) resolves to :func:`os.cpu_count`.

Two entry points:

* :func:`parallel_starmap` — one-shot fan-out; spins an executor up and
  down around a single batch (the batch drivers' historical behaviour).
* :class:`WorkerPool` — a *persistent* pool for long-running callers (the
  :mod:`repro.service` daemon): the executor is created lazily on first
  use and reused across batches, so steady-state request batches don't
  pay process-startup cost.  ``parallel_starmap(..., pool=...)`` routes a
  batch through an existing pool.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Iterable, Sequence, TypeVar, Union

T = TypeVar("T")

JobsLike = Union[int, str, None]


def resolve_jobs(n_jobs: JobsLike = None) -> int:
    """Effective worker count: *n_jobs*, else ``$REPRO_JOBS``, else 1.

    Either source accepts the literal string ``"auto"`` (case-insensitive),
    which resolves to :func:`os.cpu_count` (floored at 1 when the count is
    unknown).
    """
    if n_jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if raw:
            n_jobs = raw
        else:
            n_jobs = 1
    if isinstance(n_jobs, str):
        text = n_jobs.strip()
        if text.lower() == "auto":
            n_jobs = os.cpu_count() or 1
        else:
            try:
                n_jobs = int(text)
            except ValueError:
                raise ValueError(
                    f"jobs must be an integer or 'auto', got {n_jobs!r}"
                ) from None
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    return n_jobs


class WorkerPool:
    """A reusable process pool with the :func:`parallel_starmap` contract.

    The underlying :class:`~concurrent.futures.ProcessPoolExecutor` is
    created lazily on the first batch whose effective job count exceeds 1
    and then *kept* until :meth:`shutdown` — unlike
    :func:`parallel_starmap`'s historical one-executor-per-call behaviour.
    With ``n_jobs == 1`` no executor ever exists and every batch runs
    serially in the calling thread, which keeps single-worker deployments
    (and tests) free of process-spawn latency while preserving bit-exact
    results at any job count.

    Thread-safe: concurrent :meth:`starmap` calls from several dispatcher
    threads share one executor.
    """

    def __init__(self, n_jobs: JobsLike = None) -> None:
        self.n_jobs = resolve_jobs(n_jobs)
        self._lock = threading.Lock()
        self._executor = None
        self._closed = False

    def _ensure_executor(self):
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is shut down")
            if self._executor is None:
                from concurrent.futures import ProcessPoolExecutor

                self._executor = ProcessPoolExecutor(max_workers=self.n_jobs)
            return self._executor

    @property
    def started(self) -> bool:
        """Whether the underlying executor has been created."""
        return self._executor is not None

    def starmap(
        self,
        fn: Callable[..., T],
        argtuples: Iterable[Sequence],
        chunksize: int | None = None,
    ) -> list[T]:
        """Order-preserving ``[fn(*args) for args in argtuples]`` over the
        persistent pool (serial in-process when ``n_jobs == 1``)."""
        argtuples = [tuple(args) for args in argtuples]
        if self.n_jobs == 1 or len(argtuples) <= 1:
            return [fn(*args) for args in argtuples]
        if chunksize is None:
            chunksize = max(1, len(argtuples) // (4 * self.n_jobs))
        executor = self._ensure_executor()
        return list(executor.map(fn, *zip(*argtuples), chunksize=chunksize))

    def shutdown(self, wait: bool = True) -> None:
        """Stop the executor (idempotent); the pool is unusable afterwards."""
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def parallel_starmap(
    fn: Callable[..., T],
    argtuples: Iterable[Sequence],
    n_jobs: JobsLike = None,
    chunksize: int | None = None,
    pool: WorkerPool | None = None,
) -> list[T]:
    """Order-preserving ``[fn(*args) for args in argtuples]``, fanned over
    a process pool when the effective job count exceeds 1.

    *fn* and every argument must be picklable (module-level functions,
    plain dataclasses).  Results come back in input order, so callers can
    keep the deterministic merge logic of their serial loops.

    With *pool*, the batch runs through that persistent :class:`WorkerPool`
    (its job count wins and no per-call executor is created); otherwise an
    executor is spun up and torn down around this one call.
    """
    if pool is not None:
        return pool.starmap(fn, argtuples, chunksize=chunksize)
    argtuples = [tuple(args) for args in argtuples]
    n_jobs = resolve_jobs(n_jobs)
    if n_jobs == 1 or len(argtuples) <= 1:
        return [fn(*args) for args in argtuples]
    from concurrent.futures import ProcessPoolExecutor

    if chunksize is None:
        chunksize = max(1, len(argtuples) // (4 * n_jobs))
    with ProcessPoolExecutor(max_workers=n_jobs) as pool_:
        return list(pool_.map(fn, *zip(*argtuples), chunksize=chunksize))
