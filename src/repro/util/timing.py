"""Wall-clock timing of heuristic bodies.

Figure 6 of the paper reports the *heuristic execution time* — the CPU cost
of running the mapper itself, excluding workload generation and result
bookkeeping.  :class:`Stopwatch` accumulates only the intervals explicitly
bracketed by the mapper, mirroring the paper's note that 15–20 % of its
reported time was instrumentation that could be removed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch with pause/resume semantics.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass  # timed region
    >>> sw.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop and return total elapsed seconds so far."""
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
