"""Shared utilities: seeding discipline, unit conversions, timing helpers.

Everything in :mod:`repro` that draws random numbers takes an explicit seed
(or a :class:`numpy.random.Generator`); the helpers here centralise how child
streams are derived so that experiments are reproducible bit-for-bit across
runs and machines.
"""

from repro.util.seeding import (
    SeedLike,
    as_generator,
    spawn_generators,
    spawn_seeds,
)
from repro.util.timing import Stopwatch
from repro.util.units import (
    CYCLE_SECONDS,
    MEGABIT,
    cycles_to_seconds,
    seconds_to_cycles,
)

__all__ = [
    "SeedLike",
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "Stopwatch",
    "CYCLE_SECONDS",
    "MEGABIT",
    "cycles_to_seconds",
    "seconds_to_cycles",
]
