"""The mutable mapping state shared by every heuristic.

A :class:`Schedule` tracks, for one :class:`~repro.workload.scenario.Scenario`:

* per-machine execution calendars and in/out comm-channel calendars
  (:class:`~repro.sim.timeline.IntervalTimeline`);
* the energy ledger (:class:`~repro.grid.energy.EnergyLedger`) — debited at
  commit time, per §IV;
* committed :class:`Assignment` records and the running aggregates the
  objective function needs (T100, TEC, AET).

Heuristics interact through a two-phase protocol:

1. :meth:`Schedule.plan` computes a tentative :class:`ExecutionPlan` for a
   (subtask, version, machine) triple — earliest start honouring precedence,
   channel capacity and the "never look backward" clock rule — without
   mutating anything;
2. :meth:`Schedule.commit` applies a plan atomically (calendar reservations
   plus energy debits).

:meth:`Schedule.unassign` rolls a committed assignment back (used by the
dynamic machine-loss engine), provided none of its children are mapped.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.core.constants import EPSILON
from repro.grid.energy import EnergyLedger
from repro.obs.spans import NULL_TRACER
from repro.perf import PerfCounters
from repro.sim.timeline import _EPS, IntervalTimeline, earliest_common_gap
from repro.workload.scenario import Scenario
from repro.workload.versions import Version


def _plan_cache_default() -> bool:
    """Plan caching defaults on; ``REPRO_PLAN_CACHE=0`` disables it."""
    return os.environ.get("REPRO_PLAN_CACHE", "1").strip().lower() not in (
        "0", "off", "false", "no",
    )


@dataclass(frozen=True)
class PlannedComm:
    """One scheduled parent→child data transfer."""

    parent: int
    child: int
    src: int
    dst: int
    bits: float
    start: float
    finish: float
    energy: float  # debited from the *sender* machine `src`

    @property
    def duration(self) -> float:
        return self.finish - self.start


def _new_planned_comm(
    parent: int,
    child: int,
    src: int,
    dst: int,
    bits: float,
    start: float,
    finish: float,
    energy: float,
) -> PlannedComm:
    """:class:`PlannedComm` without the frozen-dataclass ``__init__`` —
    which pays one ``object.__setattr__`` per field.  Filling the instance
    ``__dict__`` directly builds an indistinguishable instance (same
    ``==``, ``repr``, ``replace``) at about a third of the cost; this
    constructor sits under every channel-slot search."""
    c = object.__new__(PlannedComm)
    c.__dict__.update({
        "parent": parent,
        "child": child,
        "src": src,
        "dst": dst,
        "bits": bits,
        "start": start,
        "finish": finish,
        "energy": energy,
    })
    return c


@dataclass(frozen=True)
class Assignment:
    """A committed (subtask, version, machine) execution."""

    task: int
    version: Version
    machine: int
    start: float
    finish: float
    energy: float  # execution energy on `machine`
    comms: tuple[PlannedComm, ...] = ()

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class ExecutionPlan:
    """Tentative assignment produced by :meth:`Schedule.plan`.

    ``energy_delta`` is the *total* system energy this plan would consume
    (execution on the target machine plus transmit energy on every sending
    machine) — the quantity the objective's TEC term moves by.
    """

    task: int
    version: Version
    machine: int
    start: float
    finish: float
    exec_energy: float
    comms: tuple[PlannedComm, ...]
    energy_delta: float
    #: Earliest start given *precedence and communication* requirements only
    #: (clamped to the planning clock) — ignores the machine's own queue.
    #: This is the quantity the SLRH horizon test uses (§IV): a subtask is
    #: horizon-eligible when its inputs arrive within [t, t+H], even if the
    #: target machine's committed work pushes actual execution later.
    data_ready: float = 0.0
    feasible: bool = True
    reason: str = ""

    @property
    def duration(self) -> float:
        return self.finish - self.start


class _PlanCacheEntry:
    """One memoised planning result for a (task, machine, insertion) triple.

    Two layers of reuse, validated lazily at lookup time:

    * the **comm plan** (the expensive channel-slot search) — valid while
      the parents' assignments are unchanged (``parent_epoch``), the
      requested ``not_before`` does not precede any cached transfer start,
      and every channel calendar it read is either unchanged (version
      match) or has only *gained* reservations since (release counter
      match) that leave every cached transfer slot free — reservations
      only shrink gaps, so a still-free earliest slot stays earliest;
    * the **full plan pair** — additionally requires the target machine's
      execution calendar to be compatible (same rule; append-only
      placement depends on the calendar tail, so any mutation invalidates
      it), the offline state of every involved machine to be unchanged,
      and the plans' energy verdicts to be reproducible: feasible plans
      recheck their stored per-machine demand against current available
      energy, infeasible ones additionally pin the exact energy values
      their reason string embeds.
    """

    __slots__ = (
        "parent_epoch", "dep_machines", "insertion",
        "comms", "dr_floor", "min_comm_start", "comm_nb",
        "in_version", "in_release", "out_versions",
        "pair", "pair_nb", "exec_version", "exec_release",
        "offline", "offline_sig", "demands", "infeas_sig",
        # Immutable creation-time facts backing the comm-train *replay*
        # (see Schedule._shift_comms): per-comm lower-bound floors and
        # original starts, the free-window ends around those starts, the
        # data-ready floor excluding transfers, and the exact channel
        # versions the windows were read from.
        "lb_floors", "base_starts", "window_ends", "local_floor",
        "base_in_version", "base_out_versions",
    )


class Schedule:
    """Mutable mapping state for one scenario (see module docstring).

    Communication-energy reserves
    -----------------------------
    The §IV feasibility rule promises that a mapped subtask can "communicate
    all the resulting data items to wherever they might need to go".  A
    check at mapping time alone cannot keep that promise: later assignments
    may drain the machine, wedging the whole mapping (children of a
    zero-battery machine become unschedulable *everywhere*, because their
    input data can no longer be transmitted).  With ``hold_comm_reserves``
    (the default), committing a subtask therefore also *holds* the
    worst-case outgoing-communication energy for each of its (necessarily
    unmapped) children; when a child is later mapped, the per-edge reserve
    is released and the actual transfer energy — never larger, since the
    worst-case link is the slowest — is debited.  Available energy for new
    work is ``remaining − reserved``.  Disabling the flag reproduces the
    naive check-only behaviour (used by the feasibility ablation bench).
    """

    def __init__(
        self,
        scenario: Scenario,
        hold_comm_reserves: bool = True,
        plan_cache: bool | None = None,
        perf: PerfCounters | None = None,
        tracer=None,
    ) -> None:
        self.scenario = scenario
        self.hold_comm_reserves = hold_comm_reserves
        #: Performance counter registry (see :mod:`repro.perf`).
        self.perf = perf if perf is not None else PerfCounters()
        #: Span tracer (see :mod:`repro.obs.spans`); the shared null tracer
        #: unless a caller opts into tracing, so span sites cost two no-op
        #: calls on the default path.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.plan_cache_enabled = (
            _plan_cache_default() if plan_cache is None else plan_cache
        )
        # task -> (machine, insertion) -> _PlanCacheEntry; dropped per task
        # at commit, validated lazily against timeline versions and
        # energy/offline signatures at every lookup.
        self._plan_cache: dict[int, dict[tuple[int, bool], _PlanCacheEntry]] = {}
        # Per-task epoch of the *parents'* assignments: bumped for every
        # child when a task commits or unassigns.  Equality proves a cached
        # comm plan's inputs (parent machine/version/finish) are unchanged
        # without rebuilding a signature tuple per lookup.
        self._parent_epoch = [0] * scenario.n_tasks
        # (task, machine, version) -> summed worst-case outgoing transfer
        # energy; a pure function of the static scenario, always memoised.
        self._wc_out: dict[tuple[int, int, Version], float] = {}
        # (task, machine) -> ((dur, energy) per version) — static scenario
        # facts read on every tentative plan, memoised past the ETC-matrix
        # indexing and version scaling.
        self._exec_static: dict[tuple[int, int], tuple[tuple[float, float], ...]] = {}
        n_machines = scenario.n_machines
        self.exec_timeline = [IntervalTimeline() for _ in range(n_machines)]
        self.out_channel = [IntervalTimeline() for _ in range(n_machines)]
        self.in_channel = [IntervalTimeline() for _ in range(n_machines)]
        self.energy = EnergyLedger(scenario.grid)
        self.assignments: dict[int, Assignment] = {}
        self._unmapped_parents = [len(p) for p in scenario.dag.parents]
        self._ready = {t for t, c in enumerate(self._unmapped_parents) if c == 0}
        # Lazily sorted view of _ready (see ready_sorted); cleared by any
        # mutation of the ready set.
        self._ready_sorted: tuple[int, ...] | None = None
        # Maintained complement of `assignments` so unmapped_tasks() never
        # rescans range(n_tasks); commit/unassign keep it in lockstep.
        self._unmapped = set(range(scenario.n_tasks))
        self._t100 = 0
        self._makespan = 0.0
        # Held outgoing-comm reserves: per machine total and per DAG edge.
        self._reserved = [0.0] * n_machines
        self._edge_reserve: dict[tuple[int, int], float] = {}
        # Energy consumed outside any assignment (sunk cost after a machine
        # loss); validation reconciles the ledger against assignments plus
        # these.
        self.external_debits = [0.0] * n_machines
        # Machines currently absent from the ad hoc grid (churn engine).
        self.offline: set[int] = set()
        # Live per-task release (arrival) times, initialised from the
        # scenario.  Streaming sessions declare mid-run arrivals through
        # set_release (a held task sits at +inf until its arrival event);
        # every planning/pool path reads this list, never the scenario, so
        # a task arriving between replan segments is gated exactly like a
        # statically-released one.
        self._release_times = [
            scenario.release(t) for t in range(scenario.n_tasks)
        ]

    # -- aggregate metrics --------------------------------------------------

    @property
    def t100(self) -> int:
        """Number of subtasks mapped at their primary version."""
        return self._t100

    @property
    def makespan(self) -> float:
        """AET — finish time of the last mapped subtask (0 when empty)."""
        return self._makespan

    @property
    def total_energy_consumed(self) -> float:
        """TEC over all machines."""
        return self.energy.total_energy_consumed

    @property
    def total_system_energy(self) -> float:
        """TSE over all machines."""
        return self.energy.total_system_energy

    @property
    def n_mapped(self) -> int:
        return len(self.assignments)

    @property
    def is_complete(self) -> bool:
        """Whether every subtask has been mapped."""
        return len(self.assignments) == self.scenario.n_tasks

    def meets_constraints(self) -> bool:
        """Complete mapping within τ (energy holds by construction)."""
        return self.is_complete and self._makespan <= self.scenario.tau + EPSILON

    # -- task-state queries --------------------------------------------------

    def is_mapped(self, task: int) -> bool:
        return task in self.assignments

    def ready_tasks(self) -> frozenset[int]:
        """Unmapped subtasks whose parents are all mapped — the raw pool
        from which the feasibility filter builds U."""
        return frozenset(self._ready)

    def ready_sorted(self) -> tuple[int, ...]:
        """:meth:`ready_tasks` in ascending task order, cached between
        mutations — the iteration order of every pool maintenance path, so
        the per-tick scans share one sort instead of re-sorting a frozenset."""
        cached = self._ready_sorted
        if cached is None:
            cached = self._ready_sorted = tuple(sorted(self._ready))
        return cached

    def parent_epochs(self) -> list[int]:
        """Per-task epoch of the parents' assignments (read-only view).

        Bumped for every child when a task commits or unassigns; pool
        maintainers stamp entries against it to prove a candidate's comm
        inputs are unchanged.  Callers must not mutate the list.
        """
        return self._parent_epoch

    def aggregate_state(self) -> tuple[int, float, float]:
        """The (T100, TEC, AET) triple every candidate score depends on —
        one accessor so pool maintainers snapshot it without three
        attribute walks."""
        return (self._t100, self.energy.total_energy_consumed, self._makespan)

    def unmapped_tasks(self) -> list[int]:
        return sorted(self._unmapped)

    def machine_available(self, j: int, clock: float) -> bool:
        """SLRH availability test (§IV): machine *j* is part of the grid and
        has no execution work committed at or beyond the current *clock*."""
        if j in self.offline:
            return False
        return not self.exec_timeline[j].has_work_at_or_after(clock)

    def set_offline(self, j: int, offline: bool = True) -> None:
        """Mark machine *j* absent from (or returned to) the ad hoc grid.

        Offline machines fail the availability test and every plan
        targeting them; existing assignments are untouched — the churn
        engine decides what to roll back.
        """
        if not 0 <= j < self.scenario.n_machines:
            raise IndexError(f"no machine {j}")
        if offline:
            self.offline.add(j)
        else:
            self.offline.discard(j)

    def available_energy(self, j: int) -> float:
        """Battery remaining on *j* minus held communication reserves —
        the budget new work may draw on."""
        return self.energy.remaining(j) - self._reserved[j]

    def release(self, task: int) -> float:
        """Effective release (arrival) time of *task* — the scenario's
        static release unless :meth:`set_release` moved it (streamed
        arrivals; ``math.inf`` = not yet arrived)."""
        return self._release_times[task]

    def release_times_view(self) -> list[float]:
        """The live per-task release list (read-only view for pool
        maintainers — index it, never mutate it)."""
        return self._release_times

    def set_release(self, task: int, at: float) -> None:
        """Declare *task*'s effective release time (a streamed arrival).

        Raises for mapped tasks: an assignment's start time was planned
        against the old release and cannot be retroactively legalised —
        sessions hold unarrived tasks at ``math.inf`` from the start, so a
        release only ever moves downward onto an unmapped task.
        """
        if not 0 <= task < self.scenario.n_tasks:
            raise IndexError(f"no task {task}")
        if at < 0.0:
            raise ValueError("release times must be non-negative")
        if task in self.assignments:
            raise ValueError(
                f"task {task} is already mapped; its release cannot move"
            )
        self._release_times[task] = at
        # A cached comm plan stores local_floor — the release at planning
        # time — as an immutable replay fact, so the task's entries are
        # stale the moment the release moves.
        self._plan_cache.pop(task, None)

    def exec_facts(self, task: int, machine: int) -> tuple[tuple[float, float], ...]:
        """Static ``(duration, energy)`` per version for (*task*, *machine*)
        — pure scenario facts, memoised past the ETC-matrix indexing and
        version scaling; shared by planning and the columnar scorer."""
        facts = self._exec_static.get((task, machine))
        if facts is None:
            scenario = self.scenario
            facts = tuple(
                (
                    scenario.exec_time(task, machine, v),
                    scenario.compute_energy(task, machine, v),
                )
                for v in (Version.PRIMARY, Version.SECONDARY)
            )
            self._exec_static[(task, machine)] = facts
        return facts

    def reserved_energy(self, j: int) -> float:
        """Communication energy currently held in reserve on machine *j*."""
        return self._reserved[j]

    def _worst_case_outgoing(self, task: int, machine: int, version: Version) -> float:
        """Summed worst-case transfer energy for *task*'s outputs from
        *machine* at *version* — static per scenario, hence memoised."""
        key = (task, machine, version)
        cached = self._wc_out.get(key)
        if cached is None:
            scenario = self.scenario
            cached = sum(
                scenario.network.worst_case_transfer_energy(
                    machine, scenario.data_bits(task, child, version)
                )
                for child in scenario.dag.children[task]
            )
            self._wc_out[key] = cached
        return cached

    def _net_energy_demand(
        self,
        task: int,
        machine: int,
        version: Version,
        exec_energy: float,
        comms: tuple[PlannedComm, ...],
    ) -> dict[int, float]:
        """Per-machine net energy demand of committing the described plan:
        execution and transfer debits, plus new outgoing reserves, minus
        incoming-edge reserves released (when reserves are held)."""
        net: dict[int, float] = {machine: exec_energy}
        for c in comms:
            net[c.src] = net.get(c.src, 0.0) + c.energy
        if self.hold_comm_reserves:
            for p in self.scenario.dag.parents[task]:
                src = self.assignments[p].machine
                net[src] = net.get(src, 0.0) - self._edge_reserve.get((p, task), 0.0)
            net[machine] += self._worst_case_outgoing(task, machine, version)
        return net

    def _demand_shortfall(self, demand: dict[int, float]) -> str:
        """Empty string if *demand* fits every machine's available budget,
        else a human-readable reason."""
        for j, amount in demand.items():
            if amount > self.available_energy(j) * (1 + 1e-12) + 1e-12:
                return (
                    f"machine {j} needs {amount:.6g} energy units, "
                    f"{self.available_energy(j):.6g} available "
                    f"({self._reserved[j]:.6g} held in comm reserve)"
                )
        return ""

    def _shortfall_of(
        self,
        task: int,
        machine: int,
        version: Version,
        exec_energy: float,
        comms: tuple[PlannedComm, ...],
    ) -> str:
        """Empty string if the described plan's energy demand fits every
        machine's available budget, else a human-readable reason."""
        return self._demand_shortfall(
            self._net_energy_demand(task, machine, version, exec_energy, comms)
        )

    def _energy_shortfall(self, plan: "ExecutionPlan") -> str:
        return self._shortfall_of(
            plan.task, plan.machine, plan.version, plan.exec_energy, plan.comms
        )

    # -- planning -------------------------------------------------------------

    def _plan_comms_floor(
        self, task: int, machine: int, not_before: float
    ) -> tuple[tuple[PlannedComm, ...], float, float]:
        """Schedule *task*'s incoming transfers onto *machine* (tentative).

        Returns ``(comms, dr_floor, local_floor)`` where ``dr_floor`` is
        the data-ready time *excluding* the ``not_before`` clamp (release
        time, local parent finishes, transfer finishes) and ``local_floor``
        is the same excluding transfer finishes as well — the caller's
        effective data ready is ``max(not_before, dr_floor)``.  Incoming
        transfer sizes depend on the *parents'* committed versions only, so
        one comm plan serves both candidate versions of the task.

        Channel calendars are copied lazily: a copy is only made once an
        *earlier* transfer in the same plan must be visible to a later
        channel-slot search, so tasks with at most one remote parent (the
        common case in sparse DAGs) plan without copying any timeline.
        """
        scenario = self.scenario
        assignments = self.assignments
        network = scenario.network
        grid = scenario.grid
        comms: list[PlannedComm] = []
        # Execution may not begin before the subtask has *arrived* (release
        # time, possibly moved by a streamed arrival); under the paper's
        # simplification releases are all zero.
        local_floor = self._release_times[task]
        # Deterministic parent order: by completion time, then id.
        parents = scenario.dag.parents[task]
        if len(parents) > 1:
            parents = sorted(
                parents, key=lambda p: (assignments[p].finish, p)
            )
        out_views: dict[int, IntervalTimeline] = {}
        in_view: IntervalTimeline | None = None
        pending: PlannedComm | None = None
        # Hot path (both kernel modes funnel through here): inline
        # data_bits / transfer_time on their hoisted operands — the same
        # arithmetic on the same values, minus the call layers.
        data_sizes = scenario.data_sizes
        cmt = network.cmt
        out_channel = self.out_channel
        in_channel_m = self.in_channel[machine]
        for p in parents:
            pa = assignments[p]
            bits = data_sizes[(p, task)] * pa.version.scale
            if pa.machine == machine or bits <= 0.0:
                if pa.finish > local_floor:
                    local_floor = pa.finish
                continue
            if pending is not None:
                # A later search must see the previous transfer: materialise
                # copies now and reserve it on them.
                src_view = out_views.get(pending.src)
                if src_view is None:
                    src_view = out_views[pending.src] = out_channel[pending.src].copy()
                if in_view is None:
                    in_view = in_channel_m.copy()
                src_view.reserve(pending.start, pending.finish)
                in_view.reserve(pending.start, pending.finish)
                pending = None
            out_tl = out_views.get(pa.machine)
            if out_tl is None:
                out_tl = out_channel[pa.machine]
            duration = bits * cmt(pa.machine, machine)
            start = earliest_common_gap(
                out_tl,
                in_view if in_view is not None else in_channel_m,
                duration,
                not_before=max(pa.finish, not_before),
            )
            finish = start + duration
            energy = grid[pa.machine].transmit_energy(duration)
            pending = _new_planned_comm(
                p, task, pa.machine, machine, bits, start, finish, energy
            )
            comms.append(pending)
        dr_floor = local_floor
        for c in comms:
            if c.finish > dr_floor:
                dr_floor = c.finish
        return tuple(comms), dr_floor, local_floor

    def _check_plannable(self, task: int, machine: int) -> None:
        if task in self.assignments:
            raise ValueError(f"task {task} is already mapped")
        if self._unmapped_parents[task] != 0:
            raise ValueError(f"task {task} has unmapped parents")
        if not 0 <= machine < self.scenario.n_machines:
            raise IndexError(f"no machine {machine}")

    def _comm_entry_valid(
        self,
        entry: _PlanCacheEntry,
        machine: int,
        not_before: float,
        parent_epoch: int,
    ) -> bool:
        """Whether *entry*'s cached comm plan is exactly what a fresh
        channel-slot search at *not_before* would produce."""
        if entry.parent_epoch != parent_epoch:
            return False
        if not entry.comms:
            # No transfers were (or would be) scheduled: the plan reads no
            # channel calendar and is independent of not_before.
            return True
        # Gap searches are monotone in not_before: a cached slot at or
        # after the new clock is still the earliest one.  An *earlier*
        # clock could admit earlier slots — recompute.
        if not (
            not_before == entry.comm_nb
            or (not_before > entry.comm_nb and entry.min_comm_start >= not_before)
        ):
            return False
        # Channel calendars: exact version match, or reservations-only
        # drift (release counter unchanged) that leaves every cached slot
        # free.  Added busyness cannot open earlier slots, so a still-free
        # earliest slot stays the earliest; frees could, so any release
        # forces a recompute.
        in_tl = self.in_channel[machine]
        in_stale = in_tl.version != entry.in_version
        if in_stale and in_tl.release_version != entry.in_release:
            return False
        stale_srcs: set[int] | None = None
        for src, version, release in entry.out_versions:
            tl = self.out_channel[src]
            if tl.version != version:
                if tl.release_version != release:
                    return False
                if stale_srcs is None:
                    stale_srcs = set()
                stale_srcs.add(src)
        if in_stale or stale_srcs:
            for c in entry.comms:
                if in_stale and not in_tl.is_free(c.start, c.finish):
                    return False
                if (
                    stale_srcs is not None
                    and c.src in stale_srcs
                    and not self.out_channel[c.src].is_free(c.start, c.finish)
                ):
                    return False
            # Re-stamp at the current versions: no release happened since
            # the entry was built, so future lookups may fast-path again.
            entry.in_version = in_tl.version
            entry.out_versions = tuple(
                (src, self.out_channel[src].version, release)
                for src, version, release in entry.out_versions
            )
            # Re-base the replay certificate too (see _shift_comms): every
            # slot was just verified free on the *current* calendars, so
            # re-measuring the free window around each — it can only have
            # shrunk — lets a later clock still replay the train instead of
            # falling back to a full channel-slot search.
            entry.base_starts = tuple(c.start for c in entry.comms)
            entry.window_ends = tuple(
                min(
                    self.out_channel[c.src].next_busy_start_after(c.start),
                    in_tl.next_busy_start_after(c.start),
                )
                for c in entry.comms
            )
            entry.base_in_version = in_tl.version
            entry.base_out_versions = tuple(
                (src, version) for src, version, release in entry.out_versions
            )
        return True

    def _shift_comms(
        self,
        entry: _PlanCacheEntry,
        machine: int,
        not_before: float,
        parent_epoch: int,
    ) -> tuple[tuple[PlannedComm, ...], float] | None:
        """Replay the cached comm train at a *later* clock without any
        channel-slot search; ``None`` forces a full recompute.

        A fresh search at ``not_before`` places each transfer at the
        earliest point ≥ its lower bound (parent finish / clock) that
        avoids the raw channel calendars and the transfers planned before
        it.  The replay computes the earliest point avoiding the
        *re-placed* earlier transfers in O(#comms²) float arithmetic, then
        certifies raw-channel freeness from a free window observed around
        the cached slot: the new slot must sit at/after the window anchor
        (everything from there to the window end is free) and end inside
        the window.  Any position below the new slot overlaps a re-placed
        transfer, so the fresh search would reject it too — the replayed
        train is exactly the fresh result.  When a channel is unchanged
        since the window was measured (``base_*`` version match) the stored
        window is used verbatim; otherwise the certificate is re-derived on
        the *current* calendars — the cached slot must still be free, and
        the window around it is re-measured — so arbitrary channel drift
        (even releases) never poisons the replay, it merely tightens the
        window anchor to the slot's current start.
        """
        if entry.parent_epoch != parent_epoch:
            return None
        if not entry.comms or not_before <= entry.comm_nb:
            return None
        in_tl = self.in_channel[machine]
        in_fresh = in_tl.version == entry.base_in_version
        stale_srcs: set[int] = {
            src
            for src, version in entry.base_out_versions
            if self.out_channel[src].version != version
        }
        placed: list[PlannedComm] = []
        anchors: list[float] = []
        windows: list[float] = []
        network = self.scenario.network
        for k, c in enumerate(entry.comms):
            # Recompute the duration exactly as the fresh path does
            # (``c.finish - c.start`` can differ in the last ulp once the
            # train has been re-based to a different start).
            duration = network.transfer_time(c.src, c.dst, c.bits)
            start = entry.lb_floors[k]
            if not_before > start:
                start = not_before
            # Mirror the gap search's conflict rule against the re-placed
            # earlier transfers (they all share the target's in-channel).
            moved = True
            while moved:
                moved = False
                for t in placed:
                    if t.start < start + duration - _EPS and t.finish > start + _EPS:
                        start = t.finish
                        moved = True
            if in_fresh and c.src not in stale_srcs:
                anchor = entry.base_starts[k]
                window_end = entry.window_ends[k]
            else:
                out_tl = self.out_channel[c.src]
                if not (
                    in_tl.is_free(c.start, c.finish)
                    and out_tl.is_free(c.start, c.finish)
                ):
                    # The cached slot itself was taken (or partially so):
                    # a fresh search genuinely lands elsewhere.
                    return None
                anchor = c.start
                window_end = min(
                    out_tl.next_busy_start_after(c.start),
                    in_tl.next_busy_start_after(c.start),
                )
            if start < anchor:
                # Below the observed-free window: raw freeness unknown.
                return None
            if start + duration > window_end + _EPS:
                # Would cross into known-busy channel time.
                return None
            anchors.append(anchor)
            windows.append(window_end)
            placed.append(
                c
                if start == c.start
                else _new_planned_comm(
                    c.parent,
                    c.child,
                    c.src,
                    c.dst,
                    c.bits,
                    start,
                    start + duration,
                    c.energy,
                )
            )
        comms = tuple(placed)
        dr_floor = entry.local_floor
        for c in comms:
            if c.finish > dr_floor:
                dr_floor = c.finish
        entry.comms = comms
        entry.dr_floor = dr_floor
        entry.comm_nb = not_before
        entry.min_comm_start = min(c.start for c in comms)
        # Every window is now known valid under the *current* calendars
        # (stored ones by version match, re-derived ones by direct
        # verification) — re-base so the next replay can fast-path.
        entry.base_starts = tuple(anchors)
        entry.window_ends = tuple(windows)
        entry.base_in_version = in_tl.version
        entry.base_out_versions = tuple(
            (src, self.out_channel[src].version)
            for src, version in entry.base_out_versions
        )
        # data_ready moved with the clock: the exec placement (and with it
        # the cached pair) must be recomputed.
        entry.pair = None
        return comms, dr_floor

    def _cached_pair(
        self, entry: _PlanCacheEntry, machine: int, not_before: float
    ) -> tuple[ExecutionPlan, ExecutionPlan] | None:
        """The cached plan pair, iff byte-identical (start times,
        feasibility verdicts, reasons) to a fresh computation at
        *not_before*; ``None`` forces a recompute.

        Only called once :meth:`_comm_entry_valid` has established that the
        cached comm plan matches a fresh one at *not_before*.
        """
        if entry.pair is None:
            return None
        exec_tl = self.exec_timeline[machine]
        if exec_tl.version != entry.exec_version:
            # Append-only placement (SLRH) sits at the calendar tail, which
            # any mutation moves.  Hole-filling (insertion) placement only
            # needs both cached slots still free, provided nothing was
            # released since — added reservations cannot open earlier holes.
            if not entry.insertion:
                return None
            if exec_tl.release_version != entry.exec_release:
                return None
            if not (
                exec_tl.is_free(entry.pair[0].start, entry.pair[0].finish)
                and exec_tl.is_free(entry.pair[1].start, entry.pair[1].finish)
            ):
                return None
            entry.exec_version = exec_tl.version
        offline = self.offline
        for i, m in enumerate(entry.dep_machines):
            if (m in offline) != entry.offline_sig[i]:
                return None
        if not entry.offline:
            # Reproduce the energy verdicts exactly.  A feasible plan stays
            # feasible (reason "") iff its per-machine demand still fits; an
            # infeasible plan's reason string embeds exact energy values, so
            # those must be unchanged for a byte-identical recompute.
            for v in (0, 1):
                sig = entry.infeas_sig[v]
                if sig is None:
                    for j, amount in entry.demands[v].items():
                        if amount > self.available_energy(j) * (1 + 1e-12) + 1e-12:
                            return None
                else:
                    for j, avail, reserved in sig:
                        if (
                            self.available_energy(j) != avail
                            or self._reserved[j] != reserved
                        ):
                            return None
        if not_before == entry.pair_nb or (
            not_before > entry.pair_nb and entry.dr_floor >= not_before
        ):
            # data_ready = max(not_before, dr_floor) is unchanged: either
            # the clock did not move, or the dr_floor dominates both clocks.
            return entry.pair
        if not_before > entry.pair_nb:
            # The clock advanced past dr_floor, so data_ready = not_before.
            # A feasible plan keeps its exec slot iff the slot starts
            # at/after the new clock: the gap search is monotone in its
            # lower bound — everything before a returned slot was rejected,
            # and raising the bound cannot make a rejected position fit —
            # so a fresh search returns the same slot.  A dead plan carries
            # no placement (its start pins to data_ready), so it re-bases
            # unconditionally; its duration comes from the static exec
            # facts, exactly the arithmetic of a fresh computation.
            for p in entry.pair:
                if p.feasible and not_before > p.start:
                    return None
            exec_facts = self._exec_static[(entry.pair[0].task, machine)]
            pair = tuple(
                replace(p, data_ready=not_before)
                if p.feasible
                else replace(
                    p,
                    start=not_before,
                    finish=not_before + exec_facts[vi][0],
                    data_ready=not_before,
                )
                for vi, p in enumerate(entry.pair)
            )
            entry.pair = pair
            entry.pair_nb = not_before
            return pair
        return None

    def _plan_pair(
        self,
        task: int,
        machine: int,
        not_before: float,
        insertion: bool,
    ) -> tuple[ExecutionPlan, ExecutionPlan]:
        """Compute (or fetch from the plan cache) the (primary, secondary)
        plan pair for *task* on *machine* — see :meth:`plan_versions`."""
        self._check_plannable(task, machine)
        scenario = self.scenario
        perf = self.perf

        entry: _PlanCacheEntry | None = None
        comms: tuple[PlannedComm, ...] | None = None
        dr_floor = 0.0
        if self.plan_cache_enabled:
            per_task = self._plan_cache.get(task)
            if per_task is not None:
                entry = per_task.get((machine, insertion))
            if entry is not None:
                epoch = self._parent_epoch[task]
                if self._comm_entry_valid(entry, machine, not_before, epoch):
                    pair = self._cached_pair(entry, machine, not_before)
                    if pair is not None:
                        perf.inc("plan.cache.pair_hit")
                        return pair
                    perf.inc("plan.cache.comm_hit")
                    comms, dr_floor = entry.comms, entry.dr_floor
                else:
                    shifted = self._shift_comms(entry, machine, not_before, epoch)
                    if shifted is not None:
                        perf.inc("plan.cache.comm_shift")
                        comms, dr_floor = shifted
                    else:
                        entry = None
        if comms is None:
            perf.inc("plan.cache.comm_miss")
            comms, dr_floor, local_floor = self._plan_comms_floor(
                task, machine, not_before
            )
        perf.inc("plan.cache.pair_miss")
        perf.inc("plan.pairs")

        data_ready = max(not_before, dr_floor)
        offline = machine in self.offline or any(c.src in self.offline for c in comms)
        comm_energy = sum(c.energy for c in comms)
        exec_timeline = self.exec_timeline[machine]
        exec_facts = self.exec_facts(task, machine)
        plans = []
        demands: list[dict[int, float] | None] = []
        infeas_sig: list[tuple | None] = []
        for vi, version in enumerate((Version.PRIMARY, Version.SECONDARY)):
            duration, exec_energy = exec_facts[vi]
            if offline:
                reason = f"machine {machine} (or a required sender) is offline"
                demands.append(None)
                infeas_sig.append(None)
            else:
                # A surviving entry (comm hit or shift) proves the parents'
                # assignments are unchanged, and transfer durations — hence
                # energies — never move in a shift, so the stored demand
                # dict is bit-identical to a fresh one.
                demand = entry.demands[vi] if entry is not None else None
                if demand is None:
                    demand = self._net_energy_demand(
                        task, machine, version, exec_energy, comms
                    )
                reason = self._demand_shortfall(demand)
                demands.append(demand)
                infeas_sig.append(
                    tuple(
                        (j, self.available_energy(j), self._reserved[j])
                        for j in demand
                    )
                    if reason
                    else None
                )
            if reason:
                # Dead plan: it can never be committed or scored, so the
                # calendar gap search is wasted work — anchor it at its
                # data-ready time.  The verdict and reason (what the ledger
                # records) are computed above, before placement.
                start = data_ready
            else:
                start = exec_timeline.earliest_gap(
                    duration, data_ready, append_only=not insertion
                )
            plans.append(
                ExecutionPlan(
                    task=task,
                    version=version,
                    machine=machine,
                    start=start,
                    finish=start + duration,
                    exec_energy=exec_energy,
                    comms=comms,
                    energy_delta=exec_energy + comm_energy,
                    data_ready=data_ready,
                    feasible=not reason,
                    reason=reason,
                )
            )
        pair = (plans[0], plans[1])

        if self.plan_cache_enabled:
            if entry is None:
                entry = _PlanCacheEntry()
                entry.parent_epoch = self._parent_epoch[task]
                entry.insertion = insertion
                entry.comms = comms
                entry.dr_floor = dr_floor
                entry.comm_nb = not_before
                entry.min_comm_start = (
                    min(c.start for c in comms) if comms else float("inf")
                )
                in_tl = self.in_channel[machine]
                entry.in_version = in_tl.version
                entry.in_release = in_tl.release_version
                seen: dict[int, tuple[int, int]] = {}
                for c in comms:
                    out_tl = self.out_channel[c.src]
                    seen[c.src] = (out_tl.version, out_tl.release_version)
                entry.out_versions = tuple(
                    (src, version, release)
                    for src, (version, release) in seen.items()
                )
                # Immutable replay facts (see _shift_comms).
                entry.local_floor = local_floor
                entry.lb_floors = tuple(
                    self.assignments[c.parent].finish for c in comms
                )
                entry.base_starts = tuple(c.start for c in comms)
                entry.window_ends = tuple(
                    min(
                        self.out_channel[c.src].next_busy_start_after(c.start),
                        in_tl.next_busy_start_after(c.start),
                    )
                    for c in comms
                )
                entry.base_in_version = in_tl.version
                entry.base_out_versions = tuple(
                    (src, version) for src, (version, release) in seen.items()
                )
                entry.dep_machines = tuple(
                    sorted(
                        {machine}
                        | {
                            self.assignments[p].machine
                            for p in scenario.dag.parents[task]
                        }
                    )
                )
                self._plan_cache.setdefault(task, {})[(machine, insertion)] = entry
            entry.pair = pair
            entry.pair_nb = not_before
            entry.exec_version = exec_timeline.version
            entry.exec_release = exec_timeline.release_version
            entry.offline = offline
            entry.offline_sig = tuple(m in self.offline for m in entry.dep_machines)
            entry.demands = (demands[0], demands[1])
            entry.infeas_sig = (infeas_sig[0], infeas_sig[1])
        return pair

    def plan(
        self,
        task: int,
        version: Version,
        machine: int,
        not_before: float = 0.0,
        insertion: bool = False,
    ) -> ExecutionPlan:
        """Tentatively place (*task*, *version*) on *machine*.

        Parameters
        ----------
        not_before:
            The current clock; nothing (execution or communication) may be
            scheduled earlier (§IV: the scheduler never looks backward).
        insertion:
            Allow execution to start inside a hole of the machine calendar
            (Max-Max, §V).  SLRH uses ``False``: execution appends after the
            machine's committed work.

        The returned plan may be marked ``feasible=False`` (with a reason)
        when some machine's battery cannot cover the required debits; such a
        plan must not be committed.

        Both versions are planned and cached together (the channel-slot
        search is shared), so asking for the sibling version afterwards is
        nearly free.

        Raises
        ------
        ValueError
            If *task* is already mapped or has unmapped parents (callers
            draw from :meth:`ready_tasks`, so this indicates a logic error).
        """
        pair = self._plan_pair(task, machine, not_before, insertion)
        if version is Version.PRIMARY:
            return pair[0]
        if version is Version.SECONDARY:
            return pair[1]
        raise ValueError(f"unknown version {version!r}")

    def plan_versions(
        self,
        task: int,
        machine: int,
        not_before: float = 0.0,
        insertion: bool = False,
    ) -> tuple[ExecutionPlan, ExecutionPlan]:
        """Plan both versions of *task* on *machine*, sharing one comm plan.

        Incoming transfers depend only on the parents' committed versions,
        so the (relatively expensive) channel-slot search is identical for
        both candidate versions — this is the hot path of the SLRH pool
        evaluation, which prices every pool member at both versions each
        tick.  Returns (primary_plan, secondary_plan), semantically equal
        to two :meth:`plan` calls.

        Results are memoised in the plan cache (see DESIGN.md): a pool
        member whose parents, target machine, touched channels and energy
        state are unchanged since the last evaluation reuses its cached
        plans instead of re-running the search.  Disable with
        ``plan_cache=False`` at construction or ``REPRO_PLAN_CACHE=0``.
        """
        return self._plan_pair(task, machine, not_before, insertion)

    # -- mutation ---------------------------------------------------------------

    def commit(self, plan: ExecutionPlan) -> Assignment:
        """Apply *plan* atomically; returns the resulting :class:`Assignment`.

        Raises
        ------
        ValueError
            If the plan is marked infeasible or the task state changed since
            planning.
        """
        if not plan.feasible:
            raise ValueError(f"cannot commit infeasible plan: {plan.reason}")
        if plan.task in self.assignments:
            raise ValueError(f"task {plan.task} is already mapped")
        if self._unmapped_parents[plan.task] != 0:
            raise ValueError(f"task {plan.task} has unmapped parents")
        shortfall = self._energy_shortfall(plan)
        if shortfall:
            raise ValueError(f"plan no longer affordable: {shortfall}")

        scenario = self.scenario
        # The task leaves the plannable set; timeline version bumps and
        # energy signatures lazily invalidate every other affected entry.
        self._plan_cache.pop(plan.task, None)
        self.perf.inc("commit.count")
        # Reserve calendars first (reservation errors leave energy intact).
        self.exec_timeline[plan.machine].reserve(plan.start, plan.finish)
        for c in plan.comms:
            self.out_channel[c.src].reserve(c.start, c.finish)
            self.in_channel[c.dst].reserve(c.start, c.finish)
        if self.hold_comm_reserves:
            # The task's inputs are now routed: release the reserves its
            # parents were holding for these edges...
            for p in scenario.dag.parents[plan.task]:
                held = self._edge_reserve.pop((p, plan.task), 0.0)
                self._reserved[self.assignments[p].machine] -= held
            # ...and hold worst-case reserves for the task's own outputs.
            for child in scenario.dag.children[plan.task]:
                wc = scenario.network.worst_case_transfer_energy(
                    plan.machine, scenario.data_bits(plan.task, child, plan.version)
                )
                self._edge_reserve[(plan.task, child)] = wc
                self._reserved[plan.machine] += wc
        self.energy.debit(plan.machine, plan.exec_energy)
        for c in plan.comms:
            self.energy.debit(c.src, c.energy)

        assignment = Assignment(
            task=plan.task,
            version=plan.version,
            machine=plan.machine,
            start=plan.start,
            finish=plan.finish,
            energy=plan.exec_energy,
            comms=plan.comms,
        )
        self.assignments[plan.task] = assignment
        if plan.version.counts_toward_t100:
            self._t100 += 1
        self._makespan = max(self._makespan, plan.finish)
        self._ready.discard(plan.task)
        self._ready_sorted = None
        self._unmapped.discard(plan.task)
        for child in self.scenario.dag.children[plan.task]:
            self._parent_epoch[child] += 1
            self._unmapped_parents[child] -= 1
            if self._unmapped_parents[child] == 0 and child not in self.assignments:
                self._ready.add(child)
        return assignment

    def unassign(self, task: int) -> Assignment:
        """Roll back a committed assignment (dynamic re-mapping support).

        The task's children must all be unmapped — their incoming transfers
        reference this assignment's machine and version.
        """
        if task not in self.assignments:
            raise ValueError(f"task {task} is not mapped")
        for child in self.scenario.dag.children[task]:
            if child in self.assignments:
                raise ValueError(
                    f"cannot unassign task {task}: child {child} is still mapped"
                )
        a = self.assignments.pop(task)
        self._unmapped.add(task)
        self.perf.inc("unassign.count")
        self.exec_timeline[a.machine].release(a.start, a.finish)
        self.energy.credit(a.machine, a.energy)
        for c in a.comms:
            self.out_channel[c.src].release(c.start, c.finish)
            self.in_channel[c.dst].release(c.start, c.finish)
            self.energy.credit(c.src, c.energy)
        if self.hold_comm_reserves:
            # Drop the reserves this task held for its (unmapped) children...
            for child in self.scenario.dag.children[task]:
                held = self._edge_reserve.pop((task, child), 0.0)
                self._reserved[a.machine] -= held
            # ...and re-hold its parents' reserves for the now-open edges.
            for p in self.scenario.dag.parents[task]:
                pa = self.assignments[p]
                wc = self.scenario.network.worst_case_transfer_energy(
                    pa.machine, self.scenario.data_bits(p, task, pa.version)
                )
                self._edge_reserve[(p, task)] = wc
                self._reserved[pa.machine] += wc
        if a.version.counts_toward_t100:
            self._t100 -= 1
        self._makespan = max(
            (x.finish for x in self.assignments.values()), default=0.0
        )
        for child in self.scenario.dag.children[task]:
            self._parent_epoch[child] += 1
            self._unmapped_parents[child] += 1
            self._ready.discard(child)
        if self._unmapped_parents[task] == 0:
            self._ready.add(task)
        self._ready_sorted = None
        return a

    def debit_external(self, j: int, energy: float) -> None:
        """Consume energy on machine *j* outside any assignment.

        Used by the dynamic engine to account for work a machine had
        already performed on assignments that a machine loss invalidated —
        that energy is physically gone even though the assignment is no
        longer part of the schedule.
        """
        self.energy.debit(j, energy)
        self.external_debits[j] += energy

    # -- reporting -----------------------------------------------------------

    def machine_load(self, j: int) -> float:
        """Total execution time committed on machine *j*."""
        return self.exec_timeline[j].busy_time()

    def summary(self) -> dict:
        """Compact result record used by the experiment drivers."""
        return {
            "scenario": self.scenario.name,
            "mapped": self.n_mapped,
            "n_tasks": self.scenario.n_tasks,
            "t100": self._t100,
            "aet": self._makespan,
            "tau": self.scenario.tau,
            "tec": self.total_energy_consumed,
            "tse": self.total_system_energy,
            "complete": self.is_complete,
            "within_tau": self._makespan <= self.scenario.tau + EPSILON,
        }
