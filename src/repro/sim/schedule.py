"""The mutable mapping state shared by every heuristic.

A :class:`Schedule` tracks, for one :class:`~repro.workload.scenario.Scenario`:

* per-machine execution calendars and in/out comm-channel calendars
  (:class:`~repro.sim.timeline.IntervalTimeline`);
* the energy ledger (:class:`~repro.grid.energy.EnergyLedger`) — debited at
  commit time, per §IV;
* committed :class:`Assignment` records and the running aggregates the
  objective function needs (T100, TEC, AET).

Heuristics interact through a two-phase protocol:

1. :meth:`Schedule.plan` computes a tentative :class:`ExecutionPlan` for a
   (subtask, version, machine) triple — earliest start honouring precedence,
   channel capacity and the "never look backward" clock rule — without
   mutating anything;
2. :meth:`Schedule.commit` applies a plan atomically (calendar reservations
   plus energy debits).

:meth:`Schedule.unassign` rolls a committed assignment back (used by the
dynamic machine-loss engine), provided none of its children are mapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grid.energy import EnergyLedger
from repro.sim.timeline import IntervalTimeline, earliest_common_gap
from repro.workload.scenario import Scenario
from repro.workload.versions import Version


@dataclass(frozen=True)
class PlannedComm:
    """One scheduled parent→child data transfer."""

    parent: int
    child: int
    src: int
    dst: int
    bits: float
    start: float
    finish: float
    energy: float  # debited from the *sender* machine `src`

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class Assignment:
    """A committed (subtask, version, machine) execution."""

    task: int
    version: Version
    machine: int
    start: float
    finish: float
    energy: float  # execution energy on `machine`
    comms: tuple[PlannedComm, ...] = ()

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class ExecutionPlan:
    """Tentative assignment produced by :meth:`Schedule.plan`.

    ``energy_delta`` is the *total* system energy this plan would consume
    (execution on the target machine plus transmit energy on every sending
    machine) — the quantity the objective's TEC term moves by.
    """

    task: int
    version: Version
    machine: int
    start: float
    finish: float
    exec_energy: float
    comms: tuple[PlannedComm, ...]
    energy_delta: float
    #: Earliest start given *precedence and communication* requirements only
    #: (clamped to the planning clock) — ignores the machine's own queue.
    #: This is the quantity the SLRH horizon test uses (§IV): a subtask is
    #: horizon-eligible when its inputs arrive within [t, t+H], even if the
    #: target machine's committed work pushes actual execution later.
    data_ready: float = 0.0
    feasible: bool = True
    reason: str = ""

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class _ChannelOverlay:
    """Copy-on-write view of comm-channel calendars used during planning."""

    schedule: "Schedule"
    copies: dict[tuple[str, int], IntervalTimeline] = field(default_factory=dict)

    def out(self, j: int) -> IntervalTimeline:
        key = ("out", j)
        if key not in self.copies:
            self.copies[key] = self.schedule.out_channel[j].copy()
        return self.copies[key]

    def incoming(self, j: int) -> IntervalTimeline:
        key = ("in", j)
        if key not in self.copies:
            self.copies[key] = self.schedule.in_channel[j].copy()
        return self.copies[key]


class Schedule:
    """Mutable mapping state for one scenario (see module docstring).

    Communication-energy reserves
    -----------------------------
    The §IV feasibility rule promises that a mapped subtask can "communicate
    all the resulting data items to wherever they might need to go".  A
    check at mapping time alone cannot keep that promise: later assignments
    may drain the machine, wedging the whole mapping (children of a
    zero-battery machine become unschedulable *everywhere*, because their
    input data can no longer be transmitted).  With ``hold_comm_reserves``
    (the default), committing a subtask therefore also *holds* the
    worst-case outgoing-communication energy for each of its (necessarily
    unmapped) children; when a child is later mapped, the per-edge reserve
    is released and the actual transfer energy — never larger, since the
    worst-case link is the slowest — is debited.  Available energy for new
    work is ``remaining − reserved``.  Disabling the flag reproduces the
    naive check-only behaviour (used by the feasibility ablation bench).
    """

    def __init__(self, scenario: Scenario, hold_comm_reserves: bool = True) -> None:
        self.scenario = scenario
        self.hold_comm_reserves = hold_comm_reserves
        n_machines = scenario.n_machines
        self.exec_timeline = [IntervalTimeline() for _ in range(n_machines)]
        self.out_channel = [IntervalTimeline() for _ in range(n_machines)]
        self.in_channel = [IntervalTimeline() for _ in range(n_machines)]
        self.energy = EnergyLedger(scenario.grid)
        self.assignments: dict[int, Assignment] = {}
        self._unmapped_parents = [len(p) for p in scenario.dag.parents]
        self._ready = {t for t, c in enumerate(self._unmapped_parents) if c == 0}
        self._t100 = 0
        self._makespan = 0.0
        # Held outgoing-comm reserves: per machine total and per DAG edge.
        self._reserved = [0.0] * n_machines
        self._edge_reserve: dict[tuple[int, int], float] = {}
        # Energy consumed outside any assignment (sunk cost after a machine
        # loss); validation reconciles the ledger against assignments plus
        # these.
        self.external_debits = [0.0] * n_machines
        # Machines currently absent from the ad hoc grid (churn engine).
        self.offline: set[int] = set()

    # -- aggregate metrics --------------------------------------------------

    @property
    def t100(self) -> int:
        """Number of subtasks mapped at their primary version."""
        return self._t100

    @property
    def makespan(self) -> float:
        """AET — finish time of the last mapped subtask (0 when empty)."""
        return self._makespan

    @property
    def total_energy_consumed(self) -> float:
        """TEC over all machines."""
        return self.energy.total_energy_consumed

    @property
    def total_system_energy(self) -> float:
        """TSE over all machines."""
        return self.energy.total_system_energy

    @property
    def n_mapped(self) -> int:
        return len(self.assignments)

    @property
    def is_complete(self) -> bool:
        """Whether every subtask has been mapped."""
        return len(self.assignments) == self.scenario.n_tasks

    def meets_constraints(self) -> bool:
        """Complete mapping within τ (energy holds by construction)."""
        return self.is_complete and self._makespan <= self.scenario.tau + 1e-9

    # -- task-state queries --------------------------------------------------

    def is_mapped(self, task: int) -> bool:
        return task in self.assignments

    def ready_tasks(self) -> frozenset[int]:
        """Unmapped subtasks whose parents are all mapped — the raw pool
        from which the feasibility filter builds U."""
        return frozenset(self._ready)

    def unmapped_tasks(self) -> list[int]:
        return [t for t in range(self.scenario.n_tasks) if t not in self.assignments]

    def machine_available(self, j: int, clock: float) -> bool:
        """SLRH availability test (§IV): machine *j* is part of the grid and
        has no execution work committed at or beyond the current *clock*."""
        if j in self.offline:
            return False
        return not self.exec_timeline[j].has_work_at_or_after(clock)

    def set_offline(self, j: int, offline: bool = True) -> None:
        """Mark machine *j* absent from (or returned to) the ad hoc grid.

        Offline machines fail the availability test and every plan
        targeting them; existing assignments are untouched — the churn
        engine decides what to roll back.
        """
        if not 0 <= j < self.scenario.n_machines:
            raise IndexError(f"no machine {j}")
        if offline:
            self.offline.add(j)
        else:
            self.offline.discard(j)

    def available_energy(self, j: int) -> float:
        """Battery remaining on *j* minus held communication reserves —
        the budget new work may draw on."""
        return self.energy.remaining(j) - self._reserved[j]

    def reserved_energy(self, j: int) -> float:
        """Communication energy currently held in reserve on machine *j*."""
        return self._reserved[j]

    def _net_energy_demand(self, plan: "ExecutionPlan") -> dict[int, float]:
        """Per-machine net energy demand of committing *plan*: execution and
        transfer debits, plus new outgoing reserves, minus incoming-edge
        reserves released (when reserves are held)."""
        scenario = self.scenario
        net: dict[int, float] = {plan.machine: plan.exec_energy}
        for c in plan.comms:
            net[c.src] = net.get(c.src, 0.0) + c.energy
        if self.hold_comm_reserves:
            for p in scenario.dag.parents[plan.task]:
                src = self.assignments[p].machine
                net[src] = net.get(src, 0.0) - self._edge_reserve.get((p, plan.task), 0.0)
            outgoing = sum(
                scenario.network.worst_case_transfer_energy(
                    plan.machine, scenario.data_bits(plan.task, child, plan.version)
                )
                for child in scenario.dag.children[plan.task]
            )
            net[plan.machine] += outgoing
        return net

    def _energy_shortfall(self, plan: "ExecutionPlan") -> str:
        """Empty string if *plan*'s energy demand fits every machine's
        available budget, else a human-readable reason."""
        for j, amount in self._net_energy_demand(plan).items():
            if amount > self.available_energy(j) * (1 + 1e-12) + 1e-12:
                return (
                    f"machine {j} needs {amount:.6g} energy units, "
                    f"{self.available_energy(j):.6g} available "
                    f"({self._reserved[j]:.6g} held in comm reserve)"
                )
        return ""

    # -- planning -------------------------------------------------------------

    def _plan_comms(
        self, task: int, machine: int, not_before: float
    ) -> tuple[tuple[PlannedComm, ...], float]:
        """Schedule *task*'s incoming transfers onto *machine* (tentative).

        Returns (comms, data_ready).  Incoming transfer sizes depend on the
        *parents'* committed versions only, so one comm plan serves both
        candidate versions of the task (see :meth:`plan_versions`).
        """
        scenario = self.scenario
        overlay = _ChannelOverlay(self)
        comms: list[PlannedComm] = []
        # Execution may not begin before the subtask has *arrived* (release
        # time); under the paper's simplification releases are all zero.
        data_ready = max(not_before, scenario.release(task))
        # Deterministic parent order: by completion time, then id.
        parents = sorted(
            scenario.dag.parents[task],
            key=lambda p: (self.assignments[p].finish, p),
        )
        for p in parents:
            pa = self.assignments[p]
            bits = scenario.data_bits(p, task, pa.version)
            if pa.machine == machine or bits <= 0.0:
                data_ready = max(data_ready, pa.finish)
                continue
            duration = scenario.network.transfer_time(pa.machine, machine, bits)
            start = earliest_common_gap(
                overlay.out(pa.machine),
                overlay.incoming(machine),
                duration,
                not_before=max(pa.finish, not_before),
            )
            finish = start + duration
            energy = scenario.grid[pa.machine].transmit_energy(duration)
            overlay.out(pa.machine).reserve(start, finish)
            overlay.incoming(machine).reserve(start, finish)
            comms.append(
                PlannedComm(
                    parent=p,
                    child=task,
                    src=pa.machine,
                    dst=machine,
                    bits=bits,
                    start=start,
                    finish=finish,
                    energy=energy,
                )
            )
            data_ready = max(data_ready, finish)
        return tuple(comms), data_ready

    def plan(
        self,
        task: int,
        version: Version,
        machine: int,
        not_before: float = 0.0,
        insertion: bool = False,
    ) -> ExecutionPlan:
        """Tentatively place (*task*, *version*) on *machine*.

        Parameters
        ----------
        not_before:
            The current clock; nothing (execution or communication) may be
            scheduled earlier (§IV: the scheduler never looks backward).
        insertion:
            Allow execution to start inside a hole of the machine calendar
            (Max-Max, §V).  SLRH uses ``False``: execution appends after the
            machine's committed work.

        The returned plan may be marked ``feasible=False`` (with a reason)
        when some machine's battery cannot cover the required debits; such a
        plan must not be committed.

        Raises
        ------
        ValueError
            If *task* is already mapped or has unmapped parents (callers
            draw from :meth:`ready_tasks`, so this indicates a logic error).
        """
        scenario = self.scenario
        if task in self.assignments:
            raise ValueError(f"task {task} is already mapped")
        if self._unmapped_parents[task] != 0:
            raise ValueError(f"task {task} has unmapped parents")
        if not 0 <= machine < scenario.n_machines:
            raise IndexError(f"no machine {machine}")

        comms, data_ready = self._plan_comms(task, machine, not_before)
        duration = scenario.exec_time(task, machine, version)
        start = self.exec_timeline[machine].earliest_gap(
            duration, max(data_ready, not_before), append_only=not insertion
        )
        finish = start + duration
        exec_energy = scenario.compute_energy(task, machine, version)

        draft = ExecutionPlan(
            task=task,
            version=version,
            machine=machine,
            start=start,
            finish=finish,
            exec_energy=exec_energy,
            comms=tuple(comms),
            energy_delta=exec_energy + sum(c.energy for c in comms),
            data_ready=data_ready,
        )
        if machine in self.offline or any(c.src in self.offline for c in comms):
            reason = f"machine {machine} (or a required sender) is offline"
        else:
            reason = self._energy_shortfall(draft)
        feasible = not reason

        return ExecutionPlan(  # same draft, now with the verdict attached
            task=task,
            version=version,
            machine=machine,
            start=start,
            finish=finish,
            exec_energy=exec_energy,
            comms=tuple(comms),
            energy_delta=exec_energy + sum(c.energy for c in comms),
            data_ready=data_ready,
            feasible=feasible,
            reason=reason,
        )

    def plan_versions(
        self,
        task: int,
        machine: int,
        not_before: float = 0.0,
        insertion: bool = False,
    ) -> tuple[ExecutionPlan, ExecutionPlan]:
        """Plan both versions of *task* on *machine*, sharing one comm plan.

        Incoming transfers depend only on the parents' committed versions,
        so the (relatively expensive) channel-slot search is identical for
        both candidate versions — this is the hot path of the SLRH pool
        evaluation, which prices every pool member at both versions each
        tick.  Returns (primary_plan, secondary_plan), semantically equal
        to two :meth:`plan` calls.
        """
        scenario = self.scenario
        if task in self.assignments:
            raise ValueError(f"task {task} is already mapped")
        if self._unmapped_parents[task] != 0:
            raise ValueError(f"task {task} has unmapped parents")
        if not 0 <= machine < scenario.n_machines:
            raise IndexError(f"no machine {machine}")

        comms, data_ready = self._plan_comms(task, machine, not_before)
        offline = machine in self.offline or any(c.src in self.offline for c in comms)
        plans = []
        for version in (Version.PRIMARY, Version.SECONDARY):
            duration = scenario.exec_time(task, machine, version)
            start = self.exec_timeline[machine].earliest_gap(
                duration, max(data_ready, not_before), append_only=not insertion
            )
            exec_energy = scenario.compute_energy(task, machine, version)
            draft = ExecutionPlan(
                task=task,
                version=version,
                machine=machine,
                start=start,
                finish=start + duration,
                exec_energy=exec_energy,
                comms=comms,
                energy_delta=exec_energy + sum(c.energy for c in comms),
                data_ready=data_ready,
            )
            if offline:
                reason = f"machine {machine} (or a required sender) is offline"
            else:
                reason = self._energy_shortfall(draft)
            plans.append(
                ExecutionPlan(
                    task=draft.task,
                    version=draft.version,
                    machine=draft.machine,
                    start=draft.start,
                    finish=draft.finish,
                    exec_energy=draft.exec_energy,
                    comms=draft.comms,
                    energy_delta=draft.energy_delta,
                    data_ready=draft.data_ready,
                    feasible=not reason,
                    reason=reason,
                )
            )
        return plans[0], plans[1]

    # -- mutation ---------------------------------------------------------------

    def commit(self, plan: ExecutionPlan) -> Assignment:
        """Apply *plan* atomically; returns the resulting :class:`Assignment`.

        Raises
        ------
        ValueError
            If the plan is marked infeasible or the task state changed since
            planning.
        """
        if not plan.feasible:
            raise ValueError(f"cannot commit infeasible plan: {plan.reason}")
        if plan.task in self.assignments:
            raise ValueError(f"task {plan.task} is already mapped")
        if self._unmapped_parents[plan.task] != 0:
            raise ValueError(f"task {plan.task} has unmapped parents")
        shortfall = self._energy_shortfall(plan)
        if shortfall:
            raise ValueError(f"plan no longer affordable: {shortfall}")

        scenario = self.scenario
        # Reserve calendars first (reservation errors leave energy intact).
        self.exec_timeline[plan.machine].reserve(plan.start, plan.finish)
        for c in plan.comms:
            self.out_channel[c.src].reserve(c.start, c.finish)
            self.in_channel[c.dst].reserve(c.start, c.finish)
        if self.hold_comm_reserves:
            # The task's inputs are now routed: release the reserves its
            # parents were holding for these edges...
            for p in scenario.dag.parents[plan.task]:
                held = self._edge_reserve.pop((p, plan.task), 0.0)
                self._reserved[self.assignments[p].machine] -= held
            # ...and hold worst-case reserves for the task's own outputs.
            for child in scenario.dag.children[plan.task]:
                wc = scenario.network.worst_case_transfer_energy(
                    plan.machine, scenario.data_bits(plan.task, child, plan.version)
                )
                self._edge_reserve[(plan.task, child)] = wc
                self._reserved[plan.machine] += wc
        self.energy.debit(plan.machine, plan.exec_energy)
        for c in plan.comms:
            self.energy.debit(c.src, c.energy)

        assignment = Assignment(
            task=plan.task,
            version=plan.version,
            machine=plan.machine,
            start=plan.start,
            finish=plan.finish,
            energy=plan.exec_energy,
            comms=plan.comms,
        )
        self.assignments[plan.task] = assignment
        if plan.version.counts_toward_t100:
            self._t100 += 1
        self._makespan = max(self._makespan, plan.finish)
        self._ready.discard(plan.task)
        for child in self.scenario.dag.children[plan.task]:
            self._unmapped_parents[child] -= 1
            if self._unmapped_parents[child] == 0 and child not in self.assignments:
                self._ready.add(child)
        return assignment

    def unassign(self, task: int) -> Assignment:
        """Roll back a committed assignment (dynamic re-mapping support).

        The task's children must all be unmapped — their incoming transfers
        reference this assignment's machine and version.
        """
        if task not in self.assignments:
            raise ValueError(f"task {task} is not mapped")
        for child in self.scenario.dag.children[task]:
            if child in self.assignments:
                raise ValueError(
                    f"cannot unassign task {task}: child {child} is still mapped"
                )
        a = self.assignments.pop(task)
        self.exec_timeline[a.machine].release(a.start, a.finish)
        self.energy.credit(a.machine, a.energy)
        for c in a.comms:
            self.out_channel[c.src].release(c.start, c.finish)
            self.in_channel[c.dst].release(c.start, c.finish)
            self.energy.credit(c.src, c.energy)
        if self.hold_comm_reserves:
            # Drop the reserves this task held for its (unmapped) children...
            for child in self.scenario.dag.children[task]:
                held = self._edge_reserve.pop((task, child), 0.0)
                self._reserved[a.machine] -= held
            # ...and re-hold its parents' reserves for the now-open edges.
            for p in self.scenario.dag.parents[task]:
                pa = self.assignments[p]
                wc = self.scenario.network.worst_case_transfer_energy(
                    pa.machine, self.scenario.data_bits(p, task, pa.version)
                )
                self._edge_reserve[(p, task)] = wc
                self._reserved[pa.machine] += wc
        if a.version.counts_toward_t100:
            self._t100 -= 1
        self._makespan = max(
            (x.finish for x in self.assignments.values()), default=0.0
        )
        for child in self.scenario.dag.children[task]:
            self._unmapped_parents[child] += 1
            self._ready.discard(child)
        if self._unmapped_parents[task] == 0:
            self._ready.add(task)
        return a

    def debit_external(self, j: int, energy: float) -> None:
        """Consume energy on machine *j* outside any assignment.

        Used by the dynamic engine to account for work a machine had
        already performed on assignments that a machine loss invalidated —
        that energy is physically gone even though the assignment is no
        longer part of the schedule.
        """
        self.energy.debit(j, energy)
        self.external_debits[j] += energy

    # -- reporting -----------------------------------------------------------

    def machine_load(self, j: int) -> float:
        """Total execution time committed on machine *j*."""
        return self.exec_timeline[j].busy_time()

    def summary(self) -> dict:
        """Compact result record used by the experiment drivers."""
        return {
            "scenario": self.scenario.name,
            "mapped": self.n_mapped,
            "n_tasks": self.scenario.n_tasks,
            "t100": self._t100,
            "aet": self._makespan,
            "tau": self.scenario.tau,
            "tec": self.total_energy_consumed,
            "tse": self.total_system_energy,
            "complete": self.is_complete,
            "within_tau": self._makespan <= self.scenario.tau + 1e-9,
        }
