"""Unit-capacity resource calendars.

Three kinds of unit-capacity resources exist in the model (§III assumptions
(b) and (c)): a machine's execution slot, its outgoing comm channel and its
incoming comm channel.  :class:`IntervalTimeline` represents one such
resource as a sorted list of half-open busy intervals ``[start, end)`` and
supports the two queries the schedulers need:

* *earliest gap* — first time ≥ ``not_before`` at which a given duration
  fits (optionally restricted to appending after all existing work, which is
  what the receding-horizon heuristics do — they never look backward);
* *earliest common gap* — first time at which a duration fits in **two**
  timelines simultaneously (a transfer occupies the sender's out channel and
  the receiver's in channel for its whole duration).

Intervals may be released again (:meth:`release`) — used by the dynamic
engine when a machine loss invalidates previously committed work.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

_EPS = 1e-9


class IntervalTimeline:
    """Sorted set of non-overlapping half-open busy intervals.

    Every successful mutation bumps :attr:`version`, a monotonically
    increasing counter; :meth:`release` additionally bumps
    :attr:`release_version`.  The plan cache in
    :class:`~repro.sim.schedule.Schedule` keys cached channel-slot searches
    on the versions of the timelines they read, so invalidation is exactly
    as wide as the calendars a commit actually touched.  The split counter
    lets the cache exploit that :meth:`reserve` only ever *adds* busyness:
    while ``release_version`` is unchanged, a cached slot that is still
    free is still the earliest fit, no matter how many reservations landed
    elsewhere.
    """

    __slots__ = ("_busy", "version", "release_version")

    def __init__(self) -> None:
        self._busy: list[tuple[float, float]] = []
        #: Mutation counter — incremented by :meth:`reserve` / :meth:`release`.
        self.version: int = 0
        #: Counts :meth:`release` calls only (frees can open earlier slots).
        self.release_version: int = 0

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._busy)

    def intervals(self) -> list[tuple[float, float]]:
        """A copy of the busy intervals, sorted by start."""
        return list(self._busy)

    @property
    def tail(self) -> float:
        """End of the last busy interval (0.0 when empty)."""
        return self._busy[-1][1] if self._busy else 0.0

    def busy_time(self) -> float:
        """Total busy duration."""
        return sum(e - s for s, e in self._busy)

    def is_free(self, start: float, end: float) -> bool:
        """Whether ``[start, end)`` overlaps no busy interval."""
        if end <= start + _EPS:
            return True
        i = bisect_right(self._busy, (start, float("inf"))) - 1
        if i >= 0 and self._busy[i][1] > start + _EPS:
            return False
        if i + 1 < len(self._busy) and self._busy[i + 1][0] < end - _EPS:
            return False
        return True

    def next_busy_start_after(self, t: float) -> float:
        """Start of the first busy interval beginning strictly after *t*
        (``inf`` when none) — the end of the free window around a slot."""
        i = bisect_right(self._busy, (t, float("inf")))
        return self._busy[i][0] if i < len(self._busy) else float("inf")

    def has_work_at_or_after(self, t: float) -> bool:
        """Whether any busy interval ends after *t* (i.e. the resource is
        still committed at or beyond *t*)."""
        return bool(self._busy) and self._busy[-1][1] > t + _EPS

    def last_busy_end(self) -> float:
        """End of the last busy interval (``-inf`` when empty) — the fact
        :meth:`has_work_at_or_after` tests against, exposed so callers can
        hoist it out of per-tick loops while the calendar is static."""
        return self._busy[-1][1] if self._busy else float("-inf")

    def earliest_gap(
        self,
        duration: float,
        not_before: float = 0.0,
        append_only: bool = False,
    ) -> float:
        """Earliest start ≥ *not_before* where *duration* fits.

        With ``append_only`` the search starts at the timeline tail — the
        receding-horizon discipline of never scheduling into holes.
        Zero-duration requests return the earliest idle instant.
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        t = max(not_before, self.tail) if append_only else not_before
        # Walk busy intervals that could conflict, pushing t forward.
        i = bisect_right(self._busy, (t, float("inf"))) - 1
        if i < 0:
            i = 0
        while i < len(self._busy):
            s, e = self._busy[i]
            if s >= t + duration - _EPS:
                break  # gap before this interval fits
            if e > t + _EPS:
                t = e  # conflict: jump past it
            i += 1
        return t

    # -- mutation ----------------------------------------------------------

    def reserve(self, start: float, end: float) -> None:
        """Mark ``[start, end)`` busy.

        Raises
        ------
        ValueError
            On negative-length intervals or overlap with existing work.
        """
        if end < start - _EPS:
            raise ValueError(f"interval end {end} before start {start}")
        if end <= start + _EPS:
            return  # zero-length: nothing to reserve
        if not self.is_free(start, end):
            raise ValueError(f"interval [{start}, {end}) overlaps existing reservation")
        insort(self._busy, (start, end))
        self.version += 1

    def release(self, start: float, end: float) -> None:
        """Remove a previously reserved interval (exact match required)."""
        if end <= start + _EPS:
            return
        i = bisect_left(self._busy, (start - _EPS, -float("inf")))
        while i < len(self._busy):
            s, e = self._busy[i]
            if abs(s - start) <= _EPS and abs(e - end) <= _EPS:
                del self._busy[i]
                self.version += 1
                self.release_version += 1
                return
            if s > start + _EPS:
                break
            i += 1
        raise ValueError(f"interval [{start}, {end}) was not reserved")

    def copy(self) -> "IntervalTimeline":
        dup = IntervalTimeline()
        dup._busy = list(self._busy)
        dup.version = self.version
        dup.release_version = self.release_version
        return dup


def earliest_common_gap(
    a: IntervalTimeline,
    b: IntervalTimeline,
    duration: float,
    not_before: float = 0.0,
) -> float:
    """Earliest start ≥ *not_before* where *duration* fits in both timelines.

    Alternates between the two calendars: each proposes its earliest gap at
    or after the current candidate; when both agree the slot is found.  The
    loop terminates because every disagreement advances the candidate past
    the end of at least one busy interval.
    """
    if duration < 0:
        raise ValueError(f"negative duration {duration}")
    t = not_before
    for _ in range(2 * (len(a) + len(b)) + 4):
        ta = a.earliest_gap(duration, t)
        tb = b.earliest_gap(duration, ta)
        if tb <= ta + _EPS:
            return ta
        t = tb
    raise RuntimeError("earliest_common_gap failed to converge")  # pragma: no cover
