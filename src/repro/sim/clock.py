"""Clock-driven control of the SLRH loop (§IV).

The heuristic "operates on a clock-driven basis — i.e., the heuristic is
executed at specified time intervals as opposed to whenever a machine
becomes available".  One clock cycle is 0.1 s; the heuristic fires every
ΔT cycles and considers start times up to H cycles ahead (the receding
horizon).  :class:`SimulationClock` owns the cycle arithmetic so heuristics
never manipulate raw floats.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import CYCLE_SECONDS


@dataclass
class SimulationClock:
    """Discrete clock advancing in ΔT-cycle steps.

    Attributes
    ----------
    delta_t_cycles:
        ΔT — cycles between heuristic invocations (paper default 10).
    horizon_cycles:
        H — receding-horizon length in cycles (paper default 100).
    cycle_seconds:
        Real-time length of one cycle (0.1 s in the paper).
    """

    delta_t_cycles: int = 10
    horizon_cycles: int = 100
    cycle_seconds: float = CYCLE_SECONDS
    cycle: int = 0

    def __post_init__(self) -> None:
        if self.delta_t_cycles < 1:
            raise ValueError("delta_t_cycles must be >= 1")
        if self.horizon_cycles < 1:
            raise ValueError("horizon_cycles must be >= 1")
        if self.cycle_seconds <= 0:
            raise ValueError("cycle_seconds must be positive")
        if self.cycle < 0:
            raise ValueError("cycle must be non-negative")

    @property
    def now(self) -> float:
        """Current simulated time, seconds."""
        return self.cycle * self.cycle_seconds

    @property
    def horizon_end(self) -> float:
        """Latest permissible start time for a mapping made now (t + H)."""
        return (self.cycle + self.horizon_cycles) * self.cycle_seconds

    @property
    def delta_t_seconds(self) -> float:
        return self.delta_t_cycles * self.cycle_seconds

    def tick(self) -> float:
        """Advance by ΔT cycles; returns the new time in seconds."""
        self.cycle += self.delta_t_cycles
        return self.now

    def within_horizon(self, start_time: float) -> bool:
        """Whether *start_time* falls inside the receding horizon."""
        return start_time <= self.horizon_end + 1e-9

    def exceeded(self, tau: float) -> bool:
        """Whether the clock has run past the time constraint τ."""
        return self.now > tau + 1e-9
