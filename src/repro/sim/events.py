"""Discrete-event core used by the execution engine.

A minimal, dependency-free DES kernel: events carry a time, a kind and a
payload; :class:`EventQueue` pops them in (time, insertion-order) order so
simultaneous events replay deterministically.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator


class EventKind(enum.Enum):
    """Event types emitted when a schedule is executed."""

    TASK_START = "task_start"
    TASK_FINISH = "task_finish"
    COMM_START = "comm_start"
    COMM_FINISH = "comm_finish"
    MACHINE_LOSS = "machine_loss"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Replay order for events at the same instant: completions (which release
#: resources and deliver data) fire before starts that may depend on them;
#: machine losses are observed before anything else at that instant.
_KIND_PRIORITY: dict[EventKind, int] = {
    EventKind.MACHINE_LOSS: 0,
    EventKind.COMM_FINISH: 1,
    EventKind.TASK_FINISH: 2,
    EventKind.TASK_START: 3,
    EventKind.COMM_START: 4,
}


@dataclass(frozen=True, order=True)
class Event:
    """One timestamped simulation event.

    Ordering is by (time, kind priority, seq): completions fire before
    coincident starts, remaining ties replay in insertion order.
    """

    time: float
    priority: int
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Heap-backed event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        if time < 0:
            raise ValueError(f"negative event time {time}")
        event = Event(
            time=time,
            priority=_KIND_PRIORITY[kind],
            seq=next(self._counter),
            kind=kind,
            payload=payload,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Event]:
        """Pop every event in order."""
        while self._heap:
            yield heapq.heappop(self._heap)
