"""Grid churn: machines leaving *and rejoining* mid-run.

§I of the paper characterises ad hoc grids by assets that "can — and
frequently do — appear and disappear from the grid at unanticipated
times".  :func:`run_with_churn` drives one SLRH scheduler through an
arbitrary timeline of loss/join events over a single mutable schedule:

* the heuristic runs segment-by-segment between events
  (``SlrhScheduler.map(..., start_cycle, stop_cycle)``);
* a **loss** rolls back every assignment on the lost machine plus all
  descendants (the same checkpoint-free rule as
  :func:`repro.sim.engine.run_with_machine_loss`), charges surviving *and*
  lost machines for the work they had physically performed on rolled-back
  assignments (sunk energy), and marks the machine offline;
* a **join** simply marks the machine online again — it returns with
  whatever battery it had left, and the heuristic starts considering it at
  the next tick.

Unlike :func:`run_with_machine_loss` (which rebuilds on a reduced
scenario), churn keeps the original machine indexing throughout, so a
machine can come back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.schedule import Schedule
from repro.workload.scenario import Scenario

if TYPE_CHECKING:  # imported lazily at runtime to avoid a core<->sim cycle
    from repro.core.slrh import MappingResult, SlrhScheduler

_EPS = 1e-9


@dataclass(frozen=True)
class ChurnEvent:
    """One grid membership change."""

    cycle: int
    machine: int
    kind: str  # "loss" or "join"

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("event cycle must be non-negative")
        if self.kind not in ("loss", "join"):
            raise ValueError(f"unknown churn event kind {self.kind!r}")


@dataclass(frozen=True)
class ChurnRecord:
    """What one event did to the schedule."""

    event: ChurnEvent
    rolled_back: tuple[int, ...]
    sunk_energy: float


@dataclass(frozen=True)
class ChurnOutcome:
    final: "MappingResult"
    records: tuple[ChurnRecord, ...]

    @property
    def total_rolled_back(self) -> int:
        return sum(len(r.rolled_back) for r in self.records)


def _rollback_machine(schedule: Schedule, machine: int, loss_time: float) -> ChurnRecord:
    """Unassign everything on *machine* plus descendants; charge sunk energy."""
    dag = schedule.scenario.dag
    grid = schedule.scenario.grid
    dropped: set[int] = set()
    for task in dag.topological_order:
        a = schedule.assignments.get(task)
        if a is None:
            continue
        if a.machine == machine or any(p in dropped for p in dag.parents[task]):
            dropped.add(task)

    sunk = 0.0
    order = [t for t in dag.topological_order if t in dropped]
    for task in reversed(order):  # children before parents
        a = schedule.unassign(task)
        if a.start < loss_time - _EPS:
            wasted = min(a.finish, loss_time) - a.start
            energy = grid[a.machine].compute_energy(wasted)
            if energy > 0:
                schedule.debit_external(a.machine, energy)
                sunk += energy
        for c in a.comms:
            if c.start < loss_time - _EPS:
                wasted = min(c.finish, loss_time) - c.start
                energy = grid[c.src].transmit_energy(wasted)
                if energy > 0:
                    schedule.debit_external(c.src, energy)
                    sunk += energy
    return ChurnRecord(
        event=ChurnEvent(cycle=0, machine=machine, kind="loss"),  # placeholder
        rolled_back=tuple(order),
        sunk_energy=sunk,
    )


def run_with_churn(
    scenario: Scenario,
    scheduler: "SlrhScheduler",
    events: list[ChurnEvent],
) -> ChurnOutcome:
    """Run *scheduler* on *scenario* through the given churn timeline.

    Events are applied in cycle order; simultaneous events apply in list
    order.  The heuristic's wall-clock cost accumulates across segments via
    the returned final :class:`~repro.core.slrh.MappingResult` of the last
    segment (earlier segments' traces are merged into it).
    """
    from repro.core.slrh import MappingResult  # runtime import: core<->sim cycle

    for ev in events:
        if not 0 <= ev.machine < scenario.n_machines:
            raise IndexError(f"no machine {ev.machine}")
    schedule = Schedule(scenario, plan_cache=scheduler.config.plan_cache)
    ordered = sorted(events, key=lambda e: e.cycle)

    # One kernel lives across every segment: each `map` re-bases the
    # incremental candidate pool against whatever the events in between
    # did to the schedule (rollbacks, offline flips, sunk-energy debits).
    kernel = scheduler.make_kernel(schedule)
    records: list[ChurnRecord] = []
    cursor = 0
    total_seconds = 0.0
    merged_trace = None
    result: MappingResult | None = None
    for ev in ordered:
        result = scheduler.map(
            scenario,
            schedule=schedule,
            start_cycle=cursor,
            stop_cycle=ev.cycle,
            kernel=kernel,
        )
        total_seconds += result.heuristic_seconds
        merged_trace = _merge_trace(merged_trace, result.trace)
        loss_time = ev.cycle * scheduler.config.cycle_seconds
        if ev.kind == "loss":
            if ev.machine in schedule.offline:
                raise ValueError(f"machine {ev.machine} is already offline")
            record = _rollback_machine(schedule, ev.machine, loss_time)
            schedule.set_offline(ev.machine, True)
            records.append(
                ChurnRecord(
                    event=ev,
                    rolled_back=record.rolled_back,
                    sunk_energy=record.sunk_energy,
                )
            )
        else:  # join
            if ev.machine not in schedule.offline:
                raise ValueError(f"machine {ev.machine} is already online")
            schedule.set_offline(ev.machine, False)
            records.append(ChurnRecord(event=ev, rolled_back=(), sunk_energy=0.0))
        cursor = ev.cycle

    result = scheduler.map(
        scenario, schedule=schedule, start_cycle=cursor, kernel=kernel
    )
    total_seconds += result.heuristic_seconds
    merged_trace = _merge_trace(merged_trace, result.trace)

    final = MappingResult(
        schedule=schedule,
        trace=merged_trace,
        heuristic_seconds=total_seconds,
        heuristic=result.heuristic,
        weights=result.weights,
    )
    return ChurnOutcome(final=final, records=tuple(records))


def _merge_trace(acc, trace):
    if acc is None:
        return trace
    acc.records.extend(trace.records)
    acc.ticks += trace.ticks
    acc.machine_scans += trace.machine_scans
    acc.empty_pool_ticks += trace.empty_pool_ticks
    # Each segment snapshots the shared schedule's perf registry, which is
    # cumulative over the schedule's lifetime — the latest snapshot is the
    # whole-run total, not an increment.
    acc.perf = trace.perf
    if acc.ledger is not None and trace.ledger is not None:
        # Ledger continuity: each segment's ledger restarts tick numbering
        # at 0, so rebase the incoming records onto the accumulated tick
        # count — ``explain --tick K`` then addresses one global timeline
        # across every replan segment of a churned/streamed run.
        from dataclasses import replace

        base = acc.ledger.tick + 1
        acc.ledger.records.extend(
            replace(rec, tick=rec.tick + base) if rec.tick >= 0 else rec
            for rec in trace.ledger.records
        )
        acc.ledger.tick += trace.ledger.tick + 1
    return acc
