"""Historical record of critical parameters (§IV).

The paper's SLRH "stored a historical record of all critical parameters for
later analysis" after every mapping.  :class:`MappingTrace` captures that
record: one :class:`TraceRecord` per committed assignment plus per-tick
pool statistics, enough to reconstruct Figure 2-style ΔT analyses and to
debug heuristic behaviour without re-running.

Commits alone cannot answer *why* a candidate was passed over; with
``SlrhConfig(ledger=True)`` the trace additionally carries a
:class:`repro.obs.ledger.DecisionLedger` recording every rejection with a
reason code and numeric margin (``energy_infeasible``,
``outside_horizon``, ``lost_on_score`` …).  ``ledger is None`` — the
default — keeps the hot path free of any recording cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.ledger import DecisionLedger
from repro.sim.schedule import ExecutionPlan


@dataclass(frozen=True)
class TraceRecord:
    """State captured at the moment one assignment was committed."""

    clock: float
    task: int
    version: str
    machine: int
    start: float
    finish: float
    objective: float
    pool_size: int
    t100: int
    tec: float
    aet: float


@dataclass
class MappingTrace:
    """Append-only log of heuristic activity."""

    records: list[TraceRecord] = field(default_factory=list)
    ticks: int = 0
    empty_pool_ticks: int = 0
    machine_scans: int = 0
    #: Performance-counter snapshot (see :mod:`repro.perf`) taken when the
    #: heuristic finished; cumulative over the schedule's lifetime when one
    #: schedule is mapped in several segments (churn).
    perf: dict = field(default_factory=dict)
    #: Opt-in rejection ledger (see :mod:`repro.obs.ledger`); ``None`` when
    #: disabled, which is the zero-cost default.
    ledger: DecisionLedger | None = None

    def note_tick(self) -> None:
        self.ticks += 1
        if self.ledger is not None:
            self.ledger.note_tick()

    def note_machine_scan(self) -> None:
        self.machine_scans += 1

    def note_empty_pool(self) -> None:
        self.empty_pool_ticks += 1

    def record_commit(
        self,
        clock: float,
        plan: ExecutionPlan,
        objective: float,
        pool_size: int,
        t100: int,
        tec: float,
        aet: float,
    ) -> None:
        self.records.append(
            TraceRecord(
                clock=clock,
                task=plan.task,
                version=plan.version.value,
                machine=plan.machine,
                start=plan.start,
                finish=plan.finish,
                objective=objective,
                pool_size=pool_size,
                t100=t100,
                tec=tec,
                aet=aet,
            )
        )

    @property
    def n_commits(self) -> int:
        return len(self.records)

    def commits_per_tick(self) -> float:
        """Mean assignments per heuristic invocation — the quantity that
        collapses when ΔT is too small (Figure 2's runtime blow-up)."""
        return len(self.records) / self.ticks if self.ticks else 0.0
