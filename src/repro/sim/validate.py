"""Independent schedule validation.

Every simulation assumption of §III is re-checked here against a finished
:class:`~repro.sim.schedule.Schedule`, *without* trusting the incremental
bookkeeping the schedulers maintain.  Tests and experiment drivers call
:func:`validate_schedule` on every produced mapping, so a bug in the fast
path cannot silently ship an invalid result:

1. every mapped subtask's parents are mapped (precedence closure);
2. a subtask starts only after all parents finish and all its incoming
   transfers complete (precedence + data availability);
3. a transfer starts only after its sending parent finishes;
4. each machine executes at most one subtask at a time;
5. each machine drives at most one outgoing and one incoming transfer at a
   time; co-located transfers are free and take zero time (they are never
   recorded);
6. recomputed energy (execution + sender-side transmission) matches the
   ledger and respects every battery;
7. if the schedule claims completeness, every subtask is mapped; AET and
   T100 match recomputation.
"""

from __future__ import annotations

from repro.sim.schedule import Schedule

_EPS = 1e-6


class ValidationError(AssertionError):
    """A schedule violated one of the §III simulation assumptions."""


def _check_unit_capacity(intervals: list[tuple[float, float]], label: str) -> None:
    intervals = sorted(intervals)
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        if s2 < e1 - _EPS:
            raise ValidationError(
                f"{label}: intervals [{s1}, {e1}) and [{s2}, {e2}) overlap"
            )


def validate_schedule(schedule: Schedule, require_complete: bool = False) -> None:
    """Raise :class:`ValidationError` on any assumption violation."""
    scenario = schedule.scenario
    assignments = schedule.assignments

    if require_complete and len(assignments) != scenario.n_tasks:
        raise ValidationError(
            f"schedule maps {len(assignments)}/{scenario.n_tasks} subtasks"
        )

    exec_by_machine: dict[int, list[tuple[float, float]]] = {}
    out_by_machine: dict[int, list[tuple[float, float]]] = {}
    in_by_machine: dict[int, list[tuple[float, float]]] = {}
    energy_by_machine = [0.0] * scenario.n_machines
    t100 = 0
    aet = 0.0

    for task, a in assignments.items():
        if a.task != task:
            raise ValidationError(f"assignment keyed {task} records task {a.task}")
        if a.finish < a.start - _EPS:
            raise ValidationError(f"task {task}: finish {a.finish} before start {a.start}")
        expected_dur = scenario.exec_time(task, a.machine, a.version)
        if abs(a.duration - expected_dur) > _EPS * max(1.0, expected_dur):
            raise ValidationError(
                f"task {task}: duration {a.duration} != ETC-derived {expected_dur}"
            )
        if a.start < scenario.release(task) - _EPS:
            raise ValidationError(
                f"task {task} starts at {a.start} before its release "
                f"time {scenario.release(task)}"
            )

        comms_by_parent = {c.parent: c for c in a.comms}
        for p in scenario.dag.parents[task]:
            if p not in assignments:
                raise ValidationError(f"task {task} mapped before parent {p}")
            pa = assignments[p]
            if pa.finish > a.start + _EPS:
                raise ValidationError(
                    f"task {task} starts at {a.start} before parent {p} "
                    f"finishes at {pa.finish}"
                )
            bits = scenario.data_bits(p, task, pa.version)
            if pa.machine != a.machine and bits > 0:
                c = comms_by_parent.get(p)
                if c is None:
                    raise ValidationError(
                        f"task {task}: missing transfer from remote parent {p}"
                    )
                if abs(c.bits - bits) > _EPS * max(1.0, bits):
                    raise ValidationError(
                        f"transfer {p}->{task}: {c.bits} bits recorded, "
                        f"{bits} expected for version {pa.version}"
                    )
                if c.src != pa.machine or c.dst != a.machine:
                    raise ValidationError(
                        f"transfer {p}->{task} routed {c.src}->{c.dst}, "
                        f"expected {pa.machine}->{a.machine}"
                    )
                if c.start < pa.finish - _EPS:
                    raise ValidationError(
                        f"transfer {p}->{task} starts at {c.start} before "
                        f"parent finishes at {pa.finish}"
                    )
                if c.finish > a.start + _EPS:
                    raise ValidationError(
                        f"task {task} starts at {a.start} before its input "
                        f"from {p} arrives at {c.finish}"
                    )
                expected_comm = scenario.network.transfer_time(c.src, c.dst, bits)
                if abs(c.duration - expected_comm) > _EPS * max(1.0, expected_comm):
                    raise ValidationError(
                        f"transfer {p}->{task}: duration {c.duration} != "
                        f"bandwidth-derived {expected_comm}"
                    )
            else:
                if p in comms_by_parent:
                    raise ValidationError(
                        f"co-located transfer {p}->{task} should not be recorded"
                    )

        for c in a.comms:
            if c.child != task:
                raise ValidationError(f"task {task} holds a transfer for {c.child}")
            if c.parent not in scenario.dag.parents[task]:
                raise ValidationError(
                    f"transfer {c.parent}->{task} has no matching DAG edge"
                )
            out_by_machine.setdefault(c.src, []).append((c.start, c.finish))
            in_by_machine.setdefault(c.dst, []).append((c.start, c.finish))
            expected_energy = scenario.grid[c.src].transmit_energy(c.duration)
            if abs(c.energy - expected_energy) > _EPS * max(1.0, expected_energy):
                raise ValidationError(
                    f"transfer {c.parent}->{task}: energy {c.energy} != "
                    f"rate-derived {expected_energy}"
                )
            energy_by_machine[c.src] += c.energy

        exec_by_machine.setdefault(a.machine, []).append((a.start, a.finish))
        expected_energy = scenario.compute_energy(task, a.machine, a.version)
        if abs(a.energy - expected_energy) > _EPS * max(1.0, expected_energy):
            raise ValidationError(
                f"task {task}: energy {a.energy} != rate-derived {expected_energy}"
            )
        energy_by_machine[a.machine] += a.energy
        if a.version.counts_toward_t100:
            t100 += 1
        aet = max(aet, a.finish)

    for j, ivs in exec_by_machine.items():
        _check_unit_capacity(ivs, f"machine {j} execution")
    for j, ivs in out_by_machine.items():
        _check_unit_capacity(ivs, f"machine {j} outgoing channel")
    for j, ivs in in_by_machine.items():
        _check_unit_capacity(ivs, f"machine {j} incoming channel")

    for j in range(scenario.n_machines):
        expected = energy_by_machine[j] + schedule.external_debits[j]
        if expected > scenario.grid[j].battery * (1 + 1e-9) + _EPS:
            raise ValidationError(
                f"machine {j} consumes {expected:.6g} of a "
                f"{scenario.grid[j].battery:.6g}-unit battery"
            )
        ledger = schedule.energy.consumed(j)
        if abs(ledger - expected) > _EPS * max(1.0, ledger):
            raise ValidationError(
                f"machine {j}: ledger says {ledger:.6g}, recomputation "
                f"{expected:.6g}"
            )

    if t100 != schedule.t100:
        raise ValidationError(f"T100 bookkeeping {schedule.t100} != recount {t100}")
    if abs(aet - schedule.makespan) > _EPS * max(1.0, aet):
        raise ValidationError(
            f"AET bookkeeping {schedule.makespan} != recomputed {aet}"
        )
