"""Event-driven execution of schedules, with dynamic machine loss.

Two capabilities live here:

1. :func:`execute_schedule` replays a committed schedule as a discrete
   event stream (task/comm start/finish), re-checking at event granularity
   that nothing starts before its inputs exist, and producing utilisation
   and energy-over-time statistics.  This is how examples and tests
   demonstrate a mapping actually *runs* under the §III machine model.

2. :func:`run_with_machine_loss` realises the ad hoc scenario that
   motivates the paper (§I) but was deferred to future work: a machine
   vanishes mid-execution; every assignment whose results are unrecoverable
   is rolled back, and the resource manager re-maps the remainder on the
   surviving grid from the loss instant onward.

Loss semantics (checkpoint-free and artifact-free, per the paper's remark
that recovering partial results "may prove too costly"):

* **every** assignment placed on the lost machine is invalidated — even
  completed ones, since re-validating which of their output deliveries are
  still usable amounts to partial-result recovery;
* invalidation propagates to all descendants' assignments (their inputs
  will be re-produced, possibly elsewhere at a different version);
* everything else — including work scheduled in the future on surviving
  machines — survives with its original timing and energy accounting;
* execution and transmission time that surviving machines had already
  spent on invalidated work before the loss is *sunk*: its energy stays
  debited (see :meth:`repro.sim.schedule.Schedule.debit_external`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.log import enabled as _obs_enabled
from repro.obs.log import get_logger
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.schedule import Assignment, ExecutionPlan, Schedule
from repro.workload.scenario import Scenario

if TYPE_CHECKING:  # imported lazily at runtime to avoid a core<->sim cycle
    from repro.core.slrh import MappingResult, SlrhScheduler

#: Structured event log (no-op unless :mod:`repro.obs.log` is configured).
_LOG = get_logger("engine")


@dataclass
class ExecutionLog:
    """Event stream plus summary statistics from one schedule execution."""

    events: list[Event] = field(default_factory=list)
    busy_seconds: dict[int, float] = field(default_factory=dict)
    comm_seconds: dict[int, float] = field(default_factory=dict)
    makespan: float = 0.0

    def utilisation(self, machine: int, horizon: float | None = None) -> float:
        """Fraction of [0, horizon] machine *machine* spent computing
        (horizon defaults to the makespan)."""
        horizon = horizon if horizon is not None else self.makespan
        if horizon <= 0:
            return 0.0
        return self.busy_seconds.get(machine, 0.0) / horizon

    def events_of(self, kind: EventKind) -> list[Event]:
        return [e for e in self.events if e.kind is kind]


def execute_schedule(schedule: Schedule) -> ExecutionLog:
    """Replay *schedule* as an event stream (see module docstring).

    Raises
    ------
    RuntimeError
        If replay uncovers an ordering violation (a task starting before a
        parent finished or before an input transfer completed) — this
        would indicate a scheduler bug that interval validation missed.
    """
    queue = EventQueue()
    for a in schedule.assignments.values():
        queue.push(a.start, EventKind.TASK_START, a)
        queue.push(a.finish, EventKind.TASK_FINISH, a)
        for c in a.comms:
            queue.push(c.start, EventKind.COMM_START, c)
            queue.push(c.finish, EventKind.COMM_FINISH, c)

    log = ExecutionLog()
    finished: set[int] = set()
    arrived: set[tuple[int, int]] = set()  # (parent, child) data deliveries
    dag = schedule.scenario.dag
    for event in queue.drain():
        log.events.append(event)
        if event.kind is EventKind.COMM_FINISH:
            c = event.payload
            arrived.add((c.parent, c.child))
            log.comm_seconds[c.src] = log.comm_seconds.get(c.src, 0.0) + c.duration
        elif event.kind is EventKind.TASK_START:
            a = event.payload
            needed = {c.parent for c in a.comms}
            for p in dag.parents[a.task]:
                if p not in finished:
                    raise RuntimeError(
                        f"replay: task {a.task} started at {a.start} before "
                        f"parent {p} finished"
                    )
                if p in needed and (p, a.task) not in arrived:
                    raise RuntimeError(
                        f"replay: task {a.task} started before its input "
                        f"from {p} arrived"
                    )
        elif event.kind is EventKind.TASK_FINISH:
            a = event.payload
            finished.add(a.task)
            log.busy_seconds[a.machine] = log.busy_seconds.get(a.machine, 0.0) + a.duration
            log.makespan = max(log.makespan, a.finish)
    if _obs_enabled():
        _LOG.event(
            "engine.replayed",
            scenario=schedule.scenario.name,
            events=len(log.events),
            tasks=len(finished),
            makespan=log.makespan,
        )
    return log


# -- dynamic machine loss -----------------------------------------------------


@dataclass(frozen=True)
class MachineLossOutcome:
    """Result of an ad hoc machine-loss run."""

    #: The heuristic's original mapping on the full grid.
    initial: "MappingResult"
    #: Final mapping on the surviving grid (kept + re-mapped assignments).
    final: "MappingResult"
    #: The reduced scenario the final mapping lives on.
    reduced_scenario: Scenario
    #: Tasks whose assignments survived the loss.
    survivors: tuple[int, ...]
    #: Tasks rolled back and re-mapped (directly hit or descendants).
    invalidated: tuple[int, ...]
    lost_machine: int
    loss_time: float


def surviving_tasks(
    schedule: Schedule, lost_machine: int
) -> tuple[set[int], set[int]]:
    """Split mapped tasks into (kept, invalidated) under the loss rules.

    A single topological pass suffices: a task falls iff it was placed on
    the lost machine or any parent fell (parents precede children in the
    order, so descendant propagation is complete).
    """
    dag = schedule.scenario.dag
    kept: set[int] = set()
    dropped: set[int] = set()
    for task in dag.topological_order:
        a = schedule.assignments.get(task)
        if a is None:
            continue
        if a.machine == lost_machine or any(p in dropped for p in dag.parents[task]):
            dropped.add(task)
        else:
            kept.add(task)
    return kept, dropped


def _replan_assignment(a: Assignment, machine_map: dict[int, int]) -> ExecutionPlan:
    """Rebuild an :class:`ExecutionPlan` for re-committing a surviving
    assignment onto the reduced grid (machine indices remapped)."""
    comms = tuple(
        type(c)(
            parent=c.parent,
            child=c.child,
            src=machine_map[c.src],
            dst=machine_map[c.dst],
            bits=c.bits,
            start=c.start,
            finish=c.finish,
            energy=c.energy,
        )
        for c in a.comms
    )
    return ExecutionPlan(
        task=a.task,
        version=a.version,
        machine=machine_map[a.machine],
        start=a.start,
        finish=a.finish,
        exec_energy=a.energy,
        comms=comms,
        energy_delta=a.energy + sum(c.energy for c in comms),
        data_ready=a.start,
    )


def run_with_machine_loss(
    scenario: Scenario,
    scheduler: "SlrhScheduler",
    lost_machine: int,
    loss_cycle: int,
) -> MachineLossOutcome:
    """Map, lose a machine mid-run, roll back, and re-map (module docstring).

    Parameters
    ----------
    scheduler:
        The SLRH instance used both for the initial mapping and for the
        re-mapping pass (which resumes at *loss_cycle*).  Each pass runs
        on its own :class:`repro.core.kernel.SchedulingKernel` — the
        rebuilt schedule lives on a *reduced* scenario, so the initial
        pass's incremental pool cannot carry over (contrast
        :func:`repro.sim.churn.run_with_churn`, which keeps machine
        indexing stable and threads one kernel through every segment).
    loss_cycle:
        Clock cycle at which *lost_machine* vanishes.
    """
    if not 0 <= lost_machine < scenario.n_machines:
        raise IndexError(f"no machine {lost_machine}")
    if scenario.n_machines < 2:
        raise ValueError("cannot lose the only machine in the grid")
    loss_time = loss_cycle * scheduler.config.cycle_seconds

    initial = scheduler.map(scenario)
    kept, dropped = surviving_tasks(initial.schedule, lost_machine)

    reduced = scenario.without_machine(lost_machine)
    machine_map = {
        old: new
        for new, old in enumerate(
            k for k in range(scenario.n_machines) if k != lost_machine
        )
    }
    rebuilt = Schedule(reduced)
    for task in scenario.dag.topological_order:
        if task not in kept:
            continue
        a = initial.schedule.assignments[task]
        rebuilt.commit(_replan_assignment(a, machine_map))

    # Energy that surviving machines had already burnt on invalidated work
    # before the loss is gone for good — debit it as sunk cost.
    for task in dropped:
        a = initial.schedule.assignments[task]
        if a.machine != lost_machine and a.start < loss_time:
            wasted = min(a.finish, loss_time) - a.start
            rebuilt.debit_external(
                machine_map[a.machine],
                scenario.grid[a.machine].compute_energy(wasted),
            )
        for c in a.comms:
            if c.src != lost_machine and c.start < loss_time:
                wasted = min(c.finish, loss_time) - c.start
                rebuilt.debit_external(
                    machine_map[c.src],
                    scenario.grid[c.src].transmit_energy(wasted),
                )

    final = scheduler.map(reduced, schedule=rebuilt, start_cycle=loss_cycle)
    return MachineLossOutcome(
        initial=initial,
        final=final,
        reduced_scenario=reduced,
        survivors=tuple(sorted(kept)),
        invalidated=tuple(sorted(dropped)),
        lost_machine=lost_machine,
        loss_time=loss_time,
    )
