"""Simulation substrate: timelines, schedules, validation, clock, DES engine.

The paper's heuristics *build* a schedule against simulated time (§IV); this
package provides the machinery they share:

* :class:`~repro.sim.timeline.IntervalTimeline` — unit-capacity resource
  calendars (machine execution slots, per-machine in/out comm channels);
* :class:`~repro.sim.schedule.Schedule` — the mutable mapping state: plan a
  tentative (subtask, version, machine) assignment with all incoming
  communications, then commit or discard it;
* :mod:`~repro.sim.validate` — independent checking of every simulation
  assumption against a finished schedule;
* :class:`~repro.sim.clock.SimulationClock` — the 0.1 s-cycle clock driving
  the SLRH loop;
* :mod:`~repro.sim.engine` — an event-driven executor that *runs* a schedule
  and can inject machine-loss events (the ad hoc scenario of §I).
"""

from repro.sim.churn import ChurnEvent, ChurnOutcome, ChurnRecord, run_with_churn
from repro.sim.clock import SimulationClock
from repro.sim.engine import (
    ExecutionLog,
    MachineLossOutcome,
    execute_schedule,
    run_with_machine_loss,
)
from repro.sim.schedule import Assignment, ExecutionPlan, PlannedComm, Schedule
from repro.sim.timeline import IntervalTimeline
from repro.sim.trace import MappingTrace, TraceRecord
from repro.sim.validate import ValidationError, validate_schedule

__all__ = [
    "IntervalTimeline",
    "Schedule",
    "Assignment",
    "ExecutionPlan",
    "PlannedComm",
    "SimulationClock",
    "MappingTrace",
    "TraceRecord",
    "validate_schedule",
    "ValidationError",
    "ExecutionLog",
    "execute_schedule",
    "MachineLossOutcome",
    "run_with_machine_loss",
    "ChurnEvent",
    "ChurnRecord",
    "ChurnOutcome",
    "run_with_churn",
]
