"""HTTP surface of the scheduling service (stdlib ``http.server``).

Routes (all bodies JSON; streaming endpoints NDJSON):

``POST /v1/scenarios``
    Register a scenario document (``scenario_to_dict`` form), or generate
    one server-side from ``{"generate": {"n_tasks": N, "seed": S}}`` via
    the same constructor the batch CLI uses.  201 on first registration,
    200 for a duplicate (content-addressed: same bytes → same id).
``POST /v1/map``
    Run a registry heuristic on a registered scenario.  Default is
    synchronous: the response body is the canonical mapping JSON,
    byte-identical to ``python -m repro.experiments map``.  With
    ``"wait": false`` returns 202 and a job id to poll.  Backpressure:
    429 + ``Retry-After`` when the bounded queue is full, 503 while
    draining.
``GET /v1/jobs/<id>``
    Job status document.
``GET /v1/jobs/<id>/result``
    Canonical mapping JSON of a finished job (409 while running).
``GET /v1/jobs/<id>/events``
    NDJSON stream: ``status`` heartbeats while the job is queued/running,
    then the tick-level ``commit`` trace events of the finished mapping,
    a ``trace`` summary and a final ``done`` record.
``GET /v1/scenarios``
    Registered scenario ids.
``POST /v1/session``
    Open a live-grid streaming session on a registered scenario: one
    persistent schedule (and, for the SLRH family, one persistent
    scheduling kernel fed by precise event deltas) that survives across
    requests.  The body names the scenario, heuristic, optional (α, β)
    and — SLRH family only — ``delta_t_cycles`` / ``horizon_cycles`` /
    ``kernel`` overrides plus a ``pending`` list of held task ids that
    arrive later via ``task_arrival`` events.  429 when the bounded
    session table is full, 503 while draining.
``POST /v1/session/<id>/events``
    Stream grid events in (NDJSON request body, one
    :mod:`repro.session.events` document per line); mapping deltas
    stream out (NDJSON response): per event one delta block — new or
    changed assignments only, in the exact per-task encoding of the
    full-mapping NDJSON stream — and after ``close`` a final footer.  A
    rejected event yields one ``error`` record and ends the response;
    the session itself survives (events apply atomically).
``GET /v1/session/<id>``
    Session status document (cursor, delta ``seq``, mapped count,
    still-pending arrivals; final summary once closed).
``GET /v1/session/<id>/result``
    Canonical mapping JSON of a *closed* session (409 while open) —
    byte-identical to an offline replay of the same event stream.
``GET /v1/sessions``
    Live session ids.
``GET /healthz``
    Liveness + drain state, plus one entry per shard (pid, queue depth,
    busy, seconds since the last heartbeat).  503 the moment any shard
    process is dead — jobs routed there fail fast, so the probe should
    too.
``GET /metrics``
    The live ``repro.perf/2`` registry: engine counters merged from every
    completed job (plan-cache hit rates …), service gauges (queue depth,
    in-flight) and latency histograms with p50/p95/p99.  Content
    negotiated: JSON by default; ``Accept: text/plain`` or
    ``?format=prom`` returns Prometheus text exposition
    (:func:`repro.obs.prom.render_prometheus`) for scrapers.

When the structured event log is configured (``--obs-log`` /
``REPRO_OBS_LOG``), every request emits one ``http.request`` NDJSON
record with method, path, status, latency and queue depth.

Threading model: :class:`ThreadingHTTPServer` gives one handler thread per
connection; synchronous ``/v1/map`` handlers block on the job's completion
event while the scenario-affine shard dispatchers (one thread + one
resident worker process per shard; inline at ``--shards 1``) drain their
bounded queues.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.io.serialization import canonical_json_bytes
from repro.obs.log import enabled as _obs_enabled
from repro.obs.log import get_logger
from repro.obs.prom import render_prometheus
from repro.service.jobs import DrainingError, Job, JobManager, QueueFullError
from repro.service.sessions import SessionLimitError, SessionManager
from repro.session import event_from_dict

#: Seconds between NDJSON ``status`` heartbeats while a job is pending.
EVENT_HEARTBEAT_SECONDS = 1.0

_LOG = get_logger("service.http")


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service state.

    No ``# guarded-by:`` annotations here on purpose: every attribute is
    written once before ``serve_forever`` and read-only afterwards, and
    all cross-thread mutable state lives behind the manager's and
    registry's own locks.  Handlers hold only per-connection state.
    """

    daemon_threads = True
    allow_reuse_address = True
    # The socketserver default accept backlog (5) drops connections under
    # the 64-256-client loadgen levels the shard layer is built for; the
    # kernel clamps this to somaxconn, so a large value is safe anywhere.
    request_queue_size = 512

    def __init__(
        self,
        address: tuple[str, int],
        manager: JobManager,
        quiet: bool = True,
        sessions: SessionManager | None = None,
    ) -> None:
        super().__init__(address, ServiceHandler)
        self.manager = manager
        self.registry = manager.registry
        self.quiet = quiet
        self.sessions = (
            sessions
            if sessions is not None
            else SessionManager(
                manager.registry, perf=manager.perf, router=manager
            )
        )
        self.started_at = time.monotonic()


def make_server(
    host: str,
    port: int,
    manager: JobManager,
    quiet: bool = True,
    sessions: SessionManager | None = None,
) -> ServiceServer:
    """Bind a :class:`ServiceServer` (port 0 → ephemeral) and start the
    manager's dispatcher."""
    server = ServiceServer((host, port), manager, quiet=quiet, sessions=sessions)
    manager.start()
    return server


class ServiceHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServiceServer

    # -- plumbing ----------------------------------------------------------

    def log_message(self, fmt: str, *args: object) -> None:  # pragma: no cover - log noise
        if not self.server.quiet:
            super().log_message(fmt, *args)

    @property
    def manager(self) -> JobManager:
        return self.server.manager

    def send_response(self, code: int, message: str | None = None) -> None:
        # Remember the status for the structured access log (the base class
        # offers no other hook between routing and response).
        self._obs_status = code
        super().send_response(code, message)

    def _access_log(self, method: str, started: float) -> None:
        if not _obs_enabled():
            return  # skip the queue-depth lock entirely when obs is off
        _LOG.event(
            "http.request",
            method=method,
            path=self.path,
            status=getattr(self, "_obs_status", 0),
            latency_seconds=round(time.perf_counter() - started, 6),
            queue_depth=self.manager.queue_depth,
        )

    def _send(
        self,
        status: int,
        payload: bytes,
        content_type: str = "application/json",
        extra_headers: dict | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, doc: dict, extra_headers: dict | None = None) -> None:
        self._send(status, canonical_json_bytes(doc), extra_headers=extra_headers)

    def _error(self, status: int, message: str, **extra: object) -> None:
        headers = {}
        if "retry_after" in extra:
            # RFC 9110 §10.2.3: Retry-After carries delta-seconds as a
            # decimal string.  Serialise here, at the header boundary, so
            # the wire value never depends on how send_header renders an
            # int — and keep the integer in the JSON body, which clients
            # (see loadgen) read for their backoff.
            headers["Retry-After"] = str(int(extra["retry_after"]))
        self._send_json(status, {"error": message, **extra}, extra_headers=headers)

    def _read_body(self) -> dict | None:
        try:
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b""
            doc = json.loads(raw) if raw else {}
        except (ValueError, json.JSONDecodeError):
            self._error(400, "request body must be a JSON object")
            return None
        if not isinstance(doc, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return doc

    # -- POST --------------------------------------------------------------

    def do_POST(self) -> None:
        started = time.perf_counter()
        try:
            if self.path == "/v1/scenarios":
                self._post_scenarios()
            elif self.path == "/v1/map":
                self._post_map()
            elif self.path == "/v1/session":
                self._post_session()
            elif self.path.startswith("/v1/session/") and self.path.endswith(
                "/events"
            ):
                self._post_session_events(
                    self.path[len("/v1/session/"):-len("/events")]
                )
            else:
                self._error(404, f"no such endpoint {self.path!r}")
        except BrokenPipeError:  # client went away mid-response
            pass
        finally:
            self._access_log("POST", started)

    def _post_scenarios(self) -> None:
        body = self._read_body()
        if body is None:
            return
        gen = body.get("generate")
        if gen is not None:
            from repro.heuristics import generate_named_scenario
            from repro.io.serialization import scenario_to_dict

            try:
                doc = scenario_to_dict(
                    generate_named_scenario(
                        int(gen.get("n_tasks", 0)), int(gen.get("seed", 0))
                    )
                )
            except (TypeError, ValueError, AttributeError) as exc:
                self._error(400, f"bad generate spec: {exc}")
                return
        else:
            doc = body
        try:
            scenario_id, created = self.server.registry.put(doc)
        except (KeyError, TypeError, ValueError) as exc:
            self._error(400, f"bad scenario document: {exc}")
            return
        self._send_json(
            201 if created else 200,
            {
                "id": scenario_id,
                "created": created,
                "name": doc.get("name"),
                "n_tasks": doc["dag"]["n_tasks"],
                "n_machines": len(doc["grid"]["machines"]),
            },
        )

    def _post_map(self) -> None:
        body = self._read_body()
        if body is None:
            return
        scenario_id = body.get("scenario")
        heuristic = body.get("heuristic", "slrh1")
        if not scenario_id:
            self._error(400, "missing 'scenario' (a registered scenario id)")
            return
        try:
            alpha = body.get("alpha")
            beta = body.get("beta")
            job = self.manager.submit(
                scenario_id,
                heuristic,
                None if alpha is None else float(alpha),
                None if beta is None else float(beta),
            )
        except QueueFullError as exc:
            self._error(
                429, str(exc),
                retry_after=exc.retry_after,
                queue_depth=exc.depth,
            )
            return
        except DrainingError as exc:
            self._error(503, str(exc))
            return
        except KeyError as exc:
            self._error(404, str(exc.args[0] if exc.args else exc))
            return
        except (TypeError, ValueError) as exc:
            self._error(400, str(exc))
            return
        if body.get("wait", True):
            job.done.wait()
            self._job_result(job)
        else:
            self._send_json(
                202,
                {
                    "job": job.id,
                    "state": job.state,
                    "status_url": f"/v1/jobs/{job.id}",
                    "events_url": f"/v1/jobs/{job.id}/events",
                    "result_url": f"/v1/jobs/{job.id}/result",
                },
            )

    def _post_session(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            session = self.server.sessions.open(body)
        except SessionLimitError as exc:
            self._error(
                429, str(exc),
                retry_after=exc.retry_after,
                active_sessions=exc.active,
            )
            return
        except DrainingError as exc:
            self._error(503, str(exc))
            return
        except KeyError as exc:
            self._error(404, str(exc.args[0] if exc.args else exc))
            return
        except (TypeError, ValueError, IndexError) as exc:
            self._error(400, str(exc))
            return
        self._send_json(
            201,
            {
                "session": session.id,
                "scenario": session.scenario_id,
                "heuristic": session.heuristic,
                "pending": session.status_doc()["pending"],
                "events_url": f"/v1/session/{session.id}/events",
                "status_url": f"/v1/session/{session.id}",
                "result_url": f"/v1/session/{session.id}/result",
            },
        )

    def _post_session_events(self, session_id: str) -> None:
        """Apply one NDJSON batch of grid events; stream delta blocks back."""
        sessions = self.server.sessions
        if sessions.draining:
            self._error(503, "service is draining; not accepting session events")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b""
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        events = []
        for lineno, line in enumerate(raw.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                events.append(event_from_dict(json.loads(line)))
            except (ValueError, json.JSONDecodeError) as exc:
                self._error(400, f"bad event on line {lineno}: {exc}")
                return
        if not events:
            self._error(400, "empty event batch (one NDJSON event per line)")
            return
        try:
            session = sessions.get(session_id)
        except KeyError:
            self._error(404, f"no such session {session_id!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        for line in session.stream(events):
            self.wfile.write(line)
            self.wfile.flush()
        if session.is_closed():
            sessions.note_closed(session)

    # -- GET ---------------------------------------------------------------

    def do_GET(self) -> None:
        started = time.perf_counter()
        path, _, query = self.path.partition("?")
        try:
            if path == "/healthz":
                self._get_healthz()
            elif path == "/metrics":
                self._get_metrics(query)
            elif path == "/v1/scenarios":
                self._send_json(200, {"scenarios": self.server.registry.ids()})
            elif path == "/v1/sessions":
                self._send_json(200, {"sessions": self.server.sessions.ids()})
            elif path.startswith("/v1/jobs/"):
                self._get_job(path[len("/v1/jobs/"):])
            elif path.startswith("/v1/session/"):
                self._get_session(path[len("/v1/session/"):])
            else:
                self._error(404, f"no such endpoint {self.path!r}")
        except BrokenPipeError:
            pass
        finally:
            self._access_log("GET", started)

    def _get_healthz(self) -> None:
        manager = self.manager
        health = manager.health_doc()
        if not health["healthy"]:
            status, code = "degraded", 503
        elif manager.draining:
            status, code = "draining", 200
        else:
            status, code = "ok", 200
        self._send_json(
            code,
            {
                "status": status,
                "uptime_seconds": time.monotonic() - self.server.started_at,
                "queue_depth": manager.queue_depth,
                "inflight": manager.inflight,
                "scenarios": len(self.server.registry),
                "sessions": len(self.server.sessions),
                "shards": health["shards"],
            },
        )

    def _get_session(self, tail: str) -> None:
        session_id, _, verb = tail.partition("/")
        try:
            session = self.server.sessions.get(session_id)
        except KeyError:
            self._error(404, f"no such session {session_id!r}")
            return
        if verb == "":
            self._send_json(200, session.status_doc())
        elif verb == "result":
            payload = session.result_bytes()
            if payload is None:
                self._error(409, f"session {session.id} is still open")
            else:
                self._send(200, payload, extra_headers={"X-Session-Id": session.id})
        else:
            self._error(404, f"no such session endpoint {verb!r}")

    def _wants_prometheus(self, query: str) -> bool:
        """Content negotiation for ``/metrics``: JSON unless the client asks
        for exposition via ``?format=prom`` or ``Accept: text/plain``."""
        params = query.split("&") if query else []
        if "format=prom" in params:
            return True
        if "format=json" in params:
            return False
        accept = self.headers.get("Accept", "")
        return "text/plain" in accept and "json" not in accept

    def _get_metrics(self, query: str = "") -> None:
        doc = self.manager.metrics_document(
            service="repro.service",
            uptime_seconds=time.monotonic() - self.server.started_at,
        )
        if self._wants_prometheus(query):
            self._send(
                200,
                render_prometheus(doc).encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
            return
        payload = (
            json.dumps(doc, indent=2, sort_keys=True, allow_nan=True) + "\n"
        ).encode("ascii")
        self._send(200, payload)

    def _get_job(self, tail: str) -> None:
        job_id, _, verb = tail.partition("/")
        try:
            job = self.manager.get(job_id)
        except KeyError:
            self._error(404, f"no such job {job_id!r}")
            return
        if verb == "":
            self._send_json(200, job.status_doc())
        elif verb == "result":
            if not job.done.is_set():
                self._error(409, f"job {job.id} is {job.state}")
            else:
                self._job_result(job)
        elif verb == "events":
            self._stream_events(job)
        else:
            self._error(404, f"no such job endpoint {verb!r}")

    def _job_result(self, job: Job) -> None:
        if job.state == "succeeded":
            self._send(
                200,
                job.mapping_bytes,
                extra_headers={
                    "X-Job-Id": job.id,
                    "X-Heuristic": job.outcome["heuristic"],
                    "X-Heuristic-Seconds": f"{job.outcome['heuristic_seconds']:.6f}",
                },
            )
        else:
            self._error(500, job.error or f"job {job.id} {job.state}")

    def _stream_events(self, job: Job) -> None:
        """NDJSON progress stream: heartbeats until done, then the trace."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True

        def line(doc: dict) -> None:
            self.wfile.write(canonical_json_bytes(doc))
            self.wfile.flush()

        line({"event": "status", "job": job.id, "state": job.state})
        while not job.done.wait(timeout=EVENT_HEARTBEAT_SECONDS):
            line(
                {
                    "event": "status",
                    "job": job.id,
                    "state": job.state,
                    "queue_depth": self.manager.queue_depth,
                }
            )
        if job.state == "succeeded":
            for event in job.outcome["events"]:
                line(event)
        line(
            {
                "event": "done",
                "job": job.id,
                "state": job.state,
                **({"error": job.error} if job.error else {}),
            }
        )
