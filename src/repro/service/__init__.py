"""repro.service — the long-running SLRH scheduling daemon.

The paper's SLRH manager is an *online* resource manager: a clock-driven
process reacting to an ad hoc grid.  This package is its serving layer —
the deployment shape assumed by grid brokers such as Nimrod/G (Buyya et
al.) and the DAG-scheduling platforms of Pop & Cristea — built entirely
from the stdlib on top of the existing engine:

* :mod:`repro.service.registry` — content-addressed scenario store
  (``sha256:`` of the canonical scenario bytes) with an LRU of
  deserialised :class:`~repro.workload.scenario.Scenario` objects;
* :mod:`repro.service.jobs` — admission control (bounded queue → HTTP
  429), request batching over a persistent
  :class:`~repro.util.parallel.WorkerPool`, graceful drain, and the live
  :mod:`repro.perf` registry (counters + gauges + latency histograms);
* :mod:`repro.service.worker` — the picklable mapping executor shared by
  in-process and process-pool execution;
* :mod:`repro.service.app` — the HTTP surface (``/v1/scenarios``,
  ``/v1/map``, ``/v1/jobs/<id>`` + NDJSON event streaming, ``/healthz``,
  ``/metrics``);
* :mod:`repro.service.loadgen` — a concurrent load generator that writes
  the ``BENCH_service.json`` artefact.

Start it with ``python -m repro.service [--port] [--jobs] [--max-queue]``.

Determinism contract: for a fixed scenario + seed, the mapping JSON served
by ``POST /v1/map`` is byte-identical to ``python -m repro.experiments
map``'s output for every heuristic in :mod:`repro.heuristics` — both
surfaces dispatch through the same registry and encode through
:func:`repro.io.serialization.canonical_mapping_bytes`.
"""

from repro.service.jobs import (
    DrainingError,
    Job,
    JobManager,
    QueueFullError,
)
from repro.service.registry import ScenarioRegistry

__all__ = [
    "DrainingError",
    "Job",
    "JobManager",
    "QueueFullError",
    "ScenarioRegistry",
]
