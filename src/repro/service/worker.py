"""The mapping executor shared by in-process and shard-process execution.

:func:`execute_mapping` is a module-level function taking and returning
only plain JSON-able values, so a shard dispatcher can run it directly
(``--shards 1``) or ship it to a long-lived shard child process — in both
cases through the same registry dispatch
(:func:`repro.heuristics.run_heuristic`), which is what keeps served
results byte-identical to the batch CLI at any shard count.

Each worker process keeps a small LRU of deserialised scenarios keyed by
content digest, so a stream of requests against one hot scenario
deserialises it once per process, not once per request.  The LRU bound is
configurable (``--scenario-cache`` / ``$REPRO_SCENARIO_CACHE``; default
:data:`DEFAULT_SCENARIO_CACHE`), and every hit/miss/eviction is reported
back in the job outcome's perf snapshot as
``worker.scenario_cache_{hits,misses,evictions}``.

:func:`shard_main` is the shard child's top-level loop: it reads command
tuples off a pipe and answers each with exactly one reply on the result
queue (the :class:`~repro.util.parallel.ShardProcess` contract).  Besides
one-shot jobs it hosts *sessions* — persistent
:class:`~repro.session.SessionEngine` kernels that live in exactly one
shard process for their whole lifetime (:class:`SessionHost`).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import replace as _dc_replace
from typing import Any

from repro.core.kernel import KERNEL_MODES, resolve_kernel_mode
from repro.core.objective import Weights
from repro.heuristics import (
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    SLRH_FAMILY,
    WEIGHTED_HEURISTICS,
    make_scheduler,
    normalize_heuristic,
    run_heuristic,
)
from repro.io.serialization import (
    canonical_json_bytes,
    mapping_to_dict,
    scenario_from_dict,
)
from repro.session import DeltaEncoder, SessionEngine, event_from_dict
from repro.sim.trace import MappingTrace
from repro.workload.scenario import Scenario

#: Default bound on deserialised scenarios kept hot per worker process.
DEFAULT_SCENARIO_CACHE = 8

#: SlrhConfig fields a session-open request may override.  Everything
#: else (weights aside) is pinned to the registry defaults so "same
#: scenario + heuristic + overrides" means the same mapping everywhere.
_CONFIG_OVERRIDES = ("delta_t_cycles", "horizon_cycles", "kernel")

# Explicit override from configure_scenario_cache(); None defers to the
# environment / default at lookup time.  Per-process state, set once at
# process start (shard_main / router construction) before any traffic.
_cache_max: int | None = None


def configure_scenario_cache(limit: int | str | None) -> int | None:
    """Set this process's scenario-LRU bound (``None`` resets to the
    environment/default resolution).  Returns the stored value."""
    global _cache_max
    if limit is None:
        _cache_max = None
        return None
    if isinstance(limit, str):
        try:
            limit = int(limit.strip())
        except ValueError:
            raise ValueError(
                f"scenario cache size must be an integer, got {limit!r}"
            ) from None
    if limit < 1:
        raise ValueError(f"scenario cache size must be >= 1, got {limit}")
    _cache_max = limit
    return _cache_max


def scenario_cache_limit() -> int:
    """The effective LRU bound: explicit configuration, else
    ``$REPRO_SCENARIO_CACHE``, else :data:`DEFAULT_SCENARIO_CACHE`."""
    if _cache_max is not None:
        return _cache_max
    raw = os.environ.get("REPRO_SCENARIO_CACHE", "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_SCENARIO_CACHE must be an integer, got {raw!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"REPRO_SCENARIO_CACHE must be >= 1, got {value}"
            )
        return value
    return DEFAULT_SCENARIO_CACHE


class _ScenarioCache:
    """Bounded LRU of deserialised scenarios with per-call stats.

    Not thread-safe by itself: the module-level instance below is only
    touched from a single dispatcher thread or shard child process, and
    :class:`SessionHost` wraps its own instance in the host lock.
    """

    def __init__(self) -> None:
        self._scenarios: OrderedDict[str, Scenario] = OrderedDict()

    def get(self, scenario_id: str, doc: dict) -> tuple[Scenario, dict]:
        """The deserialised scenario plus this lookup's cache-stat deltas
        (nonzero ``worker.scenario_cache_*`` counters only)."""
        scenario = self._scenarios.get(scenario_id)
        if scenario is not None:
            self._scenarios.move_to_end(scenario_id)
            return scenario, {"worker.scenario_cache_hits": 1}
        scenario = scenario_from_dict(doc)
        self._scenarios[scenario_id] = scenario
        stats = {"worker.scenario_cache_misses": 1}
        limit = scenario_cache_limit()
        evicted = 0
        while len(self._scenarios) > limit:
            self._scenarios.popitem(last=False)
            evicted += 1
        if evicted:
            stats["worker.scenario_cache_evictions"] = evicted
        return scenario, stats

    def __len__(self) -> int:
        return len(self._scenarios)


# Deliberately lock-free (no '# guarded-by:'): this module-level cache is
# per-process state.  Each shard child is a separate process, and in the
# inline (--shards 1) path execute_mapping runs only on the single
# dispatcher thread, so no two threads ever share it.  Inline *sessions*
# go through a SessionHost, which owns a separate locked cache.
_scenarios = _ScenarioCache()


def _scenario_for(scenario_id: str, doc: dict) -> tuple[Scenario, dict]:
    return _scenarios.get(scenario_id, doc)


def build_scheduler(canonical: str, body: dict) -> Any:
    """Construct the scheduler a session-open request describes.

    Raises ``ValueError`` for weights on a weight-free baseline, config
    overrides outside the SLRH family, or an unknown kernel mode.
    """
    alpha = body.get("alpha")
    beta = body.get("beta")
    overrides: dict = {}
    for key in _CONFIG_OVERRIDES:
        if body.get(key) is not None:
            overrides[key] = body[key]
    if canonical not in SLRH_FAMILY and overrides:
        raise ValueError(
            f"{sorted(overrides)} only apply to the SLRH family, "
            f"not {canonical!r}"
        )
    if canonical not in WEIGHTED_HEURISTICS:
        if alpha is not None or beta is not None:
            raise ValueError(
                f"heuristic {canonical!r} does not take objective weights"
            )
        return make_scheduler(canonical)
    weights = Weights.from_alpha_beta(
        DEFAULT_ALPHA if alpha is None else float(alpha),
        DEFAULT_BETA if beta is None else float(beta),
    )
    scheduler = make_scheduler(canonical, weights)
    if overrides:
        for key in ("delta_t_cycles", "horizon_cycles"):
            if key in overrides:
                value = overrides[key]
                if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                    raise ValueError(f"{key} must be a positive integer")
        if "kernel" in overrides and overrides["kernel"] not in KERNEL_MODES:
            raise ValueError(
                f"unknown kernel mode {overrides['kernel']!r}; "
                f"expected one of {', '.join(KERNEL_MODES)}"
            )
        scheduler = scheduler.__class__(
            _dc_replace(scheduler.config, **overrides)
        )
    return scheduler


def trace_events(trace: MappingTrace) -> list[dict]:
    """Tick-level progress events of a finished mapping, NDJSON-ready.

    One ``commit`` event per committed assignment (in commit order, with
    the heuristic clock, pool size and running T100) plus one trailing
    ``trace`` summary event.
    """
    events = [
        {
            "event": "commit",
            "clock": r.clock,
            "task": r.task,
            "version": r.version,
            "machine": r.machine,
            "start": r.start,
            "finish": r.finish,
            "objective": r.objective,
            "pool_size": r.pool_size,
            "t100": r.t100,
        }
        for r in trace.records
    ]
    events.append(
        {
            "event": "trace",
            "ticks": trace.ticks,
            "commits": trace.n_commits,
            "empty_pool_ticks": trace.empty_pool_ticks,
            "machine_scans": trace.machine_scans,
            # Which candidate-pool maintenance mode the kernel ran under
            # (mappings are byte-identical across modes; this is for
            # provenance when $REPRO_KERNEL pins the rebuild oracle).
            "kernel": resolve_kernel_mode(None),
        }
    )
    return events


def execute_mapping(
    scenario_id: str,
    scenario_doc: dict,
    heuristic: str,
    alpha: float | None,
    beta: float | None,
) -> dict:
    """Run *heuristic* on the scenario and return a plain-dict outcome.

    The outcome carries the mapping document (canonicalised to bytes by
    the caller), the tick-level trace events, the run's perf-counter
    snapshot (including this lookup's scenario-cache stats) and a summary
    — everything the service surfaces, nothing that needs the worker
    process again.
    """
    scenario, cache_stats = _scenario_for(scenario_id, scenario_doc)
    result = run_heuristic(heuristic, scenario, alpha, beta)
    perf = dict(result.trace.perf)
    for key, value in cache_stats.items():
        perf[key] = perf.get(key, 0) + value
    return {
        "mapping": mapping_to_dict(result.schedule),
        "events": trace_events(result.trace),
        "perf": perf,
        "heuristic": result.heuristic,
        "heuristic_seconds": result.heuristic_seconds,
        "summary": {
            "scenario": scenario.name,
            "n_tasks": scenario.n_tasks,
            "n_mapped": result.schedule.n_mapped,
            "t100": result.t100,
            "aet": result.aet,
            "tec": result.tec,
            "success": result.success,
        },
    }


class SessionHost:
    """Worker-side table of live session kernels.

    This is where a persistent :class:`~repro.session.SessionEngine`
    actually lives — in exactly one process for its whole lifetime
    (session-affine routing upstream guarantees every batch for a session
    lands here).  The parent-side
    :class:`~repro.service.sessions.LiveSession` is a thin proxy over
    these methods.

    One lock serialises the whole host: event application on a session,
    the scenario LRU, and table mutation.  In the inline (single-shard)
    path this host is shared by HTTP handler threads, so unlike the
    module-level job cache it must lock; in a shard child every call
    arrives serially off the command pipe and the lock is uncontended.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: dict[str, dict] = {}  # guarded-by: _lock
        self._cache = _ScenarioCache()  # guarded-by: _lock

    def open(
        self, session_id: str, scenario_id: str, doc: dict, body: dict
    ) -> dict:
        """Create the engine+encoder pair for a validated open request.

        Raises ``ValueError``/``IndexError``/``KeyError`` exactly like
        direct :class:`SessionEngine` construction, so upstream HTTP
        status mapping is unchanged.
        """
        canonical = normalize_heuristic(body.get("heuristic", "slrh1"))
        scheduler = build_scheduler(canonical, body)
        pending = body.get("pending", [])
        with self._lock:
            scenario, _stats = self._cache.get(scenario_id, doc)
            engine = SessionEngine(scenario, scheduler, pending=pending)
            self._sessions[session_id] = {
                "engine": engine,
                "encoder": DeltaEncoder(engine.schedule),
                "scenario_id": scenario_id,
                "heuristic": canonical,
                "n_errors": 0,
                "accounted": False,
            }
            return {"pending": sorted(engine.pending), "heuristic": canonical}

    def apply(self, session_id: str, event_docs: list[dict]) -> dict:
        """Apply an event batch; returns the encoded delta lines plus
        bookkeeping the parent needs (new error count, closed flag, and
        — exactly once, at close — the engine's perf snapshot).

        A rejected event (time travel, unknown id, double loss …) adds
        one ``{"record": "error", ...}`` line and ends the batch; the
        engine rejects atomically, so the session stays usable and the
        remaining events are simply not applied.
        """
        with self._lock:
            record = self._sessions[session_id]
            engine = record["engine"]
            encoder = record["encoder"]
            lines: list[bytes] = []
            new_errors = 0
            for index, event_doc in enumerate(event_docs):
                event = event_from_dict(event_doc)
                try:
                    engine.apply(event)
                except (ValueError, IndexError) as exc:
                    record["n_errors"] += 1
                    new_errors += 1
                    lines.append(
                        canonical_json_bytes(
                            {
                                "record": "error",
                                "error": str(exc),
                                "event_index": index,
                            }
                        )
                    )
                    break
                lines.extend(
                    encoder.delta_lines(cycle=event.cycle, event=event.kind)
                )
                if engine.closed:
                    lines.extend(encoder.footer_lines())
                    break
            perf = None
            if engine.closed and not record["accounted"]:
                record["accounted"] = True
                perf = engine.schedule.perf.snapshot()
            return {
                "lines": lines,
                "closed": engine.closed,
                "errors": new_errors,
                "perf": perf,
            }

    def status(self, session_id: str) -> dict:
        """JSON-ready status doc for ``GET /v1/session/<id>``."""
        with self._lock:
            record = self._sessions[session_id]
            engine = record["engine"]
            doc = {
                "session": session_id,
                "state": "closed" if engine.closed else "open",
                "scenario": record["scenario_id"],
                "heuristic": record["heuristic"],
                "cursor": engine.cursor,
                "seq": record["encoder"].seq,
                "n_mapped": engine.schedule.n_mapped,
                "pending": sorted(engine.pending),
                "errors": record["n_errors"],
            }
            if engine.closed:
                outcome = engine.outcome
                doc["n_events"] = outcome.n_events
                doc["rolled_back"] = outcome.total_rolled_back
                doc["success"] = outcome.final.success
                doc["heuristic_seconds"] = outcome.final.heuristic_seconds
            return doc

    def result(self, session_id: str) -> bytes | None:
        """Canonical mapping JSON of a closed session (None while open)
        — byte-identical to an offline replay of the same events."""
        with self._lock:
            engine = self._sessions[session_id]["engine"]
            if not engine.closed:
                return None
            return canonical_json_bytes(mapping_to_dict(engine.schedule))

    def discard(self, session_id: str) -> bool:
        """Drop a session's kernel (idle eviction upstream); returns
        whether it existed."""
        with self._lock:
            return self._sessions.pop(session_id, None) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)


def shard_main(
    cmd_conn: Any, results: Any, index: int, scenario_cache: int | None = None
) -> None:
    """Shard child main loop: one reply per command, state kept hot.

    Commands (plain tuples; first element is the op):

    * ``("ping",)`` → ``("ok", {"pid": ...})`` — liveness heartbeat.
    * ``("job", scenario_id, doc|None, heuristic, alpha, beta)`` — run a
      mapping.  The raw scenario doc is shipped only the *first* time a
      scenario reaches this shard (affine routing makes that sticky);
      afterwards the parent sends ``None`` and the shard replays from
      its resident copy.
    * ``("session_open"|"session_events"|"session_status"|
      "session_result"|"session_discard", ...)`` — hosted-session RPCs
      (see :class:`SessionHost`).
    * ``("stop",)`` — acknowledge and exit the loop.
    * ``("exit", code)`` — ``os._exit(code)`` with *no* reply: the crash
      everyone upstream must survive (tests inject it on purpose).

    Failures reply ``("error", exc_type_name, message)`` so the parent
    can re-raise the matching builtin; successes reply ``("ok", value)``.
    """
    if scenario_cache is not None:
        configure_scenario_cache(scenario_cache)
    docs: dict[str, dict] = {}
    sessions = SessionHost()
    while True:
        try:
            # repro-lint: disable=blocking-call-timeout -- the child's only job is this wait; parent death closes the pipe and the EOFError below exits the loop
            command = cmd_conn.recv()
        except (EOFError, OSError):
            break
        op = command[0]
        if op == "stop":
            results.put(("ok", "stopped"))
            break
        if op == "exit":
            os._exit(int(command[1]))
        try:
            if op == "ping":
                reply = {"pid": os.getpid(), "sessions": len(sessions)}
            elif op == "job":
                _, scenario_id, doc, heuristic, alpha, beta = command
                if doc is not None:
                    docs[scenario_id] = doc
                reply = execute_mapping(
                    scenario_id, docs[scenario_id], heuristic, alpha, beta
                )
            elif op == "session_open":
                _, session_id, scenario_id, doc, body = command
                if doc is not None:
                    docs[scenario_id] = doc
                reply = sessions.open(
                    session_id, scenario_id, docs[scenario_id], body
                )
            elif op == "session_events":
                reply = sessions.apply(command[1], command[2])
            elif op == "session_status":
                reply = sessions.status(command[1])
            elif op == "session_result":
                reply = sessions.result(command[1])
            elif op == "session_discard":
                reply = sessions.discard(command[1])
            else:
                raise ValueError(f"unknown shard command {op!r}")
        except Exception as exc:  # surfaced to the parent, never fatal here
            results.put(("error", type(exc).__name__, str(exc)))
        else:
            results.put(("ok", reply))
