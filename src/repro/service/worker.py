"""The mapping executor shared by in-process and process-pool execution.

:func:`execute_mapping` is a module-level function taking and returning
only plain JSON-able values, so the job dispatcher can run it directly
(``--jobs 1``) or fan a batch over the persistent
:class:`~repro.util.parallel.WorkerPool` — in both cases through the same
registry dispatch (:func:`repro.heuristics.run_heuristic`), which is what
keeps served results byte-identical to the batch CLI.

Each worker process keeps its own small LRU of deserialised scenarios
keyed by content digest, so a batch of requests against one hot scenario
deserialises it once per process, not once per request.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.kernel import resolve_kernel_mode
from repro.heuristics import run_heuristic
from repro.io.serialization import mapping_to_dict, scenario_from_dict
from repro.sim.trace import MappingTrace
from repro.workload.scenario import Scenario

_CACHE_MAX = 8
# Deliberately lock-free (no '# guarded-by:'): this module-level cache is
# per-process state.  Each pool worker is a separate process, and in the
# --jobs 1 path execute_mapping runs only on the single dispatcher thread,
# so no two threads ever share this dict.
_scenarios: OrderedDict[str, Scenario] = OrderedDict()


def _scenario_for(scenario_id: str, doc: dict) -> Scenario:
    scenario = _scenarios.get(scenario_id)
    if scenario is None:
        scenario = scenario_from_dict(doc)
        _scenarios[scenario_id] = scenario
        while len(_scenarios) > _CACHE_MAX:
            _scenarios.popitem(last=False)
    else:
        _scenarios.move_to_end(scenario_id)
    return scenario


def trace_events(trace: MappingTrace) -> list[dict]:
    """Tick-level progress events of a finished mapping, NDJSON-ready.

    One ``commit`` event per committed assignment (in commit order, with
    the heuristic clock, pool size and running T100) plus one trailing
    ``trace`` summary event.
    """
    events = [
        {
            "event": "commit",
            "clock": r.clock,
            "task": r.task,
            "version": r.version,
            "machine": r.machine,
            "start": r.start,
            "finish": r.finish,
            "objective": r.objective,
            "pool_size": r.pool_size,
            "t100": r.t100,
        }
        for r in trace.records
    ]
    events.append(
        {
            "event": "trace",
            "ticks": trace.ticks,
            "commits": trace.n_commits,
            "empty_pool_ticks": trace.empty_pool_ticks,
            "machine_scans": trace.machine_scans,
            # Which candidate-pool maintenance mode the kernel ran under
            # (mappings are byte-identical across modes; this is for
            # provenance when $REPRO_KERNEL pins the rebuild oracle).
            "kernel": resolve_kernel_mode(None),
        }
    )
    return events


def execute_mapping(
    scenario_id: str,
    scenario_doc: dict,
    heuristic: str,
    alpha: float | None,
    beta: float | None,
) -> dict:
    """Run *heuristic* on the scenario and return a plain-dict outcome.

    The outcome carries the mapping document (canonicalised to bytes by
    the caller), the tick-level trace events, the run's perf-counter
    snapshot and a summary — everything the service surfaces, nothing
    that needs the worker process again.
    """
    scenario = _scenario_for(scenario_id, scenario_doc)
    result = run_heuristic(heuristic, scenario, alpha, beta)
    return {
        "mapping": mapping_to_dict(result.schedule),
        "events": trace_events(result.trace),
        "perf": result.trace.perf,
        "heuristic": result.heuristic,
        "heuristic_seconds": result.heuristic_seconds,
        "summary": {
            "scenario": scenario.name,
            "n_tasks": scenario.n_tasks,
            "n_mapped": result.schedule.n_mapped,
            "t100": result.t100,
            "aet": result.aet,
            "tec": result.tec,
            "success": result.success,
        },
    }
