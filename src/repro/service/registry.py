"""Content-addressed scenario registry with an LRU of live objects.

A scenario's identity is :func:`repro.io.serialization.scenario_digest` —
SHA-256 over the canonical bytes of its JSON document — so registering the
same document twice is a no-op returning the same id, and two clients that
built the same scenario independently converge on one stored copy.

The registry keeps every registered *document* (plain dicts are cheap; the
documents are the source of truth and are what worker processes receive)
but only an LRU-bounded set of *deserialised* :class:`Scenario` objects:
deserialisation re-validates the document and builds numpy arrays, which
is the expensive part worth caching for the in-process execution path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.io.serialization import scenario_digest, scenario_from_dict
from repro.perf import PerfCounters
from repro.workload.scenario import Scenario


class ScenarioRegistry:
    """Thread-safe content-addressed store of scenario documents."""

    def __init__(
        self,
        max_cached: int = 32,
        perf: PerfCounters | None = None,
    ) -> None:
        if max_cached < 1:
            raise ValueError("max_cached must be >= 1")
        self.max_cached = max_cached
        self.perf = perf if perf is not None else PerfCounters()
        self._lock = threading.Lock()
        self._docs: dict[str, dict] = {}  # guarded-by: _lock
        self._cache: OrderedDict[str, Scenario] = OrderedDict()  # guarded-by: _lock

    def put(self, doc: dict) -> tuple[str, bool]:
        """Register *doc*; returns ``(scenario_id, created)``.

        The document is validated by a full deserialisation before it is
        accepted (a malformed upload is rejected with :class:`ValueError`,
        never stored), and the freshly built :class:`Scenario` seeds the
        LRU so the first ``/v1/map`` on it pays no rebuild.
        """
        scenario_id = scenario_digest(doc)  # also rejects non-scenario kinds
        with self._lock:
            if scenario_id in self._docs:
                self.perf.inc("registry.put_dup")
                self._update_gauges_locked()
                return scenario_id, False
        scenario = scenario_from_dict(doc)  # outside the lock: may be slow
        with self._lock:
            created = scenario_id not in self._docs
            if created:
                self._docs[scenario_id] = doc
                self._cache_store_locked(scenario_id, scenario)
                self.perf.inc("registry.put")
            else:
                self.perf.inc("registry.put_dup")
            self._update_gauges_locked()
        return scenario_id, created

    def get_doc(self, scenario_id: str) -> dict:
        """The stored document for *scenario_id* (KeyError when absent)."""
        with self._lock:
            return self._docs[scenario_id]

    def get_scenario(self, scenario_id: str) -> Scenario:
        """The deserialised :class:`Scenario` for *scenario_id*, via LRU."""
        with self._lock:
            scenario = self._cache.get(scenario_id)
            if scenario is not None:
                self._cache.move_to_end(scenario_id)
                self.perf.inc("registry.cache_hit")
                return scenario
            doc = self._docs[scenario_id]  # KeyError propagates
            self.perf.inc("registry.cache_miss")
        scenario = scenario_from_dict(doc)
        with self._lock:
            self._cache_store_locked(scenario_id, scenario)
            self._update_gauges_locked()
        return scenario

    def _cache_store_locked(self, scenario_id: str, scenario: Scenario) -> None:
        self._cache[scenario_id] = scenario
        self._cache.move_to_end(scenario_id)
        while len(self._cache) > self.max_cached:
            self._cache.popitem(last=False)

    def _update_gauges_locked(self) -> None:
        self.perf.set_gauge("registry.scenarios", float(len(self._docs)))
        self.perf.set_gauge("registry.cached", float(len(self._cache)))

    def ids(self) -> list[str]:
        with self._lock:
            return sorted(self._docs)

    def __contains__(self, scenario_id: str) -> bool:
        with self._lock:
            return scenario_id in self._docs

    def __len__(self) -> int:
        with self._lock:
            return len(self._docs)
