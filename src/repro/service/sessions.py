"""Live-grid streaming sessions: the service's stateful surface.

A ``/v1/map`` job is one shot — scenario in, mapping out.  An ad hoc
grid (§I of the paper) is not one shot: tasks appear and machines leave
and rejoin while the heuristic is already committed to half a mapping.
A *session* keeps that evolving state on the server: one
:class:`~repro.session.SessionEngine` (live schedule + persistent
SLRH kernel fed by precise event deltas, never rebuilt from scratch)
plus one :class:`~repro.session.DeltaEncoder` that tells the client only
what changed after each event.

Under the shard layer the kernel no longer lives in the manager: each
session is routed **shard-affine by session id** (numeric id modulo the
shard count), its engine+encoder pair is hosted by that one shard's
:class:`~repro.service.worker.SessionHost` — in exactly one process for
the session's whole lifetime — and the :class:`LiveSession` here is a
thin proxy shipping event batches over the shard RPC and yielding the
delta lines that come back.  Without a router (tests constructing a bare
``SessionManager``) a private in-process
:class:`~repro.service.shard.InlineShard` hosts everything, which is the
pre-shard behaviour exactly.

Concurrency model:

* the **manager lock** (``SessionManager._lock``) guards the session
  table — open, lookup, idle eviction, drain — and is held across the
  shard ``session_open`` RPC so the capacity bound stays exact;
* each **session lock** (``LiveSession.lock``) serialises event batches
  on that session, so two clients streaming into the same session
  interleave at batch granularity and the delta ``seq`` numbers stay
  dense.

Sessions are evicted after :attr:`SessionManager.idle_timeout` seconds
without a request (closed sessions too — the final mapping stays
retrievable until then; the hosting shard drops its kernel), and the
table is bounded: opening beyond ``max_sessions`` live sessions answers
429 upstream.

A crashed shard process takes its hosted sessions with it: the next
event batch on such a session yields one ``{"record": "error", ...}``
line naming the crash instead of hanging.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Iterator, Sequence

from repro.heuristics import normalize_heuristic
from repro.io.serialization import canonical_json_bytes
from repro.obs.log import enabled as _obs_enabled
from repro.obs.log import get_logger
from repro.perf import PerfCounters
from repro.service.jobs import DrainingError, ShardRouter
from repro.service.registry import ScenarioRegistry
from repro.service.shard import InlineShard, ProcessShard
from repro.service.worker import build_scheduler
from repro.session import SessionEvent
from repro.util.parallel import ShardCrashedError

#: Default bound on concurrently stored sessions (open *or* closed-but-
#: not-yet-evicted); opening past it is a 429 upstream.
DEFAULT_MAX_SESSIONS = 64

#: Default seconds of inactivity before a session is evicted.
DEFAULT_IDLE_TIMEOUT = 900.0

#: Retry-After hint handed to clients bouncing off the session bound.
_SESSION_RETRY_AFTER = 30

_LOG = get_logger("service.sessions")


class SessionLimitError(Exception):
    """The session table is at capacity (HTTP 429 upstream)."""

    def __init__(self, active: int) -> None:
        super().__init__(
            f"session table full ({active} live sessions); "
            f"retry in ~{_SESSION_RETRY_AFTER}s"
        )
        self.active = active
        self.retry_after = _SESSION_RETRY_AFTER


class LiveSession:
    """One open session: a proxy over its hosting shard's kernel.

    Every method takes ``self.lock`` itself; callers never talk to the
    shard backend directly.  The proxy caches what the HTTP layer needs
    between batches (closed flag, error count, the close-time perf
    snapshot) so status checks after a stream don't need another RPC.
    """

    def __init__(
        self,
        session_id: str,
        scenario_id: str,
        heuristic: str,
        backend: InlineShard | ProcessShard,
        perf: PerfCounters,
    ) -> None:
        self.id = session_id
        self.scenario_id = scenario_id
        self.heuristic = heuristic  # canonical registry name
        self.backend = backend  # hosting shard (RPCs are self-serialising)
        self.perf = perf  # the service registry (mutated via manager lock paths)
        self.lock = threading.Lock()
        self.last_active = time.monotonic()  # guarded-by: lock
        self.n_errors = 0  # guarded-by: lock
        self._closed = False  # guarded-by: lock
        self._perf_snapshot: dict | None = None  # guarded-by: lock

    def stream(self, events: Sequence[SessionEvent]) -> Iterator[bytes]:
        """Apply *events* in order on the hosting shard, yielding each
        one's delta block (and the footer after ``close``).

        A rejected event (time travel, unknown id, double loss …) yields
        one ``{"record": "error", ...}`` line and ends the stream; the
        engine rejects atomically, so the session stays usable and the
        remaining events of the batch are simply not applied.  A crashed
        shard yields one error record naming the crash — the stream
        fails, it never hangs.
        """
        with self.lock:
            self.last_active = time.monotonic()
            try:
                reply = self.backend.session_events(
                    self.id, [event.to_dict() for event in events]
                )
            except ShardCrashedError as exc:
                self.n_errors += 1
                self.perf.inc("session.event_errors")
                yield canonical_json_bytes(
                    {"record": "error", "error": str(exc), "event_index": 0}
                )
                return
            if reply["errors"]:
                self.n_errors += reply["errors"]
                self.perf.inc("session.event_errors", reply["errors"])
            if reply["closed"]:
                self._closed = True
                if reply["perf"] is not None:
                    self._perf_snapshot = reply["perf"]
            yield from reply["lines"]

    def status_doc(self) -> dict:
        """JSON-ready status for ``GET /v1/session/<id>`` (one shard RPC)."""
        with self.lock:
            doc = self.backend.session_status(self.id)
            self._closed = doc["state"] == "closed"
            return doc

    def result_bytes(self) -> bytes | None:
        """Canonical mapping JSON of a closed session (None while open)
        — byte-identical to an offline replay of the same events."""
        with self.lock:
            return self.backend.session_result(self.id)

    def is_closed(self) -> bool:
        with self.lock:
            return self._closed

    def take_perf_snapshot(self) -> dict | None:
        """The engine's close-time perf counters, exactly once (None
        thereafter) — so closing twice never double-counts in the
        service registry."""
        with self.lock:
            snapshot, self._perf_snapshot = self._perf_snapshot, None
            return snapshot


class SessionManager:
    """Bounded, idle-evicting table of :class:`LiveSession`."""

    def __init__(
        self,
        registry: ScenarioRegistry,
        *,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        perf: PerfCounters | None = None,
        router: ShardRouter | None = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if not idle_timeout > 0:
            raise ValueError("idle_timeout must be positive")
        self.registry = registry
        self.max_sessions = max_sessions
        self.idle_timeout = idle_timeout
        self.perf = perf if perf is not None else PerfCounters()
        self.router = router
        # Routerless managers host every session in-process (pre-shard
        # behaviour); a router routes each session to one of its shards.
        self._fallback = None if router is not None else InlineShard(0)
        self._lock = threading.Lock()
        self._sessions: dict[str, LiveSession] = {}  # guarded-by: _lock
        self._next_id = 1  # guarded-by: _lock
        self._draining = False  # guarded-by: _lock

    def _backend_for_locked(self, numeric_id: int) -> InlineShard | ProcessShard:
        """The shard backend hosting session *numeric_id* — round-robin
        over shards, pinned for the session's lifetime."""
        if self.router is None:
            if self._fallback is None:  # pragma: no cover - init invariant
                raise RuntimeError("SessionManager has neither router nor fallback")
            return self._fallback
        return self.router.session_shard(numeric_id).backend

    # -- admission ---------------------------------------------------------

    def open(self, body: dict) -> LiveSession:
        """Open a session from a ``POST /v1/session`` body.

        Raises ``KeyError`` for an unregistered scenario or unknown
        heuristic, ``ValueError``/``IndexError`` for a malformed spec,
        :class:`~repro.service.jobs.DrainingError` during shutdown and
        :class:`SessionLimitError` at capacity.
        """
        scenario_id = body.get("scenario")
        if not scenario_id:
            raise ValueError("missing 'scenario' (a registered scenario id)")
        if scenario_id not in self.registry:
            raise KeyError(f"scenario {scenario_id!r} is not registered")
        canonical = normalize_heuristic(body.get("heuristic", "slrh1"))
        # Validate the scheduler spec here (cheap, and the 400s must not
        # depend on which shard would host the session); the hosting
        # shard rebuilds it next to its engine.
        build_scheduler(canonical, body)
        pending = body.get("pending", [])
        if not isinstance(pending, list) or any(
            not isinstance(t, int) or isinstance(t, bool) for t in pending
        ):
            raise ValueError("'pending' must be a list of task ids")
        doc = self.registry.get_doc(scenario_id)
        with self._lock:
            if self._draining:
                self.perf.inc("session.rejected_draining")
                raise DrainingError("service is draining; not accepting sessions")
            now = time.monotonic()
            self._evict_idle_locked(now)
            if len(self._sessions) >= self.max_sessions:
                self.perf.inc("session.rejected")
                raise SessionLimitError(len(self._sessions))
            numeric_id = self._next_id
            session_id = f"sess-{numeric_id:08d}"
            backend = self._backend_for_locked(numeric_id)
            # Holding the lock across the open RPC keeps the capacity
            # bound exact; engine-construction errors (out-of-range
            # pending task …) re-raise here with nothing to roll back.
            opened = backend.session_open(session_id, scenario_id, doc, body)
            self._next_id = numeric_id + 1
            session = LiveSession(
                session_id=session_id,
                scenario_id=scenario_id,
                heuristic=canonical,
                backend=backend,
                perf=self.perf,
            )
            self._sessions[session.id] = session
            self.perf.inc("session.opened")
            self._update_gauges_locked()
        if _obs_enabled():
            _LOG.event(
                "session.opened",
                session=session.id,
                scenario=scenario_id,
                heuristic=canonical,
                pending=len(opened["pending"]),
            )
        return session

    def get(self, session_id: str) -> LiveSession:
        """The live session under *session_id* (KeyError when unknown or
        already evicted)."""
        with self._lock:
            self._evict_idle_locked(time.monotonic())
            return self._sessions[session_id]

    def ids(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def note_closed(self, session: LiveSession) -> None:
        """Account a just-closed session: merge its engine counters
        (plan-cache hit rates …) into the service registry, once."""
        snapshot = session.take_perf_snapshot()
        if snapshot is None:
            return  # a later batch on an already-closed session
        self.perf.inc("session.closed")
        self.perf.merge(snapshot)
        if _obs_enabled():
            _LOG.event("session.closed", session=session.id)

    # -- lifecycle ---------------------------------------------------------

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def drain(self) -> None:
        """Stop admitting sessions and event batches (503 upstream).
        In-flight batches are synchronous per request and finish on
        their own handler threads."""
        with self._lock:
            self._draining = True
            self._update_gauges_locked()

    def _update_gauges_locked(self) -> None:
        self.perf.set_gauge("session.active", float(len(self._sessions)))
        self.perf.set_gauge(
            "session.draining", 1.0 if self._draining else 0.0
        )

    def _evict_idle_locked(self, now: float) -> None:
        """Drop sessions idle past the timeout.  A session whose lock is
        held is in use by definition and never evicted mid-request."""
        idle_after = self.idle_timeout
        if not math.isfinite(idle_after):
            return
        for sid in list(self._sessions):
            session = self._sessions[sid]
            if not session.lock.acquire(blocking=False):
                continue
            try:
                idle = now - session.last_active
            finally:
                session.lock.release()
            if idle > idle_after:
                del self._sessions[sid]
                try:
                    # Free the hosting shard's kernel too; a dead shard
                    # has already lost it.
                    session.backend.session_discard(sid)
                except ShardCrashedError:
                    pass
                self.perf.inc("session.evicted")
                if _obs_enabled():
                    _LOG.event(
                        "session.evicted",
                        session=sid,
                        idle_seconds=round(idle, 3),
                    )
        self._update_gauges_locked()
