"""Live-grid streaming sessions: the service's stateful surface.

A ``/v1/map`` job is one shot — scenario in, mapping out.  An ad hoc
grid (§I of the paper) is not one shot: tasks appear and machines leave
and rejoin while the heuristic is already committed to half a mapping.
A *session* keeps that evolving state on the server: one
:class:`~repro.session.SessionEngine` (live schedule + persistent
SLRH kernel fed by precise event deltas, never rebuilt from scratch)
plus one :class:`~repro.session.DeltaEncoder` that tells the client only
what changed after each event.

Concurrency model:

* the **manager lock** (``SessionManager._lock``) guards the session
  table — open, lookup, idle eviction, drain;
* each **session lock** (``LiveSession.lock``) serialises event
  application and encoding on that session, so two clients streaming
  into the same session interleave at event granularity and the delta
  ``seq`` numbers stay dense.

Sessions are evicted after :attr:`SessionManager.idle_timeout` seconds
without a request (closed sessions too — the final mapping stays
retrievable until then), and the table is bounded: opening beyond
``max_sessions`` live sessions answers 429 upstream.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from dataclasses import replace as _dc_replace
from typing import Iterator, Sequence

from repro.core.kernel import KERNEL_MODES
from repro.core.objective import Weights
from repro.heuristics import (
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    SLRH_FAMILY,
    WEIGHTED_HEURISTICS,
    make_scheduler,
    normalize_heuristic,
)
from repro.io.serialization import canonical_json_bytes, mapping_to_dict
from repro.obs.log import enabled as _obs_enabled
from repro.obs.log import get_logger
from repro.perf import PerfCounters
from repro.service.jobs import DrainingError
from repro.service.registry import ScenarioRegistry
from repro.session import DeltaEncoder, SessionEngine, SessionEvent

#: Default bound on concurrently stored sessions (open *or* closed-but-
#: not-yet-evicted); opening past it is a 429 upstream.
DEFAULT_MAX_SESSIONS = 64

#: Default seconds of inactivity before a session is evicted.
DEFAULT_IDLE_TIMEOUT = 900.0

#: Retry-After hint handed to clients bouncing off the session bound.
_SESSION_RETRY_AFTER = 30

#: SlrhConfig fields a session-open request may override.  Everything
#: else (weights aside) is pinned to the registry defaults so "same
#: scenario + heuristic + overrides" means the same mapping everywhere.
_CONFIG_OVERRIDES = ("delta_t_cycles", "horizon_cycles", "kernel")

_LOG = get_logger("service.sessions")


class SessionLimitError(Exception):
    """The session table is at capacity (HTTP 429 upstream)."""

    def __init__(self, active: int) -> None:
        super().__init__(
            f"session table full ({active} live sessions); "
            f"retry in ~{_SESSION_RETRY_AFTER}s"
        )
        self.active = active
        self.retry_after = _SESSION_RETRY_AFTER


def _build_scheduler(canonical: str, body: dict):
    """Construct the scheduler a session-open request describes.

    Raises ``ValueError`` for weights on a weight-free baseline, config
    overrides outside the SLRH family, or an unknown kernel mode.
    """
    alpha = body.get("alpha")
    beta = body.get("beta")
    overrides: dict = {}
    for key in _CONFIG_OVERRIDES:
        if body.get(key) is not None:
            overrides[key] = body[key]
    if canonical not in SLRH_FAMILY and overrides:
        raise ValueError(
            f"{sorted(overrides)} only apply to the SLRH family, "
            f"not {canonical!r}"
        )
    if canonical not in WEIGHTED_HEURISTICS:
        if alpha is not None or beta is not None:
            raise ValueError(
                f"heuristic {canonical!r} does not take objective weights"
            )
        return make_scheduler(canonical)
    weights = Weights.from_alpha_beta(
        DEFAULT_ALPHA if alpha is None else float(alpha),
        DEFAULT_BETA if beta is None else float(beta),
    )
    scheduler = make_scheduler(canonical, weights)
    if overrides:
        for key in ("delta_t_cycles", "horizon_cycles"):
            if key in overrides:
                value = overrides[key]
                if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                    raise ValueError(f"{key} must be a positive integer")
        if "kernel" in overrides and overrides["kernel"] not in KERNEL_MODES:
            raise ValueError(
                f"unknown kernel mode {overrides['kernel']!r}; "
                f"expected one of {', '.join(KERNEL_MODES)}"
            )
        scheduler = scheduler.__class__(
            _dc_replace(scheduler.config, **overrides)
        )
    return scheduler


class LiveSession:
    """One open session: the engine, its delta encoder, and the lock
    that serialises them.

    Every method takes ``self.lock`` itself; callers never touch the
    engine or encoder directly.
    """

    def __init__(
        self,
        session_id: str,
        scenario_id: str,
        heuristic: str,
        engine: SessionEngine,
        perf: PerfCounters,
    ) -> None:
        self.id = session_id
        self.scenario_id = scenario_id
        self.heuristic = heuristic  # canonical registry name
        self.perf = perf  # the service registry (thread-safe itself)
        self.lock = threading.Lock()
        self.engine = engine  # guarded-by: lock
        self.encoder = DeltaEncoder(engine.schedule)  # guarded-by: lock
        self.last_active = time.monotonic()  # guarded-by: lock
        self.n_errors = 0  # guarded-by: lock
        self.accounted = False  # guarded-by: lock

    def stream(self, events: Sequence[SessionEvent]) -> Iterator[bytes]:
        """Apply *events* in order, yielding each one's delta block (and
        the footer after ``close``).

        A rejected event (time travel, unknown id, double loss …) yields
        one ``{"record": "error", ...}`` line and ends the stream; the
        engine rejects atomically, so the session stays usable and the
        remaining events of the batch are simply not applied.
        """
        with self.lock:
            self.last_active = time.monotonic()
            for index, event in enumerate(events):
                try:
                    self.engine.apply(event)
                except (ValueError, IndexError) as exc:
                    self.n_errors += 1
                    self.perf.inc("session.event_errors")
                    yield canonical_json_bytes(
                        {
                            "record": "error",
                            "error": str(exc),
                            "event_index": index,
                        }
                    )
                    return
                # No service-level event counter here: the engine already
                # counts ``session.events`` on its own registry, which is
                # merged into the service one when the session closes.
                yield from self.encoder.delta_lines(
                    cycle=event.cycle, event=event.kind
                )
                if self.engine.closed:
                    yield from self.encoder.footer_lines()
                    return

    def status_doc(self) -> dict:
        """JSON-ready status for ``GET /v1/session/<id>``."""
        with self.lock:
            engine = self.engine
            doc = {
                "session": self.id,
                "state": "closed" if engine.closed else "open",
                "scenario": self.scenario_id,
                "heuristic": self.heuristic,
                "cursor": engine.cursor,
                "seq": self.encoder.seq,
                "n_mapped": engine.schedule.n_mapped,
                "pending": sorted(engine.pending),
                "errors": self.n_errors,
            }
            if engine.closed:
                outcome = engine.outcome
                doc["n_events"] = outcome.n_events
                doc["rolled_back"] = outcome.total_rolled_back
                doc["success"] = outcome.final.success
                doc["heuristic_seconds"] = outcome.final.heuristic_seconds
            return doc

    def result_bytes(self) -> bytes | None:
        """Canonical mapping JSON of a closed session (None while open)
        — byte-identical to an offline replay of the same events."""
        with self.lock:
            if not self.engine.closed:
                return None
            return canonical_json_bytes(mapping_to_dict(self.engine.schedule))

    def is_closed(self) -> bool:
        with self.lock:
            return self.engine.closed

    def take_perf_snapshot(self) -> dict | None:
        """The engine's perf counters, exactly once (None thereafter) —
        so closing twice never double-counts in the service registry."""
        with self.lock:
            if self.accounted:
                return None
            self.accounted = True
            return self.engine.schedule.perf.snapshot()


class SessionManager:
    """Bounded, idle-evicting table of :class:`LiveSession`."""

    def __init__(
        self,
        registry: ScenarioRegistry,
        *,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        perf: PerfCounters | None = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if not idle_timeout > 0:
            raise ValueError("idle_timeout must be positive")
        self.registry = registry
        self.max_sessions = max_sessions
        self.idle_timeout = idle_timeout
        self.perf = perf if perf is not None else PerfCounters()
        self._lock = threading.Lock()
        self._sessions: dict[str, LiveSession] = {}  # guarded-by: _lock
        self._ids = itertools.count(1)  # guarded-by: _lock
        self._draining = False  # guarded-by: _lock

    # -- admission ---------------------------------------------------------

    def open(self, body: dict) -> LiveSession:
        """Open a session from a ``POST /v1/session`` body.

        Raises ``KeyError`` for an unregistered scenario or unknown
        heuristic, ``ValueError``/``IndexError`` for a malformed spec,
        :class:`~repro.service.jobs.DrainingError` during shutdown and
        :class:`SessionLimitError` at capacity.
        """
        scenario_id = body.get("scenario")
        if not scenario_id:
            raise ValueError("missing 'scenario' (a registered scenario id)")
        if scenario_id not in self.registry:
            raise KeyError(f"scenario {scenario_id!r} is not registered")
        canonical = normalize_heuristic(body.get("heuristic", "slrh1"))
        scheduler = _build_scheduler(canonical, body)
        pending = body.get("pending", [])
        if not isinstance(pending, list) or any(
            not isinstance(t, int) or isinstance(t, bool) for t in pending
        ):
            raise ValueError("'pending' must be a list of task ids")
        scenario = self.registry.get_scenario(scenario_id)
        engine = SessionEngine(scenario, scheduler, pending=pending)
        with self._lock:
            if self._draining:
                self.perf.inc("session.rejected_draining")
                raise DrainingError("service is draining; not accepting sessions")
            now = time.monotonic()
            self._evict_idle_locked(now)
            if len(self._sessions) >= self.max_sessions:
                self.perf.inc("session.rejected")
                raise SessionLimitError(len(self._sessions))
            session = LiveSession(
                session_id=f"sess-{next(self._ids):08d}",
                scenario_id=scenario_id,
                heuristic=canonical,
                engine=engine,
                perf=self.perf,
            )
            self._sessions[session.id] = session
            self.perf.inc("session.opened")
            self._update_gauges_locked()
        if _obs_enabled():
            _LOG.event(
                "session.opened",
                session=session.id,
                scenario=scenario_id,
                heuristic=canonical,
                pending=len(engine.pending),
            )
        return session

    def get(self, session_id: str) -> LiveSession:
        """The live session under *session_id* (KeyError when unknown or
        already evicted)."""
        with self._lock:
            self._evict_idle_locked(time.monotonic())
            return self._sessions[session_id]

    def ids(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def note_closed(self, session: LiveSession) -> None:
        """Account a just-closed session: merge its engine counters
        (plan-cache hit rates …) into the service registry, once."""
        snapshot = session.take_perf_snapshot()
        if snapshot is None:
            return  # a later batch on an already-closed session
        self.perf.inc("session.closed")
        self.perf.merge(snapshot)
        if _obs_enabled():
            _LOG.event("session.closed", session=session.id)

    # -- lifecycle ---------------------------------------------------------

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def drain(self) -> None:
        """Stop admitting sessions and event batches (503 upstream).
        In-flight batches are synchronous per request and finish on
        their own handler threads."""
        with self._lock:
            self._draining = True
            self._update_gauges_locked()

    def _update_gauges_locked(self) -> None:
        self.perf.set_gauge("session.active", float(len(self._sessions)))
        self.perf.set_gauge(
            "session.draining", 1.0 if self._draining else 0.0
        )

    def _evict_idle_locked(self, now: float) -> None:
        """Drop sessions idle past the timeout.  A session whose lock is
        held is in use by definition and never evicted mid-request."""
        idle_after = self.idle_timeout
        if not math.isfinite(idle_after):
            return
        for sid in list(self._sessions):
            session = self._sessions[sid]
            if not session.lock.acquire(blocking=False):
                continue
            try:
                idle = now - session.last_active
            finally:
                session.lock.release()
            if idle > idle_after:
                del self._sessions[sid]
                self.perf.inc("session.evicted")
                if _obs_enabled():
                    _LOG.event(
                        "session.evicted",
                        session=sid,
                        idle_seconds=round(idle, 3),
                    )
        self._update_gauges_locked()
