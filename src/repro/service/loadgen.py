"""Load generator for the scheduling service → ``BENCH_service.json``.

Drives N concurrent synchronous ``/v1/map`` clients against a running
service (or a self-hosted in-process one), one level per requested
concurrency, and records throughput plus exact p50/p95/p99 request
latency per level.  The artefact layout::

    {
      "schema": "repro.bench.service/1",
      "scenario": {"id": ..., "n_tasks": ..., "seed": ...},
      "heuristic": "slrh1",
      "levels": [
        {"clients": 1, "requests": ..., "errors": 0,
         "retries_429": ..., "gave_up": ...,
         "wall_seconds": ..., "throughput_rps": ...,
         "latency_seconds": {"count": ..., "mean": ..., "p50": ...,
                             "p95": ..., "p99": ...}},
        ...
      ],

Backpressure handling is **bounded**: a 429 response is retried after the
server's ``Retry-After`` hint, but only up to ``--max-retries`` times per
request — a persistently saturated queue shows up as ``gave_up`` counts in
the report instead of hanging the benchmark forever.
      "metrics_after": {... selected /metrics fields ...}
    }

Usage::

    python -m repro.service.loadgen [--url http://host:port | --shards N]
                                    [--clients 1,4,16] [--requests 8]
                                    [--n-tasks 24] [--seed 7]
                                    [--heuristic slrh1] [--out BENCH_service.json]

Without ``--url`` a service is booted in-process on an ephemeral port
(with ``--shards`` worker processes; ``--jobs`` is the legacy alias) and
torn down afterwards, so the benchmark is one self-contained command.

``--shard-sweep 1,2,4`` (self-host only) runs the whole level set once
per shard count against a fresh daemon each time and emits the
``repro.bench.service/2`` artefact: per-shard-count ``shard_sweep``
entries plus a ``shard_speedup`` summary comparing the highest client
level's throughput at the largest shard count against one shard.  The
host's ``cpu_count`` is recorded alongside — a sweep on a single core
cannot show a parallel speedup and must say so honestly
(``benchmarks/check_regression.py`` only enforces the 2.5x floor on
artefacts measured with >= 4 cores).

``--mode session`` switches to streaming-session clients: each client
opens a ``/v1/session``, streams a deterministic synthesized grid-event
mix (arrivals, losses, rejoins — :func:`repro.session.synthesize_events`,
seeded per client) in NDJSON batches, and reads the mapping-delta blocks
back; latency is per event batch and the artefact carries ``"mode":
"session"`` plus events-per-second throughput.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.perf import Histogram
from repro.workload.scenario import Scenario

_SCHEMA = "repro.bench.service/1"
_SWEEP_SCHEMA = "repro.bench.service/2"
_HTTP_TIMEOUT = 600.0

#: Default per-request budget of 429 retries before a client gives up.
DEFAULT_MAX_RETRIES = 8


def _post_json(base_url: str, path: str, doc: dict) -> tuple[int, bytes]:
    req = urllib.request.Request(
        base_url + path,
        data=json.dumps(doc).encode("ascii"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=_HTTP_TIMEOUT) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _post_ndjson(base_url: str, path: str, lines: bytes) -> tuple[int, bytes]:
    req = urllib.request.Request(
        base_url + path,
        data=lines,
        headers={"Content-Type": "application/x-ndjson"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=_HTTP_TIMEOUT) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _get_json(base_url: str, path: str) -> dict:
    with urllib.request.urlopen(base_url + path, timeout=_HTTP_TIMEOUT) as resp:
        return json.loads(resp.read())


def register_scenario(base_url: str, n_tasks: int, seed: int) -> str:
    """Register the generated ``(n_tasks, seed)`` scenario; returns its id."""
    status, body = _post_json(
        base_url,
        "/v1/scenarios",
        {"generate": {"n_tasks": n_tasks, "seed": seed}},
    )
    if status not in (200, 201):
        raise RuntimeError(f"scenario registration failed ({status}): {body!r}")
    return json.loads(body)["id"]


def run_level(
    base_url: str,
    scenario_id: str,
    heuristic: str,
    clients: int,
    requests_per_client: int,
    alpha: float | None = None,
    beta: float | None = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
) -> dict:
    """One concurrency level: *clients* threads × *requests_per_client*
    sequential synchronous map requests each.

    Each request retries on 429 backpressure at most *max_retries* times
    (honouring the server's ``Retry-After``); exhausting the budget counts
    the request as ``gave_up`` rather than retrying forever.
    """
    latencies = Histogram()
    lock = threading.Lock()
    errors = [0]
    retries_429 = [0]
    gave_up = [0]
    payload: dict = {"scenario": scenario_id, "heuristic": heuristic, "wait": True}
    if alpha is not None:
        payload["alpha"] = alpha
    if beta is not None:
        payload["beta"] = beta

    def client() -> None:
        for _ in range(requests_per_client):
            attempts = 0
            while True:
                started = time.perf_counter()
                try:
                    status, body = _post_json(base_url, "/v1/map", payload)
                except (OSError, http.client.HTTPException):
                    # A hammered accept backlog resets connections before
                    # HTTP even starts; that is congestion, not a request
                    # failure — back off briefly within the same bounded
                    # retry budget as a 429.
                    attempts += 1
                    if attempts > max_retries:
                        with lock:
                            errors[0] += 1
                        break
                    time.sleep(0.05 * attempts)
                    continue
                elapsed = time.perf_counter() - started
                if status == 429:
                    # Backpressure is not an error, but the retry budget is
                    # bounded: a saturated queue must not hang the benchmark.
                    with lock:
                        retries_429[0] += 1
                    attempts += 1
                    if attempts > max_retries:
                        with lock:
                            gave_up[0] += 1
                        break
                    retry = 1.0
                    try:
                        retry = float(json.loads(body).get("retry_after", 1))
                    except (ValueError, AttributeError):
                        pass
                    time.sleep(min(retry, 5.0))
                    continue
                with lock:
                    if status == 200:
                        latencies.observe(elapsed)
                    else:
                        errors[0] += 1
                break

    threads = [
        threading.Thread(target=client, name=f"loadgen-{i}") for i in range(clients)
    ]
    wall_started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_started
    completed = latencies.count
    return {
        "clients": clients,
        "requests": completed,
        "errors": errors[0],
        "retries_429": retries_429[0],
        "gave_up": gave_up[0],
        "wall_seconds": wall,
        "throughput_rps": completed / wall if wall > 0 else 0.0,
        "latency_seconds": latencies.summary(),
    }


def run_session_level(
    base_url: str,
    scenario: Scenario,
    scenario_id: str,
    heuristic: str,
    clients: int,
    n_events: int,
    batch: int,
    max_cycle: int,
    seed: int,
) -> dict:
    """One session-mode level: *clients* concurrent streaming sessions.

    Each client opens its own session, synthesizes a deterministic mixed
    event stream (seeded per client, so every run replays the same
    sessions), posts it in NDJSON batches of *batch* events and reads the
    delta blocks back; the last batch carries the ``close`` and must end
    in a ``footer``.  Latency is per event batch.
    """
    from repro.session import synthesize_events

    latencies = Histogram()
    lock = threading.Lock()
    errors = [0]
    delta_lines = [0]

    def client(index: int) -> None:
        held, events = synthesize_events(
            scenario,
            seed=seed * 1000 + index,
            n_events=n_events,
            max_cycle=max_cycle,
        )
        status, body = _post_json(
            base_url,
            "/v1/session",
            {
                "scenario": scenario_id,
                "heuristic": heuristic,
                "pending": list(held),
            },
        )
        if status != 201:
            with lock:
                errors[0] += 1
            return
        events_url = json.loads(body)["events_url"]
        footer_seen = False
        for start in range(0, len(events), batch):
            chunk = events[start:start + batch]
            payload = b"".join(
                json.dumps(ev.to_dict()).encode("ascii") + b"\n" for ev in chunk
            )
            started = time.perf_counter()
            status, body = _post_ndjson(base_url, events_url, payload)
            elapsed = time.perf_counter() - started
            lines = body.splitlines()
            bad = status != 200 or any(
                b'"record":"error"' in ln for ln in lines
            )
            with lock:
                if bad:
                    errors[0] += 1
                else:
                    latencies.observe(elapsed)
                    delta_lines[0] += len(lines)
            if bad:
                return
            footer_seen = any(b'"record":"footer"' in ln for ln in lines)
        if not footer_seen:
            with lock:
                errors[0] += 1

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-sess-{i}")
        for i in range(clients)
    ]
    wall_started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_started
    batches = latencies.count
    return {
        "clients": clients,
        "sessions": clients,
        "events_per_session": n_events,
        "batch": batch,
        "batches": batches,
        "errors": errors[0],
        "delta_lines": delta_lines[0],
        "wall_seconds": wall,
        "throughput_eps": (batches * batch) / wall if wall > 0 else 0.0,
        "latency_seconds": latencies.summary(),
    }


def run_session_loadgen(
    base_url: str,
    levels: tuple[int, ...] = (1, 4, 16),
    n_tasks: int = 24,
    seed: int = 7,
    heuristic: str = "slrh1",
    n_events: int = 16,
    batch: int = 4,
    max_cycle: int = 60,
) -> dict:
    """Session-mode benchmark against *base_url*; returns the artefact."""
    from repro.heuristics import generate_named_scenario

    # The local scenario is byte-identical to the registered one — both
    # sides build it through generate_named_scenario — so the synthesized
    # event streams are legal on the server's copy.
    scenario = generate_named_scenario(n_tasks, seed)
    scenario_id = register_scenario(base_url, n_tasks, seed)
    results = [
        run_session_level(
            base_url,
            scenario,
            scenario_id,
            heuristic,
            c,
            n_events,
            batch,
            max_cycle,
            seed,
        )
        for c in levels
    ]
    metrics = _get_json(base_url, "/metrics")
    return {
        "schema": _SCHEMA,
        "mode": "session",
        "scenario": {"id": scenario_id, "n_tasks": n_tasks, "seed": seed},
        "heuristic": heuristic,
        "events_per_session": n_events,
        "batch": batch,
        "max_cycle": max_cycle,
        "levels": results,
        "metrics_after": {
            "derived": metrics.get("derived", {}),
            "gauges": metrics.get("gauges", {}),
            "histograms": metrics.get("histograms", {}),
            "counters": {
                k: v
                for k, v in metrics.get("counters", {}).items()
                if k.startswith(("service.", "registry.", "map.", "session."))
            },
        },
    }


def run_loadgen(
    base_url: str,
    levels: tuple[int, ...] = (1, 4, 16),
    n_tasks: int = 24,
    seed: int = 7,
    heuristic: str = "slrh1",
    requests_per_client: int = 8,
    max_retries: int = DEFAULT_MAX_RETRIES,
) -> dict:
    """Full benchmark against *base_url*; returns the artefact document."""
    scenario_id = register_scenario(base_url, n_tasks, seed)
    results = [
        run_level(
            base_url,
            scenario_id,
            heuristic,
            c,
            requests_per_client,
            max_retries=max_retries,
        )
        for c in levels
    ]
    metrics = _get_json(base_url, "/metrics")
    return {
        "schema": _SCHEMA,
        "scenario": {"id": scenario_id, "n_tasks": n_tasks, "seed": seed},
        "heuristic": heuristic,
        "requests_per_client": requests_per_client,
        "max_retries": max_retries,
        "levels": results,
        "metrics_after": {
            "derived": metrics.get("derived", {}),
            "gauges": metrics.get("gauges", {}),
            "histograms": metrics.get("histograms", {}),
            "counters": {
                k: v
                for k, v in metrics.get("counters", {}).items()
                if k.startswith(("service.", "registry.", "map."))
            },
        },
    }


class _SelfHosted:
    """An ephemeral in-process daemon: registry + shard router + server.

    ``with _SelfHosted(n_shards) as base_url:`` boots the whole stack on
    a loopback ephemeral port and tears it down (drain, HTTP shutdown,
    shard processes reaped) on exit — the unit the shard sweep repeats
    per shard count.
    """

    def __init__(self, n_shards: int = 1, max_queue: int = 64) -> None:
        from repro.service.app import make_server
        from repro.service.jobs import ShardRouter
        from repro.service.registry import ScenarioRegistry

        self.manager = ShardRouter(
            ScenarioRegistry(), shards=n_shards, max_queue=max_queue
        )
        self.server = make_server("127.0.0.1", 0, self.manager)
        host, port = self.server.server_address[:2]
        self.base_url = f"http://{host}:{port}"
        self._thread = threading.Thread(
            target=self.server.serve_forever, name="loadgen-http", daemon=True
        )
        self._thread.start()

    def __enter__(self) -> str:
        return self.base_url

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        self.manager.drain(timeout=30)
        self.server.shutdown()
        self._thread.join(timeout=10)
        self.server.server_close()
        self.manager.close(drain_timeout=0)


def run_shard_sweep(
    shard_counts: tuple[int, ...] = (1, 2, 4),
    levels: tuple[int, ...] = (64, 128, 256),
    n_tasks: int = 16,
    seed: int = 7,
    heuristic: str = "slrh1",
    requests_per_client: int = 2,
    max_retries: int = DEFAULT_MAX_RETRIES,
    max_queue: int = 256,
) -> dict:
    """The sharding benchmark: the full level set, once per shard count,
    each against a fresh self-hosted daemon.

    Returns the ``repro.bench.service/2`` artefact: ``shard_sweep``
    carries one ``{"shards", "levels", "metrics_after"}`` entry per
    count, ``levels`` mirrors the largest count's levels (so v1
    consumers keep working), and ``shard_speedup`` compares the highest
    client level's throughput at ``max(shard_counts)`` vs
    ``min(shard_counts)``.  ``cpu_count`` records the parallelism that
    was physically available — the honesty bit the regression gate keys
    its 2.5x floor on.
    """
    if len(shard_counts) < 2:
        raise ValueError("shard sweep needs at least two shard counts")
    sweep = []
    for n_shards in shard_counts:
        with _SelfHosted(n_shards, max_queue=max_queue) as base_url:
            doc = run_loadgen(
                base_url,
                levels=levels,
                n_tasks=n_tasks,
                seed=seed,
                heuristic=heuristic,
                requests_per_client=requests_per_client,
                max_retries=max_retries,
            )
        sweep.append(
            {
                "shards": n_shards,
                "levels": doc["levels"],
                "metrics_after": doc["metrics_after"],
            }
        )
        top = doc["levels"][-1]
        print(
            f"shards={n_shards}  clients={top['clients']}  "
            f"throughput={top['throughput_rps']:8.2f} req/s",
            flush=True,
        )
    baseline = sweep[0]
    best = sweep[-1]
    top_clients = max(levels)

    def _rps(entry: dict) -> float:
        for level in entry["levels"]:
            if level["clients"] == top_clients:
                return level["throughput_rps"]
        return 0.0

    baseline_rps = _rps(baseline)
    best_rps = _rps(best)
    cpu_count = os.cpu_count() or 1
    return {
        "schema": _SWEEP_SCHEMA,
        "mode": "map",
        "cpu_count": cpu_count,
        "scenario": {"n_tasks": n_tasks, "seed": seed},
        "heuristic": heuristic,
        "requests_per_client": requests_per_client,
        "max_retries": max_retries,
        "max_queue": max_queue,
        "levels": best["levels"],
        "shard_sweep": sweep,
        "shard_speedup": {
            "clients": top_clients,
            "baseline_shards": baseline["shards"],
            "baseline_rps": baseline_rps,
            "shards": best["shards"],
            "rps": best_rps,
            "speedup": best_rps / baseline_rps if baseline_rps > 0 else 0.0,
            # A 1-core sweep serialises the shards onto one CPU; the
            # regression gate only enforces the floor when the artefact
            # was measured with real parallelism available.
            "parallel_hardware": cpu_count >= max(shard_counts),
        },
    }


def measure_shard_speedup(
    shard_counts: tuple[int, int] = (1, 4),
    clients: int = 16,
    requests_per_client: int = 3,
    n_tasks: int = 32,
    seed: int = 7,
    heuristic: str = "slrh1",
    repeats: int = 2,
) -> dict:
    """Live A/B for the regression gate: best-of-*repeats* throughput of
    one level at ``shard_counts[1]`` shards over ``shard_counts[0]``.

    Arms are interleaved within each repeat (like the other self-
    normalised gates) so frequency scaling biases both equally.  The
    queue bound is sized to the client count, so no request is ever
    rejected and both arms complete identical work.
    """
    best: dict[int, float] = {n: 0.0 for n in shard_counts}
    for _ in range(max(1, repeats)):
        for n_shards in shard_counts:
            with _SelfHosted(n_shards, max_queue=max(64, clients * 2)) as base:
                scenario_id = register_scenario(base, n_tasks, seed)
                level = run_level(
                    base, scenario_id, heuristic, clients, requests_per_client
                )
            if level["errors"] or level["gave_up"]:
                raise RuntimeError(
                    f"shard speedup measurement unsound at {n_shards} shard(s): "
                    f"{level['errors']} errors, {level['gave_up']} gave up"
                )
            best[n_shards] = max(best[n_shards], level["throughput_rps"])
    baseline_rps = best[shard_counts[0]]
    sharded_rps = best[shard_counts[1]]
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "n_tasks": n_tasks,
        "baseline_shards": shard_counts[0],
        "baseline_rps": round(baseline_rps, 3),
        "shards": shard_counts[1],
        "rps": round(sharded_rps, 3),
        "speedup": round(sharded_rps / baseline_rps, 4) if baseline_rps > 0 else 0.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Benchmark a repro.service daemon; writes BENCH_service.json.",
    )
    parser.add_argument("--url", default=None,
                        help="base URL of a running service (default: self-host)")
    parser.add_argument("--mode", choices=("map", "session"), default="map",
                        help="map = one-shot /v1/map requests; session = "
                        "streaming sessions with synthesized grid events")
    parser.add_argument("--events", type=int, default=16,
                        help="[session] events per session")
    parser.add_argument("--batch", type=int, default=4,
                        help="[session] events per NDJSON request")
    parser.add_argument("--max-cycle", type=int, default=60,
                        help="[session] cycle of the closing event")
    parser.add_argument("--shards", default=None,
                        help="shard processes for the self-hosted service "
                        "(int or 'auto'; default $REPRO_SHARDS, else --jobs, else 1)")
    parser.add_argument("--jobs", default=None,
                        help="legacy alias for --shards")
    parser.add_argument("--shard-sweep", default=None, metavar="N,N,...",
                        help="run the whole level set once per shard count "
                        "(self-host only) and emit the repro.bench.service/2 "
                        "artefact with a shard_speedup summary")
    parser.add_argument("--max-queue", type=int, default=64)
    parser.add_argument("--clients", default="1,4,16",
                        help="comma-separated concurrency levels")
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per client per level")
    parser.add_argument("--max-retries", type=int, default=DEFAULT_MAX_RETRIES,
                        help="429 retries allowed per request before giving up")
    parser.add_argument("--n-tasks", type=int, default=24)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--heuristic", default="slrh1")
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args(argv)
    try:
        levels = tuple(int(c) for c in args.clients.split(",") if c.strip())
    except ValueError:
        parser.error(f"--clients must be comma-separated integers, got {args.clients!r}")
    if not levels or any(c < 1 for c in levels):
        parser.error("--clients needs at least one positive level")
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")

    if args.shard_sweep is not None:
        if args.url:
            parser.error("--shard-sweep boots its own daemons; drop --url")
        if args.mode != "map":
            parser.error("--shard-sweep only supports --mode map")
        try:
            shard_counts = tuple(
                int(c) for c in args.shard_sweep.split(",") if c.strip()
            )
        except ValueError:
            parser.error(
                f"--shard-sweep must be comma-separated integers, "
                f"got {args.shard_sweep!r}"
            )
        if len(shard_counts) < 2 or any(n < 1 for n in shard_counts):
            parser.error("--shard-sweep needs at least two positive shard counts")
        doc = run_shard_sweep(
            shard_counts,
            levels=levels,
            n_tasks=args.n_tasks,
            seed=args.seed,
            heuristic=args.heuristic,
            requests_per_client=args.requests,
            max_retries=args.max_retries,
            max_queue=args.max_queue,
        )
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        speedup = doc["shard_speedup"]
        print(
            f"shard speedup @ {speedup['clients']} clients: "
            f"{speedup['speedup']:.2f}x "
            f"({speedup['shards']} shards {speedup['rps']:.1f} req/s vs "
            f"{speedup['baseline_shards']} shard {speedup['baseline_rps']:.1f} "
            f"req/s, {doc['cpu_count']} CPU core(s))",
            flush=True,
        )
        print(f"wrote {out}", flush=True)
        return 0

    hosted = None
    if args.url:
        base_url = args.url.rstrip("/")
    else:
        from repro.util.parallel import resolve_jobs, resolve_shards

        if args.shards is not None:
            n_shards = resolve_shards(args.shards)
        elif args.jobs is not None:
            n_shards = resolve_jobs(args.jobs)
        else:
            n_shards = resolve_shards(None)
        hosted = _SelfHosted(n_shards, max_queue=args.max_queue)
        base_url = hosted.base_url
        print(f"self-hosted service on {base_url}", flush=True)

    try:
        if args.mode == "session":
            doc = run_session_loadgen(
                base_url,
                levels=levels,
                n_tasks=args.n_tasks,
                seed=args.seed,
                heuristic=args.heuristic,
                n_events=args.events,
                batch=args.batch,
                max_cycle=args.max_cycle,
            )
        else:
            doc = run_loadgen(
                base_url,
                levels=levels,
                n_tasks=args.n_tasks,
                seed=args.seed,
                heuristic=args.heuristic,
                requests_per_client=args.requests,
                max_retries=args.max_retries,
            )
    finally:
        if hosted is not None:
            hosted.close()

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    for level in doc["levels"]:
        lat = level["latency_seconds"]
        if args.mode == "session":
            print(
                f"clients={level['clients']:>3}  batches={level['batches']:>4}  "
                f"throughput={level['throughput_eps']:8.2f} ev/s  "
                f"p50={lat['p50']*1e3:7.1f}ms  p95={lat['p95']*1e3:7.1f}ms  "
                f"p99={lat['p99']*1e3:7.1f}ms  errors={level['errors']}",
                flush=True,
            )
        else:
            print(
                f"clients={level['clients']:>3}  requests={level['requests']:>4}  "
                f"throughput={level['throughput_rps']:8.2f} req/s  "
                f"p50={lat['p50']*1e3:7.1f}ms  p95={lat['p95']*1e3:7.1f}ms  "
                f"p99={lat['p99']*1e3:7.1f}ms  "
                f"retries429={level['retries_429']}  gave_up={level['gave_up']}",
                flush=True,
            )
    print(f"wrote {out}", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    sys.exit(main())
