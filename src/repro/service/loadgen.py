"""Load generator for the scheduling service → ``BENCH_service.json``.

Drives N concurrent synchronous ``/v1/map`` clients against a running
service (or a self-hosted in-process one), one level per requested
concurrency, and records throughput plus exact p50/p95/p99 request
latency per level.  The artefact layout::

    {
      "schema": "repro.bench.service/1",
      "scenario": {"id": ..., "n_tasks": ..., "seed": ...},
      "heuristic": "slrh1",
      "levels": [
        {"clients": 1, "requests": ..., "errors": 0,
         "retries_429": ..., "gave_up": ...,
         "wall_seconds": ..., "throughput_rps": ...,
         "latency_seconds": {"count": ..., "mean": ..., "p50": ...,
                             "p95": ..., "p99": ...}},
        ...
      ],

Backpressure handling is **bounded**: a 429 response is retried after the
server's ``Retry-After`` hint, but only up to ``--max-retries`` times per
request — a persistently saturated queue shows up as ``gave_up`` counts in
the report instead of hanging the benchmark forever.
      "metrics_after": {... selected /metrics fields ...}
    }

Usage::

    python -m repro.service.loadgen [--url http://host:port | --jobs N]
                                    [--clients 1,4,16] [--requests 8]
                                    [--n-tasks 24] [--seed 7]
                                    [--heuristic slrh1] [--out BENCH_service.json]

Without ``--url`` a service is booted in-process on an ephemeral port
(with ``--jobs`` workers) and torn down afterwards, so the benchmark is
one self-contained command.

``--mode session`` switches to streaming-session clients: each client
opens a ``/v1/session``, streams a deterministic synthesized grid-event
mix (arrivals, losses, rejoins — :func:`repro.session.synthesize_events`,
seeded per client) in NDJSON batches, and reads the mapping-delta blocks
back; latency is per event batch and the artefact carries ``"mode":
"session"`` plus events-per-second throughput.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.perf import Histogram

_SCHEMA = "repro.bench.service/1"
_HTTP_TIMEOUT = 600.0

#: Default per-request budget of 429 retries before a client gives up.
DEFAULT_MAX_RETRIES = 8


def _post_json(base_url: str, path: str, doc: dict) -> tuple[int, bytes]:
    req = urllib.request.Request(
        base_url + path,
        data=json.dumps(doc).encode("ascii"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=_HTTP_TIMEOUT) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _post_ndjson(base_url: str, path: str, lines: bytes) -> tuple[int, bytes]:
    req = urllib.request.Request(
        base_url + path,
        data=lines,
        headers={"Content-Type": "application/x-ndjson"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=_HTTP_TIMEOUT) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _get_json(base_url: str, path: str) -> dict:
    with urllib.request.urlopen(base_url + path, timeout=_HTTP_TIMEOUT) as resp:
        return json.loads(resp.read())


def register_scenario(base_url: str, n_tasks: int, seed: int) -> str:
    """Register the generated ``(n_tasks, seed)`` scenario; returns its id."""
    status, body = _post_json(
        base_url,
        "/v1/scenarios",
        {"generate": {"n_tasks": n_tasks, "seed": seed}},
    )
    if status not in (200, 201):
        raise RuntimeError(f"scenario registration failed ({status}): {body!r}")
    return json.loads(body)["id"]


def run_level(
    base_url: str,
    scenario_id: str,
    heuristic: str,
    clients: int,
    requests_per_client: int,
    alpha: float | None = None,
    beta: float | None = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
) -> dict:
    """One concurrency level: *clients* threads × *requests_per_client*
    sequential synchronous map requests each.

    Each request retries on 429 backpressure at most *max_retries* times
    (honouring the server's ``Retry-After``); exhausting the budget counts
    the request as ``gave_up`` rather than retrying forever.
    """
    latencies = Histogram()
    lock = threading.Lock()
    errors = [0]
    retries_429 = [0]
    gave_up = [0]
    payload: dict = {"scenario": scenario_id, "heuristic": heuristic, "wait": True}
    if alpha is not None:
        payload["alpha"] = alpha
    if beta is not None:
        payload["beta"] = beta

    def client() -> None:
        for _ in range(requests_per_client):
            attempts = 0
            while True:
                started = time.perf_counter()
                status, body = _post_json(base_url, "/v1/map", payload)
                elapsed = time.perf_counter() - started
                if status == 429:
                    # Backpressure is not an error, but the retry budget is
                    # bounded: a saturated queue must not hang the benchmark.
                    with lock:
                        retries_429[0] += 1
                    attempts += 1
                    if attempts > max_retries:
                        with lock:
                            gave_up[0] += 1
                        break
                    retry = 1.0
                    try:
                        retry = float(json.loads(body).get("retry_after", 1))
                    except (ValueError, AttributeError):
                        pass
                    time.sleep(min(retry, 5.0))
                    continue
                with lock:
                    if status == 200:
                        latencies.observe(elapsed)
                    else:
                        errors[0] += 1
                break

    threads = [
        threading.Thread(target=client, name=f"loadgen-{i}") for i in range(clients)
    ]
    wall_started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_started
    completed = latencies.count
    return {
        "clients": clients,
        "requests": completed,
        "errors": errors[0],
        "retries_429": retries_429[0],
        "gave_up": gave_up[0],
        "wall_seconds": wall,
        "throughput_rps": completed / wall if wall > 0 else 0.0,
        "latency_seconds": latencies.summary(),
    }


def run_session_level(
    base_url: str,
    scenario,
    scenario_id: str,
    heuristic: str,
    clients: int,
    n_events: int,
    batch: int,
    max_cycle: int,
    seed: int,
) -> dict:
    """One session-mode level: *clients* concurrent streaming sessions.

    Each client opens its own session, synthesizes a deterministic mixed
    event stream (seeded per client, so every run replays the same
    sessions), posts it in NDJSON batches of *batch* events and reads the
    delta blocks back; the last batch carries the ``close`` and must end
    in a ``footer``.  Latency is per event batch.
    """
    from repro.session import synthesize_events

    latencies = Histogram()
    lock = threading.Lock()
    errors = [0]
    delta_lines = [0]

    def client(index: int) -> None:
        held, events = synthesize_events(
            scenario,
            seed=seed * 1000 + index,
            n_events=n_events,
            max_cycle=max_cycle,
        )
        status, body = _post_json(
            base_url,
            "/v1/session",
            {
                "scenario": scenario_id,
                "heuristic": heuristic,
                "pending": list(held),
            },
        )
        if status != 201:
            with lock:
                errors[0] += 1
            return
        events_url = json.loads(body)["events_url"]
        footer_seen = False
        for start in range(0, len(events), batch):
            chunk = events[start:start + batch]
            payload = b"".join(
                json.dumps(ev.to_dict()).encode("ascii") + b"\n" for ev in chunk
            )
            started = time.perf_counter()
            status, body = _post_ndjson(base_url, events_url, payload)
            elapsed = time.perf_counter() - started
            lines = body.splitlines()
            bad = status != 200 or any(
                b'"record":"error"' in ln for ln in lines
            )
            with lock:
                if bad:
                    errors[0] += 1
                else:
                    latencies.observe(elapsed)
                    delta_lines[0] += len(lines)
            if bad:
                return
            footer_seen = any(b'"record":"footer"' in ln for ln in lines)
        if not footer_seen:
            with lock:
                errors[0] += 1

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-sess-{i}")
        for i in range(clients)
    ]
    wall_started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_started
    batches = latencies.count
    return {
        "clients": clients,
        "sessions": clients,
        "events_per_session": n_events,
        "batch": batch,
        "batches": batches,
        "errors": errors[0],
        "delta_lines": delta_lines[0],
        "wall_seconds": wall,
        "throughput_eps": (batches * batch) / wall if wall > 0 else 0.0,
        "latency_seconds": latencies.summary(),
    }


def run_session_loadgen(
    base_url: str,
    levels: tuple[int, ...] = (1, 4, 16),
    n_tasks: int = 24,
    seed: int = 7,
    heuristic: str = "slrh1",
    n_events: int = 16,
    batch: int = 4,
    max_cycle: int = 60,
) -> dict:
    """Session-mode benchmark against *base_url*; returns the artefact."""
    from repro.heuristics import generate_named_scenario

    # The local scenario is byte-identical to the registered one — both
    # sides build it through generate_named_scenario — so the synthesized
    # event streams are legal on the server's copy.
    scenario = generate_named_scenario(n_tasks, seed)
    scenario_id = register_scenario(base_url, n_tasks, seed)
    results = [
        run_session_level(
            base_url,
            scenario,
            scenario_id,
            heuristic,
            c,
            n_events,
            batch,
            max_cycle,
            seed,
        )
        for c in levels
    ]
    metrics = _get_json(base_url, "/metrics")
    return {
        "schema": _SCHEMA,
        "mode": "session",
        "scenario": {"id": scenario_id, "n_tasks": n_tasks, "seed": seed},
        "heuristic": heuristic,
        "events_per_session": n_events,
        "batch": batch,
        "max_cycle": max_cycle,
        "levels": results,
        "metrics_after": {
            "derived": metrics.get("derived", {}),
            "gauges": metrics.get("gauges", {}),
            "histograms": metrics.get("histograms", {}),
            "counters": {
                k: v
                for k, v in metrics.get("counters", {}).items()
                if k.startswith(("service.", "registry.", "map.", "session."))
            },
        },
    }


def run_loadgen(
    base_url: str,
    levels: tuple[int, ...] = (1, 4, 16),
    n_tasks: int = 24,
    seed: int = 7,
    heuristic: str = "slrh1",
    requests_per_client: int = 8,
    max_retries: int = DEFAULT_MAX_RETRIES,
) -> dict:
    """Full benchmark against *base_url*; returns the artefact document."""
    scenario_id = register_scenario(base_url, n_tasks, seed)
    results = [
        run_level(
            base_url,
            scenario_id,
            heuristic,
            c,
            requests_per_client,
            max_retries=max_retries,
        )
        for c in levels
    ]
    metrics = _get_json(base_url, "/metrics")
    return {
        "schema": _SCHEMA,
        "scenario": {"id": scenario_id, "n_tasks": n_tasks, "seed": seed},
        "heuristic": heuristic,
        "requests_per_client": requests_per_client,
        "max_retries": max_retries,
        "levels": results,
        "metrics_after": {
            "derived": metrics.get("derived", {}),
            "gauges": metrics.get("gauges", {}),
            "histograms": metrics.get("histograms", {}),
            "counters": {
                k: v
                for k, v in metrics.get("counters", {}).items()
                if k.startswith(("service.", "registry.", "map."))
            },
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Benchmark a repro.service daemon; writes BENCH_service.json.",
    )
    parser.add_argument("--url", default=None,
                        help="base URL of a running service (default: self-host)")
    parser.add_argument("--mode", choices=("map", "session"), default="map",
                        help="map = one-shot /v1/map requests; session = "
                        "streaming sessions with synthesized grid events")
    parser.add_argument("--events", type=int, default=16,
                        help="[session] events per session")
    parser.add_argument("--batch", type=int, default=4,
                        help="[session] events per NDJSON request")
    parser.add_argument("--max-cycle", type=int, default=60,
                        help="[session] cycle of the closing event")
    parser.add_argument("--jobs", default=None,
                        help="workers for the self-hosted service (int or 'auto')")
    parser.add_argument("--max-queue", type=int, default=64)
    parser.add_argument("--clients", default="1,4,16",
                        help="comma-separated concurrency levels")
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per client per level")
    parser.add_argument("--max-retries", type=int, default=DEFAULT_MAX_RETRIES,
                        help="429 retries allowed per request before giving up")
    parser.add_argument("--n-tasks", type=int, default=24)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--heuristic", default="slrh1")
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args(argv)
    try:
        levels = tuple(int(c) for c in args.clients.split(",") if c.strip())
    except ValueError:
        parser.error(f"--clients must be comma-separated integers, got {args.clients!r}")
    if not levels or any(c < 1 for c in levels):
        parser.error("--clients needs at least one positive level")
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")

    server = None
    manager = None
    serve_thread = None
    if args.url:
        base_url = args.url.rstrip("/")
    else:
        from repro.service.app import make_server
        from repro.service.jobs import JobManager
        from repro.service.registry import ScenarioRegistry

        manager = JobManager(
            ScenarioRegistry(), n_jobs=args.jobs, max_queue=args.max_queue
        )
        server = make_server("127.0.0.1", 0, manager)
        host, port = server.server_address[:2]
        base_url = f"http://{host}:{port}"
        serve_thread = threading.Thread(
            target=server.serve_forever, name="loadgen-http", daemon=True
        )
        serve_thread.start()
        print(f"self-hosted service on {base_url}", flush=True)

    try:
        if args.mode == "session":
            doc = run_session_loadgen(
                base_url,
                levels=levels,
                n_tasks=args.n_tasks,
                seed=args.seed,
                heuristic=args.heuristic,
                n_events=args.events,
                batch=args.batch,
                max_cycle=args.max_cycle,
            )
        else:
            doc = run_loadgen(
                base_url,
                levels=levels,
                n_tasks=args.n_tasks,
                seed=args.seed,
                heuristic=args.heuristic,
                requests_per_client=args.requests,
                max_retries=args.max_retries,
            )
    finally:
        if server is not None:
            manager.drain(timeout=30)
            server.shutdown()
            serve_thread.join(timeout=10)
            server.server_close()
            manager.close(drain_timeout=0)

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    for level in doc["levels"]:
        lat = level["latency_seconds"]
        if args.mode == "session":
            print(
                f"clients={level['clients']:>3}  batches={level['batches']:>4}  "
                f"throughput={level['throughput_eps']:8.2f} ev/s  "
                f"p50={lat['p50']*1e3:7.1f}ms  p95={lat['p95']*1e3:7.1f}ms  "
                f"p99={lat['p99']*1e3:7.1f}ms  errors={level['errors']}",
                flush=True,
            )
        else:
            print(
                f"clients={level['clients']:>3}  requests={level['requests']:>4}  "
                f"throughput={level['throughput_rps']:8.2f} req/s  "
                f"p50={lat['p50']*1e3:7.1f}ms  p95={lat['p95']*1e3:7.1f}ms  "
                f"p99={lat['p99']*1e3:7.1f}ms  "
                f"retries429={level['retries_429']}  gave_up={level['gave_up']}",
                flush=True,
            )
    print(f"wrote {out}", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    sys.exit(main())
