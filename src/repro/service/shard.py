"""Shard execution backends: in-process and child-process.

A *shard* is the unit the service scales over: one bounded queue + one
dispatcher thread (both in :mod:`repro.service.jobs`) in front of one
execution backend defined here.  Two backends share one duck-typed
contract:

* :class:`InlineShard` — runs everything in the calling process.  Used at
  ``--shards 1``, where it preserves the pre-shard service exactly: jobs
  execute on the single dispatcher thread (module-level scenario LRU,
  no locking needed), sessions on HTTP handler threads through a locked
  :class:`~repro.service.worker.SessionHost`.  Fully functional without
  ``start()`` — admission-control tests submit against an unstarted
  manager.
* :class:`ProcessShard` — ships every call to a long-lived
  :class:`~repro.util.parallel.ShardProcess` child running
  :func:`~repro.service.worker.shard_main`.  Scenario docs are shipped
  at most once per shard (``_shipped``); the child keeps the raw doc and
  its deserialised-LRU entry resident, which is what affine routing buys.
  Child-side exceptions come back as ``("error", type_name, message)``
  and are re-raised here as the matching builtin, so upstream HTTP status
  mapping cannot tell the backends apart.  A dead child surfaces as
  :class:`~repro.util.parallel.ShardCrashedError` — jobs *fail*, they
  never hang — and the shard stays dead (no auto-restart; ``/healthz``
  goes 503 so the operator sees it).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any

from repro.service import worker as _worker
from repro.service.worker import SessionHost, execute_mapping, shard_main
from repro.util.parallel import ShardCrashedError, ShardProcess

#: Child exception names re-raised as their builtin counterparts; anything
#: unrecognised degrades to RuntimeError (a 500 upstream, never a hang).
_ERROR_TYPES: dict[str, type[Exception]] = {
    "KeyError": KeyError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "IndexError": IndexError,
    "RuntimeError": RuntimeError,
}


class InlineShard:
    """Single-process backend: the pre-shard code path, kept verbatim."""

    def __init__(self, index: int = 0, scenario_cache: int | None = None) -> None:
        self.index = index
        if scenario_cache is not None:
            _worker.configure_scenario_cache(scenario_cache)
        self._sessions = SessionHost()  # internally locked

    def start(self) -> "InlineShard":
        return self

    def stop(self) -> None:
        pass

    def alive(self) -> bool:
        return True

    @property
    def pid(self) -> int:
        return os.getpid()

    def heartbeat_age(self) -> float:
        return 0.0

    def run_job(
        self,
        scenario_id: str,
        doc: dict,
        heuristic: str,
        alpha: float | None,
        beta: float | None,
    ) -> dict:
        return execute_mapping(scenario_id, doc, heuristic, alpha, beta)

    def session_open(
        self, session_id: str, scenario_id: str, doc: dict, body: dict
    ) -> dict:
        return self._sessions.open(session_id, scenario_id, doc, body)

    def session_events(self, session_id: str, event_docs: list[dict]) -> dict:
        return self._sessions.apply(session_id, event_docs)

    def session_status(self, session_id: str) -> dict:
        return self._sessions.status(session_id)

    def session_result(self, session_id: str) -> bytes | None:
        return self._sessions.result(session_id)

    def session_discard(self, session_id: str) -> bool:
        return self._sessions.discard(session_id)


class ProcessShard:
    """Child-process backend over the :class:`ShardProcess` RPC pipe."""

    def __init__(self, index: int, scenario_cache: int | None = None) -> None:
        self.index = index
        self._proc = ShardProcess(
            shard_main, index=index, args=(scenario_cache,)
        )
        self._lock = threading.Lock()
        self._shipped: set[str] = set()  # guarded-by: _lock

    def start(self) -> "ProcessShard":
        self._proc.start()
        return self

    def stop(self) -> None:
        self._proc.stop()

    def alive(self) -> bool:
        return self._proc.alive()

    @property
    def pid(self) -> int | None:
        return self._proc.pid

    def heartbeat_age(self) -> float:
        """Seconds since the child last answered.  Pings only when the
        command pipe is free, so health checks never queue behind a
        running job — a busy shard's age just keeps growing until its
        current reply lands."""
        try:
            self._proc.try_call("ping")
        except ShardCrashedError:
            pass
        return max(0.0, time.monotonic() - self._proc.last_beat)

    def _rpc(self, *command: Any) -> Any:
        reply = self._proc.call(*command)
        if reply[0] == "ok":
            return reply[1]
        _, name, message = reply
        raise _ERROR_TYPES.get(name, RuntimeError)(message)

    def _doc_to_ship(self, scenario_id: str, doc: dict) -> dict | None:
        # Optimistically marked before the send: if the call crashes the
        # shard is dead for good, so a wrong "shipped" entry is moot.
        with self._lock:
            if scenario_id in self._shipped:
                return None
            self._shipped.add(scenario_id)
            return doc

    def run_job(
        self,
        scenario_id: str,
        doc: dict,
        heuristic: str,
        alpha: float | None,
        beta: float | None,
    ) -> dict:
        return self._rpc(
            "job",
            scenario_id,
            self._doc_to_ship(scenario_id, doc),
            heuristic,
            alpha,
            beta,
        )

    def session_open(
        self, session_id: str, scenario_id: str, doc: dict, body: dict
    ) -> dict:
        return self._rpc(
            "session_open",
            session_id,
            scenario_id,
            self._doc_to_ship(scenario_id, doc),
            body,
        )

    def session_events(self, session_id: str, event_docs: list[dict]) -> dict:
        return self._rpc("session_events", session_id, event_docs)

    def session_status(self, session_id: str) -> dict:
        return self._rpc("session_status", session_id)

    def session_result(self, session_id: str) -> bytes | None:
        return self._rpc("session_result", session_id)

    def session_discard(self, session_id: str) -> bool:
        return self._rpc("session_discard", session_id)
