"""Daemon entry point: ``python -m repro.service``.

Boots the scenario registry, the sharded job router and the HTTP server,
then serves until SIGTERM/SIGINT.  Shutdown is graceful by contract: the
signal flips the router into draining mode (new ``/v1/map`` requests get
503, queued and in-flight jobs run to completion on every shard), the
shard processes and server are torn down, and the process exits 0.

Options::

    --host HOST          bind address            (default 127.0.0.1)
    --port PORT          TCP port; 0 = ephemeral (default 8000)
    --shards N|auto      shard worker processes  (default $REPRO_SHARDS,
                         else --jobs, else 1); 1 = inline, no processes
    --jobs N|auto        legacy alias for --shards (default $REPRO_JOBS)
    --max-queue N        per-shard admission bound (default 64)
    --scenario-cache N   deserialised scenarios kept hot per shard
                         (default $REPRO_SCENARIO_CACHE or 8)
    --max-sessions N     bound on live streaming sessions (default 64)
    --session-idle S     idle seconds before a session is evicted
    --drain-grace S      max seconds to wait for drain on shutdown
    --obs-log PATH       structured NDJSON event log ('-' = stderr;
                         default $REPRO_OBS_LOG when set, else disabled)
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.obs.log import configure as obs_configure
from repro.obs.log import configure_from_env as obs_configure_from_env
from repro.service.app import make_server
from repro.service.jobs import ShardRouter
from repro.service.registry import ScenarioRegistry
from repro.service.sessions import (
    DEFAULT_IDLE_TIMEOUT,
    DEFAULT_MAX_SESSIONS,
    SessionManager,
)
from repro.util.parallel import resolve_jobs, resolve_shards


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Long-running SLRH scheduling service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000,
                        help="TCP port; 0 picks an ephemeral port")
    parser.add_argument("--shards", default=None,
                        help="shard worker processes: integer or 'auto' "
                        "(default: $REPRO_SHARDS, else --jobs, else 1)")
    parser.add_argument("--jobs", default=None,
                        help="legacy alias for --shards "
                        "(default: $REPRO_JOBS or 1)")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="bounded per-shard job queue size (429 beyond it)")
    parser.add_argument("--scenario-cache", default=None, metavar="N",
                        help="deserialised scenarios kept hot per shard "
                        "(default: $REPRO_SCENARIO_CACHE or 8)")
    parser.add_argument("--batch-max", type=int, default=None,
                        help=argparse.SUPPRESS)  # pre-shard flag, now inert
    parser.add_argument("--max-sessions", type=int, default=DEFAULT_MAX_SESSIONS,
                        help="bound on live streaming sessions (429 beyond it)")
    parser.add_argument("--session-idle", type=float, default=DEFAULT_IDLE_TIMEOUT,
                        help="idle seconds before a streaming session is evicted")
    parser.add_argument("--drain-grace", type=float, default=30.0,
                        help="seconds to wait for in-flight jobs on shutdown")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request to stderr")
    parser.add_argument("--obs-log", default=None, metavar="PATH",
                        help="write structured NDJSON events to PATH "
                        "('-' = stderr; default: $REPRO_OBS_LOG if set)")
    args = parser.parse_args(argv)

    if args.obs_log is not None:
        obs_configure(args.obs_log)
    else:
        obs_configure_from_env()

    registry = ScenarioRegistry()
    try:
        if args.shards is not None:
            n_shards = resolve_shards(args.shards)
        elif args.jobs is not None:
            n_shards = resolve_jobs(args.jobs)
        else:
            n_shards = resolve_shards(None)
        manager = ShardRouter(
            registry,
            shards=n_shards,
            max_queue=args.max_queue,
            scenario_cache=args.scenario_cache,
        )
    except ValueError as exc:
        parser.error(str(exc))
    try:
        sessions = SessionManager(
            registry,
            max_sessions=args.max_sessions,
            idle_timeout=args.session_idle,
            perf=manager.perf,
            router=manager,
        )
    except ValueError as exc:
        parser.error(str(exc))
    server = make_server(
        args.host, args.port, manager, quiet=not args.verbose, sessions=sessions
    )
    host, port = server.server_address[:2]
    print(
        f"repro.service listening on http://{host}:{port} "
        f"(shards={manager.n_shards}, max-queue={manager.max_queue}, "
        f"max-sessions={sessions.max_sessions})",
        flush=True,
    )

    stop = threading.Event()

    def request_shutdown(signum: int, frame: object) -> None:
        print(f"signal {signal.Signals(signum).name}: draining...", flush=True)
        stop.set()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, request_shutdown)

    serve_thread = threading.Thread(
        target=server.serve_forever, name="repro-http", daemon=True
    )
    serve_thread.start()
    try:
        stop.wait()
    finally:
        sessions.drain()  # stop session opens/events before the job drain
        drained = manager.drain(timeout=args.drain_grace)
        server.shutdown()
        serve_thread.join(timeout=10)
        server.server_close()
        manager.close(drain_timeout=0)
        completed = int(manager.perf.get("service.completed"))
        print(
            f"repro.service stopped ({'drained' if drained else 'DRAIN TIMED OUT'}; "
            f"{completed} jobs completed)",
            flush=True,
        )
    return 0 if drained else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    sys.exit(main())
