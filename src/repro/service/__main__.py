"""Daemon entry point: ``python -m repro.service``.

Boots the scenario registry, the batching job manager and the HTTP server,
then serves until SIGTERM/SIGINT.  Shutdown is graceful by contract: the
signal flips the manager into draining mode (new ``/v1/map`` requests get
503, queued and in-flight jobs run to completion), the worker pool and
server are torn down, and the process exits 0.

Options::

    --host HOST        bind address            (default 127.0.0.1)
    --port PORT        TCP port; 0 = ephemeral (default 8000)
    --jobs N|auto      mapping workers         (default $REPRO_JOBS or 1)
    --max-queue N      admission-control bound (default 64)
    --batch-max N      max requests per dispatch wave (default 2×jobs)
    --max-sessions N   bound on live streaming sessions (default 64)
    --session-idle S   idle seconds before a session is evicted
    --drain-grace S    max seconds to wait for drain on shutdown
    --obs-log PATH     structured NDJSON event log ('-' = stderr; default
                       $REPRO_OBS_LOG when set, else disabled)
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.obs.log import configure as obs_configure
from repro.obs.log import configure_from_env as obs_configure_from_env
from repro.service.app import make_server
from repro.service.jobs import JobManager
from repro.service.registry import ScenarioRegistry
from repro.service.sessions import (
    DEFAULT_IDLE_TIMEOUT,
    DEFAULT_MAX_SESSIONS,
    SessionManager,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Long-running SLRH scheduling service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000,
                        help="TCP port; 0 picks an ephemeral port")
    parser.add_argument("--jobs", default=None,
                        help="mapping worker processes: integer or 'auto' "
                        "(default: $REPRO_JOBS or 1)")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="bounded job queue size (429 beyond it)")
    parser.add_argument("--batch-max", type=int, default=None,
                        help="max requests batched per dispatch wave")
    parser.add_argument("--max-sessions", type=int, default=DEFAULT_MAX_SESSIONS,
                        help="bound on live streaming sessions (429 beyond it)")
    parser.add_argument("--session-idle", type=float, default=DEFAULT_IDLE_TIMEOUT,
                        help="idle seconds before a streaming session is evicted")
    parser.add_argument("--drain-grace", type=float, default=30.0,
                        help="seconds to wait for in-flight jobs on shutdown")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request to stderr")
    parser.add_argument("--obs-log", default=None, metavar="PATH",
                        help="write structured NDJSON events to PATH "
                        "('-' = stderr; default: $REPRO_OBS_LOG if set)")
    args = parser.parse_args(argv)

    if args.obs_log is not None:
        obs_configure(args.obs_log)
    else:
        obs_configure_from_env()

    registry = ScenarioRegistry()
    try:
        manager = JobManager(
            registry,
            n_jobs=args.jobs,
            max_queue=args.max_queue,
            batch_max=args.batch_max,
        )
    except ValueError as exc:
        parser.error(str(exc))
    try:
        sessions = SessionManager(
            registry,
            max_sessions=args.max_sessions,
            idle_timeout=args.session_idle,
            perf=manager.perf,
        )
    except ValueError as exc:
        parser.error(str(exc))
    server = make_server(
        args.host, args.port, manager, quiet=not args.verbose, sessions=sessions
    )
    host, port = server.server_address[:2]
    print(
        f"repro.service listening on http://{host}:{port} "
        f"(jobs={manager.pool.n_jobs}, max-queue={manager.max_queue}, "
        f"batch-max={manager.batch_max}, max-sessions={sessions.max_sessions})",
        flush=True,
    )

    stop = threading.Event()

    def request_shutdown(signum, frame):
        print(f"signal {signal.Signals(signum).name}: draining...", flush=True)
        stop.set()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, request_shutdown)

    serve_thread = threading.Thread(
        target=server.serve_forever, name="repro-http", daemon=True
    )
    serve_thread.start()
    try:
        stop.wait()
    finally:
        sessions.drain()  # stop session opens/events before the job drain
        drained = manager.drain(timeout=args.drain_grace)
        server.shutdown()
        serve_thread.join(timeout=10)
        server.server_close()
        manager.close(drain_timeout=0)
        completed = int(manager.perf.get("service.completed"))
        print(
            f"repro.service stopped ({'drained' if drained else 'DRAIN TIMED OUT'}; "
            f"{completed} jobs completed)",
            flush=True,
        )
    return 0 if drained else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    sys.exit(main())
