"""Job admission, batching and lifecycle for the scheduling service.

Requests become :class:`Job` records in a **bounded** queue — admission
control is the contract: when the queue is full, :meth:`JobManager.submit`
raises :class:`QueueFullError` (HTTP 429 upstream, with a load-derived
``Retry-After``), never an unbounded backlog.

A single dispatcher thread drains the queue in **batches**: up to
``batch_max`` compatible requests (same picklable executor,
:func:`repro.service.worker.execute_mapping`) are popped per wave, ordered
by scenario digest so worker-process scenario caches see runs of the same
scenario, and fanned over the persistent
:class:`~repro.util.parallel.WorkerPool`.  With ``--jobs 1`` the pool runs
the batch serially in the dispatcher thread — no processes, identical
bytes.

The manager owns the live :mod:`repro.perf` registry the ``/metrics``
endpoint serves: service counters (submitted/completed/failed/rejected),
gauges (queue depth, in-flight jobs, drain state) and latency histograms
(`service.request_seconds` submit→finish, `service.map_seconds` heuristic
wall time, `service.batch_size`), plus every job's own engine counters
(plan-cache hit rates et al.) merged in as they complete.

Graceful drain: :meth:`JobManager.drain` stops admission and blocks until
the queue and in-flight batches are empty — the SIGTERM path of
``python -m repro.service``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.heuristics import WEIGHTED_HEURISTICS, normalize_heuristic
from repro.io.serialization import canonical_json_bytes
from repro.obs.log import get_logger
from repro.perf import PerfCounters
from repro.service.registry import ScenarioRegistry
from repro.service.worker import execute_mapping
from repro.util.parallel import WorkerPool

#: Fallback per-job seconds used for Retry-After before any job finished.
_DEFAULT_JOB_SECONDS = 1.0

#: Structured job-lifecycle events (no-op unless repro.obs.log is configured).
_LOG = get_logger("service.jobs")


class QueueFullError(Exception):
    """The bounded job queue is at capacity (HTTP 429 upstream)."""

    def __init__(self, depth: int, retry_after: int) -> None:
        super().__init__(
            f"job queue full ({depth} queued); retry in ~{retry_after}s"
        )
        self.depth = depth
        self.retry_after = retry_after


class DrainingError(Exception):
    """The service is draining and no longer admits jobs (HTTP 503)."""


@dataclass
class Job:
    """One ``/v1/map`` request through its lifecycle."""

    id: str
    scenario_id: str
    heuristic: str
    alpha: float | None
    beta: float | None
    state: str = "queued"  # queued | running | succeeded | failed
    error: str | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    outcome: dict | None = None
    done: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def mapping_bytes(self) -> bytes | None:
        """Canonical mapping JSON of a succeeded job (None otherwise)."""
        if self.outcome is None:
            return None
        return canonical_json_bytes(self.outcome["mapping"])

    def status_doc(self) -> dict:
        """JSON-ready status for ``GET /v1/jobs/<id>``."""
        doc = {
            "job": self.id,
            "state": self.state,
            "scenario": self.scenario_id,
            "heuristic": self.heuristic,
            "alpha": self.alpha,
            "beta": self.beta,
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.finished_at is not None:
            doc["wait_seconds"] = (self.started_at or self.finished_at) - self.submitted_at
            doc["total_seconds"] = self.finished_at - self.submitted_at
        if self.outcome is not None:
            doc["summary"] = self.outcome["summary"]
            doc["heuristic_seconds"] = self.outcome["heuristic_seconds"]
        return doc


class JobManager:
    """Bounded-queue batch dispatcher over a persistent worker pool."""

    def __init__(
        self,
        registry: ScenarioRegistry,
        n_jobs: int | str | None = None,
        max_queue: int = 64,
        batch_max: int | None = None,
        max_jobs_kept: int = 1024,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.registry = registry
        self.pool = WorkerPool(n_jobs)
        self.max_queue = max_queue
        self.batch_max = batch_max if batch_max is not None else max(
            2 * self.pool.n_jobs, 4
        )
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.max_jobs_kept = max_jobs_kept
        self.perf = PerfCounters()
        self._queue: deque[Job] = deque()  # guarded-by: _lock
        self._jobs: dict[str, Job] = {}  # guarded-by: _lock
        self._job_order: deque[str] = deque()  # guarded-by: _lock
        self._inflight = 0  # guarded-by: _lock
        self._draining = False  # guarded-by: _lock
        self._stopped = False  # guarded-by: _lock
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._ids = itertools.count(1)  # guarded-by: _lock
        self._dispatcher: threading.Thread | None = None  # guarded-by: _lock

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "JobManager":
        """Start the dispatcher thread (idempotent); returns self."""
        with self._lock:
            if self._stopped:
                raise RuntimeError("JobManager is closed")
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop, name="repro-dispatcher", daemon=True
                )
                self._dispatcher.start()
        return self

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting jobs and wait until queue + in-flight are empty.

        Returns True when fully drained within *timeout* (None = forever).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._draining = True
            self._update_gauges_locked()
            self._wake.notify_all()
            while self._queue or self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(timeout=remaining)
        return True

    def close(self, drain_timeout: float | None = None) -> None:
        """Drain (bounded by *drain_timeout*), stop the dispatcher, shut the
        pool down.  Idempotent."""
        self.drain(timeout=drain_timeout)
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            self._wake.notify_all()
            dispatcher = self._dispatcher
        # Join outside the lock: the dispatcher needs it to observe
        # _stopped and exit.
        if dispatcher is not None:
            dispatcher.join(timeout=10)
        self.pool.shutdown()

    # -- admission ---------------------------------------------------------

    def submit(
        self,
        scenario_id: str,
        heuristic: str,
        alpha: float | None = None,
        beta: float | None = None,
    ) -> Job:
        """Admit one mapping request; returns its :class:`Job`.

        Raises :class:`KeyError` for an unregistered scenario or unknown
        heuristic, :class:`ValueError` for weights on a weight-free
        baseline, :class:`DrainingError` during shutdown and
        :class:`QueueFullError` when the bounded queue is at capacity.
        """
        canonical = normalize_heuristic(heuristic)  # KeyError when unknown
        if canonical not in WEIGHTED_HEURISTICS and not (alpha is None and beta is None):
            raise ValueError(
                f"heuristic {canonical!r} does not take objective weights"
            )
        if scenario_id not in self.registry:
            raise KeyError(f"scenario {scenario_id!r} is not registered")
        with self._lock:
            if self._stopped or self._draining:
                self.perf.inc("service.rejected_draining")
                _LOG.event("job.rejected", reason="draining", scenario=scenario_id)
                raise DrainingError("service is draining; not accepting jobs")
            if len(self._queue) >= self.max_queue:
                self.perf.inc("service.rejected")
                _LOG.event(
                    "job.rejected",
                    reason="queue_full",
                    scenario=scenario_id,
                    queue_depth=len(self._queue),
                )
                raise QueueFullError(len(self._queue), self._retry_after_locked())
            job = Job(
                id=f"job-{next(self._ids):08d}",
                scenario_id=scenario_id,
                heuristic=canonical,
                alpha=alpha,
                beta=beta,
                submitted_at=time.monotonic(),
            )
            self._queue.append(job)
            self._remember_locked(job)
            self.perf.inc("service.submitted")
            _LOG.event(
                "job.submitted",
                job=job.id,
                scenario=scenario_id,
                heuristic=canonical,
                queue_depth=len(self._queue),
            )
            self._update_gauges_locked()
            self._wake.notify_all()
        return job

    def _remember_locked(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._job_order.append(job.id)
        while len(self._job_order) > self.max_jobs_kept:
            old = self._job_order.popleft()
            stale = self._jobs.get(old)
            # Never evict a job that hasn't finished: its submitter may
            # still be blocked on it.
            if stale is not None and stale.done.is_set():
                del self._jobs[old]
            else:
                self._job_order.append(old)
                break

    def _retry_after_locked(self) -> int:
        hist = self.perf.histogram("service.map_seconds")
        per_job = _DEFAULT_JOB_SECONDS
        if hist is not None and hist.count:
            per_job = max(hist.mean, 1e-3)
        eta = (len(self._queue) + self._inflight) * per_job / self.pool.n_jobs
        return max(1, min(300, int(eta + 0.999)))

    def get(self, job_id: str) -> Job:
        """The job registered under *job_id* (KeyError when unknown)."""
        with self._lock:
            return self._jobs[job_id]

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    # -- dispatch ----------------------------------------------------------

    def _update_gauges_locked(self) -> None:
        self.perf.set_gauge("service.queue_depth", float(len(self._queue)))
        self.perf.set_gauge("service.inflight", float(self._inflight))
        self.perf.set_gauge("service.draining", 1.0 if self._draining else 0.0)

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopped:
                    if self._draining:
                        self._idle.notify_all()
                    self._wake.wait()
                if self._stopped and not self._queue:
                    self._idle.notify_all()
                    return
                batch = [
                    self._queue.popleft()
                    for _ in range(min(self.batch_max, len(self._queue)))
                ]
                # Scenario-digest order gives worker caches runs of the
                # same scenario; per-job results are order-independent.
                batch.sort(key=lambda j: (j.scenario_id, j.id))
                now = time.monotonic()
                for job in batch:
                    job.state = "running"
                    job.started_at = now
                self._inflight = len(batch)
                self._update_gauges_locked()
            self._run_batch(batch)
            with self._lock:
                self._inflight = 0
                self._update_gauges_locked()
                self._idle.notify_all()

    def _run_batch(self, batch: list[Job]) -> None:
        self.perf.observe("service.batch_size", len(batch))
        self.perf.inc("service.batches")
        _LOG.event(
            "batch.dispatched",
            jobs=len(batch),
            first=batch[0].id if batch else None,
        )
        argtuples = [
            (
                job.scenario_id,
                self.registry.get_doc(job.scenario_id),
                job.heuristic,
                job.alpha,
                job.beta,
            )
            for job in batch
        ]
        try:
            outcomes = self.pool.starmap(execute_mapping, argtuples, chunksize=1)
        except Exception as exc:  # worker/pool failure: fail the whole wave
            for job in batch:
                self._finish(job, error=f"{type(exc).__name__}: {exc}")
            return
        for job, outcome in zip(batch, outcomes):
            self._finish(job, outcome=outcome)

    def _finish(self, job: Job, outcome: dict | None = None, error: str | None = None) -> None:
        job.finished_at = time.monotonic()
        if error is not None:
            job.state = "failed"
            job.error = error
            self.perf.inc("service.failed")
        else:
            job.state = "succeeded"
            job.outcome = outcome
            self.perf.inc("service.completed")
            self.perf.observe("service.map_seconds", outcome["heuristic_seconds"])
            self.perf.merge(outcome["perf"])  # engine counters (plan cache …)
        self.perf.observe(
            "service.request_seconds", job.finished_at - job.submitted_at
        )
        _LOG.event(
            "job.finished",
            job=job.id,
            state=job.state,
            latency_seconds=round(job.finished_at - job.submitted_at, 6),
            **({"error": job.error} if job.error else {}),
        )
        job.done.set()

    # -- metrics -----------------------------------------------------------

    def metrics_document(self, **context) -> dict:
        """The live ``repro.perf/2`` document served by ``/metrics``."""
        from repro.perf import perf_document

        with self._lock:
            self._update_gauges_locked()
        registry_perf = self.registry.perf
        counters = PerfCounters(self.perf.snapshot()).merge(
            registry_perf.snapshot()
        )
        gauges = {
            **registry_perf.gauges_snapshot(),
            **self.perf.gauges_snapshot(),
        }
        return perf_document(
            counters.snapshot(),
            gauges=gauges,
            histograms=self.perf.histograms_summary(),
            **context,
        )
