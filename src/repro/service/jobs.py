"""Job admission, affine routing and lifecycle for the scheduling service.

The service dispatch layer is *sharded*: N independent
:class:`ShardDispatcher` units (one bounded queue + one dispatcher thread
+ one execution backend each) behind one thin :class:`ShardRouter`.
Requests become :class:`Job` records routed by **scenario-hash affinity**
— ``int(sha256_digest, 16) % n_shards`` — so every request for a given
scenario lands on the same shard and that shard's process-resident
deserialised-scenario LRU stays hot.  At ``shards=1`` the single shard
runs inline on its dispatcher thread (:class:`~repro.service.shard.
InlineShard`), which *is* the pre-shard service byte for byte; at
``shards>1`` each shard owns a long-lived child process
(:class:`~repro.service.shard.ProcessShard`).

Admission control is global but per-shard-bounded: the router serialises
admission under its own lock, and when the *target shard's* queue is at
``max_queue`` the submit raises :class:`QueueFullError` (HTTP 429
upstream) carrying a ``Retry-After`` derived from that shard's backlog ×
the observed mean map time — never an unbounded backlog, and a hot
scenario cannot starve requests routed to other shards.  Draining is
global: once :meth:`ShardRouter.drain` starts, every shard rejects with
:class:`DrainingError` (503) while queued and in-flight jobs run out.

The router owns the global :mod:`repro.perf` registry (service counters,
request/map latency histograms, every job's merged engine counters);
each dispatcher keeps a per-shard registry (``shard<k>.*`` counters,
exact map-seconds histogram, queue/busy/cache gauges).
:meth:`ShardRouter.metrics_document` rolls all of them into the one
``repro.perf/2`` document ``/metrics`` serves, and
:meth:`ShardRouter.health_doc` reports per-shard liveness (pid, queue
depth, last heartbeat) for ``/healthz``.

A crashed shard child fails its in-flight job (surfaced as a ``failed``
job with the crash message — never a hang), stays dead, and flips
``/healthz`` to 503.  :class:`JobManager` remains as the single-shard
compatibility constructor older callers and tests use.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.heuristics import WEIGHTED_HEURISTICS, normalize_heuristic
from repro.io.serialization import canonical_json_bytes
from repro.obs.log import get_logger
from repro.perf import PerfCounters, merge_registries
from repro.service.registry import ScenarioRegistry
from repro.service.shard import InlineShard, ProcessShard
from repro.service.worker import configure_scenario_cache
from repro.util.parallel import resolve_jobs, resolve_shards

#: Fallback per-job seconds used for Retry-After before any job finished.
_DEFAULT_JOB_SECONDS = 1.0

#: Structured job-lifecycle events (no-op unless repro.obs.log is configured).
_LOG = get_logger("service.jobs")


class QueueFullError(Exception):
    """The target shard's bounded queue is at capacity (HTTP 429 upstream)."""

    def __init__(self, depth: int, retry_after: int) -> None:
        super().__init__(
            f"job queue full ({depth} queued); retry in ~{retry_after}s"
        )
        self.depth = depth
        self.retry_after = retry_after


class DrainingError(Exception):
    """The service is draining and no longer admits jobs (HTTP 503)."""


@dataclass
class Job:
    """One ``/v1/map`` request through its lifecycle."""

    id: str
    scenario_id: str
    heuristic: str
    alpha: float | None
    beta: float | None
    shard: int = 0
    state: str = "queued"  # queued | running | succeeded | failed
    error: str | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    outcome: dict | None = None
    done: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def mapping_bytes(self) -> bytes | None:
        """Canonical mapping JSON of a succeeded job (None otherwise)."""
        if self.outcome is None:
            return None
        return canonical_json_bytes(self.outcome["mapping"])

    def status_doc(self) -> dict:
        """JSON-ready status for ``GET /v1/jobs/<id>``."""
        doc = {
            "job": self.id,
            "state": self.state,
            "scenario": self.scenario_id,
            "heuristic": self.heuristic,
            "alpha": self.alpha,
            "beta": self.beta,
            "shard": self.shard,
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.finished_at is not None:
            doc["wait_seconds"] = (self.started_at or self.finished_at) - self.submitted_at
            doc["total_seconds"] = self.finished_at - self.submitted_at
        if self.outcome is not None:
            doc["summary"] = self.outcome["summary"]
            doc["heuristic_seconds"] = self.outcome["heuristic_seconds"]
        return doc


class ShardDispatcher:
    """One shard: a bounded queue, a dispatcher thread, a backend.

    The dispatcher thread pops one job at a time and runs it on the
    backend; with an :class:`~repro.service.shard.InlineShard` that is
    exactly the old single-dispatcher execution path, with a
    :class:`~repro.service.shard.ProcessShard` the job ships to the
    shard's resident child.  All admission goes through the router (which
    serialises submitters), so :meth:`enqueue` itself never rejects; the
    router reads :meth:`admission_state` first under its own lock.

    Lock order: the router acquires ``ShardDispatcher._lock`` while
    holding its own; a dispatcher never acquires the router lock while
    holding its own (``_run_job`` records global results *between* lock
    scopes), so the hierarchy is acyclic.  This is no longer just prose:
    the ``lock-order-cycle`` analysis (``repro.lint.rules.lock_order``)
    builds the project-wide acquisition graph on every lint run — the
    audited order today is ``ShardRouter._lock -> ShardDispatcher._lock``
    and ``SessionManager._lock / LiveSession.lock -> backend locks``,
    with no reverse edges — and CI fails on any future cycle, with the
    witness call path in the finding.
    """

    def __init__(
        self, index: int, backend: InlineShard | ProcessShard,
        router: "ShardRouter",
    ) -> None:
        self.index = index
        self.backend = backend
        self.router = router
        self.max_queue = router.max_queue
        self.perf = PerfCounters()  # guarded-by: _lock
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queue: deque[Job] = deque()  # guarded-by: _lock
        self._busy = False  # guarded-by: _lock
        self._draining = False  # guarded-by: _lock
        self._stopped = False  # guarded-by: _lock
        self._thread: threading.Thread | None = None  # guarded-by: _lock

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ShardDispatcher":
        """Start the backend and dispatcher thread (idempotent)."""
        with self._lock:
            if self._stopped:
                raise RuntimeError("ShardDispatcher is closed")
            if self._thread is not None:
                return self
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-dispatcher-{self.index}",
                daemon=True,
            )
            self._thread = thread
        self.backend.start()  # fork (if any) before traffic
        thread.start()
        return self

    def drain(self, deadline: float | None) -> bool:
        """Stop this shard's work from growing and wait until its queue
        and in-flight job are empty.  True when drained by *deadline*."""
        with self._lock:
            self._draining = True
            self._wake.notify_all()
            while self._queue or self._busy:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(timeout=remaining)
        return True

    def close(self) -> None:
        """Stop the dispatcher thread and the backend.  Idempotent."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            self._wake.notify_all()
            thread = self._thread
        # Join outside the lock: the dispatcher needs it to observe
        # _stopped and exit.
        if thread is not None:
            thread.join(timeout=10)
        self.backend.stop()

    # -- admission (router-lock-serialised callers) ------------------------

    def admission_state(self, per_job_seconds: float) -> tuple[int, int]:
        """(queue depth, Retry-After hint) for an admission decision.

        Retry-After is this shard's backlog (queued + busy) × the
        observed mean map seconds, clamped to [1, 300] — the same ETA
        formula the pre-shard service used, scoped to one shard.
        """
        with self._lock:
            backlog = len(self._queue) + (1 if self._busy else 0)
            eta = backlog * per_job_seconds
            return len(self._queue), max(1, min(300, int(eta + 0.999)))

    def enqueue(self, job: Job) -> int:
        """Append an admitted job; returns the new queue depth.  Callers
        hold the router lock, so capacity checked there still holds."""
        with self._lock:
            self._queue.append(job)
            depth = len(self._queue)
            self._wake.notify_all()
            return depth

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def busy(self) -> bool:
        with self._lock:
            return self._busy

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopped:
                    if self._draining:
                        self._idle.notify_all()
                    self._wake.wait()
                if self._stopped and not self._queue:
                    self._idle.notify_all()
                    return
                job = self._queue.popleft()
                job.state = "running"
                job.started_at = time.monotonic()
                self._busy = True
            self._run_job(job)
            with self._lock:
                self._busy = False
                self._idle.notify_all()

    def _run_job(self, job: Job) -> None:
        _LOG.event(
            "job.dispatched",
            job=job.id,
            shard=self.index,
            scenario=job.scenario_id,
        )
        try:
            doc = self.router.registry.get_doc(job.scenario_id)
            outcome = self.backend.run_job(
                job.scenario_id, doc, job.heuristic, job.alpha, job.beta
            )
        except Exception as exc:  # backend/crash failure: fail the job
            self.router._record_finish(job, error=f"{type(exc).__name__}: {exc}")
            self._note_outcome(None)
            return
        self.router._record_finish(job, outcome=outcome)
        self._note_outcome(outcome)

    def _note_outcome(self, outcome: dict | None) -> None:
        """Per-shard instruments (``shard<k>.*``) for the roll-up."""
        prefix = f"shard{self.index}"
        with self._lock:
            if outcome is None:
                self.perf.inc(f"{prefix}.failed")
                return
            self.perf.inc(f"{prefix}.completed")
            self.perf.observe(
                f"{prefix}.map_seconds", outcome["heuristic_seconds"]
            )
            stats = outcome.get("perf") or {}
            for kind in ("hits", "misses", "evictions"):
                count = stats.get(f"worker.scenario_cache_{kind}", 0)
                if count:
                    self.perf.inc(f"{prefix}.cache_{kind}", count)

    def perf_registry(self) -> PerfCounters:
        """An independent copy of this shard's registry with the live
        queue-depth/busy/alive gauges stamped in (roll-up input)."""
        prefix = f"shard{self.index}"
        with self._lock:
            copied = PerfCounters().merge(self.perf)
            copied.set_gauge(f"{prefix}.queue_depth", float(len(self._queue)))
            copied.set_gauge(f"{prefix}.busy", 1.0 if self._busy else 0.0)
            copied.set_gauge(
                f"{prefix}.cache_hits", self.perf.get(f"{prefix}.cache_hits")
            )
        copied.set_gauge(
            f"{prefix}.alive", 1.0 if self.backend.alive() else 0.0
        )
        return copied


class ShardRouter:
    """Thin global front: validation, affine routing, admission, job table.

    The router never executes anything itself — it picks the target
    shard from the scenario digest, makes the global admission decision
    (draining → 503, target shard full → 429 + Retry-After), and keeps
    the bounded global job table that ``GET /v1/jobs/<id>`` reads.  All
    global perf accounting (``service.*`` counters and latency
    histograms) lives on :attr:`perf` and is mutated only under
    ``_lock`` — submitters take it on admission, dispatcher threads take
    it per finished job — so exact counts survive N concurrent shards.
    """

    def __init__(
        self,
        registry: ScenarioRegistry,
        shards: int | str | None = None,
        max_queue: int = 64,
        max_jobs_kept: int = 1024,
        scenario_cache: int | str | None = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.registry = registry
        self.n_shards = resolve_shards(shards)
        self.max_queue = max_queue
        self.max_jobs_kept = max_jobs_kept
        if scenario_cache is not None:
            # Validate (and apply to this process) up front, so a bad
            # value is a constructor ValueError, not a dead shard child.
            scenario_cache = configure_scenario_cache(scenario_cache)
        self.scenario_cache = scenario_cache
        self.perf = PerfCounters()
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}  # guarded-by: _lock
        self._job_order: deque[str] = deque()  # guarded-by: _lock
        self._ids = itertools.count(1)  # guarded-by: _lock
        self._draining = False  # guarded-by: _lock
        self._stopped = False  # guarded-by: _lock
        if self.n_shards == 1:
            backends = [InlineShard(0, scenario_cache=scenario_cache)]
        else:
            backends = [
                ProcessShard(k, scenario_cache=scenario_cache)
                for k in range(self.n_shards)
            ]
        self.shards = [
            ShardDispatcher(k, backends[k], self)
            for k in range(self.n_shards)
        ]

    # -- routing -----------------------------------------------------------

    def shard_of(self, scenario_id: str) -> int:
        """Affine shard index for a content-addressed scenario id: the
        SHA-256 digest modulo the shard count.  Deterministic across
        processes and restarts (unlike ``hash()``), so a scenario is
        pinned to one shard for the daemon's lifetime."""
        digest = scenario_id.split(":", 1)[-1]
        return int(digest, 16) % self.n_shards

    def shard_for(self, scenario_id: str) -> ShardDispatcher:
        return self.shards[self.shard_of(scenario_id)]

    def session_shard(self, affinity: int) -> ShardDispatcher:
        """Shard for a session affinity key (the numeric session id):
        sessions spread round-robin and each kernel lives in exactly one
        shard process."""
        return self.shards[affinity % self.n_shards]

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ShardRouter":
        """Start every shard (idempotent); returns self."""
        with self._lock:
            if self._stopped:
                raise RuntimeError("ShardRouter is closed")
        for shard in self.shards:
            shard.start()
        return self

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting jobs and wait until every shard's queue and
        in-flight work are empty.  True when fully drained within
        *timeout* (None = forever)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._draining = True
            self.perf.set_gauge("service.draining", 1.0)
        drained = True
        for shard in self.shards:
            drained = shard.drain(deadline) and drained
        return drained

    def close(self, drain_timeout: float | None = None) -> None:
        """Drain (bounded by *drain_timeout*), then stop every dispatcher
        thread and shard process.  Idempotent."""
        self.drain(timeout=drain_timeout)
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        for shard in self.shards:
            shard.close()

    # -- admission ---------------------------------------------------------

    # acquires: ShardDispatcher._lock
    def submit(
        self,
        scenario_id: str,
        heuristic: str,
        alpha: float | None = None,
        beta: float | None = None,
    ) -> Job:
        """Admit one mapping request; returns its :class:`Job`.

        Raises :class:`KeyError` for an unregistered scenario or unknown
        heuristic, :class:`ValueError` for weights on a weight-free
        baseline, :class:`DrainingError` during shutdown and
        :class:`QueueFullError` when the target shard's bounded queue is
        at capacity.
        """
        canonical = normalize_heuristic(heuristic)  # KeyError when unknown
        if canonical not in WEIGHTED_HEURISTICS and not (alpha is None and beta is None):
            raise ValueError(
                f"heuristic {canonical!r} does not take objective weights"
            )
        if scenario_id not in self.registry:
            raise KeyError(f"scenario {scenario_id!r} is not registered")
        shard = self.shard_for(scenario_id)
        with self._lock:
            if self._stopped or self._draining:
                self.perf.inc("service.rejected_draining")
                _LOG.event("job.rejected", reason="draining", scenario=scenario_id)
                raise DrainingError("service is draining; not accepting jobs")
            # Admission is serialised on this lock, so the depth read here
            # cannot be raced upward by another submitter; the dispatcher
            # only ever shrinks it.
            depth, retry_after = shard.admission_state(
                self._per_job_seconds_locked()
            )
            if depth >= self.max_queue:
                self.perf.inc("service.rejected")
                _LOG.event(
                    "job.rejected",
                    reason="queue_full",
                    scenario=scenario_id,
                    shard=shard.index,
                    queue_depth=depth,
                )
                raise QueueFullError(depth, retry_after)
            job = Job(
                id=f"job-{next(self._ids):08d}",
                scenario_id=scenario_id,
                heuristic=canonical,
                alpha=alpha,
                beta=beta,
                shard=shard.index,
                submitted_at=time.monotonic(),
            )
            new_depth = shard.enqueue(job)
            self._remember_locked(job)
            self.perf.inc("service.submitted")
            _LOG.event(
                "job.submitted",
                job=job.id,
                scenario=scenario_id,
                heuristic=canonical,
                shard=shard.index,
                queue_depth=new_depth,
            )
        return job

    def _remember_locked(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._job_order.append(job.id)
        while len(self._job_order) > self.max_jobs_kept:
            old = self._job_order.popleft()
            stale = self._jobs.get(old)
            # Never evict a job that hasn't finished: its submitter may
            # still be blocked on it.
            if stale is not None and stale.done.is_set():
                del self._jobs[old]
            else:
                self._job_order.append(old)
                break

    def _per_job_seconds_locked(self) -> float:
        hist = self.perf.histogram("service.map_seconds")
        if hist is not None and hist.count:
            return max(hist.mean, 1e-3)
        return _DEFAULT_JOB_SECONDS

    def get(self, job_id: str) -> Job:
        """The job registered under *job_id* (KeyError when unknown)."""
        with self._lock:
            return self._jobs[job_id]

    @property
    def queue_depth(self) -> int:
        """Total queued jobs across every shard."""
        return sum(shard.queue_depth for shard in self.shards)

    @property
    def inflight(self) -> int:
        """Shards currently running a job."""
        return sum(1 for shard in self.shards if shard.busy)

    # -- completion (dispatcher threads) -----------------------------------

    def _record_finish(
        self, job: Job, outcome: dict | None = None, error: str | None = None
    ) -> None:
        """Global accounting for one finished job (any dispatcher thread);
        the router lock makes concurrent shard completions exact."""
        job.finished_at = time.monotonic()
        with self._lock:
            if error is not None:
                job.state = "failed"
                job.error = error
                self.perf.inc("service.failed")
            else:
                job.state = "succeeded"
                job.outcome = outcome
                self.perf.inc("service.completed")
                self.perf.observe(
                    "service.map_seconds", outcome["heuristic_seconds"]
                )
                self.perf.merge(outcome["perf"])  # engine counters (plan cache …)
            self.perf.observe(
                "service.request_seconds", job.finished_at - job.submitted_at
            )
        _LOG.event(
            "job.finished",
            job=job.id,
            state=job.state,
            shard=job.shard,
            latency_seconds=round(job.finished_at - job.submitted_at, 6),
            **({"error": job.error} if job.error else {}),
        )
        job.done.set()

    # -- health ------------------------------------------------------------

    def health_doc(self) -> dict:
        """Per-shard liveness for ``/healthz``: pid, queue depth, busy,
        seconds since the last heartbeat.  ``healthy`` goes False (503
        upstream) the moment any shard process is dead."""
        shards = []
        healthy = True
        for shard in self.shards:
            alive = shard.backend.alive()
            healthy = healthy and alive
            shards.append(
                {
                    "shard": shard.index,
                    "pid": shard.backend.pid,
                    "alive": alive,
                    "queue_depth": shard.queue_depth,
                    "busy": shard.busy,
                    "last_heartbeat_seconds": round(
                        shard.backend.heartbeat_age(), 3
                    ),
                }
            )
        return {"healthy": healthy, "shards": shards}

    # -- metrics -----------------------------------------------------------

    def metrics_document(self, **context: object) -> dict:
        """The live ``repro.perf/2`` document served by ``/metrics``: the
        global service registry, the scenario registry's and every
        shard's, rolled into one (counters add, per-shard gauges keep
        their ``shard<k>.`` names, histograms merge exactly)."""
        from repro.perf import perf_document

        shard_registries = [shard.perf_registry() for shard in self.shards]
        with self._lock:
            own = PerfCounters().merge(self.perf)
        merged = merge_registries(self.registry.perf, own, *shard_registries)
        merged.set_gauge("service.queue_depth", float(self.queue_depth))
        merged.set_gauge("service.inflight", float(self.inflight))
        merged.set_gauge("service.draining", 1.0 if self.draining else 0.0)
        merged.set_gauge("service.shards", float(self.n_shards))
        return perf_document(
            merged.snapshot(),
            gauges=merged.gauges_snapshot(),
            histograms=merged.histograms_summary(),
            **context,
        )


class JobManager(ShardRouter):
    """Single-dispatcher compatibility constructor over the shard layer.

    Pre-shard callers built ``JobManager(registry, n_jobs=…)`` around one
    dispatcher thread and a worker pool; ``n_jobs`` now sizes the shard
    layer directly (1 worker → 1 inline shard, N workers → N shard
    processes).  ``batch_max`` is accepted and validated for
    compatibility but inert: shards dispatch one job at a time, and
    per-scenario batching is subsumed by affine routing (every job for a
    scenario already lands on the shard holding it hot).
    """

    def __init__(
        self,
        registry: ScenarioRegistry,
        n_jobs: int | str | None = None,
        max_queue: int = 64,
        batch_max: int | None = None,
        max_jobs_kept: int = 1024,
    ) -> None:
        if batch_max is not None and batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        n_shards = resolve_jobs(n_jobs)
        super().__init__(
            registry,
            shards=n_shards,
            max_queue=max_queue,
            max_jobs_kept=max_jobs_kept,
        )
        self.batch_max = batch_max
