"""Observability layer: structured logs, span traces, decision ledger,
Prometheus exposition.

Stdlib-only and **disabled by default** — with nothing configured every
hook in the engine and the service degrades to a single attribute check,
so mapping output stays byte-identical and the hot paths keep their
throughput (the acceptance bar is <2% overhead on
``benchmarks/test_heuristic_throughput.py``).

Four pieces (see DESIGN.md §10):

* :mod:`repro.obs.log` — NDJSON event logging on top of :mod:`logging`:
  one JSON object per line, context binding, enabled via
  ``REPRO_OBS_LOG`` / :func:`~repro.obs.log.configure`.
* :mod:`repro.obs.spans` — context-manager span tracing over the
  monotonic clock; feeds :class:`repro.perf.PerfCounters` histograms and
  exports Chrome trace-event JSON viewable in Perfetto
  (``python -m repro.experiments map --trace-out``).
* :mod:`repro.obs.ledger` — the decision ledger: per-candidate rejection
  records (``energy_infeasible``, ``outside_horizon``, ``lost_on_score``
  with numeric margins …) behind ``SlrhConfig(ledger=True)``, replayed by
  ``python -m repro.experiments explain``.
* :mod:`repro.obs.prom` — Prometheus text exposition rendered from the
  ``repro.perf/2`` snapshot, served by the daemon's ``/metrics`` under
  content negotiation.
"""

from repro.obs.ledger import (
    DEADLINE_INFEASIBLE,
    ENERGY_INFEASIBLE,
    LOST_ON_SCORE,
    NOT_RELEASED,
    OUTSIDE_HORIZON,
    REASON_CODES,
    DecisionLedger,
    LedgerRecord,
    explain_report,
    read_decision_log,
    write_decision_log,
)
from repro.obs.log import (
    EventLogger,
    configure,
    configure_from_env,
    disable,
    enabled,
    get_logger,
)
from repro.obs.prom import render_prometheus, sanitize_metric_name
from repro.obs.spans import NULL_TRACER, Span, Tracer

__all__ = [
    "DEADLINE_INFEASIBLE",
    "ENERGY_INFEASIBLE",
    "LOST_ON_SCORE",
    "NOT_RELEASED",
    "NULL_TRACER",
    "OUTSIDE_HORIZON",
    "REASON_CODES",
    "DecisionLedger",
    "EventLogger",
    "LedgerRecord",
    "Span",
    "Tracer",
    "configure",
    "configure_from_env",
    "disable",
    "enabled",
    "explain_report",
    "get_logger",
    "read_decision_log",
    "render_prometheus",
    "sanitize_metric_name",
    "write_decision_log",
]
