"""The decision ledger: why candidates were *rejected*, not just committed.

The paper's SLRH "stored a historical record of all critical parameters
for later analysis" (§IV); :class:`repro.sim.trace.MappingTrace` records
the commits, but a commit log cannot answer "why did subtask t drop to
its secondary version on machine j at tick k".  The ledger records the
negative space: one :class:`LedgerRecord` per rejected candidate, with a
reason code and a numeric margin, behind
``SlrhConfig(ledger=True)`` (off by default — recording is opt-in and
never changes the mapping; the differential test pins that).

Reason codes
------------

``energy_infeasible``
    The §IV rule-(b) check failed (secondary-version execution energy
    plus the worst-case outgoing-comm reserve exceeds the machine's
    available battery), or a tentative plan's energy verdict failed at
    commit granularity.  Margin: the shortfall in joules.
``outside_horizon``
    The candidate's data-ready instant falls beyond the receding horizon
    ``t + H`` at this tick.  Margin: seconds past the horizon end.
``lost_on_score``
    A feasible candidate (or version) was outscored.  Margin: the winner's
    objective value minus the loser's — "how far from winning".
``deadline_infeasible``
    The clock passed τ with the task still unmapped (run-level; the
    mapping is incomplete).  Margin: seconds past τ.
``not_released``
    The subtask's release time is still in the future at this tick — the
    dynamic heuristic has no advance knowledge of it (§IV).  Margin:
    seconds until release.

Persistence is NDJSON (:func:`write_decision_log` /
:func:`read_decision_log`): a header record, the commit records from the
:class:`~repro.sim.trace.MappingTrace`, every ledger rejection, and a
summary.  ``python -m repro.experiments explain <trace> --task T`` replays
that file into the human-readable report of :func:`explain_report`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable

ENERGY_INFEASIBLE = "energy_infeasible"
DEADLINE_INFEASIBLE = "deadline_infeasible"
OUTSIDE_HORIZON = "outside_horizon"
LOST_ON_SCORE = "lost_on_score"
NOT_RELEASED = "not_released"

#: Every reason code a ledger record may carry.
REASON_CODES = (
    ENERGY_INFEASIBLE,
    DEADLINE_INFEASIBLE,
    OUTSIDE_HORIZON,
    LOST_ON_SCORE,
    NOT_RELEASED,
)

#: On-disk schema identifier of the decision-log NDJSON.
LEDGER_SCHEMA = "repro.obs.ledger/1"


@dataclass(frozen=True)
class LedgerRecord:
    """One rejected candidate: who, where, when, why, and by how much."""

    tick: int
    clock: float
    task: int
    #: Target machine of the rejected candidate; -1 for run-level records
    #: (``deadline_infeasible`` has no machine).
    machine: int
    reason: str
    #: Version the rejection applies to (``primary``/``secondary``), or
    #: ``None`` when it applies to the task as a whole.
    version: str | None = None
    #: Numeric distance from acceptance (units depend on the reason; see
    #: module docstring).  Always >= 0.
    margin: float | None = None
    #: The loser's objective value, where one was computed.
    score: float | None = None
    #: Task id that beat this candidate (``lost_on_score`` pool walks).
    winner: int | None = None
    detail: str = ""

    def to_dict(self) -> dict:
        doc = {k: v for k, v in asdict(self).items() if v is not None and v != ""}
        doc["event"] = "reject"
        return doc


class DecisionLedger:
    """Append-only rejection log for one mapping run.

    The owning :class:`~repro.sim.trace.MappingTrace` advances
    :attr:`tick` via ``note_tick``; recorders only supply the
    within-tick facts.  ``None`` everywhere in the hot path means
    "ledger disabled" — recording happens only behind an
    ``is not None`` check, so the default path costs nothing.
    """

    __slots__ = ("records", "tick")

    def __init__(self) -> None:
        self.records: list[LedgerRecord] = []
        self.tick = -1

    def note_tick(self) -> None:
        self.tick += 1

    def reject(
        self,
        *,
        clock: float,
        task: int,
        machine: int,
        reason: str,
        version: str | None = None,
        margin: float | None = None,
        score: float | None = None,
        winner: int | None = None,
        detail: str = "",
    ) -> None:
        self.records.append(
            LedgerRecord(
                tick=self.tick,
                clock=clock,
                task=task,
                machine=machine,
                reason=reason,
                version=version,
                margin=margin,
                score=score,
                winner=winner,
                detail=detail,
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def for_task(self, task: int) -> list[LedgerRecord]:
        return [r for r in self.records if r.task == task]


# -- persistence --------------------------------------------------------------


def write_decision_log(path, result) -> Path:
    """Write the decision-log NDJSON for a ledger-enabled mapping run.

    *result* is a :class:`repro.core.slrh.MappingResult` whose trace was
    recorded with the ledger enabled (``ValueError`` otherwise).
    """
    trace = result.trace
    if trace.ledger is None:
        raise ValueError(
            "mapping was run without the decision ledger; "
            "enable it with SlrhConfig(ledger=True) or --ledger-out"
        )
    scenario = result.schedule.scenario
    lines: list[dict] = [
        {
            "event": "header",
            "schema": LEDGER_SCHEMA,
            "heuristic": result.heuristic,
            "scenario": scenario.name,
            "n_tasks": scenario.n_tasks,
            "n_machines": scenario.n_machines,
            "tau": scenario.tau,
            "alpha": result.weights.alpha,
            "beta": result.weights.beta,
        }
    ]
    for r in trace.records:
        lines.append(
            {
                "event": "commit",
                "clock": r.clock,
                "task": r.task,
                "version": r.version,
                "machine": r.machine,
                "start": r.start,
                "finish": r.finish,
                "objective": r.objective,
                "pool_size": r.pool_size,
                "t100": r.t100,
            }
        )
    for rec in trace.ledger:
        lines.append(rec.to_dict())
    lines.append(
        {
            "event": "summary",
            "ticks": trace.ticks,
            "commits": trace.n_commits,
            "rejections": len(trace.ledger),
            "empty_pool_ticks": trace.empty_pool_ticks,
            "success": result.success,
        }
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        for doc in lines:
            fh.write(json.dumps(doc, sort_keys=True) + "\n")
    return path


def read_decision_log(path) -> dict:
    """Parse a decision-log NDJSON into
    ``{"header": ..., "commits": [...], "rejects": [...], "summary": ...}``.
    """
    header: dict = {}
    summary: dict = {}
    commits: list[dict] = []
    rejects: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            kind = doc.get("event")
            if kind == "header":
                header = doc
            elif kind == "commit":
                commits.append(doc)
            elif kind == "reject":
                rejects.append(doc)
            elif kind == "summary":
                summary = doc
    if header.get("schema") != LEDGER_SCHEMA:
        raise ValueError(
            f"{path} is not a {LEDGER_SCHEMA} decision log "
            f"(schema={header.get('schema')!r})"
        )
    return {"header": header, "commits": commits, "rejects": rejects, "summary": summary}


# -- the "why" report ---------------------------------------------------------


def _fmt_margin(reason: str, margin: float | None) -> str:
    if margin is None:
        return ""
    unit = {
        ENERGY_INFEASIBLE: "J",
        OUTSIDE_HORIZON: "s",
        DEADLINE_INFEASIBLE: "s",
        NOT_RELEASED: "s",
        LOST_ON_SCORE: "",
    }.get(reason, "")
    return f" (margin {margin:.6g}{(' ' + unit) if unit else ''})"


def _reject_line(doc: dict) -> str:
    parts = [
        f"  tick {doc.get('tick', '?'):>3}  clock {doc.get('clock', 0.0):8.2f}s",
    ]
    machine = doc.get("machine", -1)
    parts.append(f"machine {machine}" if machine >= 0 else "run-level")
    reason = doc.get("reason", "?")
    body = reason
    if doc.get("version"):
        body += f" [{doc['version']}]"
    body += _fmt_margin(reason, doc.get("margin"))
    if doc.get("winner") is not None:
        body += f", beaten by task {doc['winner']}"
    if doc.get("score") is not None:
        body += f", score {doc['score']:.6g}"
    parts.append(body)
    if doc.get("detail"):
        parts.append(f"— {doc['detail']}")
    return "  ".join(parts)


def explain_report(log: dict, task: int, tick: int | None = None) -> str:
    """Human-readable "why" report for *task* from a parsed decision log.

    With *tick*, restricts the rejection history to that heuristic tick
    (the commit line, if any, is always shown).
    """
    header = log["header"]
    lines = [
        f"why: task {task} of {header.get('scenario', '?')} "
        f"({header.get('heuristic', '?')}, "
        f"alpha={header.get('alpha')}, beta={header.get('beta')})"
    ]
    commit = next((c for c in log["commits"] if c["task"] == task), None)
    if commit is not None:
        lines.append(
            f"committed: clock {commit['clock']:.2f}s  version={commit['version']}  "
            f"machine {commit['machine']}  start {commit['start']:.2f}s  "
            f"finish {commit['finish']:.2f}s  objective {commit['objective']:.6g}"
        )
    else:
        lines.append("committed: never (task is unmapped in this run)")
    rejects = [r for r in log["rejects"] if r["task"] == task]
    if tick is not None:
        rejects = [r for r in rejects if r.get("tick") == tick]
        lines.append(f"rejection history at tick {tick}:")
    else:
        lines.append(f"rejection history ({len(rejects)} records):")
    if rejects:
        lines.extend(_reject_line(r) for r in rejects)
    else:
        lines.append("  (none recorded)")
    if commit is not None and commit["version"] == "secondary":
        ver = next(
            (
                r
                for r in reversed(log["rejects"])
                if r["task"] == task
                and r.get("version") == "primary"
                and r.get("machine") == commit["machine"]
            ),
            None,
        )
        if ver is not None:
            why = ver["reason"] + _fmt_margin(ver["reason"], ver.get("margin"))
            lines.append(
                f"secondary-version verdict: primary rejected on machine "
                f"{commit['machine']} — {why}"
            )
    return "\n".join(lines)


def explain_tasks(log: dict) -> list[int]:
    """Task ids that appear anywhere in the log (commits or rejections)."""
    seen: set[int] = {c["task"] for c in log["commits"]}
    seen.update(r["task"] for r in log["rejects"])
    return sorted(seen)


def iter_records(records: Iterable[LedgerRecord], reason: str) -> list[LedgerRecord]:
    """The subset of in-memory *records* carrying *reason*."""
    return [r for r in records if r.reason == reason]
