"""Span tracing over the monotonic clock → Chrome trace events.

A *span* is a named, timed region of work entered as a context manager::

    with tracer.span("pool.build", machine=j):
        ...

Completed spans accumulate on the :class:`Tracer` (relative to its
creation instant) and export as Chrome trace-event JSON — load the file
in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` and the
whole mapping is visible as a flame chart: ``map`` → per-``kernel.tick``
→ ``pool.delta`` (incremental candidate maintenance) or ``pool.build``
(full rebuild) / ``select`` / ``commit``, exactly the §IV inner loop as
the :class:`repro.core.kernel.SchedulingKernel` drives it.
Span nesting needs no explicit stack: overlapping complete ("X") events
on one thread row render nested by containment.

When the tracer carries a :class:`repro.perf.PerfCounters`, every span
also lands in the ``span.<name>_seconds`` histogram, so the p50/p95/p99
of each phase appear in the perf JSON and on the daemon's ``/metrics``.

The **null tracer** (:data:`NULL_TRACER`) is the disabled path threaded
through the hot loops: its :meth:`~NullTracer.span` returns one shared
no-op context manager, so instrumentation costs two cheap calls per
span site and allocates nothing.  The hottest sites (per-candidate
``select``, per-scan ``pool.build``/``pool.delta``, per-tick
``kernel.tick``) go further and
branch on ``tracer.enabled`` before even building the span's kwargs —
when disabled they pay a single attribute check (see :data:`NULL_SPAN`).  ``Tracer`` instances are single-thread
affine (one mapping = one tracer); the service does not share them.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "NULL_SPAN"]


class Span:
    """One in-flight timed region; created by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "args", "_started")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._started = 0.0

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        ended = time.perf_counter()
        self._tracer._record(self.name, self._started, ended - self._started, self.args)
        return False


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: Shared no-op span for hot paths that want to skip even the kwargs-dict
#: construction of a ``tracer.span(...)`` call when tracing is off::
#:
#:     cm = tracer.span("kernel.tick", tick=i) if tracer.enabled else NULL_SPAN
#:     with cm: ...
NULL_SPAN = _NULL_SPAN


class NullTracer:
    """Disabled tracer: every span is one shared no-op context manager."""

    __slots__ = ()
    enabled = False
    perf = None

    def span(self, name: str, **args) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **args) -> None:
        return None


#: The shared disabled tracer instance the hot paths default to.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects completed spans and instant events for one mapping run.

    Parameters
    ----------
    perf:
        Optional :class:`repro.perf.PerfCounters`; when set, every span
        duration is observed into the ``span.<name>_seconds`` histogram.
    """

    __slots__ = ("events", "perf", "_t0")
    enabled = True

    def __init__(self, perf=None) -> None:
        self.events: list[dict] = []
        self.perf = perf
        self._t0 = time.perf_counter()

    def span(self, name: str, **args) -> Span:
        return Span(self, name, args)

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker event."""
        self.events.append(
            {"name": name, "ts": time.perf_counter() - self._t0, "dur": None, "args": args}
        )

    def _record(self, name: str, started: float, duration: float, args: dict) -> None:
        self.events.append(
            {"name": name, "ts": started - self._t0, "dur": duration, "args": args}
        )
        if self.perf is not None:
            self.perf.observe(f"span.{name}_seconds", duration)

    def __len__(self) -> int:
        return len(self.events)

    def spans_named(self, name: str) -> list[dict]:
        return [e for e in self.events if e["name"] == name and e["dur"] is not None]

    def chrome_trace(self, pid: int = 1, tid: int = 1, process_name: str = "repro") -> dict:
        """The Chrome trace-event document (``{"traceEvents": [...]}``).

        Complete spans become ``ph: "X"`` events, instants ``ph: "i"``;
        timestamps are microseconds relative to tracer creation.
        """
        trace_events: list[dict] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": process_name},
            }
        ]
        for event in self.events:
            doc = {
                "name": event["name"],
                "cat": "repro",
                "pid": pid,
                "tid": tid,
                "ts": event["ts"] * 1e6,
                "args": event["args"],
            }
            if event["dur"] is None:
                doc["ph"] = "i"
                doc["s"] = "t"
            else:
                doc["ph"] = "X"
                doc["dur"] = event["dur"] * 1e6
            trace_events.append(doc)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path, **kwargs) -> Path:
        """Write :meth:`chrome_trace` to *path* (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(**kwargs), fh, default=str)
            fh.write("\n")
        return path
