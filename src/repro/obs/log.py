"""Structured NDJSON event logging on top of stdlib :mod:`logging`.

The codebase had no ``logging`` call at all before this module: the daemon
and the experiment drivers were black boxes under load.  This is the one
place process-level events go through now — one JSON object per line, so
the output is machine-parseable (``jq``-able) as it streams.

Design constraints:

* **Zero-cost when disabled** (the default).  :meth:`EventLogger.event`
  checks one module-level flag and returns; no dict is built, no record
  allocated.  Importing this module configures nothing.
* **Stdlib only.**  A :class:`logging.Handler` with a JSON formatter on a
  dedicated ``repro.obs`` logger root (``propagate=False``, so an
  application's own root-logger config never double-prints our lines).
* **Context binding.**  ``get_logger("service").bind(job="job-0001")``
  returns a child whose bound fields ride along on every event — the
  run/job/scenario scoping the service and the experiment drivers use.

Enable by calling :func:`configure` (a path, ``"stderr"``, or an open
stream), or export ``REPRO_OBS_LOG=stderr`` / ``REPRO_OBS_LOG=/path/to/log``
and let the entry points (``python -m repro.service``,
``python -m repro.experiments``) pick it up via :func:`configure_from_env`.

Record layout (keys sorted, one line per event)::

    {"event": "http.request", "latency_seconds": 0.0123, "level": "info",
     "logger": "repro.obs.service.access", "method": "POST",
     "path": "/v1/map", "queue_depth": 3, "status": 200, "ts": 1754517600.0}
"""

from __future__ import annotations

import json
import logging
import os
import sys
from pathlib import Path

#: Root logger name; every :func:`get_logger` child hangs below it.
ROOT_LOGGER = "repro.obs"


class _State:
    __slots__ = ("enabled", "handler")

    def __init__(self) -> None:
        self.enabled = False
        self.handler: logging.Handler | None = None


_state = _State()


class JsonLineFormatter(logging.Formatter):
    """Render one :class:`logging.LogRecord` as one JSON object per line.

    The event name is the record message; structured fields arrive via the
    ``extra={"obs_fields": {...}}`` channel :class:`EventLogger` uses.
    Non-JSON-able values fall back to ``str`` rather than raising — a log
    line must never take the request down with it.
    """

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "obs_fields", None)
        if fields:
            doc.update(fields)
        return json.dumps(doc, sort_keys=True, default=str, separators=(",", ":"))


def configure(target: str | None = None, *, stream=None, level: int = logging.INFO) -> logging.Logger:
    """Enable NDJSON event logging; returns the configured root logger.

    Parameters
    ----------
    target:
        ``None``, ``"stderr"`` or ``"-"`` log to stderr; anything else is
        a file path (parent directories created, lines appended).
    stream:
        An open text stream to write to instead (tests use ``StringIO``);
        mutually exclusive with *target*.

    Reconfiguring replaces the previous handler (idempotent per target).
    """
    if stream is not None and target is not None:
        raise ValueError("pass either target or stream, not both")
    root = logging.getLogger(ROOT_LOGGER)
    disable()
    if stream is not None:
        handler: logging.Handler = logging.StreamHandler(stream)
    elif target in (None, "stderr", "-"):
        handler = logging.StreamHandler(sys.stderr)
    else:
        path = Path(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        handler = logging.FileHandler(path, encoding="utf-8")
    handler.setFormatter(JsonLineFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    _state.handler = handler
    _state.enabled = True
    return root


def configure_from_env(var: str = "REPRO_OBS_LOG") -> bool:
    """Enable logging when *var* is set (path or ``stderr``); returns
    whether logging is now enabled.  The entry points call this so an
    operator can switch the daemon's event log on without a flag."""
    target = os.environ.get(var, "").strip()
    if not target:
        return _state.enabled
    configure(target)
    return True


def disable() -> None:
    """Tear the handler down and return to the zero-cost no-op state."""
    root = logging.getLogger(ROOT_LOGGER)
    if _state.handler is not None:
        root.removeHandler(_state.handler)
        _state.handler.close()
        _state.handler = None
    _state.enabled = False


def enabled() -> bool:
    """Whether events are currently being written anywhere."""
    return _state.enabled


class EventLogger:
    """A named event emitter with bound context fields.

    ``event(name, **fields)`` writes one NDJSON line merging the bound
    context with the per-call fields (per-call wins on key collision).
    When logging is disabled the call is a single flag check.
    """

    __slots__ = ("_logger", "_context")

    def __init__(self, logger: logging.Logger, context: dict | None = None) -> None:
        self._logger = logger
        self._context = context or {}

    def bind(self, **context) -> "EventLogger":
        """A child emitter carrying ``context`` on every event."""
        return EventLogger(self._logger, {**self._context, **context})

    @property
    def context(self) -> dict:
        return dict(self._context)

    def event(self, event: str, **fields) -> None:
        """Emit one event line (no-op while logging is disabled)."""
        if not _state.enabled:
            return
        if self._context:
            fields = {**self._context, **fields}
        self._logger.info(event, extra={"obs_fields": fields})

    def error(self, event: str, **fields) -> None:
        """Like :meth:`event` at ERROR level (still one NDJSON line)."""
        if not _state.enabled:
            return
        if self._context:
            fields = {**self._context, **fields}
        self._logger.error(event, extra={"obs_fields": fields})


def get_logger(name: str | None = None) -> EventLogger:
    """The :class:`EventLogger` for ``repro.obs[.name]``."""
    full = ROOT_LOGGER if not name else f"{ROOT_LOGGER}.{name}"
    return EventLogger(logging.getLogger(full))
