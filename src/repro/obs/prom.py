"""Prometheus text exposition rendered from a ``repro.perf/2`` document.

The daemon's ``/metrics`` serves the perf JSON by default (the scripted
consumers — loadgen, the CI smoke jobs — parse it); a Prometheus scraper
negotiates the standard text format with ``Accept: text/plain`` or
``?format=prom`` and gets this module's rendering of the same snapshot:

* **counters** → ``counter`` metrics, suffixed ``_total`` per convention
  (``plan.cache.pair_hit`` → ``repro_plan_cache_pair_hit_total``);
* **gauges** and the ``derived`` rates → ``gauge`` metrics;
* **histograms** → ``summary`` metrics: one ``{quantile="..."}`` sample
  per exact nearest-rank percentile plus ``_sum`` and ``_count``.

Names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``) and prefixed ``repro_``; non-finite values
render as ``NaN``/``+Inf``/``-Inf``, which the exposition format admits.
The output is deterministic (sorted by metric name) so it can be pinned
by a golden-file test.
"""

from __future__ import annotations

import math
import re
from typing import Mapping

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: Prefix applied to every rendered metric name.
NAMESPACE = "repro"


def sanitize_metric_name(name: str, namespace: str = NAMESPACE) -> str:
    """*name* mapped onto the Prometheus metric-name grammar.

    Dots (the perf registry's namespace separator) and any other invalid
    characters become underscores; a ``namespace_`` prefix is added unless
    already present; a leading digit after that gets an underscore guard.
    """
    cleaned = _INVALID.sub("_", name)
    if namespace and not cleaned.startswith(namespace + "_"):
        cleaned = f"{namespace}_{cleaned}"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _quantile_of(key: str) -> str | None:
    """``p50`` → ``0.5``, ``p99`` → ``0.99`` (None for non-percentile keys)."""
    if not key.startswith("p"):
        return None
    try:
        q = float(key[1:]) / 100.0
    except ValueError:
        return None
    return f"{q:g}"


def render_prometheus(doc: Mapping) -> str:
    """Render a :func:`repro.perf.perf_document` as exposition text.

    Accepts the full ``repro.perf/2`` document (``counters`` / ``gauges``
    / ``derived`` / ``histograms`` sections, each optional).
    """
    out: list[str] = []

    def emit(name: str, kind: str, help_text: str, samples: list[tuple[str, float]]) -> None:
        out.append(f"# HELP {name} {help_text}")
        out.append(f"# TYPE {name} {kind}")
        for suffix, value in samples:
            out.append(f"{name}{suffix} {_fmt(value)}")

    for raw, value in sorted(doc.get("counters", {}).items()):
        name = sanitize_metric_name(raw)
        if not name.endswith("_total"):
            name += "_total"
        emit(name, "counter", f"repro.perf counter {raw}", [("", value)])
    for raw, value in sorted(doc.get("gauges", {}).items()):
        emit(sanitize_metric_name(raw), "gauge", f"repro.perf gauge {raw}", [("", value)])
    for raw, value in sorted(doc.get("derived", {}).items()):
        emit(
            sanitize_metric_name(raw),
            "gauge",
            f"repro.perf derived rate {raw}",
            [("", value)],
        )
    for raw, summary in sorted(doc.get("histograms", {}).items()):
        name = sanitize_metric_name(raw)
        samples: list[tuple[str, float]] = []
        for key in sorted(summary, key=lambda k: (k != "count", k)):
            quantile = _quantile_of(key)
            if quantile is not None:
                samples.append((f'{{quantile="{quantile}"}}', summary[key]))
        samples.append(("_sum", summary.get("sum", 0.0)))
        samples.append(("_count", summary.get("count", 0)))
        emit(name, "summary", f"repro.perf histogram {raw}", samples)
    return "\n".join(out) + "\n" if out else ""
