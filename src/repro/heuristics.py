"""The single heuristic registry shared by every dispatch surface.

Before the serving layer existed, each driver hard-coded its own
name → scheduler table (:mod:`repro.experiments.comparison` had one, the
examples another).  This module is now the *only* place that mapping
lives: the batch CLI (``python -m repro.experiments map``), the §VII
weight-search factories and the :mod:`repro.service` daemon all dispatch
through :func:`make_scheduler`, so a scenario mapped through any surface
runs byte-identical code — the property the service's differential
determinism test enforces.

Canonical names are lowercase and dash-free (``slrh1`` … ``greedy``);
:func:`normalize_heuristic` also accepts the report-style display names
(``SLRH-1``, ``Max-Max`` …) used throughout EXPERIMENTS.md.

The weighted heuristics (the SLRH family and Max-Max) take the paper's
(α, β) objective weights; the classic minimum-completion-time baselines
(Min-Min, Greedy) ignore them by construction.

Every registered scheduler satisfies the :class:`Heuristic` protocol and
runs on the shared :class:`repro.core.kernel.SchedulingKernel`: the
clock-driven SLRH family supplies a :class:`~repro.core.kernel.TickPolicy`
("how many commits per machine per tick, and what happens to the pool
between commits") to the kernel's tick loop, while the static baselines
(Max-Max, Min-Min, Greedy) supply a selection rule to its clockless round
loop — one core under every heuristic.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.baselines.greedy import GreedyScheduler
from repro.baselines.maxmax import MaxMaxConfig, MaxMaxScheduler
from repro.baselines.minmin import MinMinScheduler
from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SLRH2, SLRH3, MappingResult, SlrhConfig
from repro.obs.spans import Tracer
from repro.workload.scenario import Scenario


@runtime_checkable
class Heuristic(Protocol):
    """What every registered scheduler looks like to a dispatch surface.

    A heuristic carries a report-style display ``name`` and maps one
    :class:`~repro.workload.scenario.Scenario` to a
    :class:`~repro.core.slrh.MappingResult`.  The SLRH family's ``map``
    accepts further keyword arguments (partial schedules, segment bounds,
    tracers, a persistent kernel — see :meth:`SlrhScheduler.map
    <repro.core.slrh.SlrhScheduler.map>`); callers that dispatch across the
    whole registry use only this shared surface.
    """

    name: str

    def map(self, scenario: Scenario) -> MappingResult: ...

#: Default objective weights (README quickstart values) used when a caller
#: names a weighted heuristic without supplying (α, β).
DEFAULT_ALPHA = 0.5
DEFAULT_BETA = 0.2


def _slrh(cls: type) -> Callable[..., Heuristic]:
    def build(weights: Weights, ledger: bool = False) -> Heuristic:
        return cls(SlrhConfig(weights=weights, ledger=ledger))

    return build


def _maxmax(weights: Weights, ledger: bool = False) -> MaxMaxScheduler:
    if ledger:
        raise ValueError("the decision ledger is only supported by the SLRH family")
    return MaxMaxScheduler(MaxMaxConfig(weights=weights))


#: canonical name → display name, weights-aware constructor (or None for
#: the weight-free baselines, constructed via _UNWEIGHTED).
_WEIGHTED: dict[str, tuple[str, Callable[[Weights], object]]] = {
    "slrh1": ("SLRH-1", _slrh(SLRH1)),
    "slrh2": ("SLRH-2", _slrh(SLRH2)),
    "slrh3": ("SLRH-3", _slrh(SLRH3)),
    "maxmax": ("Max-Max", _maxmax),
}

_UNWEIGHTED: dict[str, tuple[str, Callable[[], object]]] = {
    "minmin": ("Min-Min", MinMinScheduler),
    "greedy": ("Greedy", GreedyScheduler),
}

#: Every heuristic name the registry dispatches, in report order.
HEURISTIC_NAMES: tuple[str, ...] = tuple(_WEIGHTED) + tuple(_UNWEIGHTED)

#: Canonical names of the heuristics whose objective uses (α, β).
WEIGHTED_HEURISTICS: tuple[str, ...] = tuple(_WEIGHTED)

#: Canonical names of the clock-driven SLRH variants — the heuristics that
#: support the decision ledger and span tracing (:mod:`repro.obs`).
SLRH_FAMILY: tuple[str, ...] = ("slrh1", "slrh2", "slrh3")

_ALIASES: dict[str, str] = {}
for canonical, (display, _) in {**_WEIGHTED, **_UNWEIGHTED}.items():
    _ALIASES[canonical] = canonical
    _ALIASES[display.lower().replace("-", "")] = canonical


def normalize_heuristic(name: str) -> str:
    """Canonical registry name for *name* (accepts display-name aliases).

    Raises :class:`KeyError` for unknown heuristics.
    """
    key = str(name).strip().lower().replace("-", "").replace("_", "")
    try:
        return _ALIASES[key]
    except KeyError:
        raise KeyError(
            f"unknown heuristic {name!r}; expected one of {', '.join(HEURISTIC_NAMES)}"
        ) from None


def display_name(name: str) -> str:
    """Report-style display name (``SLRH-1``, ``Max-Max`` …) for *name*."""
    canonical = normalize_heuristic(name)
    table = _WEIGHTED if canonical in _WEIGHTED else _UNWEIGHTED
    return table[canonical][0]


def make_scheduler(
    name: str, weights: Weights | None = None, ledger: bool = False
) -> Heuristic:
    """Build the scheduler registered under *name*.

    *weights* applies to the weighted heuristics (SLRH family, Max-Max)
    and defaults to ``Weights.from_alpha_beta(0.5, 0.2)``; the weight-free
    baselines (Min-Min, Greedy) reject explicit weights rather than
    silently ignoring them.  *ledger* turns the decision ledger on
    (:mod:`repro.obs.ledger`; SLRH family only — other heuristics raise).
    """
    canonical = normalize_heuristic(name)
    if canonical in _WEIGHTED:
        if weights is None:
            weights = Weights.from_alpha_beta(DEFAULT_ALPHA, DEFAULT_BETA)
        return _WEIGHTED[canonical][1](weights, ledger=ledger)
    if weights is not None:
        raise ValueError(f"heuristic {canonical!r} does not take objective weights")
    if ledger:
        raise ValueError("the decision ledger is only supported by the SLRH family")
    return _UNWEIGHTED[canonical][1]()


def run_heuristic(
    name: str,
    scenario: Scenario,
    alpha: float | None = None,
    beta: float | None = None,
    *,
    ledger: bool = False,
    tracer: "Tracer | None" = None,
) -> MappingResult:
    """Map *scenario* with the heuristic registered under *name*.

    (α, β) apply to the weighted heuristics and default to
    (:data:`DEFAULT_ALPHA`, :data:`DEFAULT_BETA`); supplying them for a
    weight-free baseline is an error.

    *ledger* records candidate rejections on the result's trace and
    *tracer* (a :class:`repro.obs.spans.Tracer`) records the span tree;
    both require an SLRH-family heuristic (:data:`SLRH_FAMILY`) and both
    leave the mapping bytes untouched — they only add observability.
    """
    canonical = normalize_heuristic(name)
    if tracer is not None and canonical not in SLRH_FAMILY:
        raise ValueError("span tracing is only supported by the SLRH family")
    if canonical in _WEIGHTED:
        weights = Weights.from_alpha_beta(
            DEFAULT_ALPHA if alpha is None else float(alpha),
            DEFAULT_BETA if beta is None else float(beta),
        )
        scheduler = make_scheduler(canonical, weights, ledger=ledger)
        if canonical in SLRH_FAMILY:
            return scheduler.map(scenario, tracer=tracer)
        return scheduler.map(scenario)
    if alpha is not None or beta is not None:
        raise ValueError(f"heuristic {canonical!r} does not take objective weights")
    return make_scheduler(canonical, ledger=ledger).map(scenario)


def generate_named_scenario(n_tasks: int, seed: int) -> Scenario:
    """The shared ``(n_tasks, seed)`` → scenario constructor.

    Both the batch CLI's ``map --generate`` path and the service's
    ``POST /v1/scenarios {"generate": ...}`` path build scenarios here, so
    "same scenario + seed" means the same :class:`Scenario` on every
    surface: a paper-proportionally-shrunk instance (τ and batteries scaled
    by ``n_tasks/1024``) named ``gen<n>-seed<seed>``.
    """
    from repro.workload.scenario import (
        generate_scenario,
        paper_scaled_grid,
        paper_scaled_spec,
    )

    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    return generate_scenario(
        paper_scaled_spec(int(n_tasks)),
        grid=paper_scaled_grid(int(n_tasks)),
        seed=int(seed),
        name=f"gen{int(n_tasks)}-seed{int(seed)}",
    )
