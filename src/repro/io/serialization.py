"""JSON serialisation of scenarios and mappings.

Two artefact kinds:

* **scenario** — grid (machine specs), ETC matrix, DAG edges, data sizes,
  τ, name.  `scenario → dict → scenario` is lossless (floats verbatim).
* **mapping** — the committed assignments of a :class:`Schedule`
  (task, version, machine, start, finish, plus each incoming transfer) and
  any external debits.  :func:`mapping_from_dict` *replays* the assignments
  through ``Schedule.commit`` in topological order, so a loaded mapping has
  passed the same invariants as a freshly computed one — a tampered file
  that violates the model is rejected, not silently accepted.

The serving layer adds two requirements on top of the dict forms:

* **canonical bytes** — :func:`canonical_json_bytes` pins one byte
  encoding (sorted keys, minimal separators, trailing newline) so the
  same document has the same bytes on every surface.  Scenario identity in
  the service registry is :func:`scenario_digest` (SHA-256 of the
  canonical scenario bytes), and the differential determinism test
  compares :func:`canonical_mapping_bytes` across the service and the
  batch CLI.
* **streamed/partial encoding** — :func:`iter_mapping_ndjson` emits a
  mapping as NDJSON (one header line, one line per assignment in task
  order, one footer), so a mapping can be written or served
  incrementally without materialising the whole document;
  :func:`mapping_from_ndjson` reassembles and replays it, accepting the
  truncation point of a partial stream only when the footer is absent.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.grid.config import GridConfig
from repro.grid.machine import MachineClass, MachineSpec
from repro.sim.schedule import ExecutionPlan, PlannedComm, Schedule
from repro.workload.dag import TaskGraph
from repro.workload.scenario import Scenario
from repro.workload.versions import Version

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


# -- scenarios ------------------------------------------------------------------


def _machine_to_dict(m: MachineSpec) -> dict:
    return {
        "battery": m.battery,
        "compute_rate": m.compute_rate,
        "transmit_rate": m.transmit_rate,
        "bandwidth": m.bandwidth,
        "machine_class": m.machine_class.value,
        "name": m.name,
    }


def _machine_from_dict(d: dict) -> MachineSpec:
    return MachineSpec(
        battery=float(d["battery"]),
        compute_rate=float(d["compute_rate"]),
        transmit_rate=float(d["transmit_rate"]),
        bandwidth=float(d["bandwidth"]),
        machine_class=MachineClass(d["machine_class"]),
        name=str(d.get("name", "")),
    )


def scenario_to_dict(scenario: Scenario) -> dict:
    """Lossless plain-dict form of *scenario*."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "scenario",
        "name": scenario.name,
        "tau": scenario.tau,
        "grid": {
            "name": scenario.grid.name,
            "machines": [_machine_to_dict(m) for m in scenario.grid],
        },
        "etc": [list(map(float, row)) for row in scenario.etc],
        "dag": {
            "n_tasks": scenario.dag.n_tasks,
            "edges": [[u, v] for (u, v) in scenario.dag.edges()],
        },
        "data_sizes": [
            [u, v, float(bits)] for (u, v), bits in sorted(scenario.data_sizes.items())
        ],
    }


def scenario_from_dict(data: dict) -> Scenario:
    """Inverse of :func:`scenario_to_dict` (validates structure)."""
    import numpy as np

    if data.get("kind") != "scenario":
        raise ValueError(f"not a scenario document (kind={data.get('kind')!r})")
    if data.get("format") != _FORMAT_VERSION:
        raise ValueError(f"unsupported scenario format {data.get('format')!r}")
    grid = GridConfig(
        machines=tuple(_machine_from_dict(m) for m in data["grid"]["machines"]),
        name=data["grid"].get("name", "grid"),
    )
    dag = TaskGraph(
        int(data["dag"]["n_tasks"]),
        [(int(u), int(v)) for u, v in data["dag"]["edges"]],
    )
    return Scenario(
        grid=grid,
        etc=np.array(data["etc"], dtype=float),
        dag=dag,
        data_sizes={(int(u), int(v)): float(b) for u, v, b in data["data_sizes"]},
        tau=float(data["tau"]),
        name=str(data.get("name", "scenario")),
    )


def save_scenario(scenario: Scenario, path: PathLike) -> None:
    """Write *scenario* as JSON to *path*."""
    Path(path).write_text(json.dumps(scenario_to_dict(scenario)))


def load_scenario(path: PathLike) -> Scenario:
    """Read a scenario JSON document from *path*."""
    return scenario_from_dict(json.loads(Path(path).read_text()))


# -- mappings ---------------------------------------------------------------------


def assignment_to_dict(a: ExecutionPlan) -> dict:
    """Plain-dict form of one committed assignment — the per-task record
    of :func:`mapping_to_dict`, and the exact ``assignment``-line document
    of the NDJSON encodings (full streams *and* session deltas share it,
    so a delta consumer reassembles byte-identical lines)."""
    return {
        "task": a.task,
        "version": a.version.value,
        "machine": a.machine,
        "start": a.start,
        "finish": a.finish,
        "comms": [
            {
                "parent": c.parent,
                "src": c.src,
                "dst": c.dst,
                "bits": c.bits,
                "start": c.start,
                "finish": c.finish,
            }
            for c in a.comms
        ],
    }


def mapping_to_dict(schedule: Schedule) -> dict:
    """Plain-dict form of a schedule's committed assignments."""
    assignments = [
        assignment_to_dict(schedule.assignments[task])
        for task in sorted(schedule.assignments)
    ]
    return {
        "format": _FORMAT_VERSION,
        "kind": "mapping",
        "scenario": schedule.scenario.name,
        "assignments": assignments,
        "external_debits": list(schedule.external_debits),
    }


def mapping_from_dict(data: dict, scenario: Scenario) -> Schedule:
    """Reconstruct a :class:`Schedule` by replaying *data* onto *scenario*.

    Every assignment passes through :meth:`Schedule.commit`, so all model
    invariants (precedence, channel capacity, energy) are re-verified;
    energies and durations are re-derived from the scenario, guarding
    against stale or tampered files.

    The replay does *not* hold communication reserves: reserve
    availability is a transient planning guard whose value depends on
    commit order, and for a mapping produced under churn (rollbacks
    released and re-held edge reserves along the live timeline) no static
    replay order is guaranteed to satisfy it — while the energy *ledger*
    is order-independent, so the real feasibility invariants still hold
    step by step and are reconciled by ``validate_schedule`` at the end.
    """
    if data.get("kind") != "mapping":
        raise ValueError(f"not a mapping document (kind={data.get('kind')!r})")
    if data.get("format") != _FORMAT_VERSION:
        raise ValueError(f"unsupported mapping format {data.get('format')!r}")
    by_task = {int(rec["task"]): rec for rec in data["assignments"]}
    schedule = Schedule(scenario, hold_comm_reserves=False)
    for task in scenario.dag.topological_order:
        rec = by_task.get(task)
        if rec is None:
            continue
        version = Version(rec["version"])
        machine = int(rec["machine"])
        comms = tuple(
            PlannedComm(
                parent=int(c["parent"]),
                child=task,
                src=int(c["src"]),
                dst=int(c["dst"]),
                bits=float(c["bits"]),
                start=float(c["start"]),
                finish=float(c["finish"]),
                energy=scenario.grid[int(c["src"])].transmit_energy(
                    float(c["finish"]) - float(c["start"])
                ),
            )
            for c in rec["comms"]
        )
        plan = ExecutionPlan(
            task=task,
            version=version,
            machine=machine,
            start=float(rec["start"]),
            finish=float(rec["finish"]),
            exec_energy=scenario.compute_energy(task, machine, version),
            comms=comms,
            energy_delta=scenario.compute_energy(task, machine, version)
            + sum(c.energy for c in comms),
            data_ready=float(rec["start"]),
        )
        schedule.commit(plan)
    for j, debit in enumerate(data.get("external_debits", [])):
        if debit:
            schedule.debit_external(j, float(debit))
    # Full independent re-check (durations vs ETC, transfer times vs
    # bandwidth, channel capacity...) — a corrupted document fails here.
    from repro.sim.validate import validate_schedule

    validate_schedule(schedule)
    return schedule


def save_mapping(schedule: Schedule, path: PathLike) -> None:
    """Write the schedule's assignments as JSON to *path*."""
    Path(path).write_text(json.dumps(mapping_to_dict(schedule)))


def load_mapping(path: PathLike, scenario: Scenario) -> Schedule:
    """Read and replay a mapping JSON document against *scenario*."""
    return mapping_from_dict(json.loads(Path(path).read_text()), scenario)


# -- canonical bytes & content addressing -----------------------------------------


def canonical_json_bytes(doc: dict) -> bytes:
    """The pinned byte encoding of *doc*: sorted keys, minimal separators,
    ASCII-only, one trailing newline.  Equal documents → equal bytes, on
    every platform and surface."""
    return (
        json.dumps(doc, sort_keys=True, separators=(",", ":"), ensure_ascii=True)
        + "\n"
    ).encode("ascii")


def scenario_digest(data: "Scenario | dict") -> str:
    """Content address of a scenario: ``sha256:<hex>`` over the canonical
    bytes of its dict form.  Accepts a :class:`Scenario` or an already
    serialised scenario document."""
    doc = scenario_to_dict(data) if isinstance(data, Scenario) else data
    if doc.get("kind") != "scenario":
        raise ValueError(f"not a scenario document (kind={doc.get('kind')!r})")
    return "sha256:" + hashlib.sha256(canonical_json_bytes(doc)).hexdigest()


def canonical_mapping_bytes(schedule: Schedule) -> bytes:
    """Canonical byte encoding of the schedule's mapping document — the
    payload the service returns and the batch CLI writes, compared
    byte-for-byte by the differential determinism test."""
    return canonical_json_bytes(mapping_to_dict(schedule))


# -- streamed / partial mapping encoding ------------------------------------------


def iter_mapping_ndjson(schedule: Schedule) -> Iterator[bytes]:
    """Encode the schedule's mapping as NDJSON lines (bytes).

    Layout: a ``header`` line carrying format/scenario/assignment count,
    one ``assignment`` line per committed task (ascending task id), and a
    ``footer`` line with the external debits.  Each line is independently
    canonical (:func:`canonical_json_bytes`), so a consumer can process —
    or a producer can stop emitting — after any whole line.
    """
    doc = mapping_to_dict(schedule)
    yield canonical_json_bytes(
        {
            "record": "header",
            "format": _FORMAT_VERSION,
            "kind": "mapping",
            "scenario": doc["scenario"],
            "n_assignments": len(doc["assignments"]),
        }
    )
    for rec in doc["assignments"]:
        yield canonical_json_bytes({"record": "assignment", **rec})
    yield canonical_json_bytes(
        {"record": "footer", "external_debits": doc["external_debits"]}
    )


def mapping_from_ndjson(
    lines: Iterable[bytes | str], scenario: Scenario
) -> Schedule:
    """Reassemble an :func:`iter_mapping_ndjson` stream and replay it.

    A complete stream (footer present) must carry exactly the advertised
    assignment count.  A *partial* stream — header plus a prefix of the
    assignment lines, no footer — replays the prefix, supporting
    resumable transfer of large mappings; a stream cut mid-document is
    rejected by the replay invariants exactly like a tampered file.
    """
    header: dict | None = None
    assignments: list[dict] = []
    debits: list = []
    saw_footer = False
    for raw in lines:
        text = raw.decode("ascii") if isinstance(raw, bytes) else raw
        text = text.strip()
        if not text:
            continue
        if saw_footer:
            raise ValueError("NDJSON mapping stream continues past its footer")
        rec = json.loads(text)
        kind = rec.get("record")
        if kind == "header":
            if header is not None:
                raise ValueError("duplicate NDJSON mapping header")
            if rec.get("kind") != "mapping" or rec.get("format") != _FORMAT_VERSION:
                raise ValueError("not a supported NDJSON mapping header")
            header = rec
        elif kind == "assignment":
            if header is None:
                raise ValueError("NDJSON mapping stream must start with a header")
            rec.pop("record")
            assignments.append(rec)
        elif kind == "footer":
            if header is None:
                raise ValueError("NDJSON mapping stream must start with a header")
            debits = rec.get("external_debits", [])
            saw_footer = True
        else:
            raise ValueError(f"unknown NDJSON mapping record {kind!r}")
    if header is None:
        raise ValueError("empty NDJSON mapping stream")
    if saw_footer and len(assignments) != int(header["n_assignments"]):
        raise ValueError(
            f"NDJSON mapping stream carries {len(assignments)} assignments, "
            f"header advertised {header['n_assignments']}"
        )
    return mapping_from_dict(
        {
            "format": _FORMAT_VERSION,
            "kind": "mapping",
            "scenario": header.get("scenario", scenario.name),
            "assignments": assignments,
            "external_debits": debits,
        },
        scenario,
    )
