"""Persistence: JSON round-tripping of scenarios and mappings.

Scenarios are fully determined by their seeds in normal use, but field
studies and regression corpora need concrete instances on disk; likewise a
mapping produced on one machine must be auditable on another.  The format
is deliberately plain JSON — no pickle, no custom binary — so artefacts
stay inspectable and diffable.
"""

from repro.io.serialization import (
    load_mapping,
    load_scenario,
    mapping_to_dict,
    mapping_from_dict,
    scenario_from_dict,
    scenario_to_dict,
    save_mapping,
    save_scenario,
)

__all__ = [
    "scenario_to_dict",
    "scenario_from_dict",
    "save_scenario",
    "load_scenario",
    "mapping_to_dict",
    "mapping_from_dict",
    "save_mapping",
    "load_mapping",
]
